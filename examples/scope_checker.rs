//! A scope checker for a block-structured language — the classic
//! attribute-grammar demo: environments flow down and left-to-right,
//! error messages flow up.
//!
//! ```sh
//! cargo run --example scope_checker
//! ```

use linguist86::eval::funcs::Funcs;
use linguist86::eval::machine::EvalOptions;
use linguist86::eval::value::Value;
use linguist86::frontend::driver::{run, DriverOptions};
use linguist86::frontend::Translator;
use linguist86::grammars::{block_scanner, block_source};

const PROGRAM: &str = r#"
var a ;
use a ;
{
  var b ;
  use a ;
  use b ;
}
use b ;
var a ;
use ghost ;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = run(block_source(), &DriverOptions::default())?;
    println!(
        "block-language AG: {} passes ({})\n",
        out.stats.passes,
        out.analysis
            .passes
            .directions()
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let translator = Translator::new(out.analysis, block_scanner())?;
    let result = translator.translate(PROGRAM, &Funcs::standard(), &EvalOptions::default())?;

    println!("program:\n{}", PROGRAM);
    println!(
        "declarations: {}",
        result.output(&translator.analysis, "NDECL").expect("NDECL")
    );
    match result.output(&translator.analysis, "ERRS") {
        Some(Value::List(l)) if !l.is_empty() => {
            println!("scope errors:");
            for e in l.iter() {
                println!("  {}", e);
            }
        }
        _ => println!("scope errors: none"),
    }
    // Expected: `use b ;` after the inner block closed (b out of scope),
    // `var a ;` again at the outer level (duplicate), `use ghost ;`
    // (never declared).
    Ok(())
}
