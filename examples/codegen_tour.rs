//! Tour of the evaluator code generator: the p.165-style
//! production-procedures, the per-pass size table (husk vs semantic
//! code), and the effect of static subsumption.
//!
//! ```sh
//! cargo run --example codegen_tour
//! ```

use linguist86::ag::analysis::Config;
use linguist86::ag::ids::ProdId;
use linguist86::codegen::{emit_procedure, generate, Target};
use linguist86::frontend::driver::{run, DriverOptions};
use linguist86::grammars::meta_source;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = run(meta_source(), &DriverOptions::default())?;
    let analysis = &out.analysis;

    // One production-procedure, as the paper prints one (p.165).
    println!("== a generated production-procedure (pass 2, symdecls cons) ==\n");
    // Find the symdecls-cons production.
    let g = &analysis.grammar;
    let symdecls = g.symbol_by_name("symdecls").unwrap();
    let prod = g
        .productions()
        .iter()
        .position(|p| p.lhs == symdecls && p.rhs.len() == 2)
        .expect("symdecls cons production");
    let proc = emit_procedure(analysis, ProdId(prod as u32), 2, Target::Pascal);
    println!("{}", proc.source);
    println!(
        "husk {} B, semantic {} B ({} B of save/restore), {} subsumed copy-rule(s)\n",
        proc.husk_bytes, proc.semantic_bytes, proc.save_restore_bytes, proc.subsumed_rules
    );

    // The §V pass-size table.
    println!("== per-pass module sizes (the paper's §V table) ==\n");
    let evaluator = generate(analysis, Target::Pascal);
    for p in &evaluator.passes {
        println!(
            "  pass {} - {:>6} bytes  (semantic {:>6} B)",
            p.pass,
            p.total_bytes(),
            p.semantic_bytes
        );
    }
    println!(
        "  husk   - {:>6} bytes  (same for every pass)\n",
        evaluator.husk_bytes()
    );

    // With vs without static subsumption.
    let without = {
        let rerun = run(
            meta_source(),
            &DriverOptions {
                config: Config {
                    disable_subsumption: true,
                    ..Config::default()
                },
                target: None,
                ..DriverOptions::default()
            },
        )?;
        generate(&rerun.analysis, Target::Pascal)
    };
    let with_sem = evaluator.semantic_bytes();
    let without_sem = without.semantic_bytes();
    println!("== static subsumption (the paper's §III measurement) ==\n");
    println!("  semantic code with    subsumption: {:>6} B", with_sem);
    println!("  semantic code without subsumption: {:>6} B", without_sem);
    println!(
        "  eliminated: {:.1}%  (the paper reports ~20% on its own grammar)",
        100.0 * (without_sem.saturating_sub(with_sem)) as f64 / without_sem as f64
    );

    // The Rust flavour of the same evaluator.
    println!("\n== the same evaluator, Rust-flavoured (excerpt) ==\n");
    let rust = generate(analysis, Target::Rust);
    for line in rust.passes[0].source.lines().take(18) {
        println!("{}", line);
    }
    Ok(())
}
