//! Self-processing: the LINGUIST meta attribute grammar — the input
//! language described in its own notation — built into a translator and
//! run over its own source ("LINGUIST-86 is itself written as an
//! 1800-line attribute grammar and is self-generating").
//!
//! ```sh
//! cargo run --example self_processing
//! ```

use linguist86::eval::funcs::Funcs;
use linguist86::eval::machine::EvalOptions;
use linguist86::frontend::driver::{run, DriverOptions};
use linguist86::frontend::Translator;
use linguist86::grammars::{calc_source, meta_scanner, meta_source, pascal_source};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("analyzing the meta attribute grammar …");
    let out = run(meta_source(), &DriverOptions::default())?;
    println!("{}\n", out.stats);
    println!("pass directions:");
    for (i, d) in out.analysis.passes.directions().iter().enumerate() {
        println!("  pass {}: {}", i + 1, d);
    }
    let sub = out.analysis.subsumption.stats(&out.analysis.grammar);
    println!(
        "\nstatic subsumption: {} of {} eligible attributes static, {} of {} copy-rules subsumed\n",
        sub.static_attrs, sub.eligible_attrs, sub.subsumed_rules, sub.copy_rules
    );

    let translator = Translator::new(out.analysis, meta_scanner())?;
    let funcs = Funcs::standard();
    let opts = EvalOptions::default();

    for (name, src) in [
        ("meta.lg (itself!)", meta_source()),
        ("calc.lg", calc_source()),
        ("pascal.lg", pascal_source()),
    ] {
        let r = translator.translate(src, &funcs, &opts)?;
        println!("== linting {} ==", name);
        for key in ["NSYMS", "NPRODS", "NMSGS", "NUNUSED"] {
            println!(
                "  {:8} = {}",
                key,
                r.output(&translator.analysis, key).expect("output")
            );
        }
        println!(
            "  {} passes, {} records through the intermediate files, peak stack {} B",
            r.stats.passes.len(),
            r.stats.passes.iter().map(|p| p.records_read).sum::<u64>(),
            r.stats.meter.peak()
        );
        println!(
            "  subsumption protocol: {} checks, {} repairs\n",
            r.stats.globals_checked, r.stats.globals_repaired
        );
    }

    // And a grammar with deliberate mistakes.
    let buggy = r#"
grammar Buggy ;
terminals
  unused_token ;
nonterminals
  s : syn V int ;
  s : syn W int ;
start s ;
productions
prod s = ghost :
  s.V = 1 ;
end
end
"#;
    let r = translator.translate(buggy, &funcs, &opts)?;
    println!("== linting a buggy grammar ==");
    println!(
        "  messages: {}",
        r.output(&translator.analysis, "MSGS").expect("MSGS")
    );
    Ok(())
}
