//! Quickstart: from an attribute grammar to a running translator.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Feeds the bundled desk-calculator attribute grammar through the
//! seven-overlay pipeline (scan/parse → semantic analysis → evaluability →
//! listing → evaluator generation), then runs the generated translator on
//! an expression via the file-resident alternating-pass evaluator.

use linguist86::eval::funcs::Funcs;
use linguist86::eval::machine::EvalOptions;
use linguist86::frontend::driver::{run, DriverOptions};
use linguist86::frontend::Translator;
use linguist86::grammars::{calc_scanner, calc_source};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Overlays 1-7: analyze the attribute grammar.
    let out = run(calc_source(), &DriverOptions::default())?;
    println!("== grammar statistics (the paper's §IV profile) ==");
    println!("{}\n", out.stats);
    println!("== overlay timings (the paper's §V table) ==");
    println!("{}\n", out.timings);

    // Build the translator: LALR tables for the grammar's phrase
    // structure plus a generated scanner.
    let translator = Translator::new(out.analysis, calc_scanner())?;
    println!(
        "LALR tables built: {} parser states\n",
        translator.parser_states()
    );

    // Translate some input.
    let funcs = Funcs::standard();
    let opts = EvalOptions::default();
    for input in ["1+2*3", "(1+2)*3", "10-2-3", "2*(3+4)-5"] {
        let result = translator.translate(input, &funcs, &opts)?;
        println!(
            "{:>12}  =  {}   ({} byte(s) through the APT files, peak stack {} B)",
            input,
            result
                .output(&translator.analysis, "V")
                .expect("V is the calculator's output"),
            result.stats.total_io_bytes(),
            result.stats.meter.peak(),
        );
    }
    Ok(())
}
