//! The Pascal-subset pipeline: type checking through an attribute
//! grammar, as the paper's motivating use case (LINGUIST-86 "will be used
//! to build compiler and translator products").
//!
//! ```sh
//! cargo run --example pascal_pipeline
//! ```

use linguist86::eval::funcs::Funcs;
use linguist86::eval::machine::EvalOptions;
use linguist86::eval::value::Value;
use linguist86::frontend::driver::{run, DriverOptions};
use linguist86::frontend::Translator;
use linguist86::grammars::{pascal_scanner, pascal_source};

const OK_PROGRAM: &str = r#"
program demo;
var x : integer;
var flag : boolean;
begin
  x := 1 + 2 * 3;
  flag := x < 10;
  if flag then x := x + 1 else x := 0;
  while x < 20 do x := x + 5
end.
"#;

const BAD_PROGRAM: &str = r#"
program broken;
var x : integer;
var x : boolean;
begin
  y := 1;
  x := true;
  if x + 1 then y := 2 else y := 3
end.
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = run(pascal_source(), &DriverOptions::default())?;
    println!(
        "Pascal-subset AG: {} productions, {} semantic functions ({} copies, {} implicit), {} passes\n",
        out.stats.productions,
        out.stats.semantic_functions,
        out.stats.copy_rules,
        out.stats.implicit_copy_rules,
        out.stats.passes
    );
    let translator = Translator::new(out.analysis, pascal_scanner())?;
    let funcs = Funcs::standard();
    let opts = EvalOptions::default();

    for (name, src) in [("well-typed", OK_PROGRAM), ("broken", BAD_PROGRAM)] {
        let result = translator.translate(src, &funcs, &opts)?;
        let msgs = result
            .output(&translator.analysis, "MSGS")
            .expect("MSGS output");
        let code = result
            .output(&translator.analysis, "CODE")
            .expect("CODE output");
        let nvars = result
            .output(&translator.analysis, "NVARS")
            .expect("NVARS output");
        println!("== {} program ==", name);
        println!("  declared variables : {}", nvars);
        println!("  emitted code units : {}", code);
        match msgs {
            Value::List(l) if l.is_empty() => println!("  diagnostics        : none"),
            Value::List(l) => {
                println!("  diagnostics        :");
                for m in l.iter() {
                    println!("    {}", m);
                }
            }
            other => println!("  diagnostics        : {}", other),
        }
        println!();
    }
    Ok(())
}
