//! Regenerate the checked-in AOT evaluator crates.
//!
//! The engine's ahead-of-time path links the five bundled grammars'
//! generated evaluators as ordinary workspace members under
//! `crates/engine/generated/` — each in two variants: the
//! paper-faithful unoptimized analysis (`<name>`) and the grammar
//! optimizer's output (`<name>_opt`, what the CLI's default `--opt=on`
//! pipeline produces). Those sources are ordinary checked-in files;
//! rerun this after changing `rustgen`, the optimizer, or a bundled
//! grammar:
//!
//! ```text
//! cargo run --example gen_aot
//! ```
//!
//! A freshness test in `tests/` compares the checked-in sources against
//! what `rustgen` produces today, so drift fails CI rather than silently
//! desynchronizing the AOT registry (the engine also hash-checks at
//! runtime and falls back to the interpreter on any mismatch).

use linguist_codegen::rustgen;
use std::fs;
use std::path::Path;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/engine/generated");
    let grammars = [
        ("calc", linguist_grammars::calc_source()),
        ("knuth", linguist_grammars::knuth_source()),
        ("block", linguist_grammars::block_source()),
        ("meta", linguist_grammars::meta_source()),
        ("pascal", linguist_grammars::pascal_source()),
    ];
    for (name, source) in grammars {
        for optimized in [false, true] {
            let out = if optimized {
                linguist_grammars::analyze_optimized(source)
            } else {
                linguist_grammars::analyze(source)
            }
            .unwrap_or_else(|e| panic!("{} failed to analyze: {:?}", name, e));
            let dir_name = if optimized {
                format!("{}_opt", name)
            } else {
                name.to_string()
            };
            let crate_name = format!("linguist-aot-{}", dir_name.replace('_', "-"));
            let files = rustgen::crate_files(&out.analysis, &crate_name, false);
            let dir = root.join(&dir_name);
            for (rel, contents) in &files {
                let path = dir.join(rel);
                fs::create_dir_all(path.parent().unwrap()).unwrap();
                fs::write(&path, contents).unwrap();
            }
            let src = &files
                .iter()
                .find(|(rel, _)| rel.ends_with("lib.rs"))
                .unwrap()
                .1;
            println!(
                "{}: {} lines, hash {}",
                dir_name,
                src.lines().count(),
                rustgen::content_hash(src.as_bytes())
            );
        }
    }
}
