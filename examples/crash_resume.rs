//! Crash-safe evaluation: checkpoint every pass boundary, crash
//! mid-run, resume from the newest surviving checkpoint.
//!
//! ```sh
//! cargo run --example crash_resume
//! ```
//!
//! The paper's evaluator keeps the whole attributed parse tree on
//! secondary storage between passes — which means a durable manifest
//! over those boundary files turns every completed pass into a
//! checkpoint for free. This example compiles the bundled block-scope
//! grammar, then:
//!
//! 1. runs it checkpointed with an injected I/O fault at the final pass
//!    (the simulated crash);
//! 2. resumes from the checkpoint directory — only the crashed pass is
//!    re-run, not the passes before it;
//! 3. shows retry-with-backoff absorbing a *transient* fault without
//!    any operator intervention at all.

use linguist86::eval::aptfile::{FaultSpec, FaultTarget};
use linguist86::eval::funcs::Funcs;
use linguist86::eval::machine::{
    evaluate_resumable, EvalOptions, Evaluation, RetryPolicy, Strategy,
};
use linguist86::frontend::driver::{run, DriverOptions};
use linguist86::frontend::translate::standard_intrinsics;
use linguist86::frontend::Translator;
use linguist86::grammars::{block_program, block_scanner, block_source};
use linguist86::support::intern::NameTable;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = run(block_source(), &DriverOptions::default())?;
    let translator = Translator::new(out.analysis, block_scanner())?;
    let analysis = &translator.analysis;
    let funcs = Funcs::standard();
    let strategy = match analysis.passes.direction(1) {
        linguist86::ag::passes::Direction::RightToLeft => Strategy::BottomUp,
        linguist86::ag::passes::Direction::LeftToRight => Strategy::Prefix,
    };
    let opts = EvalOptions {
        strategy,
        ..EvalOptions::default()
    };
    let num_passes = analysis.passes.num_passes() as u16;

    let src = block_program(20, 4);
    let mut names = NameTable::new();
    let tree = translator.parse_input(&src, &standard_intrinsics, &mut names)?;
    println!(
        "block program: {}-node tree, {}-pass evaluation",
        tree.size(),
        num_passes
    );

    let ckpt = std::env::temp_dir().join(format!("linguist86-crash-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt);

    // 1. The crash: a one-shot injected write fault kills the final pass.
    //    Every earlier boundary file is already durable (written, synced,
    //    recorded in the manifest with its checksum).
    let crashing = EvalOptions {
        fault: Some(FaultSpec::new(num_passes, FaultTarget::Write, 0)),
        ..opts.clone()
    };
    let crash = evaluate_resumable(analysis, &funcs, &tree, &crashing, &ckpt)
        .expect_err("the injected fault crashes the run");
    println!("\ncrashed as intended: {}", crash);

    // 2. The resume: no parse tree needed — the checkpoint directory has
    //    everything. Only the crashed pass re-runs.
    let resumed = Evaluation::resume(analysis, &funcs, &opts, &ckpt)?;
    println!(
        "resumed from boundary {}: {} pass(es) re-run, outputs: {:?}",
        resumed.stats.resumed_from.expect("resumed"),
        resumed.stats.passes.len(),
        resumed
            .outputs
            .iter()
            .map(|(a, v)| format!("{:?}={}", a, v))
            .collect::<Vec<_>>()
    );

    // 3. Transient faults never reach the operator: the same fault fired
    //    transiently is absorbed by the retry policy, re-running just the
    //    failed pass from its preceding boundary.
    let flaky = EvalOptions {
        fault: Some(FaultSpec::transient(num_passes, FaultTarget::Write, 0, 1)),
        retry: RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(1),
        },
        ..opts
    };
    let recovered = evaluate_resumable(analysis, &funcs, &tree, &flaky, &ckpt)?;
    println!(
        "transient fault absorbed: {} retr(ies), outputs identical: {}",
        recovered.stats.retries,
        recovered.outputs == resumed.outputs
    );

    let _ = std::fs::remove_dir_all(&ckpt);
    Ok(())
}
