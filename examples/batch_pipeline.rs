//! Batch pipeline: many independent inputs through one translator, in
//! parallel.
//!
//! ```sh
//! cargo run --example batch_pipeline
//! ```
//!
//! The paper's evaluator handles one APT at a time; a production
//! translator faces a directory of source files. This example builds the
//! bundled calculator translator once, then pushes a batch of generated
//! expressions through [`Translator::translate_batch`], which parses
//! sequentially and evaluates on a pool of worker threads — each job
//! with its own isolated intermediate files. The same batch runs on 1
//! worker and on all available cores, so the aggregate `BatchStats`
//! (per-pass I/O, rules fired, jobs/sec) can be compared directly.

use linguist86::eval::funcs::Funcs;
use linguist86::eval::machine::{Backing, EvalOptions};
use linguist86::frontend::driver::{run, DriverOptions};
use linguist86::frontend::Translator;
use linguist86::grammars::{calc_scanner, calc_source};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = run(calc_source(), &DriverOptions::default())?;
    let translator = Translator::new(out.analysis, calc_scanner())?;
    let funcs = Funcs::standard();
    // Memory backing: all intermediate-file traffic stays in RAM.
    let opts = EvalOptions {
        backing: Backing::Memory,
        ..EvalOptions::default()
    };

    // A compilation unit per "file": generated expressions of growing size.
    let inputs: Vec<String> = (0..120)
        .map(|i| {
            let mut src = format!("{}", i % 10);
            for k in 0..40 {
                src = format!("({} + {} * {})", src, (i + k) % 9 + 1, k % 7 + 1);
            }
            src
        })
        .collect();
    let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for workers in [1, cores] {
        let (results, stats) = translator.translate_batch(&refs, &funcs, &opts, workers);
        let failures = results.iter().filter(|r| r.is_err()).count();
        println!("== {} worker(s) ==", stats.workers);
        println!("jobs:        {} ({} failed)", stats.jobs, failures);
        println!("wall:        {:?}", stats.wall);
        println!("jobs/sec:    {:.1}", stats.jobs_per_sec());
        println!(
            "rules fired: {} across {} pass(es)",
            stats.total_rules,
            stats.per_pass.len()
        );
        println!(
            "APT traffic: {} bytes ({} read+written per job on average)\n",
            stats.total_io_bytes,
            stats.total_io_bytes / stats.jobs as u64
        );
    }

    // Spot-check one answer against the sequential evaluator.
    let sequential = translator.translate(&inputs[7], &funcs, &opts)?;
    let (batch_results, _) = translator.translate_batch(&refs[7..8], &funcs, &opts, 2);
    let batch = batch_results[0].as_ref().expect("job succeeds");
    assert_eq!(
        batch.output(&translator.analysis, "V"),
        sequential.output(&translator.analysis, "V"),
        "parallel and sequential evaluation agree"
    );
    println!(
        "input #7 evaluates to {} under both drivers",
        sequential
            .output(&translator.analysis, "V")
            .expect("calculator output")
    );
    Ok(())
}
