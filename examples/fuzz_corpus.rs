//! Regenerate the seed fixtures under `tests/corpus/`.
//!
//! The differential fuzzer (`tests/differential.rs`) persists any
//! divergent case it finds into that directory; these seeds exist so the
//! corpus-replay test exercises every generator family (a copy-dense
//! chain, a multi-pass ladder, a limb + multi-target mix) on every run
//! even when the fuzzer has never caught anything. Run with
//! `cargo run --example fuzz_corpus` from the workspace root; fixtures
//! are written deterministically, so reruns are byte-stable.

use linguist_frontend::differential::persist_fixture;
use linguist_grammars::synth::{realize, Family, ShapeParams};
use std::path::Path;

fn main() {
    let dir = Path::new("tests/corpus");
    let seeds = [
        (
            "seed_copy",
            "pins the implicit-copy mechanism: dense copy chains resolved by analysis",
            ShapeParams {
                family: Family::CopyChain,
                nonterminals: 3,
                ranks: 1,
                inherited: true,
                extra_prods: 2,
                copy_density: 0.9,
                multi_target: false,
                use_limb: false,
                budget: 24,
                seed: 0xc0c0,
            },
        ),
        (
            "seed_ladder",
            "pins multi-pass scheduling: rank-3 ladder whose schedule needs several passes",
            ShapeParams {
                family: Family::Ladder,
                nonterminals: 2,
                ranks: 3,
                inherited: true,
                extra_prods: 2,
                copy_density: 0.4,
                multi_target: false,
                use_limb: true,
                budget: 32,
                seed: 0x1ad0,
            },
        ),
        (
            "seed_mixed",
            "pins Figure-5 multi-target functions and limb attributes together",
            ShapeParams {
                family: Family::Mixed,
                nonterminals: 3,
                ranks: 2,
                inherited: true,
                extra_prods: 2,
                copy_density: 0.5,
                multi_target: true,
                use_limb: true,
                budget: 28,
                seed: 0x3513,
            },
        ),
    ];
    for (name, why, params) in seeds {
        let sg = realize(&params);
        let path = persist_fixture(dir, name, &sg.source, sg.params.budget, why)
            .expect("write seed fixture");
        println!(
            "{} ({} bytes, degraded {} steps)",
            path.display(),
            sg.source.len(),
            sg.degraded
        );
    }
}
