//! Concurrency stress tests for the parallel batch evaluator.
//!
//! Runs the bundled calculator and block-language translators over
//! dozens of inputs on a many-thread pool and checks the two batch
//! invariants the subsystem promises:
//!
//! 1. **Determinism** — every job's outputs are byte-identical to the
//!    same tree evaluated sequentially (same values, same encoding).
//! 2. **Accounting** — the aggregated [`BatchStats`] equal the sum of
//!    the per-job [`EvalStats`] that produced them.

use linguist86::eval::batch::BatchEvaluator;
use linguist86::eval::machine::{evaluate, Backing, EvalOptions};
use linguist86::eval::tree::PTree;
use linguist86::eval::value::Value;
use linguist86::frontend::translate::standard_intrinsics;
use linguist86::frontend::Translator;
use linguist86::grammars::{
    analyze, block_program, block_scanner, block_source, calc_scanner, calc_source,
};
use linguist_support::intern::NameTable;

const WORKERS: usize = 8;
const JOBS: usize = 50;

fn calc_translator() -> Translator {
    let analysis = analyze(calc_source()).unwrap().analysis;
    Translator::new(analysis, calc_scanner()).unwrap()
}

fn block_translator() -> Translator {
    let analysis = analyze(block_source()).unwrap().analysis;
    Translator::new(analysis, block_scanner()).unwrap()
}

/// A distinct calculator expression per job index.
fn calc_input(i: usize) -> String {
    format!(
        "{} + {} * ({} + {}) - {}",
        i,
        (i % 7) + 1,
        (i % 11) + 2,
        (i % 5) + 3,
        i % 13
    )
}

/// Stable byte encoding of an evaluation's root outputs.
fn encoded_outputs(outputs: &[(linguist_ag::ids::AttrId, Value)]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (a, v) in outputs {
        bytes.extend_from_slice(&a.0.to_le_bytes());
        v.encode(&mut bytes);
    }
    bytes
}

fn parse_all(tr: &Translator, inputs: &[String]) -> Vec<PTree> {
    inputs
        .iter()
        .map(|src| {
            let mut names = NameTable::new();
            tr.parse_input(src, &standard_intrinsics, &mut names)
                .expect("bundled grammar parses its own inputs")
        })
        .collect()
}

fn stress(tr: &Translator, trees: &[PTree], opts: &EvalOptions) {
    let funcs = linguist86::eval::Funcs::standard();
    let outcome =
        BatchEvaluator::with_options(WORKERS, opts.clone()).run(&tr.analysis, &funcs, trees);

    assert_eq!(outcome.stats.jobs, trees.len());
    assert_eq!(outcome.stats.failed, 0, "no job may fail");
    assert_eq!(outcome.stats.workers, WORKERS.min(trees.len()));

    // Determinism: byte-identical to sequential evaluation, per job.
    let (mut io_sum, mut rules_sum) = (0u64, 0u64);
    let mut pass_rules: Vec<u64> = Vec::new();
    for (tree, result) in trees.iter().zip(&outcome.results) {
        let batch_eval = result.as_ref().expect("job succeeded");
        let seq_eval = evaluate(&tr.analysis, &funcs, tree, opts).unwrap();
        assert_eq!(
            encoded_outputs(&batch_eval.outputs),
            encoded_outputs(&seq_eval.outputs),
            "parallel evaluation diverged from sequential"
        );
        io_sum += batch_eval.stats.total_io_bytes();
        rules_sum += batch_eval.stats.total_rules();
        for (k, p) in batch_eval.stats.passes.iter().enumerate() {
            if pass_rules.len() <= k {
                pass_rules.push(0);
            }
            pass_rules[k] += p.rules_evaluated;
        }
    }

    // Accounting: batch totals are exactly the per-job sums.
    assert_eq!(outcome.stats.total_io_bytes, io_sum);
    assert_eq!(outcome.stats.total_rules, rules_sum);
    assert_eq!(outcome.stats.per_pass.len(), pass_rules.len());
    for (slot, expected) in outcome.stats.per_pass.iter().zip(&pass_rules) {
        assert_eq!(slot.rules_evaluated, *expected);
    }
    assert!(outcome.stats.wall.as_nanos() > 0);
}

#[test]
fn calc_batch_matches_sequential_on_disk() {
    let tr = calc_translator();
    let inputs: Vec<String> = (0..JOBS).map(calc_input).collect();
    let trees = parse_all(&tr, &inputs);
    stress(&tr, &trees, &EvalOptions::default());
}

#[test]
fn calc_batch_matches_sequential_in_memory() {
    let tr = calc_translator();
    let inputs: Vec<String> = (0..JOBS).map(calc_input).collect();
    let trees = parse_all(&tr, &inputs);
    stress(
        &tr,
        &trees,
        &EvalOptions {
            backing: Backing::Memory,
            ..EvalOptions::default()
        },
    );
}

#[test]
fn block_batch_matches_sequential() {
    let tr = block_translator();
    let inputs: Vec<String> = (0..JOBS)
        .map(|i| block_program((i % 4) + 1, (i % 3) + 1))
        .collect();
    let trees = parse_all(&tr, &inputs);
    stress(&tr, &trees, &EvalOptions::default());
}

#[test]
fn translate_batch_end_to_end() {
    // The frontend wrapper: raw source strings in, ordered results out.
    let tr = calc_translator();
    let inputs: Vec<String> = (0..20).map(calc_input).collect();
    let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    let funcs = linguist86::eval::Funcs::standard();
    let opts = EvalOptions::default();

    let (results, stats) = tr.translate_batch(&refs, &funcs, &opts, 4);
    assert_eq!(results.len(), inputs.len());
    assert_eq!(stats.jobs, inputs.len());
    assert_eq!(stats.failed, 0);
    for (src, result) in inputs.iter().zip(&results) {
        let batch_eval = result.as_ref().expect("calc input translates");
        let seq_eval = tr.translate(src, &funcs, &opts).unwrap();
        assert_eq!(
            encoded_outputs(&batch_eval.outputs),
            encoded_outputs(&seq_eval.outputs)
        );
    }
}

#[test]
fn translate_batch_isolates_bad_inputs() {
    let tr = calc_translator();
    let funcs = linguist86::eval::Funcs::standard();
    let opts = EvalOptions::default();
    let inputs = ["1 + 2", "3 + + )", "4 * 5"];
    let (results, stats) = tr.translate_batch(&inputs, &funcs, &opts, 2);
    assert!(results[0].is_ok());
    assert!(results[1].is_err(), "the broken input fails alone");
    assert!(results[2].is_ok());
    // Only the parses that survived were submitted as evaluation jobs.
    assert_eq!(stats.jobs, 2);
    assert_eq!(stats.failed, 0);
}
