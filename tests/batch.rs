//! Concurrency stress tests for the parallel batch evaluator.
//!
//! Runs the bundled calculator and block-language translators over
//! dozens of inputs on a many-thread pool and checks the two batch
//! invariants the subsystem promises:
//!
//! 1. **Determinism** — every job's outputs are byte-identical to the
//!    same tree evaluated sequentially (same values, same encoding).
//! 2. **Accounting** — the aggregated [`BatchStats`] equal the sum of
//!    the per-job [`EvalStats`] that produced them.
//!
//! On top of that sits the shared-nothing tier: a 1/2/4/8-worker sweep
//! over *every* bundled grammar on the owned in-memory store (zero
//! store-lock acquisitions required), crash-resume runs interleaved
//! with an owned-store batch, and two `#[ignore]`d scaling gates that
//! `scripts/verify.sh` runs explicitly.

use linguist86::ag::analysis::Analysis;
use linguist86::eval::aptfile::{FaultSpec, FaultTarget};
use linguist86::eval::batch::BatchEvaluator;
use linguist86::eval::machine::{evaluate, evaluate_resumable, Backing, EvalOptions, Evaluation};
use linguist86::eval::tree::PTree;
use linguist86::eval::value::Value;
use linguist86::frontend::differential::strategy_for;
use linguist86::frontend::synthesize_tree;
use linguist86::frontend::translate::standard_intrinsics;
use linguist86::frontend::Translator;
use linguist86::grammars::{
    analyze, block_program, block_scanner, block_source, calc_scanner, calc_source, knuth_source,
    meta_source, pascal_source,
};
use linguist_support::intern::NameTable;

const WORKERS: usize = 8;
const JOBS: usize = 50;

fn calc_translator() -> Translator {
    let analysis = analyze(calc_source()).unwrap().analysis;
    Translator::new(analysis, calc_scanner()).unwrap()
}

fn block_translator() -> Translator {
    let analysis = analyze(block_source()).unwrap().analysis;
    Translator::new(analysis, block_scanner()).unwrap()
}

/// A distinct calculator expression per job index.
fn calc_input(i: usize) -> String {
    format!(
        "{} + {} * ({} + {}) - {}",
        i,
        (i % 7) + 1,
        (i % 11) + 2,
        (i % 5) + 3,
        i % 13
    )
}

/// Stable byte encoding of an evaluation's root outputs.
fn encoded_outputs(outputs: &[(linguist_ag::ids::AttrId, Value)]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (a, v) in outputs {
        bytes.extend_from_slice(&a.0.to_le_bytes());
        v.encode(&mut bytes);
    }
    bytes
}

fn parse_all(tr: &Translator, inputs: &[String]) -> Vec<PTree> {
    inputs
        .iter()
        .map(|src| {
            let mut names = NameTable::new();
            tr.parse_input(src, &standard_intrinsics, &mut names)
                .expect("bundled grammar parses its own inputs")
        })
        .collect()
}

fn stress(tr: &Translator, trees: &[PTree], opts: &EvalOptions) {
    let funcs = linguist86::eval::Funcs::standard();
    let outcome =
        BatchEvaluator::with_options(WORKERS, opts.clone()).run(&tr.analysis, &funcs, trees);

    assert_eq!(outcome.stats.jobs, trees.len());
    assert_eq!(outcome.stats.failed, 0, "no job may fail");
    assert_eq!(outcome.stats.workers, WORKERS.min(trees.len()));

    // Determinism: byte-identical to sequential evaluation, per job.
    let (mut io_sum, mut rules_sum) = (0u64, 0u64);
    let mut pass_rules: Vec<u64> = Vec::new();
    for (tree, result) in trees.iter().zip(&outcome.results) {
        let batch_eval = result.as_ref().expect("job succeeded");
        let seq_eval = evaluate(&tr.analysis, &funcs, tree, opts).unwrap();
        assert_eq!(
            encoded_outputs(&batch_eval.outputs),
            encoded_outputs(&seq_eval.outputs),
            "parallel evaluation diverged from sequential"
        );
        io_sum += batch_eval.stats.total_io_bytes();
        rules_sum += batch_eval.stats.total_rules();
        for (k, p) in batch_eval.stats.passes.iter().enumerate() {
            if pass_rules.len() <= k {
                pass_rules.push(0);
            }
            pass_rules[k] += p.rules_evaluated;
        }
    }

    // Accounting: batch totals are exactly the per-job sums.
    assert_eq!(outcome.stats.total_io_bytes, io_sum);
    assert_eq!(outcome.stats.total_rules, rules_sum);
    assert_eq!(outcome.stats.per_pass.len(), pass_rules.len());
    for (slot, expected) in outcome.stats.per_pass.iter().zip(&pass_rules) {
        assert_eq!(slot.rules_evaluated, *expected);
    }
    assert!(outcome.stats.wall.as_nanos() > 0);
}

#[test]
fn calc_batch_matches_sequential_on_disk() {
    let tr = calc_translator();
    let inputs: Vec<String> = (0..JOBS).map(calc_input).collect();
    let trees = parse_all(&tr, &inputs);
    stress(&tr, &trees, &EvalOptions::default());
}

#[test]
fn calc_batch_matches_sequential_in_memory() {
    let tr = calc_translator();
    let inputs: Vec<String> = (0..JOBS).map(calc_input).collect();
    let trees = parse_all(&tr, &inputs);
    stress(
        &tr,
        &trees,
        &EvalOptions {
            backing: Backing::Memory,
            ..EvalOptions::default()
        },
    );
}

#[test]
fn block_batch_matches_sequential() {
    let tr = block_translator();
    let inputs: Vec<String> = (0..JOBS)
        .map(|i| block_program((i % 4) + 1, (i % 3) + 1))
        .collect();
    let trees = parse_all(&tr, &inputs);
    stress(&tr, &trees, &EvalOptions::default());
}

#[test]
fn translate_batch_end_to_end() {
    // The frontend wrapper: raw source strings in, ordered results out.
    let tr = calc_translator();
    let inputs: Vec<String> = (0..20).map(calc_input).collect();
    let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    let funcs = linguist86::eval::Funcs::standard();
    let opts = EvalOptions::default();

    let (results, stats) = tr.translate_batch(&refs, &funcs, &opts, 4);
    assert_eq!(results.len(), inputs.len());
    assert_eq!(stats.jobs, inputs.len());
    assert_eq!(stats.failed, 0);
    for (src, result) in inputs.iter().zip(&results) {
        let batch_eval = result.as_ref().expect("calc input translates");
        let seq_eval = tr.translate(src, &funcs, &opts).unwrap();
        assert_eq!(
            encoded_outputs(&batch_eval.outputs),
            encoded_outputs(&seq_eval.outputs)
        );
    }
}

#[test]
fn translate_batch_isolates_bad_inputs() {
    let tr = calc_translator();
    let funcs = linguist86::eval::Funcs::standard();
    let opts = EvalOptions::default();
    let inputs = ["1 + 2", "3 + + )", "4 * 5"];
    let (results, stats) = tr.translate_batch(&inputs, &funcs, &opts, 2);
    assert!(results[0].is_ok());
    assert!(results[1].is_err(), "the broken input fails alone");
    assert!(results[2].is_ok());
    // Only the parses that survived were submitted as evaluation jobs.
    assert_eq!(stats.jobs, 2);
    assert_eq!(stats.failed, 0);
}

// ---------------------------------------------------------------------------
// Shared-nothing tier: worker sweeps over every bundled grammar.
// ---------------------------------------------------------------------------

/// Run `trees` through the owned-store batch at 1/2/4/8 workers and
/// require every job byte-identical to its sequential baseline and the
/// whole run free of store-lock acquisitions.
fn sweep_workers(name: &str, analysis: &Analysis, trees: &[PTree]) {
    let funcs = linguist86::eval::Funcs::standard();
    let opts = EvalOptions {
        strategy: strategy_for(analysis),
        backing: Backing::Memory,
        ..EvalOptions::default()
    };
    let baselines: Vec<Vec<u8>> = trees
        .iter()
        .map(|t| {
            let eval = evaluate(analysis, &funcs, t, &opts).expect("sequential baseline succeeds");
            encoded_outputs(&eval.outputs)
        })
        .collect();
    for workers in [1usize, 2, 4, 8] {
        let outcome =
            BatchEvaluator::with_options(workers, opts.clone()).run(analysis, &funcs, trees);
        assert_eq!(outcome.stats.failed, 0, "{} @ {} workers", name, workers);
        assert_eq!(
            outcome.stats.lock_acquisitions, 0,
            "{} @ {} workers: owned-store batch took store locks",
            name, workers
        );
        for (j, (result, want)) in outcome.results.iter().zip(&baselines).enumerate() {
            let eval = result.as_ref().expect("batch job succeeds");
            assert_eq!(
                eval.stats.lock_acquisitions, 0,
                "{} job {} @ {} workers took store locks",
                name, j, workers
            );
            assert_eq!(
                &encoded_outputs(&eval.outputs),
                want,
                "{} job {} @ {} workers diverged from sequential",
                name,
                j,
                workers
            );
        }
    }
}

#[test]
fn worker_sweep_parsed_grammars_byte_identical() {
    // The two grammars with bundled scanners: real source through the
    // full parse pipeline, a distinct input per job.
    let tr = calc_translator();
    let inputs: Vec<String> = (0..16).map(calc_input).collect();
    let trees = parse_all(&tr, &inputs);
    sweep_workers("calc", &tr.analysis, &trees);

    let tr = block_translator();
    let inputs: Vec<String> = (0..16)
        .map(|i| block_program((i % 4) + 1, (i % 3) + 1))
        .collect();
    let trees = parse_all(&tr, &inputs);
    sweep_workers("block", &tr.analysis, &trees);
}

#[test]
fn worker_sweep_synthesized_grammars_byte_identical() {
    // The scanner-less bundled grammars get deterministic budget-grown
    // trees (the same synthesis `serve` uses); a distinct budget per
    // job keeps the jobs from being clones of each other. Knuth's
    // budgets stay small: every extra bit raises the SCALE exponent,
    // and `Pow2` rejects exponents past 62.
    for (name, src, base, step) in [
        ("knuth", knuth_source(), 16usize, 8usize),
        ("meta", meta_source(), 40, 25),
        ("pascal", pascal_source(), 40, 25),
    ] {
        let analysis = analyze(src).expect("bundled grammar analyzes").analysis;
        let trees: Vec<PTree> = (0..12)
            .map(|i| {
                synthesize_tree(&analysis.grammar, base + step * i)
                    .expect("bundled grammar has a finite derivation")
            })
            .collect();
        sweep_workers(name, &analysis, &trees);
    }
}

/// Crash-resume runs interleave with the owned-store batch: every job
/// is first crashed mid-run against a disk checkpoint (a different
/// pass each time), the same trees are then batch-evaluated on the
/// shared-nothing store, and finally each crashed job resumes from its
/// surviving checkpoint — both paths must agree byte-for-byte.
#[test]
fn crash_resume_interleaves_with_owned_store_batch() {
    let tr = block_translator();
    let funcs = linguist86::eval::Funcs::standard();
    let num_passes = tr.analysis.passes.num_passes() as u16;
    let inputs: Vec<String> = (0..6)
        .map(|i| block_program((i % 4) + 1, (i % 3) + 1))
        .collect();
    let trees = parse_all(&tr, &inputs);
    let opts = EvalOptions::default();

    let root = std::env::temp_dir().join(format!("linguist86-batch-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Crash each checkpointed job at a rotating pass boundary.
    let mut dirs = Vec::new();
    for (i, tree) in trees.iter().enumerate() {
        let ckpt = root.join(format!("job{}", i));
        let fault_pass = (i as u16 % num_passes) + 1;
        let crashing = EvalOptions {
            fault: Some(FaultSpec::new(fault_pass, FaultTarget::Write, 0)),
            ..opts.clone()
        };
        evaluate_resumable(&tr.analysis, &funcs, tree, &crashing, &ckpt)
            .expect_err("the injected fault crashes the checkpointed run");
        dirs.push(ckpt);
    }

    // Batch-evaluate the same trees on the owned in-memory store.
    let batch_opts = EvalOptions {
        backing: Backing::Memory,
        ..opts.clone()
    };
    let outcome =
        BatchEvaluator::with_options(WORKERS, batch_opts).run(&tr.analysis, &funcs, &trees);
    assert_eq!(outcome.stats.failed, 0);
    assert_eq!(outcome.stats.lock_acquisitions, 0);

    // Resume every crashed job and compare against its batch twin.
    for (i, (ckpt, result)) in dirs.iter().zip(&outcome.results).enumerate() {
        let resumed = Evaluation::resume(&tr.analysis, &funcs, &opts, ckpt)
            .expect("a crashed job resumes from its checkpoint");
        assert!(
            resumed.stats.resumed_from.is_some(),
            "job {} re-ran from scratch instead of resuming",
            i
        );
        let batch_eval = result.as_ref().expect("batch job succeeds");
        assert_eq!(
            encoded_outputs(&resumed.outputs),
            encoded_outputs(&batch_eval.outputs),
            "job {}: resumed outputs diverge from the owned-store batch",
            i
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// Scaling gates (ignored by default; scripts/verify.sh runs them with
// --test-threads=1 — two concurrent throughput measurements on one
// machine would skew each other).
// ---------------------------------------------------------------------------

/// Deep calculator expressions — the `table_batch_throughput` workload.
fn deep_calc_inputs(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let mut src = format!("{}", i % 10);
            for k in 0..60 {
                src = format!("({} + {} * {})", src, (i + k) % 9 + 1, k % 7 + 1);
            }
            src
        })
        .collect()
}

/// Best-of-3 jobs/sec at a worker count, asserting the zero-lock
/// invariant on every run.
fn best_jobs_per_sec(tr: &Translator, trees: &[PTree], workers: usize) -> f64 {
    let funcs = linguist86::eval::Funcs::standard();
    let opts = EvalOptions {
        backing: Backing::Memory,
        ..EvalOptions::default()
    };
    (0..3)
        .map(|_| {
            let outcome = BatchEvaluator::with_options(workers, opts.clone()).run(
                &tr.analysis,
                &funcs,
                trees,
            );
            assert_eq!(outcome.stats.failed, 0);
            assert_eq!(
                outcome.stats.lock_acquisitions, 0,
                "batch hot path took store locks at {} workers",
                workers
            );
            outcome.stats.jobs_per_sec()
        })
        .fold(0.0f64, f64::max)
}

/// The scaling regression gate: a 200-job sweep must reach >=2.5x
/// jobs/sec at 4 workers — on a machine with at least 4 cores. On
/// smaller machines the wall-clock half self-skips (core count, not
/// store contention, is then the limit) but the zero-lock invariant is
/// still enforced on every run.
#[test]
#[ignore = "scaling gate; run explicitly (scripts/verify.sh does)"]
fn scaling_regression() {
    let tr = calc_translator();
    let inputs = deep_calc_inputs(200);
    let trees = parse_all(&tr, &inputs);
    let jps1 = best_jobs_per_sec(&tr, &trees, 1);
    let jps4 = best_jobs_per_sec(&tr, &trees, 4);
    let speedup = jps4 / jps1;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 {
        assert!(
            speedup >= 2.5,
            "expected >=2.5x jobs/sec at 4 workers on the shared-nothing store, \
             measured {:.2}x on {} cores",
            speedup,
            cores
        );
    } else {
        eprintln!(
            "scaling_regression: only {} core(s) available; measured {:.2}x at 4 workers — \
             the >=2.5x assertion needs >=4 cores and was skipped (the zero-lock invariant \
             was still enforced on all runs)",
            cores, speedup
        );
    }
}

/// Bounded smoke: dispatching to 2 workers must cost no more than
/// scheduler noise over the sequential run, even on one core. A
/// reintroduced store lock on the hot path (thousands of acquisitions
/// per job) fails this long before it fails the 4-worker gate.
#[test]
#[ignore = "scaling smoke; run explicitly (scripts/verify.sh does)"]
fn scaling_smoke_2_workers() {
    let tr = calc_translator();
    let inputs = deep_calc_inputs(100);
    let trees = parse_all(&tr, &inputs);
    let jps1 = best_jobs_per_sec(&tr, &trees, 1);
    let jps2 = best_jobs_per_sec(&tr, &trees, 2);
    assert!(
        jps2 >= 0.9 * jps1,
        "2-worker batch slower than sequential: {:.1} vs {:.1} jobs/sec — \
         a serializing regression on the batch hot path",
        jps2,
        jps1
    );
}
