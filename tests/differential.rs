//! Differential fuzzing of the full pipeline: every generated grammar is
//! pretty-printed to `.lg` text, re-compiled through the real frontend,
//! and executed four ways —
//!
//! 1. sequential [`evaluate`](linguist_eval::machine::evaluate),
//! 2. the parallel `BatchEvaluator` (8 workers, 8 tree copies),
//! 3. crash-resume at *every* checkpoint boundary,
//! 4. the warm `serve` daemon (in-process, over a Unix socket),
//!
//! — and all four must produce byte-identical APT output. On top of the
//! output oracle, the `linguist check` report must agree between the
//! local lint driver and the daemon's `check` reply, and the sequential
//! baseline must satisfy the `EvalMetrics` conservation laws (checked
//! inside [`run_case`]).
//!
//! Any divergence is minimized (budget halving + whole-production
//! removal) and persisted as a replayable fixture under `tests/corpus/`;
//! the companion test replays every fixture in that directory so a bug,
//! once caught, stays caught.
//!
//! Case count: 64 generated grammars by default (`PROPTEST_CASES`
//! overrides — `scripts/verify.sh` runs a bounded smoke).

use linguist_ag::analysis::Config;
use linguist_ag::lint::LintConfig;
use linguist_frontend::check_source;
use linguist_frontend::differential::{
    load_fixture, minimize, persist_fixture, run_case, CaseResult,
};
use linguist_grammars::synth::{realize, shape_strategy, ShapedGrammar};
use linguist_serve::client::Client;
use linguist_serve::server::{Server, ServerConfig, ServerHandle};
use linguist_support::json::Json;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// Where divergent cases are persisted and pinned fixtures replay from.
const CORPUS_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");

// ---------------------------------------------------------------------------
// The shared daemon: one in-process server for the whole test binary.
// ---------------------------------------------------------------------------

fn daemon() -> &'static ServerHandle {
    static HANDLE: OnceLock<ServerHandle> = OnceLock::new();
    HANDLE.get_or_init(|| {
        let sock = std::env::temp_dir().join(format!(
            "linguist86-differential-{}.sock",
            std::process::id()
        ));
        Server::start(ServerConfig {
            unix_path: Some(sock),
            tcp_addr: None,
            workers: 4,
            queue_capacity: 64,
            // Every fuzz case is a distinct grammar; keep them all resident
            // so a case's `translate` never races another thread's `load`
            // for a cache slot.
            cache_capacity: 256,
            default_deadline: None,
            config: Config::default(),
            ..ServerConfig::default()
        })
        .expect("start in-process serve daemon")
    })
}

fn connect() -> Client {
    Client::connect_unix(daemon().unix_path().expect("daemon has a unix socket"))
        .expect("connect to in-process daemon")
}

fn is_ok(reply: &Json) -> bool {
    reply.get("ok").and_then(Json::as_bool) == Some(true)
}

// ---------------------------------------------------------------------------
// Per-case scratch space.
// ---------------------------------------------------------------------------

fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let d = std::env::temp_dir().join(format!(
        "linguist86-fuzz-{}-{}-{}",
        std::process::id(),
        tag,
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d
}

// ---------------------------------------------------------------------------
// Mode 4: the serve daemon, compared against the sequential baseline.
// ---------------------------------------------------------------------------

/// Load `source` into the daemon, translate the same deterministic
/// budget-synthesized tree, and compare the ordered `(attribute, value)`
/// output pairs and the pass count against the local baseline.
fn serve_divergences(source: &str, name: &str, budget: usize, r: &CaseResult) -> Vec<String> {
    let mut out = Vec::new();
    let mut client = connect();

    let loaded = match client.load_grammar(source, None, Some(name)) {
        Ok(reply) => reply,
        Err(e) => return vec![format!("[serve] load_grammar transport failed: {}", e)],
    };
    if !is_ok(&loaded) {
        return vec![format!(
            "[serve] daemon rejected a grammar the local frontend accepted: {}",
            loaded
        )];
    }
    let handle = loaded
        .get("grammar")
        .and_then(Json::as_str)
        .expect("ok load reply carries a grammar handle")
        .to_owned();

    let reply = match client.translate_budget(&handle, budget, Some(120_000)) {
        Ok(reply) => reply,
        Err(e) => return vec![format!("[serve] translate transport failed: {}", e)],
    };
    if !is_ok(&reply) {
        return vec![format!(
            "[serve] translate failed where the local evaluator succeeded: {}",
            reply
        )];
    }

    // The daemon renders outputs as ordered (attr name, value string)
    // pairs; render the local baseline identically and require equality.
    let got: Vec<(String, String)> = match reply.get("outputs") {
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .map(|(k, v)| (k.clone(), v.as_str().unwrap_or("<non-string>").to_owned()))
            .collect(),
        other => {
            return vec![format!(
                "[serve] translate reply has no outputs object: {:?}",
                other
            )]
        }
    };
    let g = &r.analysis.grammar;
    let want: Vec<(String, String)> = r
        .baseline
        .outputs
        .iter()
        .map(|(a, v)| (g.attr_name(*a).to_owned(), v.to_string()))
        .collect();
    if got != want {
        let i = want
            .iter()
            .zip(got.iter())
            .position(|(w, s)| w != s)
            .unwrap_or_else(|| want.len().min(got.len()));
        out.push(format!(
            "[serve] outputs diverge from sequential baseline at index {}: \
             local {:?}, serve {:?} ({} vs {} outputs)",
            i,
            want.get(i),
            got.get(i),
            want.len(),
            got.len()
        ));
    }

    let local_passes = r.baseline.stats.passes.len() as i64;
    let serve_passes = reply.get("passes").and_then(Json::as_i64);
    if serve_passes != Some(local_passes) {
        out.push(format!(
            "[serve] pass count diverges: local ran {} passes, serve reports {:?}",
            local_passes, serve_passes
        ));
    }
    out
}

/// `linguist check` consistency: the local lint driver and the daemon's
/// `check` reply must agree on error/warning/note counts and the pass
/// count for the same source.
fn check_divergences(source: &str) -> Vec<String> {
    let local = check_source(source, &Config::default(), &LintConfig::default());
    let mut client = connect();
    let reply = match client.check_source(source, None) {
        Ok(reply) => reply,
        Err(e) => return vec![format!("[check] transport failed: {}", e)],
    };
    if !is_ok(&reply) {
        return vec![format!("[check] daemon check failed: {}", reply)];
    }
    let mut out = Vec::new();
    let fields: [(&str, i64); 3] = [
        ("errors", local.errors() as i64),
        ("warnings", local.warnings() as i64),
        ("notes", local.notes() as i64),
    ];
    for (key, want) in fields {
        let got = reply.get(key).and_then(Json::as_i64);
        if got != Some(want) {
            out.push(format!(
                "[check] {} count diverges: local {}, serve {:?}",
                key, want, got
            ));
        }
    }
    let want_passes = local.passes.map(|p| p as i64);
    let got_passes = reply.get("passes").and_then(Json::as_i64);
    if got_passes != want_passes {
        out.push(format!(
            "[check] pass count diverges: local {:?}, serve {:?}",
            want_passes, got_passes
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// One case through all four modes + the check oracle.
// ---------------------------------------------------------------------------

fn oracle(source: &str, name: &str, budget: usize, scratch: &Path) -> Vec<String> {
    match run_case(source, budget, scratch) {
        Err(d) => vec![d.to_string()],
        Ok(r) => {
            let mut msgs: Vec<String> = r.divergences.iter().map(|d| d.to_string()).collect();
            msgs.extend(serve_divergences(source, name, budget, &r));
            msgs.extend(check_divergences(source));
            msgs
        }
    }
}

/// Shrink a divergent case against the local three-mode oracle and pin
/// it into the corpus; serve-only divergences persist unshrunk (the
/// local probe won't reproduce them, so `minimize` keeps the source).
fn fail_case(sg: &ShapedGrammar, msgs: &[String]) -> ! {
    let probe_root = scratch_dir("minimize");
    let still_fails = |src: &str, budget: usize| -> bool {
        let dir = probe_root.join("probe");
        let _ = std::fs::remove_dir_all(&dir);
        match run_case(src, budget, &dir) {
            Err(_) => true,
            Ok(r) => !r.divergences.is_empty(),
        }
    };
    let (min_src, min_budget) = minimize(&sg.source, sg.params.budget, &still_fails);
    let _ = std::fs::remove_dir_all(&probe_root);
    let why = msgs.join("\n");
    let path = persist_fixture(Path::new(CORPUS_DIR), &sg.name, &min_src, min_budget, &why)
        .expect("persist divergent fixture");
    panic!(
        "differential divergence in {} (minimized fixture persisted to {}):\n{}",
        sg.name,
        path.display(),
        why
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property: 64 randomized grammar shapes, each realized
    /// into analyzable `.lg` source, each executed through all four modes
    /// with byte-identical output required.
    #[test]
    fn generated_grammars_agree_across_all_four_modes(params in shape_strategy()) {
        let sg = realize(&params);
        let scratch = scratch_dir("case");
        let msgs = oracle(&sg.source, &sg.name, sg.params.budget, &scratch);
        let _ = std::fs::remove_dir_all(&scratch);
        if !msgs.is_empty() {
            fail_case(&sg, &msgs);
        }
    }
}

/// Satellite of the four-way oracle, aimed squarely at the
/// shared-nothing store: for every pinned fixture, an 8-worker batch on
/// the owned in-memory store must produce `encoded_outputs`
/// byte-identical to the sequential baseline, without a single
/// store-lock acquisition.
#[test]
fn corpus_fixtures_batch_byte_identical_to_sequential() {
    use linguist_eval::batch::BatchEvaluator;
    use linguist_eval::machine::{evaluate, Backing, EvalOptions};
    use linguist_frontend::differential::load_fixture;
    use linguist_frontend::differential::{encoded_outputs, eval_opts};
    use linguist_frontend::{analyze, synthesize_tree};

    let dir = Path::new(CORPUS_DIR);
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "lg"))
        .collect();
    fixtures.sort();
    let funcs = linguist_eval::Funcs::standard();
    for path in fixtures {
        let (source, budget) = load_fixture(&path).expect("read fixture");
        let analysis = analyze(&source, &Config::default()).expect("fixture analyzes");
        let tree =
            synthesize_tree(&analysis.grammar, budget.max(1)).expect("fixture synthesizes a tree");
        let opts = eval_opts(&analysis);
        let baseline =
            evaluate(&analysis, &funcs, &tree, &opts).expect("sequential baseline succeeds");
        let want = encoded_outputs(&baseline);

        let batch_opts = EvalOptions {
            backing: Backing::Memory,
            ..opts
        };
        let trees: Vec<_> = (0..8).map(|_| tree.clone()).collect();
        let outcome = BatchEvaluator::with_options(8, batch_opts).run(&analysis, &funcs, &trees);
        assert_eq!(outcome.stats.failed, 0, "{}", path.display());
        assert_eq!(
            outcome.stats.lock_acquisitions,
            0,
            "{}: owned-store batch took store locks",
            path.display()
        );
        for (j, result) in outcome.results.iter().enumerate() {
            let eval = result.as_ref().expect("batch job succeeds");
            assert_eq!(
                encoded_outputs(eval),
                want,
                "{} job {}: batch output diverges from the sequential baseline",
                path.display(),
                j
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The optimizer oracle, isolated: for each generated shape, the
    /// grammar-optimizer analysis must reproduce the unoptimized
    /// sequential baseline's `encoded_outputs` byte for byte over the
    /// same tree, and must never increase the pass count or the total
    /// records written (record elision only ever *removes* traffic).
    #[test]
    fn optimizer_is_byte_identical_and_never_adds_work(params in shape_strategy()) {
        use linguist_eval::machine::evaluate;
        use linguist_frontend::differential::{encoded_outputs, eval_opts};
        use linguist_frontend::{analyze, synthesize_tree};

        let sg = realize(&params);
        let funcs = linguist_eval::Funcs::standard();
        let base = match analyze(&sg.source, &Config::default()) {
            Ok(a) => a,
            Err(_) => return, // not analyzable: nothing to compare
        };
        let Some(tree) = synthesize_tree(&base.grammar, sg.params.budget.max(1)) else {
            return;
        };
        let base_opts = eval_opts(&base);
        let Ok(baseline) = evaluate(&base, &funcs, &tree, &base_opts) else {
            return; // runtime failures belong to the four-way oracle
        };

        let opt_cfg = Config { optimize: true, ..Config::default() };
        let opt = analyze(&sg.source, &opt_cfg)
            .unwrap_or_else(|e| panic!("{}: optimized analyze failed: {}", sg.name, e));
        let opt_opts = eval_opts(&opt);
        let opted = evaluate(&opt, &funcs, &tree, &opt_opts)
            .unwrap_or_else(|e| panic!("{}: optimized evaluation failed: {}", sg.name, e));

        prop_assert_eq!(
            encoded_outputs(&opted),
            encoded_outputs(&baseline),
            "{}: optimized outputs not byte-identical", sg.name
        );
        let bm = baseline.metrics.as_ref().expect("baseline profiled");
        let om = opted.metrics.as_ref().expect("optimized profiled");
        prop_assert!(
            om.passes.len() <= bm.passes.len(),
            "{}: optimizer raised pass count {} -> {}",
            sg.name, bm.passes.len(), om.passes.len()
        );
        let base_written: u64 = bm.passes.iter().map(|p| p.records_written).sum();
        let opt_written: u64 = om.passes.iter().map(|p| p.records_written).sum();
        prop_assert!(
            opt_written <= base_written,
            "{}: optimizer raised records written {} -> {}",
            sg.name, base_written, opt_written
        );
    }
}

/// Every fixture under `tests/corpus/` — seed regressions plus anything
/// the fuzzer ever persisted — replays through the full four-way oracle.
#[test]
fn corpus_fixtures_replay_clean() {
    let dir = Path::new(CORPUS_DIR);
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "lg"))
        .collect();
    fixtures.sort();
    assert!(
        !fixtures.is_empty(),
        "tests/corpus should hold at least the seed fixtures"
    );
    for path in fixtures {
        let (source, budget) = load_fixture(&path).expect("read fixture");
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("fixture has a utf-8 stem")
            .to_owned();
        let scratch = scratch_dir("corpus");
        let msgs = oracle(&source, &name, budget, &scratch);
        let _ = std::fs::remove_dir_all(&scratch);
        assert!(
            msgs.is_empty(),
            "{} diverged on replay:\n{}",
            path.display(),
            msgs.join("\n")
        );
    }
}

/// The fifth (compiled-engine) leg over every pinned fixture: each
/// fixture's generated Rust evaluator is JIT-compiled and must emit
/// `encoded_outputs` byte-identical to the sequential interpreter.
/// Skips loudly when `rustc` is absent (the leg itself does the same).
#[test]
fn corpus_fixtures_compiled_byte_identical() {
    use linguist_frontend::differential::{run_case_with, CaseOptions};

    if !linguist86::engine::jit::rustc_available() {
        eprintln!("SKIP: rustc not available; compiled corpus replay untestable here");
        return;
    }
    let dir = Path::new(CORPUS_DIR);
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "lg"))
        .collect();
    fixtures.sort();
    assert!(!fixtures.is_empty());
    let case_opts = CaseOptions {
        compiled: true,
        ..CaseOptions::default()
    };
    for path in fixtures {
        let (source, budget) = load_fixture(&path).expect("read fixture");
        let scratch = scratch_dir("corpus-compiled");
        let result = run_case_with(&source, budget, &scratch, &case_opts);
        let _ = std::fs::remove_dir_all(&scratch);
        let r = result.unwrap_or_else(|d| panic!("{}: no baseline: {}", path.display(), d));
        let compiled: Vec<String> = r
            .divergences
            .iter()
            .filter(|d| d.mode == "compiled")
            .map(|d| d.to_string())
            .collect();
        assert!(
            compiled.is_empty(),
            "{}: compiled engine diverged:\n{}",
            path.display(),
            compiled.join("\n")
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Compiled-engine fuzz smoke: randomized grammars through the full
    /// oracle *including* the fifth leg. `#[ignore]`d in the default
    /// suite — each novel grammar costs one `rustc` build — and run
    /// explicitly by `scripts/verify.sh` with `PROPTEST_CASES=8`.
    #[test]
    #[ignore = "compiled differential smoke; run explicitly (scripts/verify.sh) with PROPTEST_CASES"]
    fn generated_grammars_agree_with_compiled_engine(params in shape_strategy()) {
        use linguist_frontend::differential::{run_case_with, CaseOptions};

        let sg = realize(&params);
        let scratch = scratch_dir("compiled-case");
        let result = run_case_with(&sg.source, sg.params.budget, &scratch, &CaseOptions { compiled: true, ..CaseOptions::default() });
        let _ = std::fs::remove_dir_all(&scratch);
        let msgs: Vec<String> = match result {
            Err(d) => vec![d.to_string()],
            Ok(r) => r.divergences.iter().map(|d| d.to_string()).collect(),
        };
        if !msgs.is_empty() {
            fail_case(&sg, &msgs);
        }
    }
}
