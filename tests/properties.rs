//! Property-based tests over the core invariants: bidirectional APT
//! files, value encoding, both bootstrap strategies, subsumption
//! transparency, and the translator against a reference oracle.

use linguist86::ag::analysis::{Analysis, Config};
use linguist86::ag::expr::{BinOp, Expr};
use linguist86::ag::grammar::AgBuilder;
use linguist86::ag::ids::{AttrId, AttrOcc, ProdId, SymbolId};
use linguist86::ag::passes::{Direction, PassConfig};
use linguist86::eval::aptfile::{AptReader, AptWriter, ReadDir, Record, RecordBody, TempAptDir};
use linguist86::eval::funcs::Funcs;
use linguist86::eval::machine::{evaluate, Backing, EvalOptions, Strategy as BootStrategy};
use linguist86::eval::tree::PTree;
use linguist86::eval::value::Value;
use linguist86::frontend::driver::{run, DriverOptions};
use linguist86::frontend::Translator;
use linguist86::grammars::synth::{generate, SynthParams};
use linguist86::grammars::{calc_scanner, calc_source};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        "[a-z]{0,8}".prop_map(|s| Value::str(&s)),
        (0u32..1000)
            .prop_map(|i| Value::Sym(linguist86::support::intern::Name::from_index(i as usize))),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4)
                .prop_map(|v| Value::List(v.into_iter().collect())),
            prop::collection::vec(inner, 0..4).prop_map(|v| Value::Set(v.into_iter().collect())),
        ]
    })
}

fn arb_record() -> impl Strategy<Value = Record> {
    (
        any::<bool>(),
        0u32..50,
        prop::collection::vec((0u32..20, arb_value()), 0..5),
    )
        .prop_map(|(is_sym, id, mut values)| {
            values.sort_by_key(|(a, _)| *a);
            values.dedup_by_key(|(a, _)| *a);
            Record {
                body: if is_sym {
                    RecordBody::Sym(SymbolId(id))
                } else {
                    RecordBody::Prod(ProdId(id))
                },
                values: values.into_iter().map(|(a, v)| (AttrId(a), v)).collect(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Values decode to exactly what was encoded.
    #[test]
    fn value_encoding_round_trips(v in arb_value()) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut pos = 0;
        let back = Value::decode(&buf, &mut pos).unwrap();
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(back, v);
    }

    /// An APT file reads back identically forward, and reversed backward —
    /// the §II "read the output file backwards" invariant.
    #[test]
    fn apt_file_bidirectional(records in prop::collection::vec(arb_record(), 0..20)) {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(0);
        let mut w = AptWriter::create(&path).unwrap();
        for r in &records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();

        let mut fwd = Vec::new();
        let mut r = AptReader::open(&path, ReadDir::Forward).unwrap();
        while let Some(rec) = r.next().unwrap() {
            fwd.push(rec);
        }
        prop_assert_eq!(&fwd, &records);

        let mut bwd = Vec::new();
        let mut r = AptReader::open(&path, ReadDir::Backward).unwrap();
        while let Some(rec) = r.next().unwrap() {
            bwd.push(rec);
        }
        bwd.reverse();
        prop_assert_eq!(&bwd, &records);
    }
}

/// Build the summing grammar used by the strategy-agreement property.
fn sum_grammar(first: Direction) -> Analysis {
    let mut b = AgBuilder::new();
    let s = b.nonterminal("S");
    let v = b.synthesized(s, "V", "int");
    let x = b.terminal("x");
    let obj = b.intrinsic(x, "OBJ", "int");
    let p0 = b.production(s, vec![s, x], None);
    b.rule(
        p0,
        vec![AttrOcc::lhs(v)],
        Expr::binop(
            BinOp::Add,
            Expr::Occ(AttrOcc::rhs(0, v)),
            Expr::Occ(AttrOcc::rhs(1, obj)),
        ),
    );
    let p1 = b.production(s, vec![x], None);
    b.rule(p1, vec![AttrOcc::lhs(v)], Expr::Occ(AttrOcc::rhs(0, obj)));
    b.start(s);
    Analysis::run(
        b.build().unwrap(),
        &Config {
            pass: PassConfig {
                first_direction: first,
                max_passes: 4,
            },
            ..Config::default()
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Both §II strategies compute the same translation, equal to the
    /// reference sum.
    #[test]
    fn strategies_agree_with_oracle(values in prop::collection::vec(-100i64..100, 1..40)) {
        let a_rl = sum_grammar(Direction::RightToLeft);
        let a_lr = sum_grammar(Direction::LeftToRight);
        let build = |a: &Analysis| {
            let g = &a.grammar;
            let x = g.symbol_by_name("x").unwrap();
            let obj = g.attr_by_name(x, "OBJ").unwrap();
            let mut t = PTree::node(ProdId(1), vec![PTree::leaf(x, vec![(obj, Value::Int(values[0]))])]);
            for &v in &values[1..] {
                t = PTree::node(ProdId(0), vec![t, PTree::leaf(x, vec![(obj, Value::Int(v))])]);
            }
            t
        };
        let funcs = Funcs::standard();
        let r1 = evaluate(&a_rl, &funcs, &build(&a_rl), &EvalOptions {
            strategy: BootStrategy::BottomUp,
            ..EvalOptions::default()
        }).unwrap();
        let r2 = evaluate(&a_lr, &funcs, &build(&a_lr), &EvalOptions {
            strategy: BootStrategy::Prefix,
            ..EvalOptions::default()
        }).unwrap();
        let expected: i64 = values.iter().sum();
        prop_assert_eq!(r1.output(&a_rl, "V"), Some(&Value::Int(expected)));
        prop_assert_eq!(r2.output(&a_lr, "V"), Some(&Value::Int(expected)));
    }

    /// Static subsumption never changes results on synthetic grammars.
    #[test]
    fn subsumption_is_transparent(
        density in 0.0f64..1.0,
        seed in 0u64..1000,
        len in 1usize..40,
    ) {
        let params = SynthParams {
            copy_density: density,
            seed,
            ..SynthParams::default()
        };
        let sg = generate(&params);
        let with = Analysis::run(sg.grammar.clone(), &Config::default()).unwrap();
        let without = Analysis::run(sg.grammar.clone(), &Config {
            disable_subsumption: true,
            ..Config::default()
        }).unwrap();
        let tree = sg.chain(len, seed ^ 0x5eed);
        let funcs = Funcs::standard();
        let r1 = evaluate(&with, &funcs, &tree, &EvalOptions::default()).unwrap();
        let r2 = evaluate(&without, &funcs, &tree, &EvalOptions::default()).unwrap();
        prop_assert_eq!(r1.output(&with, "OUT"), r2.output(&without, "OUT"));
        prop_assert_eq!(r1.stats.globals_repaired, 0);
    }
}

/// Arbitrary arithmetic expression strings plus their reference value.
fn arb_expr() -> impl Strategy<Value = (String, i64)> {
    let leaf = (0i64..100).prop_map(|n| (n.to_string(), n));
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|((sa, va), (sb, vb))| {
                (format!("{}+{}", sa, sb), va.wrapping_add(vb))
            }),
            (inner.clone(), inner.clone()).prop_map(|((sa, va), (sb, vb))| {
                // Subtraction binds left in the grammar; parenthesize the
                // right operand to keep the oracle simple.
                (format!("{}-({})", sa, sb), va.wrapping_sub(vb))
            }),
            (inner.clone(), inner.clone()).prop_map(|((sa, va), (sb, vb))| {
                (format!("({})*({})", sa, sb), va.wrapping_mul(vb))
            }),
            inner.prop_map(|(s, v)| (format!("({})", s), v)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The generated calculator agrees with a reference evaluator on
    /// random expressions.
    #[test]
    fn calculator_matches_oracle((src, expected) in arb_expr()) {
        // Build once per process would be nicer; cheap enough here.
        let out = run(calc_source(), &DriverOptions::default()).unwrap();
        let t = Translator::new(out.analysis, calc_scanner()).unwrap();
        let r = t.translate(&src, &Funcs::standard(), &EvalOptions::default()).unwrap();
        prop_assert_eq!(r.output(&t.analysis, "V"), Some(&Value::Int(expected)));
    }
}

/// One translator per bootstrap configuration for the block grammar:
/// right-to-left first (bottom-up initial file, 2 passes) and
/// left-to-right first (prefix initial file, 1 pass). Built once — the
/// conservation property below re-evaluates them per case.
fn block_translators() -> &'static [(Translator, BootStrategy)] {
    use linguist86::grammars::{block_scanner, block_source};
    use std::sync::OnceLock;
    static T: OnceLock<Vec<(Translator, BootStrategy)>> = OnceLock::new();
    T.get_or_init(|| {
        [
            (Direction::RightToLeft, BootStrategy::BottomUp),
            (Direction::LeftToRight, BootStrategy::Prefix),
        ]
        .into_iter()
        .map(|(dir, strat)| {
            let opts = DriverOptions {
                config: Config {
                    pass: PassConfig {
                        first_direction: dir,
                        max_passes: 8,
                    },
                    ..Config::default()
                },
                target: None,
                ..DriverOptions::default()
            };
            let out = run(block_source(), &opts).unwrap();
            (
                Translator::new(out.analysis, block_scanner()).unwrap(),
                strat,
            )
        })
        .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Intermediate-file conservation: whatever pass k writes to
    /// boundary k, pass k+1 reads back in full — records and bytes —
    /// and pass 1 reads exactly the initial file. Holds for all three
    /// backings (disk, the owned shared-nothing memory store, and the
    /// legacy mutex-guarded ablation) and for both bootstrap strategies
    /// (which exercise both traversal directions of the record format).
    #[test]
    fn pass_io_is_conserved_across_boundaries(decls in 1usize..5, depth in 1usize..4) {
        use linguist86::grammars::block_program;
        let program = block_program(decls, depth);
        for (t, strat) in block_translators() {
            for backing in [Backing::Disk, Backing::Memory, Backing::SharedMemory] {
                let opts = EvalOptions {
                    strategy: *strat,
                    backing,
                    profile: true,
                    ..EvalOptions::default()
                };
                let eval = t
                    .translate(&program, &Funcs::standard(), &opts)
                    .unwrap();
                let m = eval.metrics.as_ref().expect("profiling was on");
                prop_assert!(!m.passes.is_empty());
                prop_assert_eq!(m.passes[0].records_read, m.initial_records);
                prop_assert_eq!(m.passes[0].bytes_read, m.initial_bytes);
                for w in m.passes.windows(2) {
                    prop_assert_eq!(w[1].records_read, w[0].records_written);
                    prop_assert_eq!(w[1].bytes_read, w[0].bytes_written);
                }
            }
        }
    }
}

/// One FNV to rule them all: the serve tier's grammar handles, the code
/// generator's compiled-artifact keys, and `linguist_support::fnv` must
/// agree byte for byte on the same payload — they are advertised as the
/// *same* content-address scheme, and the engine's artifact lookup
/// depends on it.
#[test]
fn content_hash_schemes_agree_across_crates() {
    use linguist86::support::fnv;

    let src = calc_source();
    // grammar_key(source, None) hashes `source ++ "\0" ++ ""`.
    let want = fnv::hex16(fnv::hash_chunks(&[src.as_bytes(), b"\0", b""]));
    assert_eq!(linguist_serve::store::grammar_key(src, None), want);
    let mut payload = src.as_bytes().to_vec();
    payload.push(0);
    assert_eq!(linguist86::codegen::rustgen::content_hash(&payload), want);
    // Chunked and contiguous hashing are the same function.
    assert_eq!(
        fnv::hash(&payload),
        fnv::hash_chunks(&[src.as_bytes(), b"\0"])
    );
}
