//! Round-trip pinning of the `Grammar → .lg` pretty-printer against every
//! bundled grammar: parse → lower → print → reparse → relower must reach a
//! printing fixed point, with identical structural counts at both ends.
//!
//! `Grammar` deliberately has no `PartialEq` (interned names make identity
//! subtle), so equality is checked through the printer itself: lowering
//! preserves declaration order and printing resolves every id back to its
//! name, so two grammars that print identically have the same symbols,
//! attributes, productions, and explicit rules in the same order. The
//! count assertions below close the loop against a printer that drops
//! content on *both* sides of the fixed point.

use linguist_frontend::{lower, parse, print_grammar};
use linguist_grammars::{self as g, analyze};

fn roundtrip(name: &str, source: &str) {
    let ast1 = parse(source).unwrap_or_else(|e| panic!("{}: parse: {}", name, e));
    let g1 = lower(&ast1).unwrap_or_else(|e| panic!("{}: lower: {:?}", name, e));
    let p1 = print_grammar(&g1, name);
    let ast2 =
        parse(&p1).unwrap_or_else(|e| panic!("{}: reparse of printed form: {}\n{}", name, e, p1));
    let g2 = lower(&ast2).unwrap_or_else(|e| panic!("{}: relower of printed form: {:?}", name, e));
    let p2 = print_grammar(&g2, name);
    assert_eq!(
        p1, p2,
        "{}: print → parse → lower → print fixed point",
        name
    );

    assert_eq!(g1.symbols().len(), g2.symbols().len(), "{}: symbols", name);
    assert_eq!(g1.attrs().len(), g2.attrs().len(), "{}: attributes", name);
    assert_eq!(
        g1.productions().len(),
        g2.productions().len(),
        "{}: productions",
        name
    );
    // Both sides hold pre-analysis grammars: every rule is explicit.
    assert_eq!(g1.rules().len(), g2.rules().len(), "{}: rules", name);

    // The printed form must be a full substitute for the original source:
    // the seven-overlay driver accepts it and derives the same pass
    // structure and rule census (implicit copies included).
    let orig = analyze(source).unwrap_or_else(|e| panic!("{}: analyze original: {}", name, e));
    let reprinted = analyze(&p1).unwrap_or_else(|e| panic!("{}: analyze printed: {}", name, e));
    assert_eq!(
        orig.stats.passes, reprinted.stats.passes,
        "{}: pass count through printed form",
        name
    );
    assert_eq!(
        orig.stats.semantic_functions, reprinted.stats.semantic_functions,
        "{}: semantic-function census through printed form",
        name
    );
    assert_eq!(
        orig.stats.implicit_copy_rules, reprinted.stats.implicit_copy_rules,
        "{}: implicit copies re-derived identically",
        name
    );
}

#[test]
fn calc_roundtrips() {
    roundtrip("calc", g::calc_source());
}

#[test]
fn knuth_roundtrips() {
    roundtrip("knuth", g::knuth_source());
}

#[test]
fn block_roundtrips() {
    roundtrip("block", g::block_source());
}

#[test]
fn pascal_roundtrips() {
    roundtrip("pascal", g::pascal_source());
}

#[test]
fn meta_roundtrips() {
    roundtrip("meta", g::meta_source());
}
