//! Pipeline-level integration tests: the listing file, Knuth's
//! binary-number grammar, driver error propagation, and intrinsic
//! attribute conventions.

use linguist86::ag::analysis::Config;
use linguist86::ag::passes::{Direction, PassConfig};
use linguist86::eval::funcs::Funcs;
use linguist86::eval::machine::EvalOptions;
use linguist86::eval::value::Value;
use linguist86::frontend::driver::{run, DriverError, DriverOptions};
use linguist86::frontend::Translator;
use linguist86::grammars::{block_source, knuth_scanner, knuth_source, meta_source};
use linguist86::lexgen::ScannerDef;

#[test]
fn knuth_binary_numbers_evaluate() {
    let out = run(knuth_source(), &DriverOptions::default()).unwrap();
    assert_eq!(out.stats.passes, 1);
    let t = Translator::new(out.analysis, knuth_scanner()).unwrap();
    let funcs = Funcs::standard();
    let opts = EvalOptions::default();
    // Integer numerals: plain binary value.
    for (input, expect) in [
        ("0", 0i64),
        ("1", 1),
        ("1 0 1 1", 11),
        ("1 1 1 1 1 1 1 1", 255),
    ] {
        let r = t.translate(input, &funcs, &opts).unwrap();
        assert_eq!(
            r.output(&t.analysis, "VAL"),
            Some(&Value::Int(expect)),
            "{}",
            input
        );
    }
    // With a fraction: VAL is in units of 2^-len(fraction):
    // "1 1 0 1 . 0 1" = 13.25, len 2 → 13.25 * 4 = 53.
    let r = t.translate("1 1 0 1 . 0 1", &funcs, &opts).unwrap();
    assert_eq!(r.output(&t.analysis, "VAL"), Some(&Value::Int(53)));
}

#[test]
fn listing_contains_pass_annotations_and_tables() {
    let out = run(meta_source(), &DriverOptions::default()).unwrap();
    let listing = &out.listing;
    // Source lines numbered.
    assert!(listing.contains("    1 | #"));
    // Pass annotations, like the paper's "# pass 2" comments.
    for k in 1..=4 {
        assert!(
            listing.contains(&format!("# pass {}", k)),
            "pass {} annotation missing",
            k
        );
    }
    // Implicit copy-rules listed and marked.
    assert!(listing.contains("(implicit)"));
    // Subsumed copy-rules marked.
    assert!(listing.contains("(subsumed)"));
    // The attribute table with lifetimes and static allocation.
    assert!(listing.contains("ATTRIBUTES"));
    assert!(listing.contains("significant"));
    assert!(listing.contains("temporary"));
    // Pass directions.
    assert!(listing.contains("pass 1: right-to-left"));
    assert!(listing.contains("pass 2: left-to-right"));
    // Statistics block.
    assert!(listing.contains("alternating passes:   4"));
}

#[test]
fn listing_interleaves_diagnostics_with_source() {
    // The overlay-5 note about implicit copies appears in the listing.
    let out = run(block_source(), &DriverOptions::default()).unwrap();
    assert!(out.listing.contains("implicit copy-rules inserted"));
}

#[test]
fn driver_reports_not_evaluable_grammars() {
    // Sibling attributes feeding each other forever. The driver layers
    // its diagnostics: the (conservative) uniform circularity test runs
    // before pass assignment and correctly flags this flow as a
    // potential cycle — the same grammar fed directly to the pass
    // analysis is rejected as not alternating-pass evaluable
    // (unit-tested in linguist-ag).
    let src = r#"
grammar Spin ;
terminals x ;
nonterminals
  s : syn V int ;
  a : inh I int, syn V int ;
  b : inh I int, syn V int ;
start s ;
productions
prod s = a b :
  a.I = b.V ;
  b.I = a.V ;
  s.V = 0 ;
end
prod a = x :
  a.V = a.I ;
end
prod b = x :
  b.V = b.I ;
end
end
"#;
    match run(src, &DriverOptions::default()) {
        Err(DriverError::Analysis(e)) => {
            let text = e.to_string();
            assert!(
                text.contains("circularity") || text.contains("alternating passes"),
                "{}",
                text
            )
        }
        other => panic!("expected evaluability failure, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn driver_reports_exhausted_pass_budget() {
    // A 2-pass grammar under a 1-pass budget.
    let src = r#"
grammar Tight ;
terminals x : intrinsic OBJ int ;
nonterminals
  s : syn V int ;
  a : inh I int, syn V int ;
  b : syn V int ;
start s ;
productions
prod s = a b :
  a.I = b.V ;
  s.V = a.V ;
end
prod a = x :
  a.V = a.I ;
end
prod b = x :
  b.V = x.OBJ ;
end
end
"#;
    let opts = DriverOptions {
        config: Config {
            pass: PassConfig {
                first_direction: Direction::LeftToRight,
                max_passes: 1,
            },
            ..Config::default()
        },
        target: None,
        ..DriverOptions::default()
    };
    match run(src, &opts) {
        Err(DriverError::Analysis(e)) => {
            assert!(e.to_string().contains("exceeded 1 passes"), "{}", e)
        }
        other => panic!("expected pass-budget failure, got {:?}", other.map(|_| ())),
    }
    // With a normal budget it needs 2 passes under an L-R start (the
    // flow is right-to-left) — and just 1 under the default R-L start.
    let relaxed = DriverOptions {
        config: Config {
            pass: PassConfig {
                first_direction: Direction::LeftToRight,
                max_passes: 32,
            },
            ..Config::default()
        },
        target: None,
        ..DriverOptions::default()
    };
    assert_eq!(run(src, &relaxed).unwrap().stats.passes, 2);
    assert_eq!(run(src, &DriverOptions::default()).unwrap().stats.passes, 1);
}

#[test]
fn driver_reports_circular_grammars() {
    let src = r#"
grammar Circular ;
nonterminals
  s : syn A int, syn B int ;
start s ;
productions
prod s = :
  s.A = s.B ;
  s.B = s.A ;
end
end
"#;
    match run(src, &DriverOptions::default()) {
        Err(DriverError::Analysis(e)) => assert!(e.to_string().contains("circularity")),
        other => panic!("expected circularity, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn driver_reports_incomplete_grammars() {
    let src = r#"
grammar Holes ;
nonterminals
  s : syn V int ;
start s ;
productions
prod s = :
end
end
"#;
    match run(src, &DriverOptions::default()) {
        Err(DriverError::Analysis(e)) => {
            let text = e.to_string();
            assert!(text.contains("never defined"), "{}", text);
        }
        other => panic!("expected completeness failure, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn line_intrinsic_gets_source_lines() {
    // The LINE intrinsic convention: "the location in the source of the
    // text that corresponds to a leaf of the APT" (§IV).
    let src = r#"
grammar Lines ;
terminals
  w : intrinsic LINE int ;
nonterminals
  s : syn FIRST int, syn LAST int ;
start s ;
productions
prod s0 = s1 w :
  s0.FIRST = s1.FIRST ;
  s0.LAST = w.LINE ;
end
prod s = w :
  s.FIRST = w.LINE ;
  s.LAST = w.LINE ;
end
end
"#;
    let out = run(src, &DriverOptions::default()).unwrap();
    let scanner = ScannerDef::new()
        .skip(r"[ \t\n]+")
        .token("w", "[a-z]+")
        .build()
        .unwrap();
    let t = Translator::new(out.analysis, scanner).unwrap();
    let r = t
        .translate(
            "alpha\nbeta\n\n\ngamma",
            &Funcs::standard(),
            &EvalOptions::default(),
        )
        .unwrap();
    assert_eq!(r.output(&t.analysis, "FIRST"), Some(&Value::Int(1)));
    assert_eq!(r.output(&t.analysis, "LAST"), Some(&Value::Int(5)));
}

#[test]
fn unknown_external_function_is_reported_at_evaluation() {
    let src = r#"
grammar Mystery ;
terminals x ;
nonterminals s : syn V int ;
start s ;
productions
prod s = x :
  s.V = FrobnicateDeeply(1, 2) ;
end
end
"#;
    let out = run(src, &DriverOptions::default()).unwrap(); // analysis is fine
    let scanner = ScannerDef::new().token("x", "x").build().unwrap();
    let t = Translator::new(out.analysis, scanner).unwrap();
    let err = t
        .translate("x", &Funcs::standard(), &EvalOptions::default())
        .unwrap_err();
    assert!(err.to_string().contains("FrobnicateDeeply"), "{}", err);
}

#[test]
fn coalesce_mode_runs_through_the_driver() {
    let opts = DriverOptions {
        config: Config {
            group_mode: linguist86::ag::subsumption::GroupMode::CoalesceCopies,
            pass: PassConfig {
                first_direction: Direction::RightToLeft,
                max_passes: 32,
            },
            ..Config::default()
        },
        target: None,
        ..DriverOptions::default()
    };
    let out = run(meta_source(), &opts).unwrap();
    // Coalescing can only subsume at least as many copies as same-name.
    let base = run(meta_source(), &DriverOptions::default()).unwrap();
    let coal = out.analysis.subsumption.stats(&out.analysis.grammar);
    let same = base.analysis.subsumption.stats(&base.analysis.grammar);
    assert!(coal.subsumed_rules + 5 >= same.subsumed_rules);
}
