//! Self-processing: the LINGUIST meta attribute grammar, run as a
//! generated translator, processes LINGUIST source files — including its
//! own 700-line definition. This is the reproduction of the paper's
//! headline property ("LINGUIST-86 is itself written as an 1800-line
//! attribute grammar and is self-generating") at the level our substrate
//! supports: the system builds a translator from the meta grammar, and
//! that translator's outputs agree with the system's own analysis of the
//! same file.

use linguist86::eval::funcs::Funcs;
use linguist86::eval::machine::EvalOptions;
use linguist86::eval::value::Value;
use linguist86::frontend::driver::{run, DriverOptions};
use linguist86::frontend::Translator;
use linguist86::grammars::{block_source, calc_source, meta_scanner, meta_source, pascal_source};

fn meta_translator() -> Translator {
    let out = run(meta_source(), &DriverOptions::default()).expect("meta grammar analyzes");
    Translator::new(out.analysis, meta_scanner()).expect("meta CFG is LALR(1)")
}

fn int_output(v: Option<&Value>) -> i64 {
    match v {
        Some(Value::Int(i)) => *i,
        other => panic!("expected int output, got {:?}", other),
    }
}

#[test]
fn meta_translator_processes_its_own_source() {
    let t = meta_translator();
    let result = t
        .translate(meta_source(), &Funcs::standard(), &EvalOptions::default())
        .expect("meta grammar lints itself");

    // Cross-validation: the meta evaluator's counts must agree with the
    // front end's own analysis of the same file.
    let own = run(meta_source(), &DriverOptions::default()).unwrap();
    assert_eq!(
        int_output(result.output(&t.analysis, "NPRODS")),
        own.stats.productions as i64,
        "the meta evaluator counts the same productions the front end parses"
    );
    assert_eq!(
        int_output(result.output(&t.analysis, "NSYMS")),
        own.stats.symbols as i64,
        "…and the same symbol declarations"
    );
    // The meta grammar is clean: no duplicate, undeclared, or unused
    // symbols in its own source.
    assert_eq!(int_output(result.output(&t.analysis, "NMSGS")), 0);
    assert_eq!(int_output(result.output(&t.analysis, "NUNUSED")), 0);
    // Four alternating passes were executed over the file-resident APT.
    assert_eq!(result.stats.passes.len(), 4);
    assert!(result.stats.passes.iter().all(|p| p.bytes_read > 0));
}

#[test]
fn meta_translator_processes_the_other_bundled_grammars() {
    let t = meta_translator();
    let funcs = Funcs::standard();
    let opts = EvalOptions::default();
    for (name, src) in [
        ("calc", calc_source()),
        ("pascal", pascal_source()),
        ("block", block_source()),
    ] {
        let result = t.translate(src, &funcs, &opts).expect(name);
        let own = run(src, &DriverOptions::default()).unwrap();
        assert_eq!(
            int_output(result.output(&t.analysis, "NPRODS")),
            own.stats.productions as i64,
            "{}",
            name
        );
        assert_eq!(
            int_output(result.output(&t.analysis, "NMSGS")),
            0,
            "{} is lint-clean",
            name
        );
    }
}

#[test]
fn meta_translator_reports_duplicate_symbols() {
    let t = meta_translator();
    let src = r#"
grammar Dup ;
nonterminals
  s : syn V int ;
  s : syn W int ;
start s ;
productions
prod s = :
  s.V = 1 ;
end
end
"#;
    let r = t
        .translate(src, &Funcs::standard(), &EvalOptions::default())
        .unwrap();
    assert!(int_output(r.output(&t.analysis, "NMSGS")) >= 1);
}

#[test]
fn meta_translator_reports_undeclared_symbols() {
    let t = meta_translator();
    let src = r#"
grammar Undecl ;
nonterminals
  s : syn V int ;
start s ;
productions
prod s = mystery :
  s.V = 1 ;
end
end
"#;
    let r = t
        .translate(src, &Funcs::standard(), &EvalOptions::default())
        .unwrap();
    assert!(int_output(r.output(&t.analysis, "NMSGS")) >= 1);
}

#[test]
fn meta_translator_reports_unused_symbols() {
    let t = meta_translator();
    let src = r#"
grammar Unused ;
terminals
  ghost ;
nonterminals
  s : syn V int ;
start s ;
productions
prod s = :
  s.V = 1 ;
end
end
"#;
    let r = t
        .translate(src, &Funcs::standard(), &EvalOptions::default())
        .unwrap();
    assert_eq!(int_output(r.output(&t.analysis, "NUNUSED")), 1);
    assert!(int_output(r.output(&t.analysis, "NMSGS")) >= 1);
}

#[test]
fn meta_grammar_exercises_static_subsumption_heavily() {
    // The meta grammar is copy-chain heavy (like the original): static
    // subsumption must find a substantial number of subsumable copies.
    let out = run(meta_source(), &DriverOptions::default()).unwrap();
    let stats = out.analysis.subsumption.stats(&out.analysis.grammar);
    assert!(
        stats.subsumed_rules > 20,
        "subsumed {} of {} copy rules",
        stats.subsumed_rules,
        stats.copy_rules
    );
}

#[test]
fn subsumption_protocol_clean_on_self_processing() {
    // While the meta translator processes its own source, every subsumed
    // copy's global-variable shortcut is verified against the reference
    // value; none may need repair on this workload.
    let t = meta_translator();
    let r = t
        .translate(calc_source(), &Funcs::standard(), &EvalOptions::default())
        .unwrap();
    assert!(r.stats.globals_checked > 0);
    assert_eq!(
        r.stats.globals_repaired, 0,
        "no clobbered globals while linting calc.lg"
    );
}
