//! Compiled-engine integration tests.
//!
//! The engine's contract is *byte-identity with the interpreter*: a
//! compiled evaluator (AOT or JIT) must produce exactly the bytes the
//! interpreter's encoded outputs produce, on every bundled grammar, and
//! every failure along the build ladder must degrade to the interpreter
//! with a typed [`FallbackReason`] — never a panic, never a silently
//! different answer.
//!
//! Also here: the AOT freshness pin (the checked-in generated sources
//! under `crates/engine/generated/` must equal what `rustgen` emits
//! today — this is the golden test for the `meta` grammar and its four
//! siblings) and the on-demand build-cache properties (content-hash
//! reuse, concurrent single-flight, stale-artifact sweeping).

use linguist86::ag::ids::AttrId;
use linguist86::engine::jit::{rustc_available, JitCache};
use linguist86::engine::{Engine, EngineConfig, EngineKind, FallbackReason};
use linguist86::eval::machine::EvalOptions;
use linguist86::eval::tree::PTree;
use linguist86::eval::value::Value;
use linguist86::eval::Funcs;
use linguist86::frontend::differential::strategy_for;
use linguist86::frontend::synthesize_tree;
use linguist86::frontend::translate::standard_intrinsics;
use linguist86::frontend::Translator;
use linguist86::grammars::{
    analyze, block_scanner, block_source, calc_scanner, calc_source, knuth_source, meta_source,
    pascal_source,
};
use linguist_ag::analysis::Analysis;
use linguist_codegen::rustgen;
use linguist_support::intern::NameTable;
use std::path::PathBuf;
use std::time::Duration;

fn encoded_outputs(outputs: &[(AttrId, Value)]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (a, v) in outputs {
        bytes.extend_from_slice(&a.0.to_le_bytes());
        v.encode(&mut bytes);
    }
    bytes
}

fn opts_for(analysis: &Analysis) -> EvalOptions {
    EvalOptions {
        strategy: strategy_for(analysis),
        ..EvalOptions::default()
    }
}

fn bundled() -> Vec<(&'static str, &'static str)> {
    vec![
        ("calc", calc_source()),
        ("knuth", knuth_source()),
        ("block", block_source()),
        ("meta", meta_source()),
        ("pascal", pascal_source()),
    ]
}

/// Deterministic trees for any bundled grammar: budget-grown synthesis
/// (the same helper serve uses), several sizes per grammar.
fn trees_for(name: &str, analysis: &Analysis) -> Vec<PTree> {
    // Knuth budgets stay small: each extra bit raises the SCALE
    // exponent and `Pow2` rejects exponents past 62.
    let budgets: Vec<usize> = if name == "knuth" {
        vec![8, 16, 24, 40]
    } else {
        vec![16, 40, 90, 140]
    };
    budgets
        .into_iter()
        .filter_map(|b| synthesize_tree(&analysis.grammar, b))
        .collect()
}

fn fresh_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "linguist-engine-test-{}-{}",
        std::process::id(),
        tag
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The checked-in AOT sources must equal what `rustgen` emits today.
/// This is the golden pin for the `meta` grammar's generated evaluator
/// (and the other four): any codegen change must regenerate them via
/// `cargo run --example gen_aot`.
#[test]
fn aot_sources_are_fresh() {
    for (name, src) in bundled() {
        for optimized in [false, true] {
            let analysis = if optimized {
                linguist86::grammars::analyze_optimized(src)
            } else {
                analyze(src)
            }
            .expect("bundled grammar analyzes")
            .analysis;
            let want = rustgen::rust_source(&analysis);
            let dir_name = if optimized {
                format!("{}_opt", name)
            } else {
                name.to_string()
            };
            let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("crates/engine/generated")
                .join(&dir_name)
                .join("src/lib.rs");
            let got = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{}: read {}: {}", dir_name, path.display(), e));
            assert_eq!(
                got, want,
                "{}: checked-in AOT source is stale; rerun `cargo run --example gen_aot`",
                dir_name
            );
        }
    }
}

/// AOT route resolves for all five bundled grammars and produces
/// byte-identical outputs to the interpreter on synthesized trees.
#[test]
fn aot_byte_identity_all_bundled_grammars() {
    let engine = Engine::new(EngineConfig {
        kind: EngineKind::CompiledAot,
        ..EngineConfig::default()
    });
    let funcs = Funcs::standard();
    for (name, src) in bundled() {
        let analysis = analyze(src).expect("analyzes").analysis;
        let prepared = engine.prepare(&analysis);
        assert_eq!(
            prepared.effective(),
            EngineKind::CompiledAot,
            "{}: expected AOT route, got fallback {:?}",
            name,
            prepared.fallback()
        );
        let opts = opts_for(&analysis);
        let trees = trees_for(name, &analysis);
        assert!(!trees.is_empty(), "{}: no synthesized trees", name);
        for (i, tree) in trees.iter().enumerate() {
            let interp = linguist86::eval::machine::evaluate(&analysis, &funcs, tree, &opts)
                .unwrap_or_else(|e| panic!("{}: interpreter failed on tree {}: {:?}", name, i, e));
            let raw = engine
                .compiled_output_bytes(&prepared, &analysis, tree, &opts)
                .unwrap_or_else(|e| panic!("{}: compiled run failed on tree {}: {}", name, i, e));
            assert_eq!(
                raw,
                encoded_outputs(&interp.outputs),
                "{}: compiled output bytes diverge on tree {}",
                name,
                i
            );
            // The full evaluate() path must decode to outputs that
            // re-encode to the same bytes (set/map order restored).
            let outcome = engine.evaluate(&prepared, &analysis, &funcs, tree, &opts);
            assert_eq!(outcome.engine_used, EngineKind::CompiledAot);
            assert!(outcome.fallback.is_none());
            let eval = outcome.result.expect("compiled evaluation succeeds");
            assert_eq!(
                encoded_outputs(&eval.outputs),
                encoded_outputs(&interp.outputs),
                "{}: decoded outputs re-encode differently on tree {}",
                name,
                i
            );
            assert_eq!(eval.outputs, interp.outputs, "{}: value inequality", name);
        }
    }
    assert!(engine.counters().aot_runs > 0);
    assert_eq!(engine.counters().fallbacks, 0);
}

/// The `*_opt` AOT entries: every bundled grammar's *optimized* analysis
/// must resolve to its own checked-in AOT evaluator (the CLI's default
/// `--opt=on` path), and that evaluator's output bytes must equal the
/// **unoptimized** interpreter's — the optimizer is semantics-preserving
/// all the way through codegen.
#[test]
fn aot_byte_identity_optimized_variants() {
    let engine = Engine::new(EngineConfig {
        kind: EngineKind::CompiledAot,
        ..EngineConfig::default()
    });
    let funcs = Funcs::standard();
    for (name, src) in bundled() {
        let base = analyze(src).expect("analyzes").analysis;
        let opt = linguist86::grammars::analyze_optimized(src)
            .expect("analyzes optimized")
            .analysis;
        let prepared = engine.prepare(&opt);
        assert_eq!(
            prepared.effective(),
            EngineKind::CompiledAot,
            "{}_opt: expected AOT route, got fallback {:?}",
            name,
            prepared.fallback()
        );
        let trees = trees_for(name, &base);
        assert!(!trees.is_empty(), "{}: no synthesized trees", name);
        for (i, tree) in trees.iter().enumerate() {
            let interp = linguist86::eval::machine::evaluate(&base, &funcs, tree, &opts_for(&base))
                .unwrap_or_else(|e| panic!("{}: interpreter failed on tree {}: {:?}", name, i, e));
            let raw = engine
                .compiled_output_bytes(&prepared, &opt, tree, &opts_for(&opt))
                .unwrap_or_else(|e| {
                    panic!("{}_opt: compiled run failed on tree {}: {}", name, i, e)
                });
            assert_eq!(
                raw,
                encoded_outputs(&interp.outputs),
                "{}_opt: optimized compiled output diverges from the \
                 unoptimized interpreter on tree {}",
                name,
                i
            );
        }
    }
    assert_eq!(engine.counters().fallbacks, 0);
}

/// Same identity check through real parsed inputs (scanner front end)
/// rather than synthesized trees.
#[test]
fn aot_byte_identity_parsed_inputs() {
    let engine = Engine::new(EngineConfig {
        kind: EngineKind::CompiledAot,
        ..EngineConfig::default()
    });
    let funcs = Funcs::standard();
    let cases: Vec<(&str, &str, linguist86::lexgen::Scanner, Vec<String>)> = vec![
        (
            "calc",
            calc_source(),
            calc_scanner(),
            (0..6)
                .map(|i| format!("{} + {} * ({} + 2) - {}", i, i % 7 + 1, i % 11 + 2, i % 13))
                .collect(),
        ),
        (
            "block",
            block_source(),
            block_scanner(),
            vec![linguist86::grammars::block_program(4, 3)],
        ),
    ];
    for (name, src, scanner, inputs) in cases {
        let analysis = analyze(src).expect("analyzes").analysis;
        let tr = Translator::new(analysis, scanner).expect("translator builds");
        let prepared = engine.prepare(&tr.analysis);
        assert_eq!(prepared.effective(), EngineKind::CompiledAot, "{}", name);
        let opts = opts_for(&tr.analysis);
        for input in &inputs {
            let mut names = NameTable::new();
            let tree = tr
                .parse_input(input, &standard_intrinsics, &mut names)
                .expect("parses");
            let interp =
                linguist86::eval::machine::evaluate(&tr.analysis, &funcs, &tree, &opts).unwrap();
            let raw = engine
                .compiled_output_bytes(&prepared, &tr.analysis, &tree, &opts)
                .unwrap();
            assert_eq!(raw, encoded_outputs(&interp.outputs), "{}: {}", name, input);
        }
    }
}

/// A grammar outside the bundled five misses the AOT registry and
/// degrades to the interpreter with a typed reason — the evaluation
/// still succeeds.
#[test]
fn aot_miss_degrades_to_interpreter() {
    let source = "\
grammar Tiny ;

terminals
  X : intrinsic OBJ int ;
nonterminals
  s : syn V int ;

start s ;

productions
prod s = X :
  s.V = X.OBJ + 1 ;
end
end
";
    let out = analyze(source).expect("tiny grammar analyzes");
    let engine = Engine::new(EngineConfig {
        kind: EngineKind::CompiledAot,
        ..EngineConfig::default()
    });
    let prepared = engine.prepare(&out.analysis);
    assert_eq!(prepared.effective(), EngineKind::Interpreted);
    match prepared.fallback() {
        Some(FallbackReason::AotMiss(h)) => assert_eq!(h.len(), 16),
        other => panic!("expected AotMiss, got {:?}", other),
    }
    let funcs = Funcs::standard();
    let tree = synthesize_tree(&out.analysis.grammar, 8).expect("tree");
    let opts = opts_for(&out.analysis);
    let outcome = engine.evaluate(&prepared, &out.analysis, &funcs, &tree, &opts);
    assert_eq!(outcome.engine_used, EngineKind::Interpreted);
    assert!(matches!(outcome.fallback, Some(FallbackReason::AotMiss(_))));
    outcome.result.expect("interpreter still evaluates");
}

/// JIT: first prepare compiles once, second prepare (same grammar, same
/// engine) compiles zero times, and outputs are byte-identical to the
/// interpreter.
#[test]
fn jit_byte_identity_and_hash_reuse() {
    if !rustc_available() {
        eprintln!("SKIP: rustc not available; JIT path untestable here");
        return;
    }
    let cache = fresh_cache("reuse");
    let engine = Engine::new(EngineConfig {
        kind: EngineKind::CompiledJit,
        optimize: false,
        cache_dir: Some(cache.clone()),
    });
    let analysis = analyze(calc_source()).unwrap().analysis;
    let funcs = Funcs::standard();
    let opts = opts_for(&analysis);

    let prepared = engine.prepare(&analysis);
    assert_eq!(
        prepared.effective(),
        EngineKind::CompiledJit,
        "fallback: {:?}",
        prepared.fallback()
    );
    assert_eq!(engine.jit_cache().compiles(), 1);

    // Second load: content-hash hit, zero compiles.
    let prepared2 = engine.prepare(&analysis);
    assert_eq!(prepared2.effective(), EngineKind::CompiledJit);
    assert_eq!(
        engine.jit_cache().compiles(),
        1,
        "second load must not recompile"
    );

    for tree in trees_for("calc", &analysis) {
        let interp = linguist86::eval::machine::evaluate(&analysis, &funcs, &tree, &opts).unwrap();
        let raw = engine
            .compiled_output_bytes(&prepared, &analysis, &tree, &opts)
            .expect("jit run succeeds");
        assert_eq!(raw, encoded_outputs(&interp.outputs));
        let outcome = engine.evaluate(&prepared, &analysis, &funcs, &tree, &opts);
        assert_eq!(outcome.engine_used, EngineKind::CompiledJit);
        assert_eq!(
            encoded_outputs(&outcome.result.expect("ok").outputs),
            encoded_outputs(&interp.outputs)
        );
    }
    let _ = std::fs::remove_dir_all(&cache);
}

/// Concurrent builds of the same grammar single-flight down to one
/// `rustc` invocation.
#[test]
fn jit_concurrent_single_flight() {
    if !rustc_available() {
        eprintln!("SKIP: rustc not available; JIT path untestable here");
        return;
    }
    let cache = fresh_cache("singleflight");
    let analysis = analyze(calc_source()).unwrap().analysis;
    let source = rustgen::rust_source(&analysis);
    let hash = rustgen::content_hash(source.as_bytes());
    let jit = JitCache::new(cache.clone(), false);
    std::thread::scope(|scope| {
        for _ in 0..6 {
            scope.spawn(|| {
                let bin = jit.ensure_built(&hash, &source).expect("build succeeds");
                assert!(bin.is_file());
            });
        }
    });
    assert_eq!(jit.compiles(), 1, "exactly one rustc invocation");
    let _ = std::fs::remove_dir_all(&cache);
}

/// `sweep_stale` removes orphaned `.tmp-` build directories and leaves
/// installed artifacts alone.
#[test]
fn jit_sweep_stale_removes_orphans() {
    let cache = fresh_cache("sweep");
    let jit = JitCache::new(cache.clone(), false);
    // Fake an installed artifact and two crashed builds.
    let installed = cache.join("deadbeefdeadbeef");
    std::fs::create_dir_all(&installed).unwrap();
    std::fs::write(installed.join("evaluator"), b"bin").unwrap();
    for orphan in ["0123456789abcdef.tmp-99999", "feedfacefeedface.tmp-1"] {
        let d = cache.join(orphan);
        std::fs::create_dir_all(&d).unwrap();
        std::fs::write(d.join("evaluator.rs"), b"fn main() {}").unwrap();
    }
    let removed = jit.sweep_stale(Duration::ZERO);
    assert_eq!(removed, 2);
    assert!(installed.join("evaluator").is_file(), "artifact survives");
    assert!(!cache.join("0123456789abcdef.tmp-99999").exists());
    let _ = std::fs::remove_dir_all(&cache);
}

/// Regression (satellite): a generated source that fails to compile
/// degrades to the interpreter with a typed `CompileFailed` — no panic,
/// and the evaluation still returns the interpreter's answer.
#[test]
fn broken_generated_source_degrades_typed() {
    if !rustc_available() {
        eprintln!("SKIP: rustc not available; compile-failure path untestable here");
        return;
    }
    let cache = fresh_cache("broken");
    let engine = Engine::new(EngineConfig {
        kind: EngineKind::CompiledJit,
        optimize: false,
        cache_dir: Some(cache.clone()),
    });
    // A deliberately broken "generated" evaluator.
    let prepared = engine.prepare_jit_source("fn main( { this is not rust");
    assert_eq!(prepared.effective(), EngineKind::Interpreted);
    match prepared.fallback() {
        Some(FallbackReason::CompileFailed(stderr)) => {
            assert!(!stderr.is_empty(), "compiler stderr captured");
        }
        other => panic!("expected CompileFailed, got {:?}", other),
    }
    // Evaluation still succeeds via the interpreter, reason attached.
    let analysis = analyze(calc_source()).unwrap().analysis;
    let funcs = Funcs::standard();
    let opts = opts_for(&analysis);
    let tree = synthesize_tree(&analysis.grammar, 16).expect("tree");
    let outcome = engine.evaluate(&prepared, &analysis, &funcs, &tree, &opts);
    assert_eq!(outcome.engine_used, EngineKind::Interpreted);
    assert!(matches!(
        outcome.fallback,
        Some(FallbackReason::CompileFailed(_))
    ));
    outcome.result.expect("interpreter result");
    assert_eq!(engine.counters().fallbacks, 1);
    assert_eq!(
        engine.jit_cache().compiles(),
        0,
        "failed builds don't count"
    );
    let _ = std::fs::remove_dir_all(&cache);
}

/// The AOT registry exposes all five bundled grammars, in both the
/// paper-faithful and optimizer variants, under distinct hashes.
#[test]
fn aot_registry_lists_bundled() {
    let reg = linguist86::engine::aot_registry();
    let names: Vec<&str> = reg.iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names,
        vec![
            "calc",
            "knuth",
            "block",
            "meta",
            "pascal",
            "calc_opt",
            "knuth_opt",
            "block_opt",
            "meta_opt",
            "pascal_opt",
        ]
    );
    for (_, hash) in &reg {
        assert_eq!(hash.len(), 16);
    }
    let mut hashes: Vec<&String> = reg.iter().map(|(_, h)| h).collect();
    hashes.sort();
    hashes.dedup();
    assert_eq!(
        hashes.len(),
        reg.len(),
        "optimized variants must content-address apart"
    );
}
