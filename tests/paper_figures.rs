//! Reproductions of the paper's worked figures (experiments E1–E6).

use linguist86::ag::analysis::Config;
use linguist86::ag::passes::{Direction, PassConfig};
use linguist86::codegen::{emit_procedure, Target};
use linguist86::eval::funcs::Funcs;
use linguist86::eval::machine::{EvalOptions, Strategy};
use linguist86::eval::value::Value;
use linguist86::frontend::driver::{run, DriverOptions};
use linguist86::frontend::Translator;
use linguist86::lexgen::ScannerDef;

fn options(first: Direction) -> DriverOptions {
    DriverOptions {
        config: Config {
            pass: PassConfig {
                first_direction: first,
                max_passes: 8,
            },
            ..Config::default()
        },
        target: None,
        ..DriverOptions::default()
    }
}

/// E1 — Figure 1's notation: `S0 ::= V S1` with
/// `S1.A = IncrIfZero(T.B, S0.A)` and `S0.C = S1.C`, `S ::= T` with
/// `S.C = IncrIfZero(T.B, S.A)`. We complete it into a runnable grammar
/// (the figure's fragment leaves A's seed and T's B to context).
#[test]
fn fig1_grammar_parses_and_evaluates() {
    let src = r#"
grammar Fig1 ;
terminals
  V ;
  T : intrinsic B int ;
nonterminals
  root : syn OUT int ;
  s : inh A int, syn C int ;
start root ;
productions
prod root = s :
  s.A = 0 ;
  root.OUT = s.C ;
end
# S0 ::= V S1   with  S1.A = IncrIfZero(T.B, S0.A)-style flow (the
# figure's T.B argument lives in the sibling production; here the V
# leaf has no attributes so we seed from S0.A).
prod s0 = V s1 :
  s1.A = IncrIfZero(0, s0.A) ;
  s0.C = s1.C ;
end
# S ::= T   with  S.C = IncrIfZero(T.B, S.A)
prod s = T :
  s.C = IncrIfZero(T.B, s.A) ;
end
end
"#;
    let out = run(src, &options(Direction::RightToLeft)).unwrap();
    // S.A is inherited, S.C synthesized (checked by the analysis having
    // accepted the grammar), evaluable in one pass here.
    assert_eq!(out.stats.passes, 1);

    let scanner = ScannerDef::new()
        .skip(r"[ \t\n]+")
        .token("V", "v")
        .token("T", "[0-9]+")
        .build()
        .unwrap();
    let t = Translator::new(out.analysis, scanner).unwrap();
    // "v v 0": two IncrIfZero(0, ·) increments down, then the leaf:
    // A at leaf = 2, T.B = 0 so C = A + 1 = 3.
    let r = t
        .translate("v v 0", &Funcs::standard(), &EvalOptions::default())
        .unwrap();
    assert_eq!(r.output(&t.analysis, "OUT"), Some(&Value::Int(3)));
    // T.B = 5 (non-zero): C = A = 2.
    let r = t
        .translate("v v 5", &Funcs::standard(), &EvalOptions::default())
        .unwrap();
    assert_eq!(r.output(&t.analysis, "OUT"), Some(&Value::Int(2)));
}

/// E3 — the §II linearization diagram: the output file of a
/// left-to-right pass, read backwards, is the input file of a
/// right-to-left pass. We check the equivalent observable: evaluation
/// through the alternating file-resident passes gives the same result as
/// the direction-flipped configuration, for a tree whose shape matches
/// the paper's diagram (a root with several multi-child subtrees).
#[test]
fn fig3_alternating_files_agree_across_strategies() {
    let src = r#"
grammar Diagram ;
terminals
  leaf : intrinsic OBJ int ;
  LP ;
  RP ;
nonterminals
  node : syn SUM int ;
  pair : syn SUM int ;
start node ;
productions
prod node = pair0 pair1 :
  node.SUM = pair0.SUM + pair1.SUM ;
end
prod pair0 = LP leaf0 pair1 leaf1 RP :
  pair0.SUM = leaf0.OBJ + pair1.SUM + leaf1.OBJ ;
end
prod pair = leaf :
  pair.SUM = leaf.OBJ ;
end
end
"#;
    let scanner = || {
        ScannerDef::new()
            .skip(r"[ \t\n]+")
            .token("leaf", "[0-9]+")
            .token("LP", r"\(")
            .token("RP", r"\)")
            .build()
            .unwrap()
    };
    let rl = run(src, &options(Direction::RightToLeft)).unwrap();
    let lr = run(src, &options(Direction::LeftToRight)).unwrap();
    let t_rl = Translator::new(rl.analysis, scanner()).unwrap();
    let t_lr = Translator::new(lr.analysis, scanner()).unwrap();
    let input = "( 1 ( 2 3 4 ) 5 ) 6";
    let r1 = t_rl
        .translate(
            input,
            &Funcs::standard(),
            &EvalOptions {
                strategy: Strategy::BottomUp,
                ..EvalOptions::default()
            },
        )
        .unwrap();
    let r2 = t_lr
        .translate(
            input,
            &Funcs::standard(),
            &EvalOptions {
                strategy: Strategy::Prefix,
                ..EvalOptions::default()
            },
        )
        .unwrap();
    assert_eq!(
        r1.output(&t_rl.analysis, "SUM"),
        r2.output(&t_lr.analysis, "SUM")
    );
    assert_eq!(r1.output(&t_rl.analysis, "SUM"), Some(&Value::Int(21)));
}

/// E4 — the p.165 figure: the production-procedure generated for one pass
/// of a `function_list` production, with the limb read first and written
/// last, children processed in order, inherited assignments before the
/// recursive call and synthesized ones after.
#[test]
fn p165_production_procedure_shape() {
    let src = r#"
grammar P165 ;
terminals
  function : intrinsic OBJ string ;
  COMMA : intrinsic LINE int ;
nonterminals
  function$list : inh LHSID string, inh AOS set, syn FUNCTS set, syn CYCLIC set ;
  root : syn OUT int ;
start root ;
productions
prod root = function$list :
  function$list.LHSID = 'top' ;
  function$list.AOS = EmptySet() ;
  root.OUT = SetSize(function$list.FUNCTS) ;
end
prod function$list0 = function COMMA function$list1 -> FunctionListLimb :
  ERR = IsIn(function.OBJ, function$list1.CYCLIC) ;
  function$list1.FUNCTS = UnionSetof(function.OBJ, EmptySet()) ;
  function$list0.FUNCTS = UnionSetof(function.OBJ, function$list1.FUNCTS) ;
  function$list0.CYCLIC = function$list1.CYCLIC ;
end
prod function$list = function :
  function$list.FUNCTS = UnionSetof(function.OBJ, EmptySet()) ;
  function$list.CYCLIC = EmptySet() ;
end
limbs
  FunctionListLimb : local ERR bool ;
end
"#;
    // The limbs section must precede `start` in our syntax; patch order.
    let src = src.replace(
        "start root ;",
        "limbs\n  FunctionListLimb2 : local UNUSED2 bool ;\nstart root ;",
    );
    let _ = src;
    // Use a directly-ordered version instead:
    let src = r#"
grammar P165 ;
terminals
  function : intrinsic OBJ string ;
  COMMA : intrinsic LINE int ;
nonterminals
  function$list : inh LHSID string, syn FUNCTS set, syn CYCLIC set ;
  root : syn OUT int ;
limbs
  FunctionListLimb : local ERR bool ;
start root ;
productions
prod root = function$list :
  function$list.LHSID = 'top' ;
  root.OUT = SetSize(function$list.FUNCTS) ;
end
prod function$list0 = function COMMA function$list1 -> FunctionListLimb :
  ERR = IsIn(function.OBJ, function$list1.CYCLIC) ;
  function$list0.FUNCTS = UnionSetof(function.OBJ, function$list1.FUNCTS) ;
  function$list0.CYCLIC = function$list1.CYCLIC ;
end
prod function$list = function :
  function$list.FUNCTS = UnionSetof(function.OBJ, EmptySet()) ;
  function$list.CYCLIC = EmptySet() ;
end
end
"#;
    let out = run(src, &options(Direction::LeftToRight)).unwrap();
    let analysis = &out.analysis;
    // Production 1 is the FUNCTIONLISTLIMB production; the figure shows a
    // left-to-right pass, which is pass 1 under the prefix strategy.
    let proc1 = emit_procedure(analysis, linguist86::ag::ids::ProdId(1), 1, Target::Pascal);
    let src_text = &proc1.source;
    assert!(
        proc1.name.starts_with("FUNCTIONLISTLIMBPP"),
        "procedure named after the limb: {}",
        proc1.name
    );
    let get_limb = src_text
        .find("GetNodeFUNCTIONLISTLIMB")
        .expect("limb read first");
    let put_limb = src_text
        .find("PutNodeFUNCTIONLISTLIMB")
        .expect("limb written last");
    let get_fn = src_text.find("GetNodeFUNCTION(").expect("child read");
    let visit = src_text.find("FUNCTION_LISTPP").expect("recursive call");
    assert!(
        get_limb < get_fn && get_fn < visit && visit < put_limb,
        "{}",
        src_text
    );
    // LHS occurrence naming per the figure: FUNCTION_LIST0 / FUNCTION_LIST1.
    assert!(src_text.contains("FUNCTION_LIST0"), "{}", src_text);
    assert!(src_text.contains("FUNCTION_LIST1"), "{}", src_text);
}

/// E5 — the §III ListProd example: with static allocation, subsumed
/// copy-rules appear as comments and non-subsumed definitions of static
/// attributes generate the `_QZP` / `_ZQP` save/new temporaries around
/// the child visit, exactly as in the paper's modified
/// production-procedure.
#[test]
fn subsumption_listprod_save_restore_pattern() {
    // ENV plays the paper's PRE role: it accumulates at X-levels
    // (non-copy definitions, which pay save/restore once static) and
    // copies through Y-levels (subsumable copies, which earn the static
    // allocation). POST plays its upward counterpart.
    let src = r#"
grammar ListProd ;
terminals
  X : intrinsic OBJ int ;
  Y ;
nonterminals
  root : syn OUT int ;
  s : inh ENV set, syn POST int ;
start root ;
productions
prod root = s :
  s.ENV = EmptySet() ;
  root.OUT = s.POST ;
end
prod s0 = X s1 :
  s1.ENV = UnionSetof(X.OBJ, s0.ENV) ;
  s0.POST = IncrIfTrue(IsIn(X.OBJ, s1.ENV), s1.POST) ;
end
prod s0 = Y s1 :
end
prod s = X :
  s.POST = 0 ;
end
end
"#;
    let opts = DriverOptions {
        config: Config {
            pass: PassConfig {
                first_direction: Direction::LeftToRight,
                max_passes: 8,
            },
            costs: linguist86::ag::subsumption::SubsumptionCosts {
                copy: 50,
                save_restore: 10,
            },
            ..Config::default()
        },
        target: None,
        ..DriverOptions::default()
    };
    let out = run(src, &opts).unwrap();
    let g = &out.analysis.grammar;
    let s_sym = g.symbol_by_name("s").unwrap();
    let env = g.attr_by_name(s_sym, "ENV").unwrap();
    let post = g.attr_by_name(s_sym, "POST").unwrap();
    assert!(out.analysis.subsumption.is_static(env), "ENV is static");
    assert!(out.analysis.subsumption.is_static(post), "POST is static");

    let full = out.generated.full_source();
    // Global declarations and the save/new temporaries of the paper's
    // modified example.
    assert!(full.contains("G_ENV"), "{}", full);
    assert!(full.contains("_QZP"), "save temporaries rendered: {}", full);
    assert!(
        full.contains("_ZQP"),
        "new-value temporaries rendered: {}",
        full
    );
    // The Y production's copies are commented out (subsumed).
    assert!(out.generated.subsumed_rules() >= 2, "both Y copies subsume");
    assert!(out
        .generated
        .passes
        .iter()
        .any(|p| p.save_restore_bytes > 0));

    // The evaluator still computes the right answers, with the globals
    // protocol verifying every subsumed copy.
    let scanner = ScannerDef::new()
        .skip(r"[ \t\n]+")
        .token("X", "[0-9]+")
        .token("Y", "y")
        .build()
        .unwrap();
    let t = Translator::new(out.analysis, scanner).unwrap();
    let eval_opts = EvalOptions {
        strategy: Strategy::Prefix,
        ..EvalOptions::default()
    };
    // "1 y 3": the Y level pushes nothing, the X level sees itself in
    // ENV after extension: one increment.
    let r = t
        .translate("1 y 3", &Funcs::standard(), &eval_opts)
        .unwrap();
    assert_eq!(r.output(&t.analysis, "OUT"), Some(&Value::Int(1)));
    assert!(r.stats.globals_checked > 0);
    assert_eq!(r.stats.globals_repaired, 0);
    // "1 2 3": two X levels above the leaf, each sees itself: two.
    let r = t
        .translate("1 2 3", &Funcs::standard(), &eval_opts)
        .unwrap();
    assert_eq!(r.output(&t.analysis, "OUT"), Some(&Value::Int(2)));
}

/// E6 — Figure 5: one semantic function defining several attribute
/// occurrences, with if-expression arms carrying expression lists
/// assigned pairwise — through the concrete syntax.
#[test]
fn fig5_multi_target_semantic_functions() {
    let src = r#"
grammar Fig5 ;
terminals
  item : intrinsic KIND int ;
nonterminals
  root : syn PUBLICS int, syn PRIVATE int ;
  list : syn PUBLICS int, syn PRIVATE int ;
start root ;
productions
prod root = list :
  root.PUBLICS & root.PRIVATE = if list.PUBLICS > list.PRIVATE
                                then list.PUBLICS, list.PRIVATE
                                else list.PRIVATE, list.PUBLICS
                                endif ;
end
prod list0 = list1 item :
  list0.PUBLICS & list0.PRIVATE = if item.KIND = 0
                                  then list1.PUBLICS + 1, list1.PRIVATE
                                  else list1.PUBLICS, list1.PRIVATE + 1
                                  endif ;
end
prod list = item :
  # Common value for both targets (the figure's first example).
  list.PUBLICS & list.PRIVATE = 0 ;
end
end
"#;
    let out = run(src, &options(Direction::RightToLeft)).unwrap();
    let scanner = ScannerDef::new()
        .skip(r"[ \t\n]+")
        .token("item", "[0-9]+")
        .build()
        .unwrap();
    let t = Translator::new(out.analysis, scanner).unwrap();
    // Kinds: 9 0 0 0 5 → first leaf ignored (base case), then three 0s
    // (publics) and one non-zero (private): PUBLICS=3, PRIVATE=1; the
    // root swaps so PUBLICS gets the max.
    let r = t
        .translate("9 0 0 0 5", &Funcs::standard(), &EvalOptions::default())
        .unwrap();
    assert_eq!(r.output(&t.analysis, "PUBLICS"), Some(&Value::Int(3)));
    assert_eq!(r.output(&t.analysis, "PRIVATE"), Some(&Value::Int(1)));
}

/// E11 — the measurement tables, live. The paper's numbers are
/// reproduced from the *running* system, not hard-coded into the
/// pipeline: the pass-schedule column of §III for every bundled
/// grammar, and §IV's copy-rule observations ("between 40 and 60
/// percent of the semantic functions in a typical grammar are
/// copy-rules") with the static-subsumption elimination counts.
#[test]
fn table_pass_counts_match_paper() {
    use linguist86::grammars as lg;
    // (source, name, alternating passes under the paper's
    // right-to-left-first bootstrap)
    let rows: &[(&str, &str, usize)] = &[
        (lg::calc_source(), "calc", 1),
        (lg::knuth_source(), "knuth", 1),
        (lg::block_source(), "block", 2),
        (lg::pascal_source(), "pascal", 2),
        (lg::meta_source(), "meta", 4),
    ];
    for &(src, name, want) in rows {
        let out = run(src, &options(Direction::RightToLeft)).unwrap();
        let profile = out.analysis.profile();
        assert_eq!(profile.stats.passes, want, "{} pass count", name);
        assert_eq!(profile.directions.len(), want, "{} schedule length", name);
        // The driver's statistics row and the live profile agree.
        assert_eq!(profile.stats, out.stats, "{} stats row", name);
    }
    // The paper's own grammar ("LINGUIST-86 is described in its own
    // language") is the meta grammar: 4 passes, like the original.
}

#[test]
fn table_copy_rule_elimination_matches_paper() {
    use linguist86::grammars as lg;
    // The §IV observation: copy-rules are 40–60% of semantic functions
    // in attribute-heavy grammars.
    for (src, name) in [
        (lg::calc_source(), "calc"),
        (lg::block_source(), "block"),
        (lg::pascal_source(), "pascal"),
        (lg::meta_source(), "meta"),
    ] {
        let out = run(src, &options(Direction::RightToLeft)).unwrap();
        let f = out.analysis.profile().stats.copy_fraction();
        assert!(
            (0.40..=0.60).contains(&f),
            "{} copy fraction {:.3} outside the paper's band",
            name,
            f
        );
    }

    // Static subsumption on the meta grammar: 75 of its 154 copy-rules
    // need not be performed at all — a 27.9% reduction in semantic
    // functions executed.
    let out = run(lg::meta_source(), &options(Direction::RightToLeft)).unwrap();
    let p = out.analysis.profile();
    assert_eq!(p.stats.semantic_functions, 269);
    assert_eq!(p.subsumption.copy_rules, 154);
    assert_eq!(p.subsumption.subsumed_rules, 75);
    assert_eq!(p.copy_rules_after(), 79);
    assert!((p.elimination_fraction() - 75.0 / 269.0).abs() < 1e-9);

    // Pascal's declarations grammar: 24 of 45 copy-rules eliminated.
    let out = run(lg::pascal_source(), &options(Direction::RightToLeft)).unwrap();
    let p = out.analysis.profile();
    assert_eq!(p.subsumption.copy_rules, 45);
    assert_eq!(p.subsumption.subsumed_rules, 24);
}

#[test]
fn table_meta_grammar_profiles_end_to_end() {
    use linguist86::frontend::report::ProfileReport;
    use linguist86::grammars as lg;

    let out = run(lg::meta_source(), &options(Direction::RightToLeft)).unwrap();
    let r = ProfileReport::collect("meta", &out.analysis, &Funcs::standard(), 200);
    assert!(
        r.eval_error.is_none(),
        "meta eval failed: {:?}",
        r.eval_error
    );
    let m = r.eval.as_ref().unwrap();

    // Four alternating passes of real file traffic, conserved across
    // every boundary.
    assert_eq!(m.passes.len(), 4);
    assert!(m.initial_records > 0 && m.initial_bytes > 0);
    assert_eq!(m.passes[0].records_read, m.initial_records);
    for w in m.passes.windows(2) {
        assert_eq!(w[1].records_read, w[0].records_written);
        assert_eq!(w[1].bytes_read, w[0].bytes_written);
    }
    // Every pass reads and rewrites the whole APT — the alternating
    // paradigm never skips records.
    for p in &m.passes {
        assert_eq!(p.records_read, m.initial_records, "pass {}", p.pass);
        assert_eq!(p.records_written, m.initial_records, "pass {}", p.pass);
    }
    // Subsumption shows up dynamically too: fewer semantic functions
    // ran than the grammar declares rules for the tree (copy-rules
    // subsumed into globals are skipped); but every pass did real work.
    for p in &m.passes {
        assert!(p.attrs_evaluated > 0, "pass {} evaluated nothing", p.pass);
    }
    // And the text rendering carries the table.
    let text = r.render_text();
    assert!(text.contains("alternating passes:   4"), "{}", text);
    assert!(text.contains("copy-rules subsumed:  75 of 154"), "{}", text);
}
