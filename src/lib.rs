//! Umbrella crate for the LINGUIST-86 reproduction workspace.
//!
//! Re-exports every member crate so integration tests and examples can
//! reach the whole system through one dependency. See the individual crates
//! for the real documentation:
//!
//! * [`linguist_support`] — name table, list package, diagnostics.
//! * [`linguist_lexgen`] — scanner generator (regex → minimized DFA).
//! * [`linguist_lalr`] — LALR(1) table builder and parser driver.
//! * [`linguist_ag`] — the attribute-grammar core and its analyses.
//! * [`linguist_eval`] — the file-resident alternating-pass evaluator.
//! * [`linguist_codegen`] — evaluator source-code generation.
//! * [`linguist_engine`] — compiled-evaluator execution engine (AOT/JIT).
//! * [`linguist_frontend`] — the LINGUIST input language and overlay driver.
//! * [`linguist_grammars`] — bundled and synthetic attribute grammars.

pub use linguist_ag as ag;
pub use linguist_codegen as codegen;
pub use linguist_engine as engine;
pub use linguist_eval as eval;
pub use linguist_frontend as frontend;
pub use linguist_grammars as grammars;
pub use linguist_lalr as lalr;
pub use linguist_lexgen as lexgen;
pub use linguist_support as support;
