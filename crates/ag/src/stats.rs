//! Grammar statistics — the §IV profile.
//!
//! The paper characterizes LINGUIST-86's own grammar as: "159 symbols, 318
//! attributes, 72 productions, 1202 attribute-occurrences, and 584
//! semantic functions. 302 of the semantic functions are copy-rules, a
//! little more than 50%" with 276 of the copy-rules implicit, evaluable in
//! 4 alternating passes. [`GrammarStats`] computes the same row for any
//! grammar; the E7 bench prints it next to the paper's numbers.

use crate::analysis::Analysis;
use crate::grammar::{AttrClass, Grammar, RuleOrigin};
use crate::passes::{Direction, PassAssignment};
use crate::subsumption::SubsumptionStats;
use std::fmt;

/// The statistics row of §IV.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GrammarStats {
    /// Grammar symbols (terminals + nonterminals + limbs).
    pub symbols: usize,
    /// Terminals.
    pub terminals: usize,
    /// Nonterminals.
    pub nonterminals: usize,
    /// Limb symbols.
    pub limbs: usize,
    /// Declared attributes.
    pub attributes: usize,
    /// Synthesized attributes.
    pub synthesized: usize,
    /// Inherited attributes.
    pub inherited: usize,
    /// Intrinsic attributes.
    pub intrinsic: usize,
    /// Limb attributes.
    pub limb_attrs: usize,
    /// Productions.
    pub productions: usize,
    /// Attribute occurrences (every attribute of every symbol occurrence
    /// of every production).
    pub occurrences: usize,
    /// Semantic functions, explicit + implicit.
    pub semantic_functions: usize,
    /// Copy-rules among them.
    pub copy_rules: usize,
    /// Implicitly inserted copy-rules.
    pub implicit_copy_rules: usize,
    /// Alternating passes needed (0 if pass analysis was not run).
    pub passes: usize,
}

impl GrammarStats {
    /// Compute the row for `g`; pass the assignment to fill the pass count.
    pub fn compute(g: &Grammar, passes: Option<&PassAssignment>) -> GrammarStats {
        let mut s = GrammarStats {
            symbols: g.symbols().len(),
            attributes: g.attrs().len(),
            productions: g.productions().len(),
            occurrences: g.num_occurrences(),
            semantic_functions: g.rules().len(),
            passes: passes.map(|p| p.num_passes()).unwrap_or(0),
            ..GrammarStats::default()
        };
        for sym in g.symbols() {
            match sym.kind {
                crate::grammar::SymbolKind::Terminal => s.terminals += 1,
                crate::grammar::SymbolKind::Nonterminal => s.nonterminals += 1,
                crate::grammar::SymbolKind::Limb => s.limbs += 1,
            }
        }
        for a in g.attrs() {
            match a.class {
                AttrClass::Synthesized => s.synthesized += 1,
                AttrClass::Inherited => s.inherited += 1,
                AttrClass::Intrinsic => s.intrinsic += 1,
                AttrClass::Limb => s.limb_attrs += 1,
            }
        }
        for r in g.rules() {
            if r.is_copy() {
                s.copy_rules += 1;
                if r.origin == RuleOrigin::Implicit {
                    s.implicit_copy_rules += 1;
                }
            }
        }
        s
    }

    /// Fraction of semantic functions that are copy-rules (the paper's
    /// "between 40 and 60 percent" observation).
    pub fn copy_fraction(&self) -> f64 {
        if self.semantic_functions == 0 {
            0.0
        } else {
            self.copy_rules as f64 / self.semantic_functions as f64
        }
    }
}

/// The full static profile of an analyzed grammar: the §IV statistics
/// row joined with the subsumption outcome and the planned pass
/// schedule. This is the compile-time half of the `--profile` report;
/// the run-time half is the evaluator's per-pass I/O metrics.
#[derive(Clone, Debug)]
pub struct GrammarProfile {
    /// The §IV statistics row.
    pub stats: GrammarStats,
    /// Static-subsumption outcome (copy-rules before/after, statics).
    pub subsumption: SubsumptionStats,
    /// Planned traversal direction of each alternating pass, in order.
    pub directions: Vec<Direction>,
}

impl GrammarProfile {
    /// Profile an analyzed grammar.
    pub fn compute(a: &Analysis) -> GrammarProfile {
        GrammarProfile {
            stats: GrammarStats::compute(&a.grammar, Some(&a.passes)),
            subsumption: a.subsumption.stats(&a.grammar),
            directions: a.passes.directions().to_vec(),
        }
    }

    /// Copy-rules that still execute after static subsumption.
    pub fn copy_rules_after(&self) -> usize {
        self.subsumption
            .copy_rules
            .saturating_sub(self.subsumption.subsumed_rules)
    }

    /// Fraction of all semantic functions eliminated by subsumption —
    /// the paper's "functions which need not be performed at all".
    pub fn elimination_fraction(&self) -> f64 {
        if self.stats.semantic_functions == 0 {
            0.0
        } else {
            self.subsumption.subsumed_rules as f64 / self.stats.semantic_functions as f64
        }
    }
}

impl fmt::Display for GrammarProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.stats)?;
        let dirs: Vec<&str> = self
            .directions
            .iter()
            .map(|d| match d {
                Direction::LeftToRight => "L-to-R",
                Direction::RightToLeft => "R-to-L",
            })
            .collect();
        writeln!(f, "pass directions:      {}", dirs.join(", "))?;
        writeln!(
            f,
            "static attributes:    {} of {} eligible",
            self.subsumption.static_attrs, self.subsumption.eligible_attrs
        )?;
        writeln!(
            f,
            "copy-rules subsumed:  {} of {} ({:.1}% of all functions)",
            self.subsumption.subsumed_rules,
            self.subsumption.copy_rules,
            100.0 * self.elimination_fraction()
        )?;
        write!(
            f,
            "copy-rules remaining: {} (+{} save/restore sites)",
            self.copy_rules_after(),
            self.subsumption.save_restore_sites
        )
    }
}

impl fmt::Display for GrammarStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "symbols:              {}", self.symbols)?;
        writeln!(
            f,
            "  (terminals {} / nonterminals {} / limbs {})",
            self.terminals, self.nonterminals, self.limbs
        )?;
        writeln!(f, "attributes:           {}", self.attributes)?;
        writeln!(
            f,
            "  (syn {} / inh {} / intrinsic {} / limb {})",
            self.synthesized, self.inherited, self.intrinsic, self.limb_attrs
        )?;
        writeln!(f, "productions:          {}", self.productions)?;
        writeln!(f, "attribute-occurrences: {}", self.occurrences)?;
        writeln!(f, "semantic functions:   {}", self.semantic_functions)?;
        writeln!(
            f,
            "copy-rules:           {} ({:.0}%), {} implicit",
            self.copy_rules,
            100.0 * self.copy_fraction(),
            self.implicit_copy_rules
        )?;
        write!(f, "alternating passes:   {}", self.passes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::grammar::AgBuilder;
    use crate::ids::AttrOcc;
    use crate::implicit::insert_implicit_copies;
    use crate::passes::{assign_passes, Direction, PassConfig};

    #[test]
    fn counts_are_consistent() {
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        b.synthesized(root, "VAL", "int");
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "VAL", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        b.production(root, vec![s], None);
        let p1 = b.production(s, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.start(root);
        let mut g = b.build().unwrap();
        let implicit = insert_implicit_copies(&mut g);
        assert_eq!(implicit.total(), 1); // root.VAL = S.VAL

        let pa = assign_passes(
            &g,
            &PassConfig {
                first_direction: Direction::LeftToRight,
                max_passes: 8,
            },
        )
        .unwrap();
        let stats = GrammarStats::compute(&g, Some(&pa));
        assert_eq!(stats.symbols, 3);
        assert_eq!(stats.terminals, 1);
        assert_eq!(stats.nonterminals, 2);
        assert_eq!(stats.attributes, 3);
        assert_eq!(stats.productions, 2);
        assert_eq!(stats.semantic_functions, 2);
        assert_eq!(stats.copy_rules, 2);
        assert_eq!(stats.implicit_copy_rules, 1);
        assert_eq!(stats.passes, 1);
        assert!((stats.copy_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn profile_joins_stats_subsumption_and_schedule() {
        use crate::analysis::{Analysis, Config};

        // S -> S x | x with a chained synthesized attribute: one pass,
        // all-copy grammar, so subsumption has something to eliminate.
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        b.synthesized(root, "VAL", "int");
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "VAL", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        b.production(root, vec![s], None);
        let p1 = b.production(s, vec![s, x], None);
        b.rule(p1, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(1, obj)));
        let p2 = b.production(s, vec![x], None);
        b.rule(p2, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.start(root);
        let a = Analysis::run(b.build().unwrap(), &Config::default()).unwrap();

        let p = a.profile();
        assert_eq!(p.stats, a.stats());
        assert_eq!(p.directions.len(), p.stats.passes);
        assert_eq!(
            p.copy_rules_after() + p.subsumption.subsumed_rules,
            p.subsumption.copy_rules
        );
        assert!(p.elimination_fraction() >= 0.0 && p.elimination_fraction() <= 1.0);
        let text = p.to_string();
        for needle in [
            "pass directions",
            "static attributes",
            "copy-rules subsumed",
            "copy-rules remaining",
        ] {
            assert!(text.contains(needle), "missing {}: {}", needle, text);
        }
    }

    #[test]
    fn display_renders_all_rows() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let p = b.production(s, vec![], None);
        b.rule(p, vec![AttrOcc::lhs(v)], Expr::Int(1));
        b.start(s);
        let g = b.build().unwrap();
        let text = GrammarStats::compute(&g, None).to_string();
        for needle in [
            "symbols",
            "attributes",
            "productions",
            "copy-rules",
            "passes",
        ] {
            assert!(text.contains(needle), "missing {}: {}", needle, text);
        }
    }
}
