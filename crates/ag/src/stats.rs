//! Grammar statistics — the §IV profile.
//!
//! The paper characterizes LINGUIST-86's own grammar as: "159 symbols, 318
//! attributes, 72 productions, 1202 attribute-occurrences, and 584
//! semantic functions. 302 of the semantic functions are copy-rules, a
//! little more than 50%" with 276 of the copy-rules implicit, evaluable in
//! 4 alternating passes. [`GrammarStats`] computes the same row for any
//! grammar; the E7 bench prints it next to the paper's numbers.

use crate::grammar::{AttrClass, Grammar, RuleOrigin};
use crate::passes::PassAssignment;
use std::fmt;

/// The statistics row of §IV.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GrammarStats {
    /// Grammar symbols (terminals + nonterminals + limbs).
    pub symbols: usize,
    /// Terminals.
    pub terminals: usize,
    /// Nonterminals.
    pub nonterminals: usize,
    /// Limb symbols.
    pub limbs: usize,
    /// Declared attributes.
    pub attributes: usize,
    /// Synthesized attributes.
    pub synthesized: usize,
    /// Inherited attributes.
    pub inherited: usize,
    /// Intrinsic attributes.
    pub intrinsic: usize,
    /// Limb attributes.
    pub limb_attrs: usize,
    /// Productions.
    pub productions: usize,
    /// Attribute occurrences (every attribute of every symbol occurrence
    /// of every production).
    pub occurrences: usize,
    /// Semantic functions, explicit + implicit.
    pub semantic_functions: usize,
    /// Copy-rules among them.
    pub copy_rules: usize,
    /// Implicitly inserted copy-rules.
    pub implicit_copy_rules: usize,
    /// Alternating passes needed (0 if pass analysis was not run).
    pub passes: usize,
}

impl GrammarStats {
    /// Compute the row for `g`; pass the assignment to fill the pass count.
    pub fn compute(g: &Grammar, passes: Option<&PassAssignment>) -> GrammarStats {
        let mut s = GrammarStats {
            symbols: g.symbols().len(),
            attributes: g.attrs().len(),
            productions: g.productions().len(),
            occurrences: g.num_occurrences(),
            semantic_functions: g.rules().len(),
            passes: passes.map(|p| p.num_passes()).unwrap_or(0),
            ..GrammarStats::default()
        };
        for sym in g.symbols() {
            match sym.kind {
                crate::grammar::SymbolKind::Terminal => s.terminals += 1,
                crate::grammar::SymbolKind::Nonterminal => s.nonterminals += 1,
                crate::grammar::SymbolKind::Limb => s.limbs += 1,
            }
        }
        for a in g.attrs() {
            match a.class {
                AttrClass::Synthesized => s.synthesized += 1,
                AttrClass::Inherited => s.inherited += 1,
                AttrClass::Intrinsic => s.intrinsic += 1,
                AttrClass::Limb => s.limb_attrs += 1,
            }
        }
        for r in g.rules() {
            if r.is_copy() {
                s.copy_rules += 1;
                if r.origin == RuleOrigin::Implicit {
                    s.implicit_copy_rules += 1;
                }
            }
        }
        s
    }

    /// Fraction of semantic functions that are copy-rules (the paper's
    /// "between 40 and 60 percent" observation).
    pub fn copy_fraction(&self) -> f64 {
        if self.semantic_functions == 0 {
            0.0
        } else {
            self.copy_rules as f64 / self.semantic_functions as f64
        }
    }
}

impl fmt::Display for GrammarStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "symbols:              {}", self.symbols)?;
        writeln!(
            f,
            "  (terminals {} / nonterminals {} / limbs {})",
            self.terminals, self.nonterminals, self.limbs
        )?;
        writeln!(f, "attributes:           {}", self.attributes)?;
        writeln!(
            f,
            "  (syn {} / inh {} / intrinsic {} / limb {})",
            self.synthesized, self.inherited, self.intrinsic, self.limb_attrs
        )?;
        writeln!(f, "productions:          {}", self.productions)?;
        writeln!(f, "attribute-occurrences: {}", self.occurrences)?;
        writeln!(f, "semantic functions:   {}", self.semantic_functions)?;
        writeln!(
            f,
            "copy-rules:           {} ({:.0}%), {} implicit",
            self.copy_rules,
            100.0 * self.copy_fraction(),
            self.implicit_copy_rules
        )?;
        write!(f, "alternating passes:   {}", self.passes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::grammar::AgBuilder;
    use crate::ids::AttrOcc;
    use crate::implicit::insert_implicit_copies;
    use crate::passes::{assign_passes, Direction, PassConfig};

    #[test]
    fn counts_are_consistent() {
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        b.synthesized(root, "VAL", "int");
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "VAL", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        b.production(root, vec![s], None);
        let p1 = b.production(s, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.start(root);
        let mut g = b.build().unwrap();
        let implicit = insert_implicit_copies(&mut g);
        assert_eq!(implicit.total(), 1); // root.VAL = S.VAL

        let pa = assign_passes(
            &g,
            &PassConfig {
                first_direction: Direction::LeftToRight,
                max_passes: 8,
            },
        )
        .unwrap();
        let stats = GrammarStats::compute(&g, Some(&pa));
        assert_eq!(stats.symbols, 3);
        assert_eq!(stats.terminals, 1);
        assert_eq!(stats.nonterminals, 2);
        assert_eq!(stats.attributes, 3);
        assert_eq!(stats.productions, 2);
        assert_eq!(stats.semantic_functions, 2);
        assert_eq!(stats.copy_rules, 2);
        assert_eq!(stats.implicit_copy_rules, 1);
        assert_eq!(stats.passes, 1);
        assert!((stats.copy_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_renders_all_rows() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let p = b.production(s, vec![], None);
        b.rule(p, vec![AttrOcc::lhs(v)], Expr::Int(1));
        b.start(s);
        let g = b.build().unwrap();
        let text = GrammarStats::compute(&g, None).to_string();
        for needle in ["symbols", "attributes", "productions", "copy-rules", "passes"] {
            assert!(text.contains(needle), "missing {}: {}", needle, text);
        }
    }
}
