//! Temporary vs significant attributes (§III).
//!
//! "An obvious \[optimization\] is to reduce the amount of data transferred
//! between the intermediate files and memory by not writing any instances
//! of attributes that are defined during this pass but never referenced
//! after this pass." Following Saarinen's split, an attribute is
//! **significant** if it is referenced in a later pass than the one in
//! which it is defined; otherwise it is **temporary** and lives only in
//! the stack-resident locals of the production-procedures.
//!
//! An attribute's *earliest* pass is the pass that defines it (0 for
//! intrinsics, which the parser defines); its *latest* pass is the last
//! pass in which any semantic function reads it. Synthesized attributes of
//! the start symbol are the translation's results, so their lifetime is
//! pinned past the final pass. The node record written at the boundary
//! between pass `k` and `k+1` carries exactly the attributes alive across
//! that boundary.

use crate::grammar::{AttrClass, Grammar};
use crate::ids::AttrId;
use crate::passes::PassAssignment;

/// Computed lifetimes for every attribute.
#[derive(Clone, Debug)]
pub struct Lifetimes {
    earliest: Vec<u16>,
    latest: Vec<u16>,
    num_passes: u16,
    /// Whether terminal records carrying no live attributes are elided
    /// from the intermediate files entirely (the optimizer's storage
    /// transform; off by default so the paper-faithful record counts
    /// are reproduced). Writers and readers share this struct, so both
    /// sides of every boundary agree on which records exist.
    elide_empty: bool,
}

impl Lifetimes {
    /// Compute lifetimes from the pass assignment.
    pub fn compute(g: &Grammar, passes: &PassAssignment) -> Lifetimes {
        let n = g.attrs().len();
        let num_passes = passes.num_passes() as u16;
        let mut earliest = vec![0u16; n];
        let mut latest = vec![0u16; n];
        for (ai, _) in g.attrs().iter().enumerate() {
            let a = AttrId(ai as u32);
            earliest[ai] = passes.pass_of(a);
            latest[ai] = earliest[ai]; // defined-but-unused = temporary
        }
        for (ri, rule) in g.rules().iter().enumerate() {
            let rp = passes.rule_pass(crate::ids::RuleId(ri as u32));
            for arg in rule.arguments() {
                let slot = &mut latest[arg.attr.0 as usize];
                if rp > *slot {
                    *slot = rp;
                }
            }
        }
        // Root outputs survive to the very end.
        for &a in &g.symbol(g.start()).attrs {
            if g.attr(a).class == AttrClass::Synthesized {
                latest[a.0 as usize] = num_passes + 1;
            }
        }
        Lifetimes {
            earliest,
            latest,
            num_passes,
            elide_empty: false,
        }
    }

    /// Turn on terminal-record elision (see [`Lifetimes::elides`]).
    /// Called by the analysis pipeline when the grammar optimizer ran:
    /// dead-attribute elimination empties terminals' storage, and an
    /// empty terminal record is pure framing the evaluator can skip.
    pub fn enable_record_elision(&mut self) {
        self.elide_empty = true;
    }

    /// Whether terminal-record elision is on.
    pub fn record_elision(&self) -> bool {
        self.elide_empty
    }

    /// Whether `sym`'s records are elided from the intermediate file at
    /// `boundary`: elision is on, `sym` is a terminal, and none of its
    /// stored attributes is alive across that boundary (punctuation
    /// terminals qualify everywhere; a `NUMBER.VAL`-style carrier drops
    /// out of the stream once its last reader has run). Nonterminals
    /// are never elided — their records are the visit skeleton.
    pub fn elides(&self, g: &Grammar, sym: crate::ids::SymbolId, boundary: u16) -> bool {
        self.elide_empty
            && g.symbol(sym).kind == crate::grammar::SymbolKind::Terminal
            && g.symbol(sym)
                .attrs
                .iter()
                .all(|&a| !self.alive_across(a, boundary))
    }

    /// The pass defining `a` (0 for intrinsics).
    pub fn earliest(&self, a: AttrId) -> u16 {
        self.earliest[a.0 as usize]
    }

    /// The last pass referencing `a` (never below its earliest).
    pub fn latest(&self, a: AttrId) -> u16 {
        self.latest[a.0 as usize]
    }

    /// Saarinen's split: significant attributes outlive their defining
    /// pass; temporary ones never leave the stack.
    pub fn is_significant(&self, a: AttrId) -> bool {
        self.latest[a.0 as usize] > self.earliest[a.0 as usize]
    }

    /// Whether `a`'s instance travels in the APT file written at the end
    /// of pass `boundary` (boundary 0 = the parser-built initial file).
    pub fn alive_across(&self, a: AttrId, boundary: u16) -> bool {
        self.earliest[a.0 as usize] <= boundary && self.latest[a.0 as usize] > boundary
    }

    /// Number of evaluation passes the lifetimes were computed for.
    pub fn num_passes(&self) -> u16 {
        self.num_passes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::grammar::AgBuilder;
    use crate::ids::AttrOcc;
    use crate::passes::{assign_passes, Direction, PassConfig};

    /// Grammar where B.V is produced in pass 1 and consumed in pass 2.
    fn two_pass_grammar() -> (Grammar, PassAssignment) {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "V", "int");
        let a = b.nonterminal("A");
        let ai = b.inherited(a, "I", "int");
        let av = b.synthesized(a, "V", "int");
        let bb = b.nonterminal("B");
        let bv = b.synthesized(bb, "V", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p0 = b.production(s, vec![a, bb], None);
        b.rule(
            p0,
            vec![AttrOcc::rhs(0, ai)],
            Expr::Occ(AttrOcc::rhs(1, bv)),
        );
        b.rule(p0, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(0, av)));
        let p1 = b.production(a, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(av)], Expr::Occ(AttrOcc::lhs(ai)));
        let p2 = b.production(bb, vec![x], None);
        b.rule(p2, vec![AttrOcc::lhs(bv)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.start(s);
        let g = b.build().unwrap();
        let pa = assign_passes(
            &g,
            &PassConfig {
                first_direction: Direction::LeftToRight,
                max_passes: 8,
            },
        )
        .unwrap();
        (g, pa)
    }

    #[test]
    fn cross_pass_attribute_is_significant() {
        let (g, pa) = two_pass_grammar();
        let lt = Lifetimes::compute(&g, &pa);
        let bv = g.attr_by_name(g.symbol_by_name("B").unwrap(), "V").unwrap();
        assert_eq!(pa.pass_of(bv), 1);
        // B.V is read by the A.I rule which runs in pass 2.
        assert_eq!(lt.latest(bv), 2);
        assert!(lt.is_significant(bv));
        assert!(lt.alive_across(bv, 1));
        assert!(!lt.alive_across(bv, 0), "not defined before pass 1");
        assert!(!lt.alive_across(bv, 2), "not referenced after pass 2");
    }

    #[test]
    fn same_pass_attribute_is_temporary() {
        let (g, pa) = two_pass_grammar();
        let lt = Lifetimes::compute(&g, &pa);
        let a_sym = g.symbol_by_name("A").unwrap();
        let av = g.attr_by_name(a_sym, "V").unwrap();
        let ai = g.attr_by_name(a_sym, "I").unwrap();
        // A.I and A.V are defined and consumed in pass 2.
        assert_eq!(pa.pass_of(av), 2);
        assert!(!lt.is_significant(av), "A.V defined and used in pass 2");
        assert!(!lt.is_significant(ai), "A.I defined and used in pass 2");
    }

    #[test]
    fn root_outputs_survive_to_the_end() {
        let (g, pa) = two_pass_grammar();
        let lt = Lifetimes::compute(&g, &pa);
        let sv = g.attr_by_name(g.symbol_by_name("S").unwrap(), "V").unwrap();
        assert!(lt.is_significant(sv));
        assert!(lt.alive_across(sv, pa.num_passes() as u16));
    }

    #[test]
    fn intrinsics_live_from_boundary_zero() {
        let (g, pa) = two_pass_grammar();
        let lt = Lifetimes::compute(&g, &pa);
        let obj = g
            .attr_by_name(g.symbol_by_name("x").unwrap(), "OBJ")
            .unwrap();
        assert_eq!(lt.earliest(obj), 0);
        assert!(lt.alive_across(obj, 0), "parser-written intrinsic");
        // OBJ is last used by B.V's rule in pass 1.
        assert!(!lt.alive_across(obj, 1));
    }

    #[test]
    fn majority_of_attributes_are_temporary_here() {
        // The paper: "the majority of attributes are referenced only
        // during the same pass in which they are defined".
        let (g, pa) = two_pass_grammar();
        let lt = Lifetimes::compute(&g, &pa);
        let temp = (0..g.attrs().len() as u32)
            .filter(|&i| !lt.is_significant(AttrId(i)))
            .count();
        assert!(temp >= 2);
    }
}
