//! Well-formedness: the completeness condition of §I.
//!
//! "The semantic functions of a production MUST define EXACTLY the
//! right-hand-side occurrences of inherited attributes and all synthesized
//! attributes of the left-hand symbol" (plus, in LINGUIST-86, all limb
//! attributes). Each required occurrence must be defined exactly once; no
//! other occurrence may be defined; intrinsic attributes may never be
//! defined ("No semantic function can define an intrinsic attribute",
//! §IV). This check runs *after* implicit copy-rule insertion — gaps the
//! implicit mechanism could not fill are errors.

use crate::grammar::Grammar;
use crate::ids::{AttrOcc, ProdId};

/// One completeness violation.
///
/// Errors carry structured ids, not rendered strings: the lint layer
/// ([`crate::lint`]) turns them into coded diagnostics with symbol /
/// attribute names and real source spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// A required occurrence has no defining rule.
    Undefined {
        /// The production.
        prod: ProdId,
        /// The missing occurrence.
        occ: AttrOcc,
    },
    /// An occurrence is defined more than once.
    MultiplyDefined {
        /// The production.
        prod: ProdId,
        /// The over-defined occurrence.
        occ: AttrOcc,
        /// Number of defining rules.
        count: usize,
    },
    /// A rule defines an occurrence that must not be defined here (a
    /// synthesized attribute of a RHS symbol, an inherited attribute of
    /// the LHS, or an intrinsic attribute anywhere).
    IllegalTarget {
        /// The production.
        prod: ProdId,
        /// The illegally defined occurrence.
        occ: AttrOcc,
        /// Why it is illegal.
        reason: &'static str,
    },
}

impl CheckError {
    /// The production the violation sits in.
    pub fn prod(&self) -> ProdId {
        match self {
            CheckError::Undefined { prod, .. }
            | CheckError::MultiplyDefined { prod, .. }
            | CheckError::IllegalTarget { prod, .. } => *prod,
        }
    }

    /// The occurrence the violation is about.
    pub fn occ(&self) -> AttrOcc {
        match self {
            CheckError::Undefined { occ, .. }
            | CheckError::MultiplyDefined { occ, .. }
            | CheckError::IllegalTarget { occ, .. } => *occ,
        }
    }
}

/// Check the completeness condition for every production.
///
/// # Errors
///
/// Returns every violation found (empty result means well-formed).
pub fn check_completeness(g: &Grammar) -> Result<(), Vec<CheckError>> {
    use crate::grammar::AttrClass;
    let mut errors = Vec::new();

    for (pi, _prod) in g.productions().iter().enumerate() {
        let prod = ProdId(pi as u32);
        let required = g.required_targets(prod);
        let defined = g.defined_targets(prod);

        for &occ in &required {
            let count = defined.iter().filter(|&&d| d == occ).count();
            match count {
                0 => errors.push(CheckError::Undefined { prod, occ }),
                1 => {}
                n => errors.push(CheckError::MultiplyDefined {
                    prod,
                    occ,
                    count: n,
                }),
            }
        }

        for &occ in &defined {
            if required.contains(&occ) {
                continue;
            }
            let reason = match g.attr(occ.attr).class {
                AttrClass::Intrinsic => "intrinsic attributes are set by the parser",
                AttrClass::Synthesized => {
                    "synthesized attributes are defined by their LHS production"
                }
                AttrClass::Inherited => "inherited attributes are defined by their RHS production",
                AttrClass::Limb => "limb attribute of a different production",
            };
            errors.push(CheckError::IllegalTarget { prod, occ, reason });
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::grammar::AgBuilder;
    use crate::ids::AttrOcc;

    #[test]
    fn complete_grammar_passes() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let p = b.production(s, vec![], None);
        b.rule(p, vec![AttrOcc::lhs(v)], Expr::Int(1));
        b.start(s);
        let g = b.build().unwrap();
        assert!(check_completeness(&g).is_ok());
    }

    #[test]
    fn missing_synthesized_reported() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let p = b.production(s, vec![], None);
        b.start(s);
        let g = b.build().unwrap();
        let errs = check_completeness(&g).unwrap_err();
        assert_eq!(
            errs[0],
            CheckError::Undefined {
                prod: p,
                occ: AttrOcc::lhs(v)
            }
        );
    }

    #[test]
    fn missing_inherited_of_rhs_reported() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "V", "int");
        let t = b.nonterminal("T");
        let tv = b.synthesized(t, "V", "int");
        let ctx = b.inherited(t, "CTX", "env"); // never defined, name differs from S's attrs
        let p = b.production(s, vec![t], None);
        b.rule(p, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(0, tv)));
        let pt = b.production(t, vec![], None);
        b.rule(pt, vec![AttrOcc::lhs(tv)], Expr::Int(0));
        b.start(s);
        let g = b.build().unwrap();
        let errs = check_completeness(&g).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].prod(), p);
        assert_eq!(errs[0].occ(), AttrOcc::rhs(0, ctx));
    }

    #[test]
    fn double_definition_reported() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let p = b.production(s, vec![], None);
        b.rule(p, vec![AttrOcc::lhs(v)], Expr::Int(1));
        b.rule(p, vec![AttrOcc::lhs(v)], Expr::Int(2));
        b.start(s);
        let g = b.build().unwrap();
        let errs = check_completeness(&g).unwrap_err();
        assert!(matches!(
            errs[0],
            CheckError::MultiplyDefined { count: 2, .. }
        ));
    }

    #[test]
    fn defining_intrinsic_is_illegal() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p = b.production(s, vec![x], None);
        b.rule(p, vec![AttrOcc::lhs(v)], Expr::Int(0));
        b.rule(p, vec![AttrOcc::rhs(0, obj)], Expr::Int(9));
        b.start(s);
        let g = b.build().unwrap();
        let errs = check_completeness(&g).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, CheckError::IllegalTarget { reason, .. } if reason.contains("intrinsic"))));
    }

    #[test]
    fn defining_rhs_synthesized_is_illegal() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "V", "int");
        let t = b.nonterminal("T");
        let tv = b.synthesized(t, "V", "int");
        let p = b.production(s, vec![t], None);
        b.rule(p, vec![AttrOcc::lhs(sv)], Expr::Int(0));
        b.rule(p, vec![AttrOcc::rhs(0, tv)], Expr::Int(1)); // illegal
        let pt = b.production(t, vec![], None);
        b.rule(pt, vec![AttrOcc::lhs(tv)], Expr::Int(0));
        b.start(s);
        let g = b.build().unwrap();
        let errs = check_completeness(&g).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, CheckError::IllegalTarget { .. })));
    }
}
