//! Semantic-function expressions.
//!
//! Per §IV of the paper, the right-hand side of a semantic function may
//! contain: attribute occurrences; uninterpreted constants and calls of
//! uninterpreted external functions; "some standard infix operators
//! (+, -, AND, OR, =, <>, >, <)"; integer/boolean constants; and a
//! value-producing `if … then … elsif … else … endif` construct. Control
//! flow constructs may nest in the arms but "can not occur within the
//! operands of infix operators, or arguments to external functions" — the
//! front end enforces that shape; this module represents it.
//!
//! Multi-target semantic functions (Figure 5) carry one *arm list* per
//! branch: an [`Expr::If`] whose arms are lists assigns pairwise to the
//! target list.

use crate::ids::AttrOcc;
use linguist_support::intern::Name;
use std::fmt;

/// The standard infix operators of §IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `>`
    Gt,
    /// `<`
    Lt,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Gt => ">",
            BinOp::Lt => "<",
        };
        write!(f, "{}", s)
    }
}

/// A semantic-function expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// An attribute occurrence of the production.
    Occ(AttrOcc),
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// An uninterpreted constant (an identifier that is not a symbol,
    /// attribute, or type — §IV).
    Const(Name),
    /// A call of an uninterpreted external function.
    Call {
        /// Function name.
        func: Name,
        /// Arguments (control-flow-free per the paper's restriction).
        args: Vec<Expr>,
    },
    /// An infix operator application.
    Binop {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `if c1 then e1 elsif c2 then e2 … else eN endif`. Each arm is a
    /// *list* of expressions: length 1 for single-target functions, equal
    /// to the target count for multi-target functions (Figure 5).
    If {
        /// `(condition, arm)` pairs: the `if` and every `elsif`.
        branches: Vec<(Expr, Vec<Expr>)>,
        /// The `else` arm.
        otherwise: Vec<Expr>,
    },
}

impl Expr {
    /// Convenience: binary operation.
    pub fn binop(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binop {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience: two-way if with single-expression arms.
    pub fn ite(cond: Expr, then: Expr, otherwise: Expr) -> Expr {
        Expr::If {
            branches: vec![(cond, vec![then])],
            otherwise: vec![otherwise],
        }
    }

    /// Collect every attribute occurrence referenced (the rule's argument
    /// occurrences), in depth-first order with duplicates removed.
    pub fn arguments(&self) -> Vec<AttrOcc> {
        let mut out = Vec::new();
        self.collect_args(&mut out);
        out
    }

    fn collect_args(&self, out: &mut Vec<AttrOcc>) {
        match self {
            Expr::Occ(o) => {
                if !out.contains(o) {
                    out.push(*o);
                }
            }
            Expr::Int(_) | Expr::Bool(_) | Expr::Str(_) | Expr::Const(_) => {}
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_args(out);
                }
            }
            Expr::Binop { lhs, rhs, .. } => {
                lhs.collect_args(out);
                rhs.collect_args(out);
            }
            Expr::If {
                branches,
                otherwise,
            } => {
                for (c, arm) in branches {
                    c.collect_args(out);
                    for e in arm {
                        e.collect_args(out);
                    }
                }
                for e in otherwise {
                    e.collect_args(out);
                }
            }
        }
    }

    /// If this expression is a bare occurrence, return it. A single-target
    /// rule whose expression is a bare occurrence is a *copy-rule* — "a
    /// semantic function that copies attribute values around the APT
    /// without changing them".
    pub fn as_copy_source(&self) -> Option<AttrOcc> {
        match self {
            Expr::Occ(o) => Some(*o),
            _ => None,
        }
    }

    /// Arm width: how many targets this expression can define. Non-`if`
    /// expressions define 1; an `if` defines the common arm length.
    pub fn arm_width(&self) -> usize {
        match self {
            Expr::If {
                branches,
                otherwise,
            } => branches
                .first()
                .map(|(_, arm)| arm.len())
                .unwrap_or(otherwise.len()),
            _ => 1,
        }
    }

    /// Whether this expression can define `width` targets. An `if` must
    /// have arms of exactly that length; any other expression "is
    /// interpreted as the common value of all attribute-occurrences on the
    /// left-hand-side" (§IV) and fits any width.
    pub fn arms_consistent(&self, width: usize) -> bool {
        match self {
            Expr::If {
                branches,
                otherwise,
            } => branches.iter().all(|(_, arm)| arm.len() == width) && otherwise.len() == width,
            _ => width >= 1,
        }
    }

    /// Approximate "code size" of the expression in output-code bytes —
    /// the unit used by the pass-size and subsumption experiments. The
    /// estimate mirrors the rendered Pascal form: identifiers, operators
    /// and punctuation all count their textual length.
    pub fn code_size(&self) -> usize {
        match self {
            Expr::Occ(_) => 12, // NODE.ATTRNAME
            Expr::Int(i) => i.to_string().len(),
            Expr::Bool(_) => 5,
            Expr::Str(s) => s.len() + 2,
            Expr::Const(_) => 10,
            Expr::Call { args, .. } => {
                10 + 2 + args.iter().map(Expr::code_size).sum::<usize>() + 2 * args.len()
            }
            Expr::Binop { op, lhs, rhs } => {
                lhs.code_size() + rhs.code_size() + op.to_string().len() + 2
            }
            Expr::If {
                branches,
                otherwise,
            } => {
                let mut n = 6; // if/endif keywords amortized
                for (c, arm) in branches {
                    n += 8 + c.code_size();
                    n += arm.iter().map(Expr::code_size).sum::<usize>();
                }
                n += 6 + otherwise.iter().map(Expr::code_size).sum::<usize>();
                n
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AttrId, AttrOcc};

    fn occ(i: u32) -> AttrOcc {
        AttrOcc::lhs(AttrId(i))
    }

    #[test]
    fn arguments_deduplicate() {
        let e = Expr::binop(
            BinOp::Add,
            Expr::Occ(occ(1)),
            Expr::binop(BinOp::Add, Expr::Occ(occ(1)), Expr::Occ(occ(2))),
        );
        assert_eq!(e.arguments(), vec![occ(1), occ(2)]);
    }

    #[test]
    fn copy_source_detection() {
        assert_eq!(Expr::Occ(occ(5)).as_copy_source(), Some(occ(5)));
        assert_eq!(Expr::Int(1).as_copy_source(), None);
        let call = Expr::Call {
            func: linguist_support::intern::Name::from_index(0),
            args: vec![Expr::Occ(occ(5))],
        };
        assert_eq!(call.as_copy_source(), None, "a call is not a copy");
    }

    #[test]
    fn if_collects_all_arms() {
        let e = Expr::If {
            branches: vec![(Expr::Occ(occ(1)), vec![Expr::Occ(occ(2))])],
            otherwise: vec![Expr::Occ(occ(3))],
        };
        assert_eq!(e.arguments(), vec![occ(1), occ(2), occ(3)]);
    }

    #[test]
    fn arm_width_and_consistency() {
        let multi = Expr::If {
            branches: vec![(Expr::Bool(true), vec![Expr::Int(1), Expr::Int(2)])],
            otherwise: vec![Expr::Int(3), Expr::Int(4)],
        };
        assert_eq!(multi.arm_width(), 2);
        assert!(multi.arms_consistent(2));
        assert!(!multi.arms_consistent(1));
        assert!(Expr::Int(0).arms_consistent(1));
        // A non-if expression is the common value of all targets.
        assert!(Expr::Int(0).arms_consistent(2));
    }

    #[test]
    fn code_size_monotone_in_structure() {
        let small = Expr::Occ(occ(1));
        let big = Expr::binop(BinOp::Add, Expr::Occ(occ(1)), Expr::Occ(occ(2)));
        assert!(big.code_size() > small.code_size());
    }

    #[test]
    fn binop_display() {
        assert_eq!(BinOp::Ne.to_string(), "<>");
        assert_eq!(BinOp::And.to_string(), "AND");
    }
}
