//! Implicit copy-rule insertion (§IV).
//!
//! "Our formula for inserting these implicit copy-rules has two flavors:
//! one for synthesized attributes of the left-hand-side and one for
//! inherited attributes of the right-hand-side":
//!
//! * If `R.A` is an inherited attribute of RHS symbol `R` not defined by
//!   any semantic function of the production, and the LHS symbol `L` has
//!   an attribute named `A`, insert `R.A = L.A`.
//! * If `L.B` is a synthesized attribute of the LHS not defined by any
//!   semantic function, and exactly one RHS *symbol* `R` has a synthesized
//!   attribute named `B`, and `R` occurs exactly once in the RHS, insert
//!   `L.B = R.B`.
//!
//! This is the paper's implicit analogue of GAG's explicit `TRANSFER`.

use crate::expr::Expr;
use crate::grammar::{AttrClass, Grammar, RuleOrigin, SemRule};
use crate::ids::{AttrOcc, ProdId};

/// Statistics from one insertion run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ImplicitStats {
    /// Inherited-flavor rules inserted (`R.A = L.A`).
    pub inherited_inserted: usize,
    /// Synthesized-flavor rules inserted (`L.B = R.B`).
    pub synthesized_inserted: usize,
}

impl ImplicitStats {
    /// Total rules inserted.
    pub fn total(&self) -> usize {
        self.inherited_inserted + self.synthesized_inserted
    }
}

/// Insert implicit copy-rules into `g` wherever the §IV formula applies.
/// Returns how many rules of each flavor were added. Idempotent: running
/// twice adds nothing the second time.
pub fn insert_implicit_copies(g: &mut Grammar) -> ImplicitStats {
    let mut stats = ImplicitStats::default();
    let mut new_rules: Vec<SemRule> = Vec::new();

    for (pi, prod) in g.productions().iter().enumerate() {
        let prod_id = ProdId(pi as u32);
        let defined = g.defined_targets(prod_id);

        // Inherited flavor: every undefined inherited occurrence of every
        // RHS symbol.
        for (i, &rsym) in prod.rhs.iter().enumerate() {
            for &ra in &g.symbol(rsym).attrs {
                if g.attr(ra).class != AttrClass::Inherited {
                    continue;
                }
                let occ = AttrOcc::rhs(i as u16, ra);
                if defined.contains(&occ) {
                    continue;
                }
                // LHS attribute with the same name, any class.
                let aname = g.resolve(g.attr(ra).name).to_owned();
                if let Some(la) = g.attr_by_name(prod.lhs, &aname) {
                    new_rules.push(SemRule {
                        prod: prod_id,
                        targets: vec![occ],
                        expr: Expr::Occ(AttrOcc::lhs(la)),
                        origin: RuleOrigin::Implicit,
                    });
                    stats.inherited_inserted += 1;
                }
            }
        }

        // Synthesized flavor: every undefined synthesized occurrence of the
        // LHS.
        for &la in &g.symbol(prod.lhs).attrs {
            if g.attr(la).class != AttrClass::Synthesized {
                continue;
            }
            let occ = AttrOcc::lhs(la);
            if defined.contains(&occ) {
                continue;
            }
            let bname = g.resolve(g.attr(la).name).to_owned();
            // Distinct RHS symbols having a synthesized attribute named B.
            let mut candidates: Vec<(usize, crate::ids::AttrId)> = Vec::new();
            let mut symbols_with_b = Vec::new();
            for (i, &rsym) in prod.rhs.iter().enumerate() {
                if let Some(ra) = g.attr_by_name(rsym, &bname) {
                    if g.attr(ra).class == AttrClass::Synthesized {
                        candidates.push((i, ra));
                        if !symbols_with_b.contains(&rsym) {
                            symbols_with_b.push(rsym);
                        }
                    }
                }
            }
            // "exactly one symbol R … such that R has a synthesized
            // attribute named B, and … only one occurrence of R".
            if symbols_with_b.len() == 1 && candidates.len() == 1 {
                let (i, ra) = candidates[0];
                new_rules.push(SemRule {
                    prod: prod_id,
                    targets: vec![occ],
                    expr: Expr::Occ(AttrOcc::rhs(i as u16, ra)),
                    origin: RuleOrigin::Implicit,
                });
                stats.synthesized_inserted += 1;
            }
        }
    }

    for rule in new_rules {
        g.push_rule(rule);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::AgBuilder;
    use crate::ids::RuleId;

    /// root -> S ; S -> S x | x, with an inherited ENV and synthesized VAL
    /// everywhere, no explicit copy rules.
    fn skeleton() -> Grammar {
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "VAL", "int");
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "VAL", "int");
        let se = b.inherited(s, "ENV", "env");
        let x = b.terminal("x");
        b.intrinsic(x, "OBJ", "int");

        let p_root = b.production(root, vec![s], None);
        // ENV of S must be seeded explicitly at the root (no same-name LHS
        // attribute to copy from).
        b.rule(p_root, vec![AttrOcc::rhs(0, se)], Expr::Int(0));
        // VAL: left implicit (root.VAL = S.VAL expected).
        let _ = rv;

        let _p_rec = b.production(s, vec![s, x], None);
        let _p_base = b.production(s, vec![x], None);
        // S.VAL in p_base has no synthesized source: define explicitly.
        let p_base = ProdId(2);
        b.rule(p_base, vec![AttrOcc::lhs(sv)], Expr::Int(7));
        b.start(root);
        b.build().unwrap()
    }

    #[test]
    fn inserts_both_flavors() {
        let mut g = skeleton();
        let before = g.rules().len();
        let stats = insert_implicit_copies(&mut g);
        // Inherited: S.ENV in p_rec (rhs S). Synthesized: root.VAL in
        // p_root, S.VAL in p_rec (from inner S).
        assert_eq!(stats.inherited_inserted, 1);
        assert_eq!(stats.synthesized_inserted, 2);
        assert_eq!(g.rules().len(), before + 3);
        for r in g.rules().iter().skip(before) {
            assert_eq!(r.origin, RuleOrigin::Implicit);
            assert!(r.is_copy());
        }
    }

    #[test]
    fn idempotent() {
        let mut g = skeleton();
        insert_implicit_copies(&mut g);
        let n = g.rules().len();
        let stats = insert_implicit_copies(&mut g);
        assert_eq!(stats.total(), 0);
        assert_eq!(g.rules().len(), n);
    }

    #[test]
    fn synthesized_flavor_requires_unique_source() {
        // S -> T T : T.VAL exists on both occurrences, so no implicit rule
        // for S.VAL may be inserted.
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        b.synthesized(s, "VAL", "int");
        let t = b.nonterminal("T");
        let tv = b.synthesized(t, "VAL", "int");
        b.production(s, vec![t, t], None);
        let pt = b.production(t, vec![], None);
        b.rule(pt, vec![AttrOcc::lhs(tv)], Expr::Int(0));
        b.start(s);
        let mut g = b.build().unwrap();
        let stats = insert_implicit_copies(&mut g);
        assert_eq!(stats.synthesized_inserted, 0);
    }

    #[test]
    fn does_not_override_explicit_rules() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "VAL", "int");
        let t = b.nonterminal("T");
        let tv = b.synthesized(t, "VAL", "int");
        let p = b.production(s, vec![t], None);
        b.rule(p, vec![AttrOcc::lhs(sv)], Expr::Int(42)); // explicit
        let pt = b.production(t, vec![], None);
        b.rule(pt, vec![AttrOcc::lhs(tv)], Expr::Int(0));
        b.start(s);
        let mut g = b.build().unwrap();
        let stats = insert_implicit_copies(&mut g);
        assert_eq!(stats.total(), 0);
        assert_eq!(g.rule(RuleId(0)).origin, RuleOrigin::Explicit);
    }

    #[test]
    fn inherited_flavor_requires_same_name_on_lhs() {
        // S has no ENV, T wants one: no implicit rule possible.
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "VAL", "int");
        let t = b.nonterminal("T");
        let tv = b.synthesized(t, "VAL", "int");
        b.inherited(t, "ENV", "env");
        let p = b.production(s, vec![t], None);
        b.rule(p, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(0, tv)));
        let pt = b.production(t, vec![], None);
        b.rule(pt, vec![AttrOcc::lhs(tv)], Expr::Int(0));
        b.start(s);
        let mut g = b.build().unwrap();
        let stats = insert_implicit_copies(&mut g);
        assert_eq!(stats.inherited_inserted, 0);
    }
}
