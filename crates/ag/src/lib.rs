//! The attribute-grammar core of the LINGUIST-86 reproduction.
//!
//! This crate holds the paper's primary contribution as a library:
//!
//! * the attribute-grammar **model** — [`grammar`] with its three symbol
//!   kinds (terminal / nonterminal / limb), four attribute classes
//!   (synthesized / inherited / intrinsic / limb), and multi-target
//!   semantic functions ([`expr`]);
//! * the **implicit copy-rule** mechanism of §IV ([`implicit`]);
//! * the **completeness check** of §I ([`check`]);
//! * the polynomial sufficient **non-circularity test** ([`circularity`]);
//! * the **alternating-pass evaluability analysis** of §II ([`passes`]):
//!   assigning every attribute to one of a sequence of alternating
//!   left-to-right / right-to-left passes;
//! * the **temporary/significant lifetime split** of §III ([`lifetime`]):
//!   deciding which attribute instances must travel through the
//!   intermediate APT files;
//! * **static subsumption** (§III, the paper's headline optimization):
//!   allocating same-named attributes to global variables so copy-rules
//!   vanish ([`subsumption`]);
//! * per-pass, per-production **evaluation plans** ([`plan`]) — the ordered
//!   production-procedure bodies both the runtime interpreter
//!   (`linguist-eval`) and the source generator (`linguist-codegen`)
//!   execute;
//! * grammar **statistics** ([`stats`]) matching the profile the paper
//!   reports for LINGUIST-86's own 1800-line grammar;
//! * [`analysis`] — the orchestrator running all of the above in order;
//! * the **lint framework** ([`lint`]) — coded `AG0xx` diagnostics
//!   explaining what the analyses decided and why (unused attributes,
//!   residual copy-rules, the dependencies that force each pass, …);
//! * the **grammar optimizer** ([`dataflow`]) — a monotone dataflow
//!   framework over the attribute dependency graph, with constant
//!   folding, copy-chain collapsing, dead-attribute elimination, and
//!   per-production change-impact closures, run before scheduling
//!   when [`analysis::Config::optimize`] is set.
//!
//! # Example
//!
//! ```
//! use linguist_ag::grammar::AgBuilder;
//! use linguist_ag::ids::AttrOcc;
//! use linguist_ag::expr::Expr;
//! use linguist_ag::analysis::{Analysis, Config};
//!
//! // S -> x  with  S.V = x.OBJ
//! let mut b = AgBuilder::new();
//! let s = b.nonterminal("S");
//! let v = b.synthesized(s, "V", "int");
//! let x = b.terminal("x");
//! let obj = b.intrinsic(x, "OBJ", "int");
//! let p = b.production(s, vec![x], None);
//! b.rule(p, vec![AttrOcc::lhs(v)], Expr::Occ(AttrOcc::rhs(0, obj)));
//! b.start(s);
//! let g = b.build()?;
//!
//! let analysis = Analysis::run(g, &Config::default())?;
//! assert_eq!(analysis.passes.num_passes(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analysis;
pub mod check;
pub mod circularity;
pub mod dataflow;
pub mod expr;
pub mod grammar;
pub mod ids;
pub mod implicit;
pub mod lifetime;
pub mod lint;
pub mod passes;
pub mod plan;
pub mod stats;
pub mod subsumption;

pub use analysis::{Analysis, AnalysisError, Config};
pub use dataflow::{OptKind, OptNote, OptReport};
pub use expr::{BinOp, Expr};
pub use grammar::{AgBuilder, AttrClass, Attribute, Grammar, Production, SemRule, SymbolKind};
pub use ids::{AttrId, AttrOcc, OccPos, ProdId, RuleId, SymbolId};
pub use lint::{Finding, LintConfig, SpanMap};
pub use stats::{GrammarProfile, GrammarStats};
