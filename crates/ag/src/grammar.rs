//! The attribute-grammar model: symbols, attributes, productions, semantic
//! functions.
//!
//! The model follows §I and §IV of the paper directly:
//!
//! * three kinds of symbols — terminals, nonterminals, and **limb** symbols
//!   (the per-production symbols whose attributes name common
//!   subexpressions and which synchronize production identification with
//!   the parser);
//! * four attribute classes — synthesized, inherited, **intrinsic** (set by
//!   the parser before any pass) and limb attributes;
//! * productions with an optional limb and a list of semantic functions,
//!   where one semantic function may define several attribute occurrences
//!   (Figure 5).

use crate::expr::Expr;
use crate::ids::{AttrId, AttrOcc, OccPos, ProdId, RuleId, SymbolId};
use linguist_support::intern::{Name, NameTable};
use std::fmt;

/// What kind of grammar symbol this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SymbolKind {
    /// A token of the underlying context-free grammar.
    Terminal,
    /// A phrase symbol.
    Nonterminal,
    /// The "third type of grammar symbol" (§IV): names a production and
    /// carries common-subexpression attributes.
    Limb,
}

/// Classification of an attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AttrClass {
    /// Defined by its LHS production; flows up the tree.
    Synthesized,
    /// Defined by its RHS production; flows down the tree.
    Inherited,
    /// "Already defined before attribute evaluation starts" — set by the
    /// parser on terminal leaves (§IV).
    Intrinsic,
    /// A limb attribute: a named common subexpression of one production.
    Limb,
}

/// A grammar symbol.
#[derive(Clone, Debug)]
pub struct Symbol {
    /// Interned name.
    pub name: Name,
    /// Kind.
    pub kind: SymbolKind,
    /// Attributes, in declaration order.
    pub attrs: Vec<AttrId>,
}

/// An attribute of one symbol.
#[derive(Clone, Debug)]
pub struct Attribute {
    /// Owning symbol.
    pub symbol: SymbolId,
    /// Interned attribute name (the unit static subsumption groups by).
    pub name: Name,
    /// Classification.
    pub class: AttrClass,
    /// Uninterpreted type name (§IV: "the types of attributes are
    /// uninterpreted identifiers").
    pub type_name: Name,
}

/// How a semantic function came to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleOrigin {
    /// Written in the input grammar.
    Explicit,
    /// Inserted by the implicit-copy-rule mechanism of §IV.
    Implicit,
}

/// A semantic function: `targets = expr`.
#[derive(Clone, Debug)]
pub struct SemRule {
    /// The production this rule belongs to.
    pub prod: ProdId,
    /// Defined occurrences (one for ordinary rules; several for Figure-5
    /// multi-target rules).
    pub targets: Vec<AttrOcc>,
    /// The defining expression.
    pub expr: Expr,
    /// Explicit or implicit.
    pub origin: RuleOrigin,
}

impl SemRule {
    /// Whether this is a copy-rule: a single target defined by a bare
    /// occurrence.
    pub fn is_copy(&self) -> bool {
        self.targets.len() == 1 && self.expr.as_copy_source().is_some()
    }

    /// For a copy-rule, its source occurrence.
    pub fn copy_source(&self) -> Option<AttrOcc> {
        if self.targets.len() == 1 {
            self.expr.as_copy_source()
        } else {
            None
        }
    }

    /// All argument occurrences of the rule.
    pub fn arguments(&self) -> Vec<AttrOcc> {
        self.expr.arguments()
    }
}

/// A production, possibly with a limb symbol.
#[derive(Clone, Debug)]
pub struct Production {
    /// Left-hand-side nonterminal.
    pub lhs: SymbolId,
    /// Right-hand-side symbols (terminals and nonterminals).
    pub rhs: Vec<SymbolId>,
    /// The limb symbol, if the production has non-trivial semantics.
    pub limb: Option<SymbolId>,
    /// Semantic functions (global rule ids).
    pub rules: Vec<RuleId>,
}

/// Errors detected while assembling a grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The start symbol is not a nonterminal.
    StartNotNonterminal(String),
    /// A limb symbol was used on a production's LHS or RHS.
    LimbInProduction(String),
    /// A production's LHS is not a nonterminal.
    LhsNotNonterminal(String),
    /// A terminal was given a non-intrinsic, non-inherited attribute.
    BadTerminalAttr(String, String),
    /// A limb symbol was given a non-limb attribute (or vice versa).
    BadLimbAttr(String, String),
    /// The start symbol has inherited attributes.
    StartHasInherited(String),
    /// An attribute was declared twice on one symbol.
    DuplicateAttr(String, String),
    /// No start symbol was set.
    NoStart,
    /// A rule target's position is out of range or its attribute does not
    /// belong to the symbol at that position.
    BadOccurrence(String),
    /// A multi-target rule's `if` arms don't match the target count.
    ArmMismatch(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::StartNotNonterminal(s) => {
                write!(f, "start symbol `{}` is not a nonterminal", s)
            }
            BuildError::LimbInProduction(s) => {
                write!(f, "limb symbol `{}` cannot appear in a production body", s)
            }
            BuildError::LhsNotNonterminal(s) => {
                write!(f, "production LHS `{}` is not a nonterminal", s)
            }
            BuildError::BadTerminalAttr(s, a) => write!(
                f,
                "terminal `{}` may only have intrinsic or inherited attributes, `{}` is neither",
                s, a
            ),
            BuildError::BadLimbAttr(s, a) => {
                write!(
                    f,
                    "attribute `{}` on `{}` has the wrong class for the symbol",
                    a, s
                )
            }
            BuildError::StartHasInherited(s) => {
                write!(f, "start symbol `{}` has inherited attributes", s)
            }
            BuildError::DuplicateAttr(s, a) => {
                write!(f, "attribute `{}` declared twice on `{}`", a, s)
            }
            BuildError::NoStart => write!(f, "no start symbol set"),
            BuildError::BadOccurrence(msg) => write!(f, "bad attribute occurrence: {}", msg),
            BuildError::ArmMismatch(msg) => write!(f, "if-arm/target mismatch: {}", msg),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Grammar`].
#[derive(Debug, Default, Clone)]
pub struct AgBuilder {
    names: NameTable,
    symbols: Vec<Symbol>,
    attrs: Vec<Attribute>,
    productions: Vec<Production>,
    rules: Vec<SemRule>,
    start: Option<SymbolId>,
    errors: Vec<BuildError>,
}

impl AgBuilder {
    /// An empty builder.
    pub fn new() -> AgBuilder {
        AgBuilder::default()
    }

    fn symbol(&mut self, name: &str, kind: SymbolKind) -> SymbolId {
        let n = self.names.intern(name);
        if let Some(ix) = self.symbols.iter().position(|s| s.name == n) {
            return SymbolId(ix as u32);
        }
        self.symbols.push(Symbol {
            name: n,
            kind,
            attrs: Vec::new(),
        });
        SymbolId(self.symbols.len() as u32 - 1)
    }

    /// Declare (or fetch) a terminal.
    pub fn terminal(&mut self, name: &str) -> SymbolId {
        self.symbol(name, SymbolKind::Terminal)
    }

    /// Declare (or fetch) a nonterminal.
    pub fn nonterminal(&mut self, name: &str) -> SymbolId {
        self.symbol(name, SymbolKind::Nonterminal)
    }

    /// Declare (or fetch) a limb symbol.
    pub fn limb(&mut self, name: &str) -> SymbolId {
        self.symbol(name, SymbolKind::Limb)
    }

    fn attr(&mut self, sym: SymbolId, name: &str, class: AttrClass, ty: &str) -> AttrId {
        let n = self.names.intern(name);
        let t = self.names.intern(ty);
        if self.symbols[sym.0 as usize]
            .attrs
            .iter()
            .any(|&a| self.attrs[a.0 as usize].name == n)
        {
            let sname = self
                .names
                .resolve(self.symbols[sym.0 as usize].name)
                .to_owned();
            self.errors
                .push(BuildError::DuplicateAttr(sname, name.to_owned()));
        }
        self.attrs.push(Attribute {
            symbol: sym,
            name: n,
            class,
            type_name: t,
        });
        let id = AttrId(self.attrs.len() as u32 - 1);
        self.symbols[sym.0 as usize].attrs.push(id);
        id
    }

    /// Declare a synthesized attribute on `sym`.
    pub fn synthesized(&mut self, sym: SymbolId, name: &str, ty: &str) -> AttrId {
        self.attr(sym, name, AttrClass::Synthesized, ty)
    }

    /// Declare an inherited attribute on `sym`.
    pub fn inherited(&mut self, sym: SymbolId, name: &str, ty: &str) -> AttrId {
        self.attr(sym, name, AttrClass::Inherited, ty)
    }

    /// Declare an intrinsic attribute on terminal `sym`.
    pub fn intrinsic(&mut self, sym: SymbolId, name: &str, ty: &str) -> AttrId {
        self.attr(sym, name, AttrClass::Intrinsic, ty)
    }

    /// Declare a limb attribute on limb symbol `sym`.
    pub fn limb_attr(&mut self, sym: SymbolId, name: &str, ty: &str) -> AttrId {
        self.attr(sym, name, AttrClass::Limb, ty)
    }

    /// Add a production.
    pub fn production(
        &mut self,
        lhs: SymbolId,
        rhs: Vec<SymbolId>,
        limb: Option<SymbolId>,
    ) -> ProdId {
        self.productions.push(Production {
            lhs,
            rhs,
            limb,
            rules: Vec::new(),
        });
        ProdId(self.productions.len() as u32 - 1)
    }

    /// Add a semantic function to production `prod`.
    pub fn rule(&mut self, prod: ProdId, targets: Vec<AttrOcc>, expr: Expr) -> RuleId {
        let id = RuleId(self.rules.len() as u32);
        self.rules.push(SemRule {
            prod,
            targets,
            expr,
            origin: RuleOrigin::Explicit,
        });
        self.productions[prod.0 as usize].rules.push(id);
        id
    }

    /// Set the start symbol.
    pub fn start(&mut self, sym: SymbolId) {
        self.start = Some(sym);
    }

    /// Intern a name for use in expressions (function names, constants).
    pub fn name(&mut self, text: &str) -> Name {
        self.names.intern(text)
    }

    /// Finish and validate the structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first [`BuildError`] found; see that type for the full
    /// catalogue.
    pub fn build(self) -> Result<Grammar, BuildError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        let start = self.start.ok_or(BuildError::NoStart)?;
        let g = Grammar {
            names: self.names,
            symbols: self.symbols,
            attrs: self.attrs,
            productions: self.productions,
            rules: self.rules,
            start,
        };
        g.validate()?;
        Ok(g)
    }
}

/// A structurally valid attribute grammar.
#[derive(Debug, Clone)]
pub struct Grammar {
    names: NameTable,
    symbols: Vec<Symbol>,
    attrs: Vec<Attribute>,
    productions: Vec<Production>,
    rules: Vec<SemRule>,
    start: SymbolId,
}

impl Grammar {
    fn validate(&self) -> Result<(), BuildError> {
        let sname = |s: SymbolId| {
            self.names
                .resolve(self.symbols[s.0 as usize].name)
                .to_owned()
        };
        if self.symbols[self.start.0 as usize].kind != SymbolKind::Nonterminal {
            return Err(BuildError::StartNotNonterminal(sname(self.start)));
        }
        for a in self.symbols[self.start.0 as usize].attrs.iter() {
            if self.attrs[a.0 as usize].class == AttrClass::Inherited {
                return Err(BuildError::StartHasInherited(sname(self.start)));
            }
        }
        for (ai, a) in self.attrs.iter().enumerate() {
            let kind = self.symbols[a.symbol.0 as usize].kind;
            let aname = self.names.resolve(a.name).to_owned();
            let ok = match kind {
                SymbolKind::Terminal => {
                    matches!(a.class, AttrClass::Intrinsic | AttrClass::Inherited)
                }
                SymbolKind::Nonterminal => {
                    matches!(a.class, AttrClass::Synthesized | AttrClass::Inherited)
                }
                SymbolKind::Limb => a.class == AttrClass::Limb,
            };
            if !ok {
                let s = sname(a.symbol);
                return Err(if kind == SymbolKind::Terminal {
                    BuildError::BadTerminalAttr(s, aname)
                } else {
                    BuildError::BadLimbAttr(s, aname)
                });
            }
            let _ = ai;
        }
        for (pi, p) in self.productions.iter().enumerate() {
            if self.symbols[p.lhs.0 as usize].kind != SymbolKind::Nonterminal {
                return Err(BuildError::LhsNotNonterminal(sname(p.lhs)));
            }
            for &s in &p.rhs {
                if self.symbols[s.0 as usize].kind == SymbolKind::Limb {
                    return Err(BuildError::LimbInProduction(sname(s)));
                }
            }
            if let Some(l) = p.limb {
                if self.symbols[l.0 as usize].kind != SymbolKind::Limb {
                    return Err(BuildError::LimbInProduction(sname(l)));
                }
            }
            for &r in &p.rules {
                let rule = &self.rules[r.0 as usize];
                let width = rule.targets.len();
                if !rule.expr.arms_consistent(width) {
                    return Err(BuildError::ArmMismatch(format!(
                        "production {}: rule defines {} targets",
                        pi, width
                    )));
                }
                for occ in rule.targets.iter().copied().chain(rule.arguments()) {
                    self.check_occ(ProdId(pi as u32), occ)?;
                }
            }
        }
        Ok(())
    }

    fn check_occ(&self, prod: ProdId, occ: AttrOcc) -> Result<(), BuildError> {
        let Some(sym) = self.symbol_at(prod, occ.pos) else {
            return Err(BuildError::BadOccurrence(format!(
                "production {}: no symbol at {}",
                prod.0, occ.pos
            )));
        };
        let attr = &self.attrs[occ.attr.0 as usize];
        if attr.symbol != sym {
            return Err(BuildError::BadOccurrence(format!(
                "production {}: attribute `{}` does not belong to `{}` at {}",
                prod.0,
                self.names.resolve(attr.name),
                self.names.resolve(self.symbols[sym.0 as usize].name),
                occ.pos,
            )));
        }
        Ok(())
    }

    /// The symbol at a position of a production.
    pub fn symbol_at(&self, prod: ProdId, pos: OccPos) -> Option<SymbolId> {
        let p = &self.productions[prod.0 as usize];
        match pos {
            OccPos::Lhs => Some(p.lhs),
            OccPos::Rhs(i) => p.rhs.get(i as usize).copied(),
            OccPos::Limb => p.limb,
        }
    }

    /// The start symbol.
    pub fn start(&self) -> SymbolId {
        self.start
    }

    /// All symbols.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// All attributes.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// All productions.
    pub fn productions(&self) -> &[Production] {
        &self.productions
    }

    /// All semantic functions (explicit and implicit).
    pub fn rules(&self) -> &[SemRule] {
        &self.rules
    }

    /// One symbol.
    pub fn symbol(&self, s: SymbolId) -> &Symbol {
        &self.symbols[s.0 as usize]
    }

    /// One attribute.
    pub fn attr(&self, a: AttrId) -> &Attribute {
        &self.attrs[a.0 as usize]
    }

    /// One production.
    pub fn production(&self, p: ProdId) -> &Production {
        &self.productions[p.0 as usize]
    }

    /// One rule.
    pub fn rule(&self, r: RuleId) -> &SemRule {
        &self.rules[r.0 as usize]
    }

    /// Symbol name text.
    pub fn symbol_name(&self, s: SymbolId) -> &str {
        self.names.resolve(self.symbols[s.0 as usize].name)
    }

    /// Attribute name text.
    pub fn attr_name(&self, a: AttrId) -> &str {
        self.names.resolve(self.attrs[a.0 as usize].name)
    }

    /// Resolve an interned name.
    pub fn resolve(&self, n: Name) -> &str {
        self.names.resolve(n)
    }

    /// The attribute named `name` on `sym`, if declared.
    pub fn attr_by_name(&self, sym: SymbolId, name: &str) -> Option<AttrId> {
        let n = self.names.get(name)?;
        self.symbols[sym.0 as usize]
            .attrs
            .iter()
            .copied()
            .find(|&a| self.attrs[a.0 as usize].name == n)
    }

    /// The symbol named `name`, if declared.
    pub fn symbol_by_name(&self, name: &str) -> Option<SymbolId> {
        let n = self.names.get(name)?;
        self.symbols
            .iter()
            .position(|s| s.name == n)
            .map(|i| SymbolId(i as u32))
    }

    /// Add an (implicit) rule — used by the implicit-copy-rule pass.
    pub(crate) fn push_rule(&mut self, rule: SemRule) -> RuleId {
        let id = RuleId(self.rules.len() as u32);
        let prod = rule.prod;
        self.rules.push(rule);
        self.productions[prod.0 as usize].rules.push(id);
        id
    }

    /// Mutable access to one rule — used by the optimizer's transforms.
    pub(crate) fn rule_mut(&mut self, r: RuleId) -> &mut SemRule {
        &mut self.rules[r.0 as usize]
    }

    /// Drop every rule whose `keep` slot is false, compacting the global
    /// rule vector and rewriting each production's rule list. Returns the
    /// old-id → new-id remap so side tables indexed by `RuleId` (lint
    /// spans) can follow the move.
    pub(crate) fn retain_rules(&mut self, keep: &[bool]) -> Vec<Option<RuleId>> {
        debug_assert_eq!(keep.len(), self.rules.len());
        let mut remap: Vec<Option<RuleId>> = vec![None; self.rules.len()];
        let mut next = 0u32;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                remap[i] = Some(RuleId(next));
                next += 1;
            }
        }
        let mut i = 0;
        self.rules.retain(|_| {
            let kept = keep[i];
            i += 1;
            kept
        });
        for p in &mut self.productions {
            p.rules = p
                .rules
                .iter()
                .filter_map(|&r| remap[r.0 as usize])
                .collect();
        }
        remap
    }

    /// Detach an attribute from its owning symbol's declaration list. The
    /// `Attribute` record itself stays — `AttrId`s are never renumbered,
    /// because serialized outputs and span tables embed the raw ids — but
    /// a detached attribute vanishes from the storage layout, the
    /// required-target sets, and the pass schedule.
    pub(crate) fn detach_attr(&mut self, a: AttrId) {
        let sym = self.attrs[a.0 as usize].symbol;
        self.symbols[sym.0 as usize].attrs.retain(|&x| x != a);
    }

    /// Every attribute occurrence a production's rules must define: all
    /// synthesized attributes of the LHS, all inherited attributes of each
    /// RHS occurrence, and all limb attributes (§I + §IV).
    pub fn required_targets(&self, prod: ProdId) -> Vec<AttrOcc> {
        let p = &self.productions[prod.0 as usize];
        let mut out = Vec::new();
        for &a in &self.symbols[p.lhs.0 as usize].attrs {
            if self.attrs[a.0 as usize].class == AttrClass::Synthesized {
                out.push(AttrOcc::lhs(a));
            }
        }
        for (i, &s) in p.rhs.iter().enumerate() {
            for &a in &self.symbols[s.0 as usize].attrs {
                if self.attrs[a.0 as usize].class == AttrClass::Inherited {
                    out.push(AttrOcc::rhs(i as u16, a));
                }
            }
        }
        if let Some(l) = p.limb {
            for &a in &self.symbols[l.0 as usize].attrs {
                out.push(AttrOcc::limb(a));
            }
        }
        out
    }

    /// The occurrences actually defined by a production's rules (with
    /// multiplicity, for duplicate detection).
    pub fn defined_targets(&self, prod: ProdId) -> Vec<AttrOcc> {
        self.productions[prod.0 as usize]
            .rules
            .iter()
            .flat_map(|&r| self.rules[r.0 as usize].targets.iter().copied())
            .collect()
    }

    /// Total number of attribute occurrences across all productions (the
    /// paper's "1202 attribute-occurrences" statistic): for each
    /// production, every attribute of every symbol occurrence (LHS, RHS,
    /// limb).
    pub fn num_occurrences(&self) -> usize {
        self.productions
            .iter()
            .map(|p| {
                let mut n = self.symbols[p.lhs.0 as usize].attrs.len();
                for &s in &p.rhs {
                    n += self.symbols[s.0 as usize].attrs.len();
                }
                if let Some(l) = p.limb {
                    n += self.symbols[l.0 as usize].attrs.len();
                }
                n
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn build_minimal_grammar() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "VAL", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p = b.production(s, vec![x], None);
        b.rule(p, vec![AttrOcc::lhs(v)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.start(s);
        let g = b.build().unwrap();
        assert_eq!(g.symbols().len(), 2);
        assert_eq!(g.attrs().len(), 2);
        assert_eq!(g.rules().len(), 1);
        assert!(g.rule(RuleId(0)).is_copy());
    }

    #[test]
    fn start_must_be_nonterminal() {
        let mut b = AgBuilder::new();
        let x = b.terminal("x");
        let s = b.nonterminal("S");
        b.production(s, vec![x], None);
        b.start(x);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::StartNotNonterminal(_)
        ));
    }

    #[test]
    fn start_cannot_have_inherited() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        b.inherited(s, "ENV", "env");
        b.production(s, vec![], None);
        b.start(s);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::StartHasInherited(_)
        ));
    }

    #[test]
    fn terminal_cannot_have_synthesized() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let x = b.terminal("x");
        b.synthesized(x, "BAD", "int");
        b.production(s, vec![x], None);
        b.start(s);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::BadTerminalAttr(_, _)
        ));
    }

    #[test]
    fn limb_cannot_appear_in_rhs() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let l = b.limb("L");
        b.production(s, vec![l], None);
        b.start(s);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::LimbInProduction(_)
        ));
    }

    #[test]
    fn occurrence_must_match_symbol() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "VAL", "int");
        let t = b.nonterminal("T");
        let w = b.synthesized(t, "W", "int");
        let p = b.production(s, vec![], None);
        b.production(t, vec![], None);
        // Rule references T's attribute on S's production LHS.
        b.rule(p, vec![AttrOcc::lhs(w)], Expr::Int(0));
        let _ = v;
        b.start(s);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::BadOccurrence(_)
        ));
    }

    #[test]
    fn duplicate_attr_rejected() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        b.synthesized(s, "A", "int");
        b.synthesized(s, "A", "int");
        b.production(s, vec![], None);
        b.start(s);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::DuplicateAttr(_, _)
        ));
    }

    #[test]
    fn required_targets_cover_syn_inh_limb() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "V", "int");
        let si = b.inherited(s, "E", "env");
        let t = b.nonterminal("T");
        let tv = b.synthesized(t, "V", "int");
        let ti = b.inherited(t, "E", "env");
        let l = b.limb("P");
        let le = b.limb_attr(l, "TMP", "int");
        // S -> T T with limb P. (Start S has inherited E? No — make another
        // start wrapper.)
        let root = b.nonterminal("Root");
        let rv = b.synthesized(root, "V", "int");
        let p0 = b.production(root, vec![s], None);
        b.rule(p0, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(0, sv)));
        b.rule(p0, vec![AttrOcc::rhs(0, si)], Expr::Int(0));
        let p = b.production(s, vec![t, t], Some(l));
        b.start(root);
        // fill rules for p so build passes occurrence checks trivially
        b.rule(p, vec![AttrOcc::lhs(sv)], Expr::Int(1));
        b.rule(p, vec![AttrOcc::rhs(0, ti)], Expr::Occ(AttrOcc::lhs(si)));
        b.rule(p, vec![AttrOcc::rhs(1, ti)], Expr::Occ(AttrOcc::lhs(si)));
        b.rule(p, vec![AttrOcc::limb(le)], Expr::Int(2));
        let pt = b.production(t, vec![], None);
        b.rule(pt, vec![AttrOcc::lhs(tv)], Expr::Int(3));
        let g = b.build().unwrap();
        let req = g.required_targets(p);
        assert_eq!(req.len(), 4); // S.V syn, T.E ×2, limb TMP
        assert!(req.contains(&AttrOcc::lhs(sv)));
        assert!(req.contains(&AttrOcc::rhs(0, ti)));
        assert!(req.contains(&AttrOcc::rhs(1, ti)));
        assert!(req.contains(&AttrOcc::limb(le)));
    }

    #[test]
    fn num_occurrences_counts_all_positions() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let x = b.terminal("x");
        b.intrinsic(x, "OBJ", "int");
        let p = b.production(s, vec![x, x], None);
        b.rule(p, vec![AttrOcc::lhs(v)], Expr::Int(0));
        b.start(s);
        let g = b.build().unwrap();
        // LHS S has 1 attr, two x occurrences have 1 each = 3.
        assert_eq!(g.num_occurrences(), 3);
    }

    #[test]
    fn arm_mismatch_rejected() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v1 = b.synthesized(s, "A", "int");
        let v2 = b.synthesized(s, "B", "int");
        let p = b.production(s, vec![], None);
        // Two targets, but arms of width 1.
        b.rule(
            p,
            vec![AttrOcc::lhs(v1), AttrOcc::lhs(v2)],
            Expr::ite(Expr::Bool(true), Expr::Int(1), Expr::Int(2)),
        );
        b.start(s);
        assert!(matches!(b.build().unwrap_err(), BuildError::ArmMismatch(_)));
    }
}
