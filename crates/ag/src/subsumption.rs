//! Static subsumption (§III) — "the really important optimization".
//!
//! Attributes may be *statically allocated* to global variables;
//! "LINGUIST-86 allocates all static attributes with the same name to the
//! same global variable". A copy-rule whose source and target are
//! instances allocated to the same global needs **no code at all** — the
//! proper value is already in the global. The price is paid where a static
//! attribute is defined by something *other* than a subsumable copy-rule:
//! there the old global value must be saved in a stack temporary around
//! the sub-APT visit and restored afterwards.
//!
//! The selection algorithm is the paper's: "start by assuming that all
//! attributes are statically allocated. Each attribute is then checked to
//! see if it costs more in code size for it to be static than it would if
//! it were normally allocated … all remaining static attributes must be
//! reexamined until the process stabilizes. This is an n-cubed algorithm
//! and it does not always find an optimal set." The check compares the
//! copy-rule code a static attribute eliminates against the save/restore
//! code it induces, under an explicit [`SubsumptionCosts`] model.
//!
//! A second, more aggressive grouping ("Static subsumption can be even
//! more widely applied by allocating several different attributes to the
//! same global variable", with the restriction that two attributes of the
//! same symbol may not share) is available as
//! [`GroupMode::CoalesceCopies`] and drives the E13 ablation.

use crate::grammar::{AttrClass, Grammar};
use crate::ids::{AttrId, RuleId};
use crate::passes::PassAssignment;
use linguist_support::intern::Name;
use std::collections::HashMap;

/// Relative code-size costs used by the keep-static check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubsumptionCosts {
    /// Bytes of code one explicit copy-rule would generate.
    pub copy: usize,
    /// Bytes of save/set/restore code one non-subsumed definition of a
    /// static attribute generates.
    pub save_restore: usize,
}

impl Default for SubsumptionCosts {
    fn default() -> SubsumptionCosts {
        // "In general, the extra code necessary to save/restore a global
        // variable is as much as the code saved by subsuming several
        // copy-rules" — a save/restore site costs a few copies' worth.
        SubsumptionCosts {
            copy: 12,
            save_restore: 45,
        }
    }
}

/// How attributes are grouped onto global variables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GroupMode {
    /// The paper's production rule: one global per attribute *name*.
    #[default]
    SameName,
    /// The paper's extension: also coalesce differently-named attributes
    /// connected by copy-rules (union-find), subject to the
    /// same-symbol restriction.
    CoalesceCopies,
}

/// Identifier of a global variable (a group of attributes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u32);

/// The computed static-subsumption allocation.
#[derive(Clone, Debug)]
pub struct Subsumption {
    /// Per attribute: whether it is statically allocated.
    is_static: Vec<bool>,
    /// Per attribute: its global-variable group.
    group_of: Vec<GroupId>,
    /// Group display names (attribute name, or joined names for coalesced
    /// groups).
    group_names: Vec<String>,
    /// Per rule: whether the rule is subsumed (generates no code).
    subsumed: Vec<bool>,
    /// Costs used.
    costs: SubsumptionCosts,
}

/// Aggregate statistics for the experiment tables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubsumptionStats {
    /// Number of statically allocated attributes.
    pub static_attrs: usize,
    /// Total eligible attributes.
    pub eligible_attrs: usize,
    /// Copy-rules in the grammar.
    pub copy_rules: usize,
    /// Copy-rules eliminated (subsumed).
    pub subsumed_rules: usize,
    /// Non-subsumed definitions of static attributes (each pays
    /// save/restore).
    pub save_restore_sites: usize,
}

impl Subsumption {
    /// Run the allocation algorithm. `passes` (when available) restricts
    /// subsumption to copies whose source and target live in the same
    /// pass — the global variables only carry current-pass information
    /// between production-procedures; a value from an earlier pass sits in
    /// the node record, so copying it cannot be elided.
    pub fn compute(
        g: &Grammar,
        mode: GroupMode,
        costs: SubsumptionCosts,
        passes: Option<&PassAssignment>,
    ) -> Subsumption {
        let n = g.attrs().len();
        let group_assign = assign_groups(g, mode);

        // Eligibility: only inherited and synthesized attributes take part
        // (intrinsics are parser-set leaf data; limb attributes are
        // production-local temporaries).
        let eligible: Vec<bool> = g
            .attrs()
            .iter()
            .map(|a| matches!(a.class, AttrClass::Inherited | AttrClass::Synthesized))
            .collect();

        // Start with every eligible attribute static (the paper's seed).
        // The decision unit is the allocation unit: the *group* sharing
        // one global variable ("LINGUIST-86 allocates all static
        // attributes with the same name to the same global variable").
        // A group earns its global when the copy-rules it subsumes, taken
        // together, outweigh the save/restore sites its other definitions
        // induce — the paper's observation that allocating all same-named
        // inherited attributes together is effective "because this context
        // information is not often updated".
        let num_groups = group_assign.group_names.len();
        let mut group_static = vec![true; num_groups];
        let mut is_static: Vec<bool> = eligible.clone();

        // Reexamine until stable (the n³ loop; one round suffices for
        // same-name groups, coalesced groupings can cascade).
        loop {
            let mut changed = false;
            #[allow(clippy::needless_range_loop)] // mutates the same vec
            for gix in 0..num_groups {
                if !group_static[gix] {
                    continue;
                }
                let (subsumable, other_defs) = classify_group_defs(
                    g,
                    GroupId(gix as u32),
                    &is_static,
                    &group_assign.group_of,
                    passes,
                );
                let benefit = subsumable * costs.copy;
                let cost = other_defs * costs.save_restore;
                if benefit < cost || subsumable == 0 {
                    group_static[gix] = false;
                    for ai in 0..n {
                        if group_assign.group_of[ai] == GroupId(gix as u32) {
                            is_static[ai] = false;
                        }
                    }
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Final subsumed-rule marking.
        let subsumed: Vec<bool> = g
            .rules()
            .iter()
            .map(|r| {
                rule_subsumable(
                    r.targets.first().copied().filter(|_| r.targets.len() == 1),
                    r.copy_source(),
                    &is_static,
                    &group_assign.group_of,
                    passes,
                )
            })
            .collect();

        Subsumption {
            is_static,
            group_of: group_assign.group_of,
            group_names: group_assign.group_names,
            subsumed,
            costs,
        }
    }

    /// The no-op allocation: nothing static, nothing subsumed — the
    /// "without static subsumption" configuration of the paper's
    /// with/without comparison.
    pub fn disabled(g: &Grammar) -> Subsumption {
        let assign = assign_groups(g, GroupMode::SameName);
        Subsumption {
            is_static: vec![false; g.attrs().len()],
            group_of: assign.group_of,
            group_names: assign.group_names,
            subsumed: vec![false; g.rules().len()],
            costs: SubsumptionCosts::default(),
        }
    }

    /// Whether attribute `a` is statically allocated.
    pub fn is_static(&self, a: AttrId) -> bool {
        self.is_static[a.0 as usize]
    }

    /// The global-variable group of `a` (meaningful whether or not `a`
    /// ended up static).
    pub fn group_of(&self, a: AttrId) -> GroupId {
        self.group_of[a.0 as usize]
    }

    /// Display name of a group.
    pub fn group_name(&self, gr: GroupId) -> &str {
        &self.group_names[gr.0 as usize]
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.group_names.len()
    }

    /// Whether rule `r` is subsumed (generates no code).
    pub fn is_subsumed(&self, r: RuleId) -> bool {
        self.subsumed[r.0 as usize]
    }

    /// The cost model used.
    pub fn costs(&self) -> SubsumptionCosts {
        self.costs
    }

    /// Aggregate statistics.
    pub fn stats(&self, g: &Grammar) -> SubsumptionStats {
        let mut s = SubsumptionStats {
            eligible_attrs: g
                .attrs()
                .iter()
                .filter(|a| matches!(a.class, AttrClass::Inherited | AttrClass::Synthesized))
                .count(),
            static_attrs: self.is_static.iter().filter(|&&b| b).count(),
            ..SubsumptionStats::default()
        };
        for (ri, r) in g.rules().iter().enumerate() {
            if r.is_copy() {
                s.copy_rules += 1;
            }
            if self.subsumed[ri] {
                s.subsumed_rules += 1;
            } else if r.targets.iter().any(|t| self.is_static[t.attr.0 as usize]) {
                s.save_restore_sites += 1;
            }
        }
        s
    }
}

struct GroupAssign {
    group_of: Vec<GroupId>,
    group_names: Vec<String>,
}

fn assign_groups(g: &Grammar, mode: GroupMode) -> GroupAssign {
    let n = g.attrs().len();
    match mode {
        GroupMode::SameName => {
            let mut by_name: HashMap<Name, GroupId> = HashMap::new();
            let mut names = Vec::new();
            let mut group_of = Vec::with_capacity(n);
            for a in g.attrs() {
                let next = GroupId(names.len() as u32);
                let id = *by_name.entry(a.name).or_insert_with(|| {
                    names.push(g.resolve(a.name).to_owned());
                    next
                });
                group_of.push(id);
            }
            GroupAssign {
                group_of,
                group_names: names,
            }
        }
        GroupMode::CoalesceCopies => {
            // Union-find seeded by name groups, then merged across
            // copy-rules, refusing merges that would put two attributes of
            // one symbol in one global.
            let mut parent: Vec<usize> = (0..n).collect();
            fn find(parent: &mut Vec<usize>, x: usize) -> usize {
                if parent[x] != x {
                    let r = find(parent, parent[x]);
                    parent[x] = r;
                }
                parent[x]
            }
            let violates = |parent: &mut Vec<usize>, a: usize, b: usize, g: &Grammar| -> bool {
                // Would merging a's and b's classes co-locate two
                // attributes of the same symbol?
                let ra = find(parent, a);
                let rb = find(parent, b);
                if ra == rb {
                    return false;
                }
                let mut symbols = Vec::new();
                for x in 0..parent.len() {
                    let r = find(parent, x);
                    if r == ra || r == rb {
                        let s = g.attr(AttrId(x as u32)).symbol;
                        if symbols.contains(&s) {
                            return true;
                        }
                        symbols.push(s);
                    }
                }
                false
            };
            // Seed: same-name merges (the production rule), same
            // restriction applies trivially (same symbol can't declare one
            // name twice).
            let mut by_name: HashMap<Name, usize> = HashMap::new();
            for (ai, a) in g.attrs().iter().enumerate() {
                if let Some(&first) = by_name.get(&a.name) {
                    let (ra, rb) = (find(&mut parent, first), find(&mut parent, ai));
                    if ra != rb {
                        parent[rb] = ra;
                    }
                } else {
                    by_name.insert(a.name, ai);
                }
            }
            // Extension: merge across copy rules.
            for r in g.rules() {
                let (Some(t), Some(s)) = (r.targets.first(), r.copy_source()) else {
                    continue;
                };
                let (ta, sa) = (t.attr.0 as usize, s.attr.0 as usize);
                if !violates(&mut parent, ta, sa, g) {
                    let (ra, rb) = (find(&mut parent, ta), find(&mut parent, sa));
                    if ra != rb {
                        parent[rb] = ra;
                    }
                }
            }
            // Number the classes.
            let mut id_of_root: HashMap<usize, GroupId> = HashMap::new();
            let mut names: Vec<String> = Vec::new();
            let mut group_of = Vec::with_capacity(n);
            for ai in 0..n {
                let root = find(&mut parent, ai);
                let next = GroupId(names.len() as u32);
                let id = *id_of_root.entry(root).or_insert_with(|| {
                    names.push(g.resolve(g.attrs()[root].name).to_owned());
                    next
                });
                group_of.push(id);
            }
            GroupAssign {
                group_of,
                group_names: names,
            }
        }
    }
}

/// Count, over all rules defining any member of group `gr`, how many are
/// subsumable copy-rules and how many are "other" definitions (which pay
/// save/restore while the group is static).
fn classify_group_defs(
    g: &Grammar,
    gr: GroupId,
    is_static: &[bool],
    group_of: &[GroupId],
    passes: Option<&PassAssignment>,
) -> (usize, usize) {
    let mut subsumable = 0;
    let mut other = 0;
    for r in g.rules() {
        let hits = r
            .targets
            .iter()
            .filter(|t| group_of[t.attr.0 as usize] == gr && is_static[t.attr.0 as usize])
            .count();
        if hits == 0 {
            continue;
        }
        if rule_subsumable(
            r.targets.first().copied().filter(|_| r.targets.len() == 1),
            r.copy_source(),
            is_static,
            group_of,
            passes,
        ) {
            subsumable += 1;
        } else {
            other += hits;
        }
    }
    (subsumable, other)
}

fn rule_subsumable(
    target: Option<crate::ids::AttrOcc>,
    source: Option<crate::ids::AttrOcc>,
    is_static: &[bool],
    group_of: &[GroupId],
    passes: Option<&PassAssignment>,
) -> bool {
    match (target, source) {
        (Some(t), Some(s)) => {
            is_static[t.attr.0 as usize]
                && is_static[s.attr.0 as usize]
                && group_of[t.attr.0 as usize] == group_of[s.attr.0 as usize]
                && passes.is_none_or(|p| p.pass_of(t.attr) == p.pass_of(s.attr))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::grammar::AgBuilder;
    use crate::ids::AttrOcc;

    /// A copy-chain grammar: ENV copied down a list; VAL computed.
    /// root -> S; S -> S x | x.
    fn copy_chain() -> Grammar {
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "VAL", "int");
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "VAL", "int");
        let se = b.inherited(s, "ENV", "env");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p0 = b.production(root, vec![s], None);
        b.rule(p0, vec![AttrOcc::rhs(0, se)], Expr::Int(0)); // seed: non-copy
        b.rule(p0, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(0, sv)));
        let p1 = b.production(s, vec![s, x], None);
        b.rule(p1, vec![AttrOcc::rhs(0, se)], Expr::Occ(AttrOcc::lhs(se))); // copy S.ENV = S0.ENV
        b.rule(p1, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(0, sv))); // copy VAL up
        let p2 = b.production(s, vec![x], None);
        let lookup = b.name("Lookup");
        b.rule(
            p2,
            vec![AttrOcc::lhs(sv)],
            Expr::Call {
                func: lookup,
                args: vec![Expr::Occ(AttrOcc::lhs(se)), Expr::Occ(AttrOcc::rhs(0, obj))],
            },
        );
        b.start(root);
        b.build().unwrap()
    }

    #[test]
    fn env_chain_stays_static_and_copies_subsume() {
        let g = copy_chain();
        // In this miniature grammar ENV has one copy-rule against one
        // seeding definition; pick costs where one subsumed copy pays for
        // one save/restore. (In the paper's 1800-line grammar the ratio is
        // dozens of copies per seed, so the default costs keep ENV static
        // there.)
        let sub = Subsumption::compute(
            &g,
            GroupMode::SameName,
            SubsumptionCosts {
                copy: 20,
                save_restore: 10,
            },
            None,
        );
        let s = g.symbol_by_name("S").unwrap();
        let se = g.attr_by_name(s, "ENV").unwrap();
        assert!(sub.is_static(se), "ENV participates in a pure copy chain");
        let stats = sub.stats(&g);
        assert!(stats.subsumed_rules >= 1, "ENV copy subsumed: {:?}", stats);
        // The ENV copy-rule (rule index 2) must be subsumed.
        assert!(sub.is_subsumed(RuleId(2)));
    }

    #[test]
    fn attribute_without_subsumable_copies_drops_out() {
        // VAL on root: defined only by a copy *from S.VAL* — both named
        // VAL, so that stays; but an attribute defined only by non-copies
        // must not stay static.
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "VAL", "int");
        let p = b.production(s, vec![], None);
        b.rule(p, vec![AttrOcc::lhs(sv)], Expr::Int(1)); // non-copy only
        b.start(s);
        let g = b.build().unwrap();
        let sub = Subsumption::compute(&g, GroupMode::SameName, SubsumptionCosts::default(), None);
        assert!(!sub.is_static(sv));
        assert_eq!(sub.stats(&g).subsumed_rules, 0);
    }

    #[test]
    fn cascade_reexamination_drops_dependent_attributes() {
        // A.N copied from B.N; B.N defined only by expensive non-copies.
        // Once B.N drops out of the static set, A.N's only copy source is
        // non-static, so A.N must drop too (the paper's reexamination).
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "OUT", "int");
        let aa = b.nonterminal("A");
        let an = b.synthesized(aa, "N", "int");
        let bb = b.nonterminal("B");
        let bn = b.synthesized(bb, "N", "int");
        let p0 = b.production(root, vec![aa], None);
        b.rule(p0, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(0, an)));
        let p1 = b.production(aa, vec![bb], None);
        b.rule(p1, vec![AttrOcc::lhs(an)], Expr::Occ(AttrOcc::rhs(0, bn))); // the one copy
        let p2 = b.production(bb, vec![], None);
        b.rule(p2, vec![AttrOcc::lhs(bn)], Expr::Int(5)); // non-copy
        let p3 = b.production(bb, vec![], None);
        b.rule(p3, vec![AttrOcc::lhs(bn)], Expr::Int(7)); // non-copy
        b.start(root);
        let g = b.build().unwrap();
        // Costs where one subsumed copy cannot pay for two save/restores.
        let costs = SubsumptionCosts {
            copy: 10,
            save_restore: 30,
        };
        let sub = Subsumption::compute(&g, GroupMode::SameName, costs, None);
        assert!(!sub.is_static(bn), "B.N: 0 subsumable vs 2 non-copy defs");
        assert!(
            !sub.is_static(an),
            "A.N loses its subsumable copy once B.N is not static"
        );
    }

    #[test]
    fn cheap_save_restore_keeps_more_static() {
        let g = copy_chain();
        let generous = SubsumptionCosts {
            copy: 100,
            save_restore: 1,
        };
        let stingy = SubsumptionCosts {
            copy: 1,
            save_restore: 1000,
        };
        let s_gen = Subsumption::compute(&g, GroupMode::SameName, generous, None).stats(&g);
        let s_sti = Subsumption::compute(&g, GroupMode::SameName, stingy, None).stats(&g);
        assert!(s_gen.static_attrs >= s_sti.static_attrs);
        assert!(s_gen.subsumed_rules >= s_sti.subsumed_rules);
    }

    #[test]
    fn coalesce_mode_subsumes_cross_name_copies() {
        // S.A = T.B is a cross-name copy: SameName cannot subsume it,
        // CoalesceCopies can. T.B itself earns its static status through a
        // same-name copy chain (T -> T x), as the paper's per-attribute
        // check requires.
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "OUT", "int");
        let s = b.nonterminal("S");
        let sa = b.synthesized(s, "A", "int");
        let t = b.nonterminal("T");
        let tb = b.synthesized(t, "B", "int");
        let x = b.terminal("x");
        let p0 = b.production(root, vec![s], None);
        b.rule(p0, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(0, sa)));
        let p1 = b.production(s, vec![t], None);
        b.rule(p1, vec![AttrOcc::lhs(sa)], Expr::Occ(AttrOcc::rhs(0, tb))); // cross-name copy
        let p2 = b.production(t, vec![t, x], None);
        b.rule(p2, vec![AttrOcc::lhs(tb)], Expr::Occ(AttrOcc::rhs(0, tb))); // same-name copy
        let p3 = b.production(t, vec![x], None);
        b.rule(p3, vec![AttrOcc::lhs(tb)], Expr::Int(3)); // the seed
        b.start(root);
        let g = b.build().unwrap();
        let costs = SubsumptionCosts {
            copy: 50,
            save_restore: 10,
        };
        let same = Subsumption::compute(&g, GroupMode::SameName, costs, None);
        let coal = Subsumption::compute(&g, GroupMode::CoalesceCopies, costs, None);
        // SameName: only the T.B = T.B chain copy subsumes.
        assert_eq!(same.stats(&g).subsumed_rules, 1);
        // Coalesced: the cross-name copies join in.
        assert!(coal.stats(&g).subsumed_rules > same.stats(&g).subsumed_rules);
        assert_eq!(coal.group_of(sa), coal.group_of(tb));
    }

    #[test]
    fn coalesce_respects_same_symbol_restriction() {
        // S.A = S1.B would coalesce A and B, but both live on S: must be
        // refused ("two different attributes of the same symbol can not be
        // allocated to the same global variable").
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "OUT", "int");
        let s = b.nonterminal("S");
        let sa = b.synthesized(s, "A", "int");
        let sb = b.synthesized(s, "B", "int");
        let x = b.terminal("x");
        let p0 = b.production(root, vec![s], None);
        b.rule(p0, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(0, sa)));
        let p1 = b.production(s, vec![s], None);
        b.rule(p1, vec![AttrOcc::lhs(sa)], Expr::Occ(AttrOcc::rhs(0, sb))); // cross-name, same symbol
        b.rule(p1, vec![AttrOcc::lhs(sb)], Expr::Int(0));
        let p2 = b.production(s, vec![x], None);
        b.rule(p2, vec![AttrOcc::lhs(sa)], Expr::Int(1));
        b.rule(p2, vec![AttrOcc::lhs(sb)], Expr::Int(2));
        b.start(root);
        let g = b.build().unwrap();
        let coal = Subsumption::compute(
            &g,
            GroupMode::CoalesceCopies,
            SubsumptionCosts::default(),
            None,
        );
        assert_ne!(coal.group_of(sa), coal.group_of(sb));
    }

    #[test]
    fn group_names_are_attribute_names() {
        let g = copy_chain();
        let sub = Subsumption::compute(&g, GroupMode::SameName, SubsumptionCosts::default(), None);
        let s = g.symbol_by_name("S").unwrap();
        let se = g.attr_by_name(s, "ENV").unwrap();
        assert_eq!(sub.group_name(sub.group_of(se)), "ENV");
        assert!(sub.num_groups() >= 3); // ENV, VAL, OBJ at least
    }
}
