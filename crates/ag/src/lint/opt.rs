//! AG013–AG015: what the grammar optimizer did, with spans.
//!
//! These lints translate the [`OptReport`](crate::dataflow::OptReport)
//! notes into coded findings: AG013 for materialized constants, AG014
//! for eliminated dead attributes/rules, AG015 for collapsed copy
//! chains. They fire only when the optimizer ran; `linguist check
//! --opt=off` shows none, which is itself the ablation story.

use super::{attr_name, codes, Finding, SpanMap};
use crate::analysis::Analysis;
use crate::dataflow::{OptKind, OptNote};
use linguist_support::diag::Severity;
use linguist_support::json::Json;

fn code_for(kind: OptKind) -> &'static str {
    match kind {
        OptKind::Folded => codes::OPT_FOLDED,
        OptKind::Eliminated => codes::OPT_ELIMINATED,
        OptKind::Collapsed => codes::OPT_COLLAPSED,
    }
}

fn payload(a: &Analysis, note: &OptNote) -> Json {
    let mut obj = Vec::new();
    if let Some(attr) = note.attr {
        obj.push(("attr".to_string(), Json::str(&attr_name(&a.grammar, attr))));
    }
    if let Some(prod) = note.prod {
        obj.push(("production".to_string(), Json::int(prod.0 as i64)));
    }
    Json::Obj(obj)
}

/// One finding per optimizer note. Spans anchor at the attribute
/// declaration (productions are never deleted and attribute ids are
/// never renumbered, so both lookups stay valid post-transform).
pub fn run(a: &Analysis, spans: &SpanMap) -> Vec<Finding> {
    let Some(report) = &a.opt else {
        return Vec::new();
    };
    report
        .notes
        .iter()
        .map(|note| {
            let span = match (note.attr, note.prod) {
                (Some(attr), _) => spans.attr(attr),
                (None, Some(prod)) => spans.production(prod),
                (None, None) => Default::default(),
            };
            Finding {
                code: code_for(note.kind),
                severity: Severity::Note,
                span,
                message: note.message.clone(),
                payload: payload(a, note),
            }
        })
        .collect()
}
