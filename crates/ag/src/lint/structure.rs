//! Structural lints: analyses that need nothing beyond a built grammar.
//!
//! AG001 (unused attributes), AG002 (unreachable nonterminals), AG003
//! (unproductive nonterminals), AG009 (same-named attributes with
//! conflicting types).

use super::{attr_name, codes, Finding, SpanMap};
use crate::grammar::{AttrClass, Grammar, RuleOrigin, SymbolKind};
use crate::ids::{AttrId, SymbolId};
use linguist_support::diag::Severity;
use linguist_support::json::Json;
use std::collections::HashMap;

/// Run all structural lints, in code order.
pub fn run(g: &Grammar, spans: &SpanMap) -> Vec<Finding> {
    let mut out = Vec::new();
    unused_attributes(g, spans, &mut out);
    unreachable_symbols(g, spans, &mut out);
    unproductive_symbols(g, spans, &mut out);
    shadowed_attributes(g, spans, &mut out);
    out
}

/// AG001: an attribute no semantic function ever reads.
///
/// "Consumed" counts arguments of every rule, implicit copies included
/// — an attribute that only feeds a copy chain is doing work.
/// Synthesized attributes of the start symbol are the translator's
/// outputs and are exempt. Severity tiers on whether real computation
/// is being thrown away: a warning when at least one explicit rule
/// *computes* the value from other attributes (that work is wasted and
/// the definition is likely a bug), a note when every definition is a
/// constant, a copy, or the parser's intrinsic mechanism — the usual
/// shape of a deliberate protocol default that nothing happens to read.
fn unused_attributes(g: &Grammar, spans: &SpanMap, out: &mut Vec<Finding>) {
    let n = g.attrs().len();
    let mut consumed = vec![false; n];
    let mut explicit_defs = vec![0u32; n];
    let mut computed_defs = vec![0u32; n];
    for r in g.rules() {
        for arg in r.arguments() {
            consumed[arg.attr.0 as usize] = true;
        }
        if r.origin == RuleOrigin::Explicit {
            for t in &r.targets {
                explicit_defs[t.attr.0 as usize] += 1;
                if !r.arguments().is_empty() {
                    computed_defs[t.attr.0 as usize] += 1;
                }
            }
        }
    }
    for i in 0..n {
        let a = AttrId(i as u32);
        let attr = g.attr(a);
        if consumed[i] {
            continue;
        }
        if attr.symbol == g.start() && attr.class == AttrClass::Synthesized {
            continue; // a translator output
        }
        if !g.symbol(attr.symbol).attrs.contains(&a) {
            // Detached by the optimizer's dead-attribute elimination:
            // already reported as AG014, with the storage actually freed.
            continue;
        }
        let severity = if computed_defs[i] > 0 {
            Severity::Warning
        } else {
            Severity::Note
        };
        let name = attr_name(g, a);
        let class = format!("{:?}", attr.class).to_ascii_lowercase();
        out.push(Finding {
            code: codes::UNUSED_ATTRIBUTE,
            severity,
            span: spans.attr(a),
            message: format!("{} attribute {} is never consumed", class, name),
            payload: Json::Obj(vec![
                ("attr".to_string(), Json::str(&name)),
                ("class".to_string(), Json::str(&class)),
                (
                    "explicit_definitions".to_string(),
                    Json::int(explicit_defs[i] as i64),
                ),
                (
                    "computed_definitions".to_string(),
                    Json::int(computed_defs[i] as i64),
                ),
            ]),
        });
    }
}

/// AG002: a nonterminal no derivation from the start symbol reaches.
fn unreachable_symbols(g: &Grammar, spans: &SpanMap, out: &mut Vec<Finding>) {
    let n = g.symbols().len();
    let mut reachable = vec![false; n];
    reachable[g.start().0 as usize] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for p in g.productions() {
            if !reachable[p.lhs.0 as usize] {
                continue;
            }
            for &s in p.rhs.iter().chain(p.limb.iter()) {
                if !reachable[s.0 as usize] {
                    reachable[s.0 as usize] = true;
                    changed = true;
                }
            }
        }
    }
    for (i, seen) in reachable.iter().enumerate() {
        let s = SymbolId(i as u32);
        if *seen || g.symbol(s).kind != SymbolKind::Nonterminal {
            continue;
        }
        let name = g.symbol_name(s).to_owned();
        out.push(Finding {
            code: codes::UNREACHABLE_SYMBOL,
            severity: Severity::Warning,
            span: spans.symbol(s),
            message: format!(
                "nonterminal {} is unreachable from the start symbol {}",
                name,
                g.symbol_name(g.start())
            ),
            payload: Json::Obj(vec![("symbol".to_string(), Json::str(&name))]),
        });
    }
}

/// AG003: a nonterminal that derives no terminal string. Terminals are
/// productive by definition; limb symbols are semantic carriers, not
/// part of the derivation, and are skipped on both sides.
fn unproductive_symbols(g: &Grammar, spans: &SpanMap, out: &mut Vec<Finding>) {
    let mut productive: Vec<bool> = g
        .symbols()
        .iter()
        .map(|s| s.kind == SymbolKind::Terminal)
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for p in g.productions() {
            if productive[p.lhs.0 as usize] {
                continue;
            }
            if p.rhs.iter().all(|&s| productive[s.0 as usize]) {
                productive[p.lhs.0 as usize] = true;
                changed = true;
            }
        }
    }
    for (i, ok) in productive.iter().enumerate() {
        let s = SymbolId(i as u32);
        if *ok || g.symbol(s).kind != SymbolKind::Nonterminal {
            continue;
        }
        let name = g.symbol_name(s).to_owned();
        let num_prods = g.productions().iter().filter(|p| p.lhs == s).count();
        out.push(Finding {
            code: codes::UNPRODUCTIVE_SYMBOL,
            severity: Severity::Warning,
            span: spans.symbol(s),
            message: format!("nonterminal {} derives no terminal string", name),
            payload: Json::Obj(vec![
                ("symbol".to_string(), Json::str(&name)),
                ("productions".to_string(), Json::int(num_prods as i64)),
            ]),
        });
    }
}

/// AG009: attributes sharing one name but declared with different
/// types on different symbols. Same-name attributes are what the
/// implicit-copy mechanism (§IV) and static subsumption (§III) group
/// by, so a type mismatch inside such a family is almost always a
/// typo. Differing *classes* under one name (inherited on one symbol,
/// synthesized on another) are ordinary paper idiom and not flagged.
fn shadowed_attributes(g: &Grammar, spans: &SpanMap, out: &mut Vec<Finding>) {
    // First declaration of each attribute name wins; later conflicting
    // declarations are reported at their own site.
    let mut first: HashMap<&str, AttrId> = HashMap::new();
    for i in 0..g.attrs().len() {
        let a = AttrId(i as u32);
        let name = g.attr_name(a);
        let Some(&earlier) = first.get(name) else {
            first.insert(name, a);
            continue;
        };
        let ty = g.resolve(g.attr(a).type_name);
        let earlier_ty = g.resolve(g.attr(earlier).type_name);
        if ty == earlier_ty {
            continue;
        }
        let here = attr_name(g, a);
        let there = attr_name(g, earlier);
        out.push(Finding {
            code: codes::SHADOWED_ATTRIBUTE,
            severity: Severity::Warning,
            span: spans.attr(a),
            message: format!(
                "attribute {} has type {} but {} was declared earlier with type {}",
                here, ty, there, earlier_ty
            ),
            payload: Json::Obj(vec![
                ("attr".to_string(), Json::str(&here)),
                ("type".to_string(), Json::str(ty)),
                ("earlier".to_string(), Json::str(&there)),
                ("earlier_type".to_string(), Json::str(earlier_ty)),
            ]),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::grammar::AgBuilder;
    use crate::ids::AttrOcc;

    fn findings_with(out: &[Finding], code: &str) -> Vec<String> {
        out.iter()
            .filter(|f| f.code == code)
            .map(|f| f.message.clone())
            .collect()
    }

    #[test]
    fn unused_computed_attribute_is_a_warning() {
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let out_a = b.synthesized(root, "OUT", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let s = b.nonterminal("S");
        let dead = b.synthesized(s, "DEAD", "int");
        let p = b.production(root, vec![s], None);
        b.rule(p, vec![AttrOcc::lhs(out_a)], Expr::Int(1));
        let ps = b.production(s, vec![x], None);
        // DEAD is *computed* from real data, then never read: a warning.
        b.rule(
            ps,
            vec![AttrOcc::lhs(dead)],
            Expr::binop(
                crate::expr::BinOp::Add,
                Expr::Occ(AttrOcc::rhs(0, obj)),
                Expr::Int(2),
            ),
        );
        b.start(root);
        let g = b.build().unwrap();
        let out = run(&g, &SpanMap::empty());
        let unused = findings_with(&out, codes::UNUSED_ATTRIBUTE);
        assert_eq!(unused.len(), 1, "{:?}", unused);
        assert!(unused[0].contains("S.DEAD"));
        let f = out
            .iter()
            .find(|f| f.code == codes::UNUSED_ATTRIBUTE)
            .unwrap();
        assert_eq!(f.severity, Severity::Warning);
        assert_eq!(
            f.payload.get("explicit_definitions").and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(
            f.payload.get("computed_definitions").and_then(Json::as_i64),
            Some(1)
        );
    }

    #[test]
    fn unused_constant_attribute_is_a_note() {
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let out_a = b.synthesized(root, "OUT", "int");
        let s = b.nonterminal("S");
        let dead = b.synthesized(s, "CNT", "int");
        let p = b.production(root, vec![s], None);
        b.rule(p, vec![AttrOcc::lhs(out_a)], Expr::Int(1));
        let ps = b.production(s, vec![], None);
        // A constant default nothing reads: flagged, but only a note.
        b.rule(ps, vec![AttrOcc::lhs(dead)], Expr::Int(0));
        b.start(root);
        let g = b.build().unwrap();
        let out = run(&g, &SpanMap::empty());
        let f = out
            .iter()
            .find(|f| f.code == codes::UNUSED_ATTRIBUTE)
            .unwrap();
        assert!(f.message.contains("S.CNT"));
        assert_eq!(f.severity, Severity::Note);
        assert_eq!(
            f.payload.get("computed_definitions").and_then(Json::as_i64),
            Some(0)
        );
    }

    #[test]
    fn unused_intrinsic_is_a_note_and_root_output_exempt() {
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let out_a = b.synthesized(root, "OUT", "int");
        let x = b.terminal("x");
        b.intrinsic(x, "OBJ", "int"); // parser sets it; nothing reads it
        let p = b.production(root, vec![x], None);
        b.rule(p, vec![AttrOcc::lhs(out_a)], Expr::Int(1));
        b.start(root);
        let g = b.build().unwrap();
        let out = run(&g, &SpanMap::empty());
        let unused: Vec<&Finding> = out
            .iter()
            .filter(|f| f.code == codes::UNUSED_ATTRIBUTE)
            .collect();
        // root.OUT is exempt (translator output); x.OBJ is a note.
        assert_eq!(unused.len(), 1);
        assert!(unused[0].message.contains("x.OBJ"));
        assert_eq!(unused[0].severity, Severity::Note);
    }

    #[test]
    fn unreachable_and_unproductive_reported() {
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let out_a = b.synthesized(root, "OUT", "int");
        let x = b.terminal("x");
        let island = b.nonterminal("island"); // no productions reach it
        let _ = island;
        let bottom = b.nonterminal("bottom"); // reachable but loops forever
        let p = b.production(root, vec![x, bottom], None);
        b.rule(p, vec![AttrOcc::lhs(out_a)], Expr::Int(1));
        b.production(bottom, vec![bottom], None); // bottom ::= bottom
        b.start(root);
        let g = b.build().unwrap();
        let out = run(&g, &SpanMap::empty());
        let unreachable = findings_with(&out, codes::UNREACHABLE_SYMBOL);
        assert_eq!(unreachable.len(), 1, "{:?}", unreachable);
        assert!(unreachable[0].contains("island"));
        let unproductive = findings_with(&out, codes::UNPRODUCTIVE_SYMBOL);
        // island (no productions) and bottom (self-loop) fail directly,
        // and root fails transitively (its only production needs bottom).
        assert_eq!(unproductive.len(), 3, "{:?}", unproductive);
        assert!(unproductive.iter().any(|m| m.contains("bottom")));
        assert!(unproductive.iter().any(|m| m.contains("island")));
        assert!(unproductive.iter().any(|m| m.contains("root")));
    }

    #[test]
    fn conflicting_types_under_one_name_reported_once() {
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let v1 = b.synthesized(root, "VAL", "int");
        let s = b.nonterminal("S");
        let v2 = b.synthesized(s, "VAL", "str"); // type conflict
        let t = b.nonterminal("T");
        let v3 = b.synthesized(t, "VAL", "int"); // same as first: fine
        let p = b.production(root, vec![s, t], None);
        b.rule(p, vec![AttrOcc::lhs(v1)], Expr::Occ(AttrOcc::rhs(1, v3)));
        let ps = b.production(s, vec![], None);
        b.rule(ps, vec![AttrOcc::lhs(v2)], Expr::Int(9)); // types are uninterpreted
        let pt = b.production(t, vec![], None);
        b.rule(pt, vec![AttrOcc::lhs(v3)], Expr::Int(0));
        b.start(root);
        let g = b.build().unwrap();
        let out = run(&g, &SpanMap::empty());
        let shadowed = findings_with(&out, codes::SHADOWED_ATTRIBUTE);
        assert_eq!(shadowed.len(), 1, "{:?}", shadowed);
        assert!(shadowed[0].contains("S.VAL"));
        assert!(shadowed[0].contains("root.VAL"));
    }
}
