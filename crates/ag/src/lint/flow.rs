//! Flow lints: analyses over the pass assignment, lifetimes, and
//! static subsumption of a successfully analyzed grammar.
//!
//! AG004 (residual copy-rules, with the reason subsumption left each
//! one behind — the paper's 75-of-154 residue), AG005 (the attribute
//! dependencies that forced each pass beyond the first), AG008
//! (attributes whose live range spans many passes).

use super::{attr_name, codes, occ_name, Finding, LintConfig, SpanMap};
use crate::analysis::Analysis;
use crate::grammar::{Grammar, RuleOrigin};
use crate::ids::{AttrId, RuleId};
use crate::passes::explain_pass_blockers;
use linguist_support::diag::Severity;
use linguist_support::json::Json;

/// Run all flow lints, in code order.
pub fn run(a: &Analysis, spans: &SpanMap, cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    if cfg.explain_residual_copies {
        residual_copies(a, spans, &mut out);
    }
    pass_blockers(a, spans, &mut out);
    lifetime_hotspots(a, spans, cfg, &mut out);
    out
}

/// AG004: copy-rules static subsumption (§III) could not eliminate,
/// each with the specific disqualifier. The paper reports 75 of
/// meta's 154 copy-rules subsumed; this lint names the other 79 and
/// says why each survived.
fn residual_copies(a: &Analysis, spans: &SpanMap, out: &mut Vec<Finding>) {
    let g = &a.grammar;
    let sub = &a.subsumption;
    for (ri, r) in g.rules().iter().enumerate() {
        let rule = RuleId(ri as u32);

        // Multi-target rules copying one source (Figure 5 style) are
        // never subsumption candidates: the single-target shape is a
        // precondition, not a cost decision.
        if r.targets.len() > 1 && r.expr.as_copy_source().is_some() {
            push_residual(g, spans, out, rule, "multi-target", String::new());
            continue;
        }
        let Some(src) = r.copy_source() else {
            continue; // not a copy-rule at all
        };
        if sub.is_subsumed(rule) {
            continue;
        }
        let tgt = r.targets[0];
        let (reason, detail) = if !sub.is_static(tgt.attr) || !sub.is_static(src.attr) {
            let non_static = if !sub.is_static(tgt.attr) {
                attr_name(g, tgt.attr)
            } else {
                attr_name(g, src.attr)
            };
            (
                "not-static",
                format!("{} is not statically allocated", non_static),
            )
        } else if sub.group_of(tgt.attr) != sub.group_of(src.attr) {
            (
                "group-conflict",
                format!(
                    "target lives in global {} but source in {}",
                    sub.group_name(sub.group_of(tgt.attr)),
                    sub.group_name(sub.group_of(src.attr))
                ),
            )
        } else if a.passes.pass_of(tgt.attr) != a.passes.pass_of(src.attr) {
            let tp = a.passes.pass_of(tgt.attr);
            let sp = a.passes.pass_of(src.attr);
            (
                "pass-split",
                format!(
                    "source is computed in pass {} ({}) but the target in pass {} ({})",
                    sp,
                    direction_name(a, sp),
                    tp,
                    direction_name(a, tp),
                ),
            )
        } else {
            ("unsubsumed", String::new())
        };
        push_residual(g, spans, out, rule, reason, detail);
    }
}

fn direction_name(a: &Analysis, pass: u16) -> String {
    if pass == 0 {
        "intrinsic".to_string()
    } else {
        a.passes.direction(pass).to_string()
    }
}

fn push_residual(
    g: &Grammar,
    spans: &SpanMap,
    out: &mut Vec<Finding>,
    rule: RuleId,
    reason: &str,
    detail: String,
) {
    let r = g.rule(rule);
    let prod = r.prod;
    let targets: Vec<String> = r.targets.iter().map(|&t| occ_name(g, prod, t)).collect();
    let source = r
        .expr
        .as_copy_source()
        .map(|s| occ_name(g, prod, s))
        .unwrap_or_default();
    let origin = match r.origin {
        RuleOrigin::Explicit => "explicit",
        RuleOrigin::Implicit => "implicit",
    };
    let mut message = format!(
        "{} copy rule {} = {} survives subsumption ({})",
        origin,
        targets.join(", "),
        source,
        reason
    );
    if !detail.is_empty() {
        message.push_str(": ");
        message.push_str(&detail);
    }
    out.push(Finding {
        code: codes::RESIDUAL_COPY,
        severity: Severity::Note,
        span: spans.rule(g, rule),
        message,
        payload: Json::Obj(vec![
            (
                "targets".to_string(),
                Json::Arr(targets.iter().map(|t| Json::str(t)).collect()),
            ),
            ("source".to_string(), Json::str(&source)),
            ("reason".to_string(), Json::str(reason)),
            ("origin".to_string(), Json::str(origin)),
        ]),
    });
}

/// AG005: per pass boundary beyond the first, the minimal culprit set
/// of attribute dependencies that made the extra pass necessary,
/// rendered as `target needs source` chains with production context.
fn pass_blockers(a: &Analysis, spans: &SpanMap, out: &mut Vec<Finding>) {
    let g = &a.grammar;
    for blocker in explain_pass_blockers(g, &a.passes) {
        let mut chains = Vec::new();
        let mut culprits_json = Vec::new();
        for dep in &blocker.culprits {
            let target = occ_name(g, dep.prod, dep.target);
            let needs = occ_name(g, dep.prod, dep.needs);
            let lhs = g.symbol_name(g.production(dep.prod).lhs);
            chains.push(format!(
                "{} <- {} (in a production of {})",
                target, needs, lhs
            ));
            culprits_json.push(Json::Obj(vec![
                ("production".to_string(), Json::str(lhs)),
                ("target".to_string(), Json::str(&target)),
                ("needs".to_string(), Json::str(&needs)),
                (
                    "target_pos".to_string(),
                    Json::str(&dep.target.pos.to_string()),
                ),
                (
                    "needs_pos".to_string(),
                    Json::str(&dep.needs.pos.to_string()),
                ),
            ]));
        }
        // Anchor the finding at the first culprit's production.
        let span = blocker
            .culprits
            .first()
            .map(|d| spans.production(d.prod))
            .unwrap_or_default();
        out.push(Finding {
            code: codes::PASS_BLOCKER,
            severity: Severity::Note,
            span,
            message: format!(
                "pass {} ({}) exists because these dependencies cannot run in pass {} ({}): {}",
                blocker.pass,
                blocker.direction,
                blocker.pass - 1,
                blocker.prev_direction,
                chains.join("; ")
            ),
            payload: Json::Obj(vec![
                ("pass".to_string(), Json::int(blocker.pass as i64)),
                (
                    "direction".to_string(),
                    Json::str(&blocker.direction.to_string()),
                ),
                (
                    "prev_direction".to_string(),
                    Json::str(&blocker.prev_direction.to_string()),
                ),
                ("culprits".to_string(), Json::Arr(culprits_json)),
            ]),
        });
    }
}

/// AG008: attributes whose live range crosses at least
/// `cfg.lifetime_threshold` pass boundaries. Long-lived attributes
/// are §III's "significant" class: every instance must be kept in the
/// tree across the intervening passes, so they dominate evaluator
/// memory.
fn lifetime_hotspots(a: &Analysis, spans: &SpanMap, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let g = &a.grammar;
    for i in 0..g.attrs().len() {
        let attr = AttrId(i as u32);
        let earliest = a.lifetimes.earliest(attr);
        let latest = a.lifetimes.latest(attr);
        let range = latest.saturating_sub(earliest);
        if range < cfg.lifetime_threshold {
            continue;
        }
        let name = attr_name(g, attr);
        out.push(Finding {
            code: codes::LIFETIME_HOTSPOT,
            severity: Severity::Note,
            span: spans.attr(attr),
            message: format!(
                "attribute {} is live from pass {} to pass {} ({} boundaries); \
                 every instance stays in the tree that long",
                name, earliest, latest, range
            ),
            payload: Json::Obj(vec![
                ("attr".to_string(), Json::str(&name)),
                ("earliest".to_string(), Json::int(earliest as i64)),
                ("latest".to_string(), Json::int(latest as i64)),
                (
                    "significant".to_string(),
                    Json::Bool(a.lifetimes.is_significant(attr)),
                ),
            ]),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{Analysis, Config};
    use crate::expr::Expr;
    use crate::grammar::AgBuilder;
    use crate::ids::AttrOcc;
    use crate::passes::{Direction, PassConfig};

    fn lr_config() -> Config {
        Config {
            pass: PassConfig {
                first_direction: Direction::LeftToRight,
                max_passes: 8,
            },
            ..Config::default()
        }
    }

    /// The bouncing grammar: `root ::= S S` where the second S's
    /// inherited context comes from the first S's synthesized value
    /// under a right-to-left first pass — forcing a second pass.
    fn bouncing_analysis() -> Analysis {
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "V", "int");
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "V", "int");
        let si = b.inherited(s, "CTX", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p = b.production(root, vec![s, s], None);
        b.rule(p, vec![AttrOcc::rhs(0, si)], Expr::Int(0));
        b.rule(p, vec![AttrOcc::rhs(1, si)], Expr::Occ(AttrOcc::rhs(0, sv)));
        b.rule(p, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(1, sv)));
        let ps = b.production(s, vec![x], None);
        b.rule(
            ps,
            vec![AttrOcc::lhs(sv)],
            Expr::binop(
                crate::expr::BinOp::Add,
                Expr::Occ(AttrOcc::lhs(si)),
                Expr::Occ(AttrOcc::rhs(0, obj)),
            ),
        );
        b.start(root);
        let g = b.build().unwrap();
        let cfg = Config {
            pass: PassConfig {
                first_direction: Direction::RightToLeft,
                max_passes: 8,
            },
            ..Config::default()
        };
        Analysis::run(g, &cfg).unwrap()
    }

    #[test]
    fn pass_blocker_names_the_forcing_dependency() {
        let a = bouncing_analysis();
        assert_eq!(a.passes.num_passes(), 2);
        let out = run(&a, &SpanMap::empty(), &LintConfig::default());
        let blockers: Vec<&Finding> = out
            .iter()
            .filter(|f| f.code == codes::PASS_BLOCKER)
            .collect();
        assert_eq!(blockers.len(), 1, "{:?}", blockers);
        let f = blockers[0];
        assert!(f.message.contains("pass 2"));
        assert!(f.message.contains("S.CTX <- S.V"));
        assert_eq!(f.payload.get("pass").and_then(Json::as_i64), Some(2));
        let culprits = f.payload.get("culprits").and_then(Json::as_arr).unwrap();
        assert!(!culprits.is_empty());
        assert_eq!(culprits[0].get("needs").and_then(Json::as_str), Some("S.V"));
    }

    #[test]
    fn single_pass_grammar_reports_no_flow_notes() {
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "V", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p = b.production(root, vec![x], None);
        // Not a bare copy (copies from an intrinsic would legitimately
        // draw an AG004 note, since intrinsics are never static).
        b.rule(
            p,
            vec![AttrOcc::lhs(rv)],
            Expr::binop(
                crate::expr::BinOp::Add,
                Expr::Occ(AttrOcc::rhs(0, obj)),
                Expr::Int(0),
            ),
        );
        b.start(root);
        let g = b.build().unwrap();
        let a = Analysis::run(g, &lr_config()).unwrap();
        let out = run(&a, &SpanMap::empty(), &LintConfig::default());
        assert!(out.is_empty(), "{:?}", out);
    }

    #[test]
    fn residual_copy_explains_pass_split() {
        // root.V = S.V is an explicit copy, but S.V (pass 2) and
        // root.V (pass 2) — both in pass 2, so look instead at the
        // implicit notes produced by the bouncing grammar.
        let a = bouncing_analysis();
        let out = run(&a, &SpanMap::empty(), &LintConfig::default());
        let residual: Vec<&Finding> = out
            .iter()
            .filter(|f| f.code == codes::RESIDUAL_COPY)
            .collect();
        // Every unsubsumed copy-rule gets exactly one note with a
        // non-empty reason from the closed vocabulary.
        for f in &residual {
            let reason = f.payload.get("reason").and_then(Json::as_str).unwrap();
            assert!(
                [
                    "multi-target",
                    "not-static",
                    "group-conflict",
                    "pass-split",
                    "unsubsumed"
                ]
                .contains(&reason),
                "unexpected reason {}",
                reason
            );
        }
        let num_copies = a.grammar.rules().iter().filter(|r| r.is_copy()).count();
        let num_subsumed = (0..a.grammar.rules().len())
            .filter(|&i| a.subsumption.is_subsumed(RuleId(i as u32)))
            .count();
        assert_eq!(residual.len(), num_copies - num_subsumed);
    }

    #[test]
    fn residual_copy_notes_suppressed_when_disabled() {
        let a = bouncing_analysis();
        let cfg = LintConfig {
            explain_residual_copies: false,
            ..LintConfig::default()
        };
        let out = run(&a, &SpanMap::empty(), &cfg);
        assert!(out.iter().all(|f| f.code != codes::RESIDUAL_COPY));
    }

    #[test]
    fn lifetime_hotspot_fires_at_threshold() {
        let a = bouncing_analysis();
        // With only 2 passes no attribute spans 3 boundaries...
        let out = run(&a, &SpanMap::empty(), &LintConfig::default());
        assert!(out.iter().all(|f| f.code != codes::LIFETIME_HOTSPOT));
        // ...but root.V (computed pass 2, output at num_passes+1=3)
        // spans 1 boundary, so a threshold of 1 catches it.
        let cfg = LintConfig {
            lifetime_threshold: 1,
            ..LintConfig::default()
        };
        let out = run(&a, &SpanMap::empty(), &cfg);
        let hot: Vec<&Finding> = out
            .iter()
            .filter(|f| f.code == codes::LIFETIME_HOTSPOT)
            .collect();
        assert!(
            hot.iter().any(|f| f.message.contains("root.V")),
            "{:?}",
            hot
        );
    }
}
