//! Grammar static analysis: coded lints over an analyzed grammar.
//!
//! The analyses of this crate decide *whether* a grammar is usable
//! (complete, non-circular, alternating-pass evaluable); this module
//! explains *why* and *at what cost*. Every analysis here emits
//! [`Finding`]s carrying a stable `AG0xx` code, a severity, a real
//! source span (threaded from the frontend's lowering tables via
//! [`SpanMap`]), and a structured JSON payload, so the same result can
//! be rendered as text, interleaved into the listing, or consumed by
//! tooling.
//!
//! The registry (see [`codes`] and [`REGISTRY`]):
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | AG001 | warning/note | attribute never consumed by any rule |
//! | AG002 | warning  | nonterminal unreachable from the start symbol |
//! | AG003 | warning  | nonterminal derives no terminal string |
//! | AG004 | note     | copy-rule static subsumption could not remove |
//! | AG005 | note     | dependencies that forced an extra pass |
//! | AG006 | error    | potential circularity (named cycle) |
//! | AG007 | error    | completeness violation (§I) |
//! | AG008 | note     | attribute live across many passes |
//! | AG009 | warning  | same-named attribute with conflicting type |
//! | AG010 | error    | not alternating-pass evaluable |
//! | AG011 | error    | syntax error (frontend) |
//! | AG012 | error    | name-resolution error (frontend) |
//! | AG013 | note     | optimizer materialized a constant attribute |
//! | AG014 | note     | optimizer eliminated a dead attribute/rule |
//! | AG015 | note     | optimizer collapsed a copy chain |
//!
//! AG011/AG012 are defined here but produced by the frontend, which
//! owns parsing and lowering. AG013–AG015 fire only when the grammar
//! optimizer ran (`--opt`, the CLI default), reporting what each
//! transform did and where.

mod convert;
mod flow;
mod opt;
mod structure;

pub use convert::{circularity_finding, completeness_findings, pass_error_findings};

use crate::analysis::Analysis;
use crate::grammar::Grammar;
use crate::ids::{AttrId, AttrOcc, ProdId, RuleId, SymbolId};
use linguist_support::diag::{Diagnostic, Severity};
use linguist_support::json::Json;
use linguist_support::pos::Span;

/// Stable lint codes. Codes are append-only: a released code never
/// changes meaning.
pub mod codes {
    /// Attribute never consumed by any semantic function.
    pub const UNUSED_ATTRIBUTE: &str = "AG001";
    /// Nonterminal unreachable from the start symbol.
    pub const UNREACHABLE_SYMBOL: &str = "AG002";
    /// Nonterminal that derives no terminal string.
    pub const UNPRODUCTIVE_SYMBOL: &str = "AG003";
    /// Copy-rule left behind by static subsumption, with the reason.
    pub const RESIDUAL_COPY: &str = "AG004";
    /// Attribute dependencies that forced an extra alternating pass.
    pub const PASS_BLOCKER: &str = "AG005";
    /// Potential circularity (cycle in a production dependency graph).
    pub const CIRCULARITY: &str = "AG006";
    /// Completeness violation (§I).
    pub const INCOMPLETE: &str = "AG007";
    /// Attribute whose live range spans many passes.
    pub const LIFETIME_HOTSPOT: &str = "AG008";
    /// Same-named attribute declared with a conflicting type.
    pub const SHADOWED_ATTRIBUTE: &str = "AG009";
    /// Grammar is not alternating-pass evaluable.
    pub const NOT_PASS_EVALUABLE: &str = "AG010";
    /// Syntax error (produced by the frontend).
    pub const SYNTAX: &str = "AG011";
    /// Name-resolution error (produced by the frontend).
    pub const RESOLUTION: &str = "AG012";
    /// Optimizer: constant attribute materialized as literals.
    pub const OPT_FOLDED: &str = "AG013";
    /// Optimizer: dead attribute/rule eliminated.
    pub const OPT_ELIMINATED: &str = "AG014";
    /// Optimizer: copy chain collapsed.
    pub const OPT_COLLAPSED: &str = "AG015";
}

/// The full code registry: (code, default severity, one-line summary).
pub const REGISTRY: &[(&str, Severity, &str)] = &[
    (
        codes::UNUSED_ATTRIBUTE,
        Severity::Warning,
        "attribute is computed but never consumed",
    ),
    (
        codes::UNREACHABLE_SYMBOL,
        Severity::Warning,
        "nonterminal is unreachable from the start symbol",
    ),
    (
        codes::UNPRODUCTIVE_SYMBOL,
        Severity::Warning,
        "nonterminal derives no terminal string",
    ),
    (
        codes::RESIDUAL_COPY,
        Severity::Note,
        "copy-rule survived static subsumption",
    ),
    (
        codes::PASS_BLOCKER,
        Severity::Note,
        "attribute dependencies forced an extra pass",
    ),
    (codes::CIRCULARITY, Severity::Error, "potential circularity"),
    (codes::INCOMPLETE, Severity::Error, "completeness violation"),
    (
        codes::LIFETIME_HOTSPOT,
        Severity::Note,
        "attribute live across many passes",
    ),
    (
        codes::SHADOWED_ATTRIBUTE,
        Severity::Warning,
        "same-named attribute with conflicting type",
    ),
    (
        codes::NOT_PASS_EVALUABLE,
        Severity::Error,
        "grammar is not alternating-pass evaluable",
    ),
    (codes::SYNTAX, Severity::Error, "syntax error"),
    (codes::RESOLUTION, Severity::Error, "name-resolution error"),
    (
        codes::OPT_FOLDED,
        Severity::Note,
        "optimizer materialized a constant attribute",
    ),
    (
        codes::OPT_ELIMINATED,
        Severity::Note,
        "optimizer eliminated a dead attribute or rule",
    ),
    (
        codes::OPT_COLLAPSED,
        Severity::Note,
        "optimizer collapsed a copy chain",
    ),
];

/// Source spans for every dense id of a grammar, parallel to the
/// grammar's own tables.
///
/// The frontend's lowering pass fills one span per symbol, attribute,
/// production, and (explicit) rule, in declaration order — the same
/// order the dense ids are handed out — so lookups are plain indexing.
/// Ids without a recorded span (implicit copy-rules, synthetic
/// grammars built through [`crate::grammar::AgBuilder`] directly) fall
/// back to the zero span.
#[derive(Clone, Debug, Default)]
pub struct SpanMap {
    /// Per [`SymbolId`]: the declaring line.
    pub symbols: Vec<Span>,
    /// Per [`AttrId`]: the attribute declaration.
    pub attrs: Vec<Span>,
    /// Per [`ProdId`]: the production header.
    pub productions: Vec<Span>,
    /// Per explicit [`RuleId`]: the semantic-function text.
    pub rules: Vec<Span>,
}

impl SpanMap {
    /// An empty map (every lookup yields the zero span).
    pub fn empty() -> SpanMap {
        SpanMap::default()
    }

    /// Span of a symbol declaration.
    pub fn symbol(&self, s: SymbolId) -> Span {
        self.symbols.get(s.0 as usize).copied().unwrap_or_default()
    }

    /// Span of an attribute declaration.
    pub fn attr(&self, a: AttrId) -> Span {
        self.attrs.get(a.0 as usize).copied().unwrap_or_default()
    }

    /// Span of a production header.
    pub fn production(&self, p: ProdId) -> Span {
        self.productions
            .get(p.0 as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Span of a rule; implicit copy-rules (inserted after lowering)
    /// borrow their production's span.
    pub fn rule(&self, g: &Grammar, r: RuleId) -> Span {
        match self.rules.get(r.0 as usize).copied() {
            Some(span) if span != Span::default() => span,
            _ => self.production(g.rule(r).prod),
        }
    }

    /// Follow the optimizer's dead-rule compaction: rule `old` moved
    /// to `remap[old]` (or was deleted). Rules without a recorded span
    /// keep the zero span, so the production-span fallback in
    /// [`SpanMap::rule`] still applies to them.
    pub fn remap_rules(&mut self, remap: &[Option<RuleId>]) {
        if self.rules.is_empty() || remap.is_empty() {
            return;
        }
        let new_len = remap.iter().flatten().count();
        let mut new = vec![Span::default(); new_len];
        for (old, slot) in remap.iter().enumerate() {
            if let (Some(new_id), Some(span)) = (slot, self.rules.get(old)) {
                new[new_id.0 as usize] = *span;
            }
        }
        self.rules = new;
    }
}

/// Configuration knobs for the tunable lints.
#[derive(Clone, Copy, Debug)]
pub struct LintConfig {
    /// AG008 threshold: flag attributes whose live range spans at least
    /// this many pass boundaries.
    pub lifetime_threshold: u16,
    /// Whether AG004 runs. Off when static subsumption itself is
    /// disabled — with nothing subsumed, "residual" copy-rules are not
    /// a meaningful notion.
    pub explain_residual_copies: bool,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            lifetime_threshold: 3,
            explain_residual_copies: true,
        }
    }
}

/// One analysis result: a coded, located, machine-renderable message.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable code from [`codes`].
    pub code: &'static str,
    /// Severity (lints may demote below their registry default, never
    /// promote above it).
    pub severity: Severity,
    /// Source anchor.
    pub span: Span,
    /// Human-readable, name-resolved text.
    pub message: String,
    /// Structured payload for `--format=json` consumers.
    pub payload: Json,
}

impl Finding {
    /// Lower to a listing diagnostic (overlay 4, the semantic-analysis
    /// overlay).
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic {
            severity: self.severity,
            span: self.span,
            overlay: 4,
            code: Some(self.code),
            message: self.message.clone(),
        }
    }

    /// The JSON object for one finding (code, severity, position,
    /// message, payload).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("code".to_string(), Json::str(self.code)),
            (
                "severity".to_string(),
                Json::str(&self.severity.to_string()),
            ),
            ("line".to_string(), Json::int(self.span.start.line as i64)),
            ("col".to_string(), Json::int(self.span.start.col as i64)),
            ("end_line".to_string(), Json::int(self.span.end.line as i64)),
            ("end_col".to_string(), Json::int(self.span.end.col as i64)),
            ("message".to_string(), Json::str(&self.message)),
            ("payload".to_string(), self.payload.clone()),
        ])
    }
}

/// Sort findings into the canonical report order: by span, then
/// severity, then code, then message — total, so JSON output is
/// deterministic run to run.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        let ka = (
            a.span.start.line,
            a.span.start.col,
            a.span.end.line,
            a.span.end.col,
            a.severity,
            a.code,
        );
        let kb = (
            b.span.start.line,
            b.span.start.col,
            b.span.end.line,
            b.span.end.col,
            b.severity,
            b.code,
        );
        ka.cmp(&kb).then_with(|| a.message.cmp(&b.message))
    });
}

/// Render `SYM.ATTR` for an occurrence of `prod`.
pub(crate) fn occ_name(g: &Grammar, prod: ProdId, occ: AttrOcc) -> String {
    let sym = g
        .symbol_at(prod, occ.pos)
        .map(|s| g.symbol_name(s).to_owned())
        .unwrap_or_else(|| "?".to_owned());
    format!("{}.{}", sym, g.attr_name(occ.attr))
}

/// `SYM.ATTR` for an attribute via its owning symbol (no production
/// context).
pub(crate) fn attr_name(g: &Grammar, a: AttrId) -> String {
    format!("{}.{}", g.symbol_name(g.attr(a).symbol), g.attr_name(a))
}

/// Run every lint that applies to a fully analyzed grammar. Findings
/// come back in canonical order.
///
/// Error-path analyses (AG006/AG007/AG010) never fire here — a grammar
/// that reaches [`Analysis`] has already passed those stages; their
/// conversions ([`completeness_findings`], [`circularity_finding`],
/// [`pass_error_findings`]) serve drivers that collect findings
/// stage by stage instead.
pub fn run_lints(a: &Analysis, spans: &SpanMap, cfg: &LintConfig) -> Vec<Finding> {
    let mut findings = structure::run(&a.grammar, spans);
    findings.extend(flow::run(a, spans, cfg));
    findings.extend(opt::run(a, spans));
    sort_findings(&mut findings);
    findings
}

/// Run only the lints that need nothing beyond a built grammar
/// (AG001, AG002, AG003, AG009) — for drivers reporting on grammars
/// whose pass analysis failed. Findings come back in canonical order.
pub fn run_structure_lints(g: &Grammar, spans: &SpanMap) -> Vec<Finding> {
    let mut findings = structure::run(g, spans);
    sort_findings(&mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use linguist_support::pos::Pos;

    #[test]
    fn registry_codes_are_unique_and_sorted() {
        for w in REGISTRY.windows(2) {
            assert!(w[0].0 < w[1].0, "{} before {}", w[0].0, w[1].0);
        }
        assert_eq!(REGISTRY.len(), 15);
    }

    #[test]
    fn empty_span_map_defaults_to_zero_spans() {
        let m = SpanMap::empty();
        assert_eq!(m.symbol(SymbolId(7)), Span::default());
        assert_eq!(m.attr(AttrId(0)), Span::default());
        assert_eq!(m.production(ProdId(3)), Span::default());
    }

    #[test]
    fn sort_is_total_and_deterministic() {
        let at = |line: u32, code: &'static str, sev: Severity| Finding {
            code,
            severity: sev,
            span: Span::point(Pos {
                line,
                col: 1,
                offset: 0,
            }),
            message: "m".to_string(),
            payload: Json::Null,
        };
        let mut v = vec![
            at(4, codes::UNUSED_ATTRIBUTE, Severity::Warning),
            at(2, codes::CIRCULARITY, Severity::Error),
            at(2, codes::UNUSED_ATTRIBUTE, Severity::Warning),
        ];
        sort_findings(&mut v);
        assert_eq!(v[0].code, codes::UNUSED_ATTRIBUTE);
        assert_eq!(v[0].span.start.line, 2);
        assert_eq!(v[1].code, codes::CIRCULARITY);
        assert_eq!(v[2].span.start.line, 4);
    }

    #[test]
    fn finding_json_shape_is_stable() {
        let f = Finding {
            code: codes::UNUSED_ATTRIBUTE,
            severity: Severity::Warning,
            span: Span::point(Pos {
                line: 3,
                col: 5,
                offset: 40,
            }),
            message: "attribute S.V is never consumed".to_string(),
            payload: Json::Obj(vec![("attr".to_string(), Json::str("S.V"))]),
        };
        assert_eq!(
            f.to_json().to_string(),
            r#"{"code":"AG001","severity":"warning","line":3,"col":5,"end_line":3,"end_col":5,"message":"attribute S.V is never consumed","payload":{"attr":"S.V"}}"#
        );
    }
}
