//! Conversions from the pipeline's structured errors to coded findings.
//!
//! [`crate::check::CheckError`], [`crate::circularity::Circularity`],
//! and [`crate::passes::PassError`] carry dense ids, not prose; these
//! functions resolve the names, pick a source anchor from the
//! [`SpanMap`], and emit AG007 / AG006 / AG010.

use super::{codes, occ_name, Finding, SpanMap};
use crate::check::CheckError;
use crate::circularity::Circularity;
use crate::grammar::Grammar;
use crate::ids::{AttrOcc, ProdId};
use crate::passes::PassError;
use linguist_support::diag::Severity;
use linguist_support::json::Json;
use linguist_support::pos::Span;

/// The span of the rule in `prod` defining `occ` (the last one, so a
/// double definition anchors at the offending repeat), falling back to
/// the production header.
fn defining_rule_span(g: &Grammar, spans: &SpanMap, prod: ProdId, occ: AttrOcc) -> Span {
    g.production(prod)
        .rules
        .iter()
        .rev()
        .find(|&&r| g.rule(r).targets.contains(&occ))
        .map(|&r| spans.rule(g, r))
        .unwrap_or_else(|| spans.production(prod))
}

/// AG007: one finding per completeness violation (§I).
pub fn completeness_findings(g: &Grammar, spans: &SpanMap, errs: &[CheckError]) -> Vec<Finding> {
    errs.iter()
        .map(|e| {
            let prod = e.prod();
            let occ = e.occ();
            let name = occ_name(g, prod, occ);
            let lhs = g.symbol_name(g.production(prod).lhs).to_owned();
            let (kind, span, message, extra) = match *e {
                CheckError::Undefined { .. } => (
                    "undefined",
                    spans.production(prod),
                    format!(
                        "no semantic function defines {} ({}) in this production of {}",
                        name, occ.pos, lhs
                    ),
                    None,
                ),
                CheckError::MultiplyDefined { count, .. } => (
                    "multiply-defined",
                    defining_rule_span(g, spans, prod, occ),
                    format!(
                        "{} ({}) is defined {} times in this production of {}",
                        name, occ.pos, count, lhs
                    ),
                    Some(("count".to_string(), Json::int(count as i64))),
                ),
                CheckError::IllegalTarget { reason, .. } => (
                    "illegal-target",
                    defining_rule_span(g, spans, prod, occ),
                    format!("{} ({}) may not be defined here: {}", name, occ.pos, reason),
                    Some(("reason".to_string(), Json::str(reason))),
                ),
            };
            let mut payload = vec![
                ("kind".to_string(), Json::str(kind)),
                ("production".to_string(), Json::str(&lhs)),
                ("occurrence".to_string(), Json::str(&name)),
                ("pos".to_string(), Json::str(&occ.pos.to_string())),
            ];
            payload.extend(extra);
            Finding {
                code: codes::INCOMPLETE,
                severity: Severity::Error,
                span,
                message,
                payload: Json::Obj(payload),
            }
        })
        .collect()
}

/// AG006: the potential circularity, with the cycle spelled out as
/// named occurrences (the cycle is closed — first repeated last).
pub fn circularity_finding(g: &Grammar, spans: &SpanMap, c: &Circularity) -> Finding {
    let lhs = g.symbol_name(g.production(c.prod).lhs).to_owned();
    let steps: Vec<String> = c
        .cycle
        .iter()
        .map(|&o| format!("{} ({})", occ_name(g, c.prod, o), o.pos))
        .collect();
    let cycle_json: Vec<Json> = c
        .cycle
        .iter()
        .map(|&o| {
            Json::Obj(vec![
                ("occ".to_string(), Json::str(&occ_name(g, c.prod, o))),
                ("pos".to_string(), Json::str(&o.pos.to_string())),
            ])
        })
        .collect();
    Finding {
        code: codes::CIRCULARITY,
        severity: Severity::Error,
        span: spans.production(c.prod),
        message: format!(
            "potential circularity in a production of {}: {}",
            lhs,
            steps.join(" -> ")
        ),
        payload: Json::Obj(vec![
            ("production".to_string(), Json::str(&lhs)),
            ("cycle".to_string(), Json::Arr(cycle_json)),
        ]),
    }
}

/// AG010: the grammar is not alternating-pass evaluable (or exhausted
/// the pass budget). Grammar-wide, so the anchor is the zero span.
pub fn pass_error_findings(e: &PassError) -> Vec<Finding> {
    let (kind, payload_extra) = match e {
        PassError::NotEvaluable { stuck } => (
            "not-evaluable",
            (
                "stuck".to_string(),
                Json::Arr(stuck.iter().map(|s| Json::str(s)).collect()),
            ),
        ),
        PassError::TooManyPasses { limit } => (
            "too-many-passes",
            ("limit".to_string(), Json::int(*limit as i64)),
        ),
    };
    vec![Finding {
        code: codes::NOT_PASS_EVALUABLE,
        severity: Severity::Error,
        span: Span::default(),
        message: e.to_string(),
        payload: Json::Obj(vec![("kind".to_string(), Json::str(kind)), payload_extra]),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_completeness;
    use crate::circularity::check_noncircular;
    use crate::expr::Expr;
    use crate::grammar::AgBuilder;
    use linguist_support::pos::Pos;

    fn span_at(line: u32) -> Span {
        Span::point(Pos {
            line,
            col: 1,
            offset: 0,
        })
    }

    #[test]
    fn undefined_occurrence_names_symbol_and_position() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        b.synthesized(s, "V", "int");
        b.production(s, vec![], None);
        b.start(s);
        let g = b.build().unwrap();
        let errs = check_completeness(&g).unwrap_err();
        let spans = SpanMap {
            productions: vec![span_at(7)],
            ..SpanMap::default()
        };
        let out = completeness_findings(&g, &spans, &errs);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, codes::INCOMPLETE);
        assert_eq!(out[0].span.start.line, 7);
        assert!(out[0].message.contains("S.V"));
        assert!(out[0].message.contains("lhs"));
        assert_eq!(
            out[0].payload.get("kind").and_then(Json::as_str),
            Some("undefined")
        );
    }

    #[test]
    fn circularity_renders_closed_cycle() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let a = b.synthesized(s, "A", "int");
        let c = b.synthesized(s, "B", "int");
        let p = b.production(s, vec![], None);
        b.rule(
            p,
            vec![crate::ids::AttrOcc::lhs(a)],
            Expr::Occ(crate::ids::AttrOcc::lhs(c)),
        );
        b.rule(
            p,
            vec![crate::ids::AttrOcc::lhs(c)],
            Expr::Occ(crate::ids::AttrOcc::lhs(a)),
        );
        b.start(s);
        let g = b.build().unwrap();
        let err = check_noncircular(&g).unwrap_err();
        let f = circularity_finding(&g, &SpanMap::empty(), &err);
        assert_eq!(f.code, codes::CIRCULARITY);
        assert!(f.message.contains("S.A"));
        assert!(f.message.contains("S.B"));
        assert!(f.message.contains(" -> "));
        let cycle = f.payload.get("cycle").and_then(Json::as_arr).unwrap();
        // Closed: first occurrence repeats at the end.
        assert_eq!(
            cycle.first().unwrap().get("occ").and_then(Json::as_str),
            cycle.last().unwrap().get("occ").and_then(Json::as_str)
        );
    }

    #[test]
    fn pass_error_becomes_ag010() {
        let e = PassError::TooManyPasses { limit: 4 };
        let out = pass_error_findings(&e);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, codes::NOT_PASS_EVALUABLE);
        assert_eq!(out[0].severity, Severity::Error);
        assert_eq!(out[0].payload.get("limit").and_then(Json::as_i64), Some(4));
    }
}
