//! The analysis pipeline: everything LINGUIST-86's overlays 2–4 compute.
//!
//! [`Analysis::run`] takes a built grammar through, in order:
//!
//! 1. implicit copy-rule insertion (§IV),
//! 2. the completeness check (§I),
//! 3. the sufficient non-circularity test (§I),
//! 4. alternating-pass assignment (§II),
//! 5. lifetime (temporary/significant) analysis (§III),
//! 6. static subsumption (§III),
//! 7. evaluation-plan construction (§II–III).
//!
//! The result owns the (possibly extended) grammar plus every analysis
//! product; it is the single input the evaluator and the code generator
//! need.

use crate::check::{check_completeness, CheckError};
use crate::circularity::{check_noncircular, Circularity, IoRelations};
use crate::grammar::Grammar;
use crate::implicit::{insert_implicit_copies, ImplicitStats};
use crate::lifetime::Lifetimes;
use crate::passes::{assign_passes, PassAssignment, PassConfig, PassError};
use crate::plan::{build_plans, PlanError, Plans};
use crate::subsumption::{GroupMode, Subsumption, SubsumptionCosts};
use std::fmt;

/// Configuration for the whole pipeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct Config {
    /// Pass-analysis settings (first direction, pass budget).
    pub pass: PassConfig,
    /// Whether to insert implicit copy-rules first (LINGUIST-86 always
    /// does; disable to reproduce "bare-bones" behaviour).
    pub skip_implicit: bool,
    /// Global-variable grouping mode for static subsumption.
    pub group_mode: GroupMode,
    /// Cost model for the keep-static check.
    pub costs: SubsumptionCosts,
    /// Disable static subsumption entirely (the paper's "without"
    /// timing/size comparison).
    pub disable_subsumption: bool,
    /// Run the grammar optimizer (constant folding, copy-chain
    /// collapsing, dead-attribute elimination) before scheduling. Off
    /// by default at the library level — the paper's figures are
    /// reproduced on the unoptimized grammar — and switched on by the
    /// CLI's `--opt` (whose default is on).
    pub optimize: bool,
}

/// Everything known about an analyzed grammar.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The grammar, including any implicit copy-rules added.
    pub grammar: Grammar,
    /// How many implicit rules were inserted.
    pub implicit: ImplicitStats,
    /// Induced inherited→synthesized relations per symbol.
    pub io: IoRelations,
    /// The pass assignment.
    pub passes: PassAssignment,
    /// Attribute lifetimes.
    pub lifetimes: Lifetimes,
    /// The static-subsumption allocation.
    pub subsumption: Subsumption,
    /// Production-procedure plans per pass.
    pub plans: Plans,
    /// What the optimizer did, when [`Config::optimize`] was on.
    pub opt: Option<crate::dataflow::OptReport>,
}

/// A failure anywhere in the pipeline.
#[derive(Clone, Debug)]
pub enum AnalysisError {
    /// Completeness violations.
    Check(Vec<CheckError>),
    /// Potential circularity.
    Circular(Circularity),
    /// Not alternating-pass evaluable.
    Pass(PassError),
    /// Plan construction failed.
    Plan(PlanError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Check/Circular carry structured ids; the located, named
        // rendering lives in the lint layer (`linguist check`), so the
        // bare Display stays a one-line summary.
        match self {
            AnalysisError::Check(errs) => {
                let undefined = errs
                    .iter()
                    .filter(|e| matches!(e, CheckError::Undefined { .. }))
                    .count();
                let multiple = errs
                    .iter()
                    .filter(|e| matches!(e, CheckError::MultiplyDefined { .. }))
                    .count();
                let illegal = errs.len() - undefined - multiple;
                write!(
                    f,
                    "{} completeness error(s): {} never defined, {} multiply defined, \
                     {} illegal target(s); run `linguist check` for located diagnostics",
                    errs.len(),
                    undefined,
                    multiple,
                    illegal
                )
            }
            AnalysisError::Circular(c) => write!(
                f,
                "potential circularity in production {} ({} occurrences); \
                 run `linguist check` for the named cycle",
                c.prod.0,
                c.cycle.len()
            ),
            AnalysisError::Pass(e) => write!(f, "{}", e),
            AnalysisError::Plan(e) => write!(f, "{}", e),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<Vec<CheckError>> for AnalysisError {
    fn from(e: Vec<CheckError>) -> AnalysisError {
        AnalysisError::Check(e)
    }
}
impl From<Circularity> for AnalysisError {
    fn from(e: Circularity) -> AnalysisError {
        AnalysisError::Circular(e)
    }
}
impl From<PassError> for AnalysisError {
    fn from(e: PassError) -> AnalysisError {
        AnalysisError::Pass(e)
    }
}
impl From<PlanError> for AnalysisError {
    fn from(e: PlanError) -> AnalysisError {
        AnalysisError::Plan(e)
    }
}

impl Analysis {
    /// Run the full pipeline on `grammar`.
    ///
    /// # Errors
    ///
    /// Returns the first failing stage as [`AnalysisError`].
    pub fn run(mut grammar: Grammar, cfg: &Config) -> Result<Analysis, AnalysisError> {
        let implicit = if cfg.skip_implicit {
            ImplicitStats::default()
        } else {
            insert_implicit_copies(&mut grammar)
        };
        check_completeness(&grammar)?;
        let mut io = check_noncircular(&grammar)?;
        let opt = if cfg.optimize {
            let report = crate::dataflow::optimize(&mut grammar);
            // The transforms only remove dependency edges, so the
            // grammar stays non-circular; recompute the relations the
            // scheduler and the lints will actually see.
            io = check_noncircular(&grammar)?;
            Some(report)
        } else {
            None
        };
        let passes = assign_passes(&grammar, &cfg.pass)?;
        let mut lifetimes = Lifetimes::compute(&grammar, &passes);
        if cfg.optimize {
            lifetimes.enable_record_elision();
        }
        let subsumption = if cfg.disable_subsumption {
            Subsumption::disabled(&grammar)
        } else {
            Subsumption::compute(&grammar, cfg.group_mode, cfg.costs, Some(&passes))
        };
        let plans = build_plans(&grammar, &passes)?;
        Ok(Analysis {
            grammar,
            implicit,
            io,
            passes,
            lifetimes,
            subsumption,
            plans,
            opt,
        })
    }

    /// Grammar statistics including the pass count.
    pub fn stats(&self) -> crate::stats::GrammarStats {
        crate::stats::GrammarStats::compute(&self.grammar, Some(&self.passes))
    }

    /// The full static profile: statistics, subsumption outcome, and
    /// planned pass directions.
    pub fn profile(&self) -> crate::stats::GrammarProfile {
        crate::stats::GrammarProfile::compute(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::grammar::AgBuilder;
    use crate::ids::AttrOcc;
    use crate::passes::Direction;

    fn lr_config() -> Config {
        Config {
            pass: PassConfig {
                first_direction: Direction::LeftToRight,
                max_passes: 8,
            },
            ..Config::default()
        }
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        b.synthesized(root, "V", "int");
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "V", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        b.production(root, vec![s], None); // root.V implicit
        let p1 = b.production(s, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.start(root);
        let g = b.build().unwrap();

        let a = Analysis::run(g, &lr_config()).unwrap();
        assert_eq!(a.implicit.total(), 1);
        assert_eq!(a.passes.num_passes(), 1);
        assert_eq!(a.plans.num_passes(), 1);
        assert_eq!(a.stats().semantic_functions, 2);
    }

    #[test]
    fn incomplete_grammar_fails_check_stage() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        b.synthesized(s, "V", "int"); // never defined, nothing to copy from
        b.production(s, vec![], None);
        b.start(s);
        let g = b.build().unwrap();
        match Analysis::run(g, &lr_config()) {
            Err(AnalysisError::Check(errs)) => assert!(!errs.is_empty()),
            other => panic!("expected check failure, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn circular_grammar_fails_circularity_stage() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let a = b.synthesized(s, "A", "int");
        let c = b.synthesized(s, "B", "int");
        let p = b.production(s, vec![], None);
        b.rule(p, vec![AttrOcc::lhs(a)], Expr::Occ(AttrOcc::lhs(c)));
        b.rule(p, vec![AttrOcc::lhs(c)], Expr::Occ(AttrOcc::lhs(a)));
        b.start(s);
        let g = b.build().unwrap();
        assert!(matches!(
            Analysis::run(g, &lr_config()),
            Err(AnalysisError::Circular(_))
        ));
    }

    #[test]
    fn disabled_subsumption_marks_nothing_static() {
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        b.synthesized(root, "V", "int");
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "V", "int");
        let p1 = b.production(root, vec![s], None);
        let _ = p1;
        let p2 = b.production(s, vec![], None);
        b.rule(p2, vec![AttrOcc::lhs(sv)], Expr::Int(1));
        b.start(root);
        let g = b.build().unwrap();
        let cfg = Config {
            disable_subsumption: true,
            ..lr_config()
        };
        let a = Analysis::run(g, &cfg).unwrap();
        let stats = a.subsumption.stats(&a.grammar);
        assert_eq!(stats.static_attrs, 0);
        assert_eq!(stats.subsumed_rules, 0);
    }

    #[test]
    fn error_display_is_informative() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        b.synthesized(s, "V", "int");
        b.production(s, vec![], None);
        b.start(s);
        let g = b.build().unwrap();
        let err = Analysis::run(g, &lr_config()).unwrap_err();
        assert!(err.to_string().contains("completeness"));
    }
}
