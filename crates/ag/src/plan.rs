//! Per-pass, per-production evaluation plans.
//!
//! A plan is the body of one *production-procedure* (§II): the ordered
//! sequence of `GetNode` / evaluate / `Visit` / `PutNode` steps that one
//! pass executes at one production. The runtime interpreter
//! (`linguist-eval`) and the source generator (`linguist-codegen`) both
//! consume these plans, so the measured evaluator and the emitted code are
//! the same program by construction.
//!
//! Scheduling is *eager*, implementing the paper's second optimization:
//! "there is nothing to prevent us from evaluating a synthesized
//! attribute-instance of the left-hand-side, X, before visiting some
//! right-hand-side sub-APT so long as all the attribute-instances that X
//! depends on have already been evaluated … LINGUIST-86 will evaluate some
//! attributes earlier than the 'ordered ASE' of \[JP1\]." Each rule is
//! placed at the earliest point where its arguments are available; the
//! hard deadline — inherited attributes of a child must exist before that
//! child is visited — is checked and violations reported.
//!
//! Every pass visits every node (the traversal is the pass's "husk"), so a
//! production with no rules in some pass still gets the full
//! Get/Visit/Put skeleton; this is why "for a given grammar the size of
//! the husk is the same for every pass" (§V).

use crate::grammar::{AttrClass, Grammar, SymbolKind};
use crate::ids::{AttrOcc, OccPos, ProdId, RuleId};
use crate::passes::PassAssignment;
use std::collections::HashSet;
use std::fmt;

/// One step of a production-procedure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Read the record of RHS child `i` from the input APT file.
    Get(u16),
    /// Evaluate a semantic function into the frame's values.
    Eval(RuleId),
    /// Recursively visit the sub-APT rooted at nonterminal child `i`.
    Visit(u16),
    /// Write child `i`'s record to the output APT file.
    Put(u16),
}

/// The plan for one production in one pass.
#[derive(Clone, Debug)]
pub struct ProcPlan {
    /// The production.
    pub prod: ProdId,
    /// The pass (1-based).
    pub pass: u16,
    /// Ordered steps.
    pub steps: Vec<Step>,
}

impl ProcPlan {
    /// The rules evaluated by this plan, in execution order.
    pub fn rules(&self) -> impl Iterator<Item = RuleId> + '_ {
        self.steps.iter().filter_map(|s| match s {
            Step::Eval(r) => Some(*r),
            _ => None,
        })
    }
}

/// All plans of an analyzed grammar: indexed by pass (1-based) and
/// production.
#[derive(Clone, Debug)]
pub struct Plans {
    per_pass: Vec<Vec<ProcPlan>>, // [pass-1][prod]
}

impl Plans {
    /// The plan for `prod` in pass `k` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or out of range.
    pub fn plan(&self, k: u16, prod: ProdId) -> &ProcPlan {
        &self.per_pass[k as usize - 1][prod.0 as usize]
    }

    /// Number of passes planned.
    pub fn num_passes(&self) -> usize {
        self.per_pass.len()
    }

    /// All plans of pass `k` (1-based).
    pub fn pass_plans(&self, k: u16) -> &[ProcPlan] {
        &self.per_pass[k as usize - 1]
    }
}

/// A scheduling failure (should not occur for grammars accepted by the
/// pass analysis; reported rather than panicking because plans can also be
/// built for hand-modified assignments).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanError {
    /// The production being planned.
    pub prod: ProdId,
    /// The pass being planned.
    pub pass: u16,
    /// Rendered description of the stuck rules.
    pub stuck: Vec<String>,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot schedule production {} in pass {}: {}",
            self.prod.0,
            self.pass,
            self.stuck.join("; ")
        )
    }
}

impl std::error::Error for PlanError {}

/// Build every pass's plans.
///
/// # Errors
///
/// Returns [`PlanError`] if some rule cannot be placed before its deadline
/// (cyclic same-zone dependencies or an inconsistent hand-made
/// assignment).
pub fn build_plans(g: &Grammar, passes: &PassAssignment) -> Result<Plans, PlanError> {
    let mut per_pass = Vec::new();
    for k in 1..=passes.num_passes() as u16 {
        let mut plans = Vec::with_capacity(g.productions().len());
        for (pi, _) in g.productions().iter().enumerate() {
            plans.push(plan_production(g, passes, ProdId(pi as u32), k)?);
        }
        per_pass.push(plans);
    }
    Ok(Plans { per_pass })
}

fn plan_production(
    g: &Grammar,
    passes: &PassAssignment,
    prod_id: ProdId,
    k: u16,
) -> Result<ProcPlan, PlanError> {
    let prod = g.production(prod_id);
    let dir = passes.direction(k);
    let n = prod.rhs.len();

    // Rules this pass must evaluate here.
    let mut unscheduled: Vec<RuleId> = prod
        .rules
        .iter()
        .copied()
        .filter(|&r| passes.rule_pass(r) == k)
        .collect();

    // Occurrences whose values are available.
    let mut available: HashSet<AttrOcc> = HashSet::new();
    for &a in &g.symbol(prod.lhs).attrs {
        let p = passes.pass_of(a);
        if p < k || (p == k && g.attr(a).class == AttrClass::Inherited) {
            available.insert(AttrOcc::lhs(a));
        }
    }
    if let Some(l) = prod.limb {
        for &a in &g.symbol(l).attrs {
            if passes.pass_of(a) < k {
                available.insert(AttrOcc::limb(a));
            }
        }
    }

    let mut steps = Vec::new();

    // Schedule every rule whose arguments are ready.
    let schedule_ready = |steps: &mut Vec<Step>,
                          unscheduled: &mut Vec<RuleId>,
                          available: &mut HashSet<AttrOcc>| {
        loop {
            let ready = unscheduled
                .iter()
                .position(|&r| g.rule(r).arguments().iter().all(|a| available.contains(a)));
            match ready {
                None => break,
                Some(ix) => {
                    let r = unscheduled.remove(ix);
                    steps.push(Step::Eval(r));
                    for t in &g.rule(r).targets {
                        available.insert(*t);
                    }
                }
            }
        }
    };

    schedule_ready(&mut steps, &mut unscheduled, &mut available);

    // Children in visit order.
    let visit_sequence: Vec<usize> = (0..n).map(|o| dir.position_at(o, n)).collect();
    for &j in &visit_sequence {
        steps.push(Step::Get(j as u16));
        for &a in &g.symbol(prod.rhs[j]).attrs {
            if passes.pass_of(a) < k {
                available.insert(AttrOcc::rhs(j as u16, a));
            }
        }
        schedule_ready(&mut steps, &mut unscheduled, &mut available);

        // Deadline: this-pass inherited attributes of child j must exist.
        let missing: Vec<String> = unscheduled
            .iter()
            .flat_map(|&r| g.rule(r).targets.iter().map(move |t| (r, *t)))
            .filter(|(_, t)| {
                t.pos == OccPos::Rhs(j as u16)
                    && matches!(g.attr(t.attr).class, AttrClass::Inherited)
            })
            .map(|(r, t)| {
                format!(
                    "rule {} (defines {}.{}) blocked before visiting child {}",
                    r.0,
                    g.symbol_name(prod.rhs[j]),
                    g.attr_name(t.attr),
                    j
                )
            })
            .collect();
        if !missing.is_empty() {
            return Err(PlanError {
                prod: prod_id,
                pass: k,
                stuck: missing,
            });
        }

        if g.symbol(prod.rhs[j]).kind == SymbolKind::Nonterminal {
            steps.push(Step::Visit(j as u16));
            for &a in &g.symbol(prod.rhs[j]).attrs {
                if passes.pass_of(a) == k && g.attr(a).class == AttrClass::Synthesized {
                    available.insert(AttrOcc::rhs(j as u16, a));
                }
            }
            schedule_ready(&mut steps, &mut unscheduled, &mut available);
        }
        steps.push(Step::Put(j as u16));
    }

    schedule_ready(&mut steps, &mut unscheduled, &mut available);
    if !unscheduled.is_empty() {
        let stuck = unscheduled
            .iter()
            .map(|&r| format!("rule {} has unsatisfiable arguments", r.0))
            .collect();
        return Err(PlanError {
            prod: prod_id,
            pass: k,
            stuck,
        });
    }

    Ok(ProcPlan {
        prod: prod_id,
        pass: k,
        steps,
    })
}

impl crate::passes::Direction {
    /// The RHS position visited at order index `o` among `n` children.
    pub fn position_at(self, o: usize, n: usize) -> usize {
        match self {
            crate::passes::Direction::LeftToRight => o,
            crate::passes::Direction::RightToLeft => n - 1 - o,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::grammar::AgBuilder;
    use crate::passes::{assign_passes, Direction, PassConfig};

    fn lr() -> PassConfig {
        PassConfig {
            first_direction: Direction::LeftToRight,
            max_passes: 8,
        }
    }

    /// root -> S; S -> S x | x with downward POS and upward V.
    fn chain() -> (Grammar, PassAssignment) {
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "V", "int");
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "V", "int");
        let sp = b.inherited(s, "POS", "int");
        let x = b.terminal("x");
        let p0 = b.production(root, vec![s], None);
        b.rule(p0, vec![AttrOcc::rhs(0, sp)], Expr::Int(0));
        b.rule(p0, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(0, sv)));
        let p1 = b.production(s, vec![s, x], None);
        b.rule(
            p1,
            vec![AttrOcc::rhs(0, sp)],
            Expr::binop(BinOp::Add, Expr::Occ(AttrOcc::lhs(sp)), Expr::Int(1)),
        );
        b.rule(p1, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(0, sv)));
        let p2 = b.production(s, vec![x], None);
        b.rule(p2, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::lhs(sp)));
        b.start(root);
        let g = b.build().unwrap();
        let pa = assign_passes(&g, &lr()).unwrap();
        (g, pa)
    }

    #[test]
    fn skeleton_orders_get_visit_put() {
        let (g, pa) = chain();
        let plans = build_plans(&g, &pa).unwrap();
        let plan = plans.plan(1, ProdId(1)); // S -> S x
        let skeleton: Vec<Step> = plan
            .steps
            .iter()
            .copied()
            .filter(|s| !matches!(s, Step::Eval(_)))
            .collect();
        assert_eq!(
            skeleton,
            vec![
                Step::Get(0),
                Step::Visit(0),
                Step::Put(0),
                Step::Get(1),
                Step::Put(1)
            ]
        );
    }

    #[test]
    fn inherited_rule_precedes_visit() {
        let (g, pa) = chain();
        let plans = build_plans(&g, &pa).unwrap();
        let plan = plans.plan(1, ProdId(1));
        let eval_pos = plan
            .steps
            .iter()
            .position(|s| matches!(s, Step::Eval(r) if g.rule(*r).targets[0].pos == OccPos::Rhs(0)))
            .expect("inherited rule scheduled");
        let visit_pos = plan
            .steps
            .iter()
            .position(|s| matches!(s, Step::Visit(0)))
            .unwrap();
        assert!(eval_pos < visit_pos);
    }

    #[test]
    fn eager_scheduling_runs_argless_rules_first() {
        // The POS seed (Int 0) in root -> S has no arguments: eager
        // placement puts it before even Get(0) — earlier than the
        // "ordered ASE" canonical point just before Visit.
        let (g, pa) = chain();
        let plans = build_plans(&g, &pa).unwrap();
        let plan = plans.plan(1, ProdId(0));
        assert!(
            matches!(plan.steps[0], Step::Eval(_)),
            "steps: {:?}",
            plan.steps
        );
    }

    #[test]
    fn terminal_children_are_not_visited() {
        let (g, pa) = chain();
        let plans = build_plans(&g, &pa).unwrap();
        let plan = plans.plan(1, ProdId(2)); // S -> x
        assert!(plan.steps.iter().all(|s| !matches!(s, Step::Visit(_))));
        assert!(plan.steps.contains(&Step::Get(0)));
        assert!(plan.steps.contains(&Step::Put(0)));
    }

    #[test]
    fn synthesized_uses_child_value_after_visit() {
        let (g, pa) = chain();
        let plans = build_plans(&g, &pa).unwrap();
        let plan = plans.plan(1, ProdId(1));
        let visit_pos = plan
            .steps
            .iter()
            .position(|s| matches!(s, Step::Visit(0)))
            .unwrap();
        let syn_pos = plan
            .steps
            .iter()
            .position(|s| matches!(s, Step::Eval(r) if g.rule(*r).targets[0].pos == OccPos::Lhs))
            .expect("synthesized rule scheduled");
        assert!(syn_pos > visit_pos);
    }

    #[test]
    fn every_pass_has_full_husk() {
        // Two-pass grammar: in the pass with no rules for a production the
        // husk is still complete.
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "V", "int");
        let a = b.nonterminal("A");
        let ai = b.inherited(a, "I", "int");
        let av = b.synthesized(a, "V", "int");
        let bb = b.nonterminal("B");
        let bv = b.synthesized(bb, "V", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p0 = b.production(s, vec![a, bb], None);
        b.rule(
            p0,
            vec![AttrOcc::rhs(0, ai)],
            Expr::Occ(AttrOcc::rhs(1, bv)),
        );
        b.rule(p0, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(0, av)));
        let p1 = b.production(a, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(av)], Expr::Occ(AttrOcc::lhs(ai)));
        let p2 = b.production(bb, vec![x], None);
        b.rule(p2, vec![AttrOcc::lhs(bv)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.start(s);
        let g = b.build().unwrap();
        let pa = assign_passes(&g, &lr()).unwrap();
        assert_eq!(pa.num_passes(), 2);
        let plans = build_plans(&g, &pa).unwrap();
        // B -> x has its rule in pass 1 and nothing in pass 2, but the
        // husk remains.
        let p2_pass2 = plans.plan(2, ProdId(2));
        assert_eq!(p2_pass2.rules().count(), 0);
        assert!(p2_pass2.steps.contains(&Step::Get(0)));
        assert!(p2_pass2.steps.contains(&Step::Put(0)));
        // Pass 2 is right-to-left: in S -> A B the skeleton visits B (rhs
        // index 1) first.
        let p0_pass2 = plans.plan(2, ProdId(0));
        let first_get = p0_pass2
            .steps
            .iter()
            .find_map(|s| match s {
                Step::Get(i) => Some(*i),
                _ => None,
            })
            .unwrap();
        assert_eq!(
            first_get, 1,
            "right-to-left pass reads rightmost child first"
        );
    }

    #[test]
    fn plans_exist_for_every_pass_and_production() {
        let (g, pa) = chain();
        let plans = build_plans(&g, &pa).unwrap();
        assert_eq!(plans.num_passes(), pa.num_passes());
        for k in 1..=pa.num_passes() as u16 {
            assert_eq!(plans.pass_plans(k).len(), g.productions().len());
        }
    }
}
