//! Constant propagation and folding over attribute rules.
//!
//! The analysis computes, per attribute, whether *every* rule defining
//! it yields one provably crash-free constant; the transform then
//! materializes that constant at every use site and simplifies the
//! rewritten expressions. Abstract evaluation mirrors the interpreter's
//! semantics **exactly** — wrapping `i64` `+`/`-` on `Int` operands
//! only, `AND`/`OR` on `Bool` (with the evaluator's short-circuit on
//! the *first* operand's type check), structural `=`/`<>` on any pair,
//! `>`/`<` on `Int` only, `if` conditions must be literal `Bool` —
//! and external `Call`s are never folded, so an optimized grammar can
//! never produce a value (or a crash) the unoptimized one would not.

use super::graph::{AttrDepGraph, Direction, Lattice, Transfer};
use crate::expr::{BinOp, Expr};
use crate::grammar::{AttrClass, Grammar};
use crate::ids::{AttrId, RuleId};
use linguist_support::intern::Name;

/// A concrete constant value, mirroring the scalar `Value` variants the
/// evaluator can produce from literal expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConstVal {
    /// `Expr::Int` → `Value::Int`.
    Int(i64),
    /// `Expr::Bool` → `Value::Bool`.
    Bool(bool),
    /// `Expr::Str` → `Value::Str`.
    Str(String),
    /// `Expr::Const` (an uninterpreted constant) → `Value::Sym`.
    Sym(Name),
}

impl ConstVal {
    /// The literal expression that evaluates to this value.
    pub fn literal(&self) -> Expr {
        match self {
            ConstVal::Int(i) => Expr::Int(*i),
            ConstVal::Bool(b) => Expr::Bool(*b),
            ConstVal::Str(s) => Expr::Str(s.clone()),
            ConstVal::Sym(n) => Expr::Const(*n),
        }
    }
}

/// The three-level constant lattice.
#[derive(Clone, Debug, PartialEq)]
pub enum Abs {
    /// No rule has produced a value yet (optimistic start).
    Bottom,
    /// Every defining rule yields exactly this value, crash-free.
    Const(ConstVal),
    /// Unknown, input-dependent, or possibly crashing.
    Top,
}

impl Lattice for Abs {
    fn bottom() -> Abs {
        Abs::Bottom
    }

    fn join(&mut self, other: &Abs) -> bool {
        let grown = match (&*self, other) {
            (_, Abs::Bottom) | (Abs::Top, _) => None,
            (Abs::Bottom, o) => Some(o.clone()),
            (Abs::Const(a), Abs::Const(b)) if a == b => None,
            _ => Some(Abs::Top),
        };
        match grown {
            Some(v) => {
                *self = v;
                true
            }
            None => false,
        }
    }
}

/// Literal view of an expression, if it is one.
fn as_literal(e: &Expr) -> Option<ConstVal> {
    match e {
        Expr::Int(i) => Some(ConstVal::Int(*i)),
        Expr::Bool(b) => Some(ConstVal::Bool(*b)),
        Expr::Str(s) => Some(ConstVal::Str(s.clone())),
        Expr::Const(n) => Some(ConstVal::Sym(*n)),
        _ => None,
    }
}

/// Structural equality between two constants, exactly as the
/// evaluator's `Value::eq` decides it for scalar values: same-variant
/// structural comparison, `false` across variants.
fn const_eq(a: &ConstVal, b: &ConstVal) -> bool {
    a == b
}

/// Fold one infix application of two constants, mirroring the
/// evaluator's `apply_binop` — including its short-circuit: when the
/// first `AND`/`OR` operand already decides the result, the second
/// operand's *type* is never checked. Returns `None` where the
/// evaluator would error.
fn fold_binop(op: BinOp, a: &ConstVal, b: &ConstVal) -> Option<ConstVal> {
    let int = |v: &ConstVal| match v {
        ConstVal::Int(i) => Some(*i),
        _ => None,
    };
    let boolean = |v: &ConstVal| match v {
        ConstVal::Bool(b) => Some(*b),
        _ => None,
    };
    Some(match op {
        BinOp::Add => ConstVal::Int(int(a)?.wrapping_add(int(b)?)),
        BinOp::Sub => ConstVal::Int(int(a)?.wrapping_sub(int(b)?)),
        BinOp::And => ConstVal::Bool(boolean(a)? && boolean(b)?),
        BinOp::Or => ConstVal::Bool(boolean(a)? || boolean(b)?),
        BinOp::Eq => ConstVal::Bool(const_eq(a, b)),
        BinOp::Ne => ConstVal::Bool(!const_eq(a, b)),
        BinOp::Gt => ConstVal::Bool(int(a)? > int(b)?),
        BinOp::Lt => ConstVal::Bool(int(a)? < int(b)?),
    })
}

/// Abstract interpretation of one expression under the current facts.
fn abs_eval(e: &Expr, facts: &[Abs]) -> Abs {
    match e {
        Expr::Occ(o) => facts[o.attr.0 as usize].clone(),
        Expr::Int(_) | Expr::Bool(_) | Expr::Str(_) | Expr::Const(_) => {
            Abs::Const(as_literal(e).expect("literal"))
        }
        // External functions are uninterpreted: never fold a Call.
        Expr::Call { .. } => Abs::Top,
        Expr::Binop { op, lhs, rhs } => abs_binop(*op, abs_eval(lhs, facts), abs_eval(rhs, facts)),
        Expr::If {
            branches,
            otherwise,
        } => abs_if(branches, otherwise, 0, facts),
    }
}

fn abs_binop(op: BinOp, a: Abs, b: Abs) -> Abs {
    // The evaluator's type checks short-circuit on the first operand:
    // AND(false, _) and OR(true, _) decide without inspecting the
    // second operand's type. (Both operands are still *evaluated*
    // eagerly — a crash while computing `b` means no value at all,
    // which the "value, if any" abstraction already covers.)
    match (op, &a) {
        (BinOp::And, Abs::Const(ConstVal::Bool(false))) => {
            return Abs::Const(ConstVal::Bool(false))
        }
        (BinOp::Or, Abs::Const(ConstVal::Bool(true))) => return Abs::Const(ConstVal::Bool(true)),
        _ => {}
    }
    match (a, b) {
        (Abs::Bottom, _) | (_, Abs::Bottom) => Abs::Bottom,
        (Abs::Const(x), Abs::Const(y)) => match fold_binop(op, &x, &y) {
            Some(v) => Abs::Const(v),
            None => Abs::Top,
        },
        _ => Abs::Top,
    }
}

/// Abstract value of target slot `slot` of an `if`, scanning branches
/// in evaluation order: a literally-true condition selects its arm and
/// stops; a literally-false one is skipped; an unknown condition joins
/// the arm and keeps scanning; a non-`Bool` constant condition crashes
/// (no value — contributes nothing); an undecided (`Bottom`) condition
/// defers the whole result.
fn abs_if(branches: &[(Expr, Vec<Expr>)], otherwise: &[Expr], slot: usize, facts: &[Abs]) -> Abs {
    let arm_val = |arm: &[Expr]| match arm.get(slot) {
        Some(e) => abs_eval(e, facts),
        // A missing slot is a structural error the evaluator rejects
        // at runtime: no value.
        None => Abs::Bottom,
    };
    let mut acc = Abs::Bottom;
    for (cond, arm) in branches {
        match abs_eval(cond, facts) {
            Abs::Const(ConstVal::Bool(true)) => {
                acc.join(&arm_val(arm));
                return acc;
            }
            Abs::Const(ConstVal::Bool(false)) => continue,
            Abs::Const(_) => return acc, // crashing condition: no value past here
            Abs::Bottom => return acc,   // undecided: refine on a later visit
            Abs::Top => {
                acc.join(&arm_val(arm));
            }
        }
    }
    acc.join(&arm_val(otherwise));
    acc
}

/// The constant-propagation analysis, [`Forward`](Direction::Forward)
/// over the attribute dependency graph.
pub struct ConstProp<'g> {
    graph: &'g AttrDepGraph,
}

impl<'g> ConstProp<'g> {
    /// Wrap the shared dependency graph.
    pub fn new(graph: &'g AttrDepGraph) -> ConstProp<'g> {
        ConstProp { graph }
    }
}

impl Transfer for ConstProp<'_> {
    type Fact = Abs;
    const DIRECTION: Direction = Direction::Forward;

    fn boundary(&self, g: &Grammar, a: AttrId) -> Abs {
        // Intrinsics vary per input tree; attributes no rule defines
        // are beyond the framework's view. Both start at ⊤.
        if g.attr(a).class == AttrClass::Intrinsic || self.graph.defs[a.0 as usize].is_empty() {
            Abs::Top
        } else {
            Abs::Bottom
        }
    }

    fn transfer(&self, g: &Grammar, r: RuleId, _a: AttrId, slot: usize, facts: &[Abs]) -> Abs {
        let rule = g.rule(r);
        match &rule.expr {
            Expr::If {
                branches,
                otherwise,
            } if rule.targets.len() > 1 => abs_if(branches, otherwise, slot, facts),
            e => abs_eval(e, facts),
        }
    }
}

/// What the fold transform did, for the report and the lints.
#[derive(Clone, Debug, Default)]
pub struct FoldOutcome {
    /// `Occ` sites replaced by literals, per attribute read.
    pub folded_uses: Vec<(AttrId, usize)>,
    /// Rules whose whole right-hand side became a literal.
    pub materialized_rules: usize,
}

/// Rewrite every use of a `Const` attribute into its literal and
/// simplify the rewritten expressions (machine-exact folding only).
pub fn fold_constants(g: &mut Grammar, facts: &[Abs]) -> FoldOutcome {
    let mut out = FoldOutcome::default();
    let mut per_attr = vec![0usize; facts.len()];
    for ri in 0..g.rules().len() {
        let rid = RuleId(ri as u32);
        let was_literal = as_literal(&g.rule(rid).expr).is_some();
        let expr = &mut g.rule_mut(rid).expr;
        substitute(expr, facts, &mut per_attr);
        simplify(expr);
        if !was_literal && as_literal(&g.rule(rid).expr).is_some() {
            out.materialized_rules += 1;
        }
    }
    for (i, &n) in per_attr.iter().enumerate() {
        if n > 0 {
            out.folded_uses.push((AttrId(i as u32), n));
        }
    }
    out
}

/// Replace `Occ` reads of `Const` attributes with their literals.
fn substitute(e: &mut Expr, facts: &[Abs], per_attr: &mut [usize]) {
    match e {
        Expr::Occ(o) => {
            if let Abs::Const(v) = &facts[o.attr.0 as usize] {
                per_attr[o.attr.0 as usize] += 1;
                *e = v.literal();
            }
        }
        Expr::Int(_) | Expr::Bool(_) | Expr::Str(_) | Expr::Const(_) => {}
        Expr::Call { args, .. } => {
            for a in args {
                substitute(a, facts, per_attr);
            }
        }
        Expr::Binop { lhs, rhs, .. } => {
            substitute(lhs, facts, per_attr);
            substitute(rhs, facts, per_attr);
        }
        Expr::If {
            branches,
            otherwise,
        } => {
            for (c, arm) in branches {
                substitute(c, facts, per_attr);
                for a in arm {
                    substitute(a, facts, per_attr);
                }
            }
            for a in otherwise {
                substitute(a, facts, per_attr);
            }
        }
    }
}

/// Bottom-up machine-exact simplification: fold literal-operand infix
/// applications and prune `if` branches with literal conditions. A
/// branch is dropped only when doing so cannot suppress a runtime
/// crash — literal conditions cannot fail to evaluate.
fn simplify(e: &mut Expr) {
    match e {
        Expr::Occ(_) | Expr::Int(_) | Expr::Bool(_) | Expr::Str(_) | Expr::Const(_) => {}
        Expr::Call { args, .. } => {
            for a in args {
                simplify(a);
            }
        }
        Expr::Binop { op, lhs, rhs } => {
            simplify(lhs);
            simplify(rhs);
            if let (Some(a), Some(b)) = (as_literal(lhs), as_literal(rhs)) {
                if let Some(v) = fold_binop(*op, &a, &b) {
                    *e = v.literal();
                }
            }
        }
        Expr::If {
            branches,
            otherwise,
        } => {
            for (c, arm) in branches.iter_mut() {
                simplify(c);
                for a in arm {
                    simplify(a);
                }
            }
            for a in otherwise.iter_mut() {
                simplify(a);
            }
            // Prune in evaluation order: a literally-false condition is
            // skipped at runtime (drop it); a literally-true one makes
            // everything after it unreachable (it becomes the `else`).
            let mut kept = Vec::with_capacity(branches.len());
            for (c, arm) in branches.drain(..) {
                match as_literal(&c) {
                    Some(ConstVal::Bool(false)) => continue,
                    Some(ConstVal::Bool(true)) => {
                        *otherwise = arm;
                        break;
                    }
                    // Non-Bool literal conditions crash at runtime;
                    // keep them so the crash is preserved.
                    _ => kept.push((c, arm)),
                }
            }
            *branches = kept;
            if branches.is_empty() && otherwise.len() == 1 {
                *e = otherwise.remove(0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::graph::solve;
    use crate::grammar::AgBuilder;
    use crate::ids::AttrOcc;

    fn fact(facts: &[Abs], a: AttrId) -> &Abs {
        &facts[a.0 as usize]
    }

    #[test]
    fn constants_propagate_through_copies_and_arithmetic() {
        // S.A = 2; S.B = S.A + 3; S.C = S.B (copy); root.V = S.C
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "V", "int");
        let s = b.nonterminal("S");
        let sa = b.synthesized(s, "A", "int");
        let sb = b.synthesized(s, "B", "int");
        let sc = b.synthesized(s, "C", "int");
        let p0 = b.production(root, vec![s], None);
        b.rule(p0, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(0, sc)));
        let p1 = b.production(s, vec![], None);
        b.rule(p1, vec![AttrOcc::lhs(sa)], Expr::Int(2));
        b.rule(
            p1,
            vec![AttrOcc::lhs(sb)],
            Expr::binop(BinOp::Add, Expr::Occ(AttrOcc::lhs(sa)), Expr::Int(3)),
        );
        b.rule(p1, vec![AttrOcc::lhs(sc)], Expr::Occ(AttrOcc::lhs(sb)));
        b.start(root);
        let mut g = b.build().unwrap();

        let graph = AttrDepGraph::build(&g);
        let cp = ConstProp::new(&graph);
        let facts = solve(&g, &graph, &cp);
        assert_eq!(fact(&facts, sa), &Abs::Const(ConstVal::Int(2)));
        assert_eq!(fact(&facts, sb), &Abs::Const(ConstVal::Int(5)));
        assert_eq!(fact(&facts, sc), &Abs::Const(ConstVal::Int(5)));
        assert_eq!(fact(&facts, rv), &Abs::Const(ConstVal::Int(5)));

        let outcome = fold_constants(&mut g, &facts);
        assert!(outcome.materialized_rules >= 2);
        // root.V = 5, materialized.
        assert_eq!(g.rule(crate::ids::RuleId(0)).expr, Expr::Int(5));
    }

    #[test]
    fn intrinsics_and_calls_stay_top() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let w = b.synthesized(s, "W", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let f = b.name("mk");
        let p = b.production(s, vec![x], None);
        b.rule(p, vec![AttrOcc::lhs(v)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.rule(
            p,
            vec![AttrOcc::lhs(w)],
            Expr::Call {
                func: f,
                args: vec![Expr::Int(1)],
            },
        );
        b.start(s);
        let g = b.build().unwrap();
        let graph = AttrDepGraph::build(&g);
        let cp = ConstProp::new(&graph);
        let facts = solve(&g, &graph, &cp);
        assert_eq!(fact(&facts, obj), &Abs::Top);
        assert_eq!(fact(&facts, v), &Abs::Top);
        assert_eq!(fact(&facts, w), &Abs::Top, "calls never fold");
    }

    #[test]
    fn conflicting_definitions_meet_to_top() {
        // Two productions define T.V with different constants.
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "V", "int");
        let t = b.nonterminal("T");
        let tv = b.synthesized(t, "V", "int");
        let p0 = b.production(root, vec![t], None);
        b.rule(p0, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(0, tv)));
        let p1 = b.production(t, vec![], None);
        b.rule(p1, vec![AttrOcc::lhs(tv)], Expr::Int(1));
        let p2 = b.production(t, vec![], None);
        b.rule(p2, vec![AttrOcc::lhs(tv)], Expr::Int(2));
        b.start(root);
        let g = b.build().unwrap();
        let graph = AttrDepGraph::build(&g);
        let cp = ConstProp::new(&graph);
        let facts = solve(&g, &graph, &cp);
        assert_eq!(fact(&facts, tv), &Abs::Top);
        assert_eq!(fact(&facts, rv), &Abs::Top);
    }

    #[test]
    fn fold_binop_matches_machine_semantics() {
        use ConstVal::*;
        // Wrapping arithmetic on Int only.
        assert_eq!(
            fold_binop(BinOp::Add, &Int(i64::MAX), &Int(1)),
            Some(Int(i64::MIN))
        );
        assert_eq!(fold_binop(BinOp::Add, &Bool(true), &Int(1)), None);
        // AND/OR short-circuit the second operand's type check.
        assert_eq!(
            fold_binop(BinOp::And, &Bool(false), &Int(7)),
            Some(Bool(false))
        );
        assert_eq!(fold_binop(BinOp::And, &Bool(true), &Int(7)), None);
        assert_eq!(
            fold_binop(BinOp::Or, &Bool(true), &Int(7)),
            Some(Bool(true))
        );
        assert_eq!(fold_binop(BinOp::Or, &Bool(false), &Int(7)), None);
        // Eq/Ne are total; cross-type compares are simply unequal.
        assert_eq!(
            fold_binop(BinOp::Eq, &Int(1), &Bool(true)),
            Some(Bool(false))
        );
        assert_eq!(fold_binop(BinOp::Ne, &Int(1), &Int(1)), Some(Bool(false)));
        // Gt/Lt are Int-only.
        assert_eq!(fold_binop(BinOp::Gt, &Str("a".into()), &Int(0)), None);
    }

    #[test]
    fn simplify_prunes_literal_if_branches() {
        let mut e = Expr::If {
            branches: vec![
                (Expr::Bool(false), vec![Expr::Int(1)]),
                (Expr::Bool(true), vec![Expr::Int(2)]),
            ],
            otherwise: vec![Expr::Int(3)],
        };
        simplify(&mut e);
        assert_eq!(e, Expr::Int(2));

        // A non-literal condition blocks pruning of itself but later
        // literally-false branches still drop.
        let occ = Expr::Occ(AttrOcc::lhs(AttrId(0)));
        let mut e = Expr::If {
            branches: vec![
                (occ.clone(), vec![Expr::Int(1)]),
                (Expr::Bool(false), vec![Expr::Int(2)]),
            ],
            otherwise: vec![Expr::Int(3)],
        };
        simplify(&mut e);
        assert_eq!(
            e,
            Expr::If {
                branches: vec![(occ, vec![Expr::Int(1)])],
                otherwise: vec![Expr::Int(3)],
            }
        );
    }
}
