//! Dead-attribute and dead-rule elimination — the teeth behind AG001.
//!
//! Backward liveness over the attribute dependency graph: the output
//! attributes (the start symbol's synthesized attributes, the only
//! external effect an evaluation has) are the roots; an attribute is
//! live when some rule with a live target reads it. Rules with no live
//! target are deleted; attributes no surviving rule targets — and no
//! live rule reads — are detached from their symbol, removing them
//! from the storage layout, the required-target sets, and the pass
//! schedule.
//!
//! Granularity is the whole rule, deliberately: the evaluator computes
//! *every* expression of a selected arm, so keeping a multi-target rule
//! for one live target keeps all of its argument reads live too.
//! Deleting a rule can only suppress work (and, on inputs where the
//! unoptimized grammar would crash inside a dead rule, the crash);
//! on every input where unoptimized evaluation succeeds, the outputs
//! are byte-identical — the differential oracle's optimized leg holds
//! exactly that.

use super::graph::{AttrDepGraph, Direction, Lattice, Transfer};
use crate::grammar::{AttrClass, Grammar};
use crate::ids::{AttrId, RuleId};

/// The two-point liveness lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Live(pub bool);

impl Lattice for Live {
    fn bottom() -> Live {
        Live(false)
    }

    fn join(&mut self, other: &Live) -> bool {
        let grew = !self.0 && other.0;
        self.0 |= other.0;
        grew
    }
}

/// The liveness analysis, [`Backward`](Direction::Backward) over the
/// attribute dependency graph.
pub struct Liveness<'g> {
    graph: &'g AttrDepGraph,
}

impl<'g> Liveness<'g> {
    /// Wrap the shared dependency graph.
    pub fn new(graph: &'g AttrDepGraph) -> Liveness<'g> {
        Liveness { graph }
    }
}

impl Transfer for Liveness<'_> {
    type Fact = Live;
    const DIRECTION: Direction = Direction::Backward;

    fn boundary(&self, g: &Grammar, a: AttrId) -> Live {
        let attr = g.attr(a);
        let is_output = attr.symbol == g.start()
            && attr.class == AttrClass::Synthesized
            && g.symbol(g.start()).attrs.contains(&a);
        Live(is_output)
    }

    fn transfer(&self, g: &Grammar, r: RuleId, a: AttrId, _slot: usize, facts: &[Live]) -> Live {
        let reads_a = self.graph.rule_args[r.0 as usize].contains(&a);
        let target_live = g.rule(r).targets.iter().any(|t| facts[t.attr.0 as usize].0);
        Live(reads_a && target_live)
    }
}

/// What elimination did, for the report and the lints.
#[derive(Clone, Debug, Default)]
pub struct ElimOutcome {
    /// Rules deleted (no live target), with their pre-compaction ids.
    pub deleted_rules: usize,
    /// Attributes detached from their symbols.
    pub detached: Vec<AttrId>,
    /// Old-id → new-id rule remap from the compaction.
    pub rule_remap: Vec<Option<RuleId>>,
}

/// Delete every rule without a live target and detach every attribute
/// that is dead *and* untargeted by any surviving rule.
pub fn eliminate_dead(g: &mut Grammar, live: &[Live]) -> ElimOutcome {
    let keep: Vec<bool> = g
        .rules()
        .iter()
        .map(|r| r.targets.iter().any(|t| live[t.attr.0 as usize].0))
        .collect();
    let deleted_rules = keep.iter().filter(|&&k| !k).count();
    let rule_remap = g.retain_rules(&keep);

    let mut targeted = vec![false; g.attrs().len()];
    for r in g.rules() {
        for t in &r.targets {
            targeted[t.attr.0 as usize] = true;
        }
    }
    let mut detached = Vec::new();
    for sym in 0..g.symbols().len() {
        for &a in &g.symbols()[sym].attrs.clone() {
            if !live[a.0 as usize].0 && !targeted[a.0 as usize] {
                g.detach_attr(a);
                detached.push(a);
            }
        }
    }
    detached.sort_by_key(|a| a.0);
    ElimOutcome {
        deleted_rules,
        detached,
        rule_remap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::graph::solve;
    use crate::expr::Expr;
    use crate::grammar::AgBuilder;
    use crate::ids::AttrOcc;

    #[test]
    fn unreferenced_attribute_chain_dies() {
        // root.V = S.V; S.V = 1; S.DEAD1 = x.OBJ; S.DEAD2 = S.DEAD1.
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "V", "int");
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "V", "int");
        let d1 = b.synthesized(s, "DEAD1", "int");
        let d2 = b.synthesized(s, "DEAD2", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p0 = b.production(root, vec![s], None);
        b.rule(p0, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(0, sv)));
        let p1 = b.production(s, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(sv)], Expr::Int(1));
        b.rule(p1, vec![AttrOcc::lhs(d1)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.rule(p1, vec![AttrOcc::lhs(d2)], Expr::Occ(AttrOcc::lhs(d1)));
        b.start(root);
        let mut g = b.build().unwrap();

        let graph = AttrDepGraph::build(&g);
        let lv = Liveness::new(&graph);
        let live = solve(&g, &graph, &lv);
        assert!(live[rv.0 as usize].0);
        assert!(live[sv.0 as usize].0);
        assert!(!live[d1.0 as usize].0, "feeds only DEAD2");
        assert!(!live[d2.0 as usize].0, "never read");
        assert!(!live[obj.0 as usize].0, "read only by a dead rule");

        let out = eliminate_dead(&mut g, &live);
        assert_eq!(out.deleted_rules, 2);
        assert_eq!(out.detached, vec![d1, d2, obj]);
        assert_eq!(g.rules().len(), 2);
        // Ids were remapped, not renumbered attribute-side.
        assert_eq!(out.rule_remap[0], Some(RuleId(0)));
        assert_eq!(out.rule_remap[2], None);
        // The symbol no longer declares the dead attributes …
        assert_eq!(g.symbol(s).attrs, vec![sv]);
        // … but the attribute records (and ids) survive untouched.
        assert_eq!(g.attrs().len(), 5);
    }

    #[test]
    fn outputs_are_roots_and_never_die() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let p = b.production(s, vec![], None);
        b.rule(p, vec![AttrOcc::lhs(v)], Expr::Int(7));
        b.start(s);
        let mut g = b.build().unwrap();
        let graph = AttrDepGraph::build(&g);
        let lv = Liveness::new(&graph);
        let live = solve(&g, &graph, &lv);
        assert!(live[v.0 as usize].0);
        let out = eliminate_dead(&mut g, &live);
        assert_eq!(out.deleted_rules, 0);
        assert!(out.detached.is_empty());
    }

    #[test]
    fn partially_live_multi_target_rule_survives_whole() {
        // One rule defines (S.A, S.B); only S.A reaches the output.
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "V", "int");
        let s = b.nonterminal("S");
        let sa = b.synthesized(s, "A", "int");
        let sb = b.synthesized(s, "B", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p0 = b.production(root, vec![s], None);
        b.rule(p0, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(0, sa)));
        let p1 = b.production(s, vec![x], None);
        b.rule(
            p1,
            vec![AttrOcc::lhs(sa), AttrOcc::lhs(sb)],
            Expr::Occ(AttrOcc::rhs(0, obj)),
        );
        b.start(root);
        let mut g = b.build().unwrap();
        let graph = AttrDepGraph::build(&g);
        let lv = Liveness::new(&graph);
        let live = solve(&g, &graph, &lv);
        assert!(live[sa.0 as usize].0);
        assert!(!live[sb.0 as usize].0);
        assert!(live[obj.0 as usize].0, "read by a rule with a live target");
        let out = eliminate_dead(&mut g, &live);
        assert_eq!(out.deleted_rules, 0);
        // S.B stays attached: a surviving rule still writes it.
        assert!(out.detached.is_empty());
        assert_eq!(g.rules().len(), 2);
    }
}
