//! Copy-chain collapsing: forward transitive copies within a
//! production.
//!
//! The paper's static subsumption removes copy-rules by allocating
//! same-named attributes to one global; chains it misses (renames,
//! mixed classes, cost-model rejections) survive as the AG004 residue.
//! This transform attacks the residue structurally: inside one
//! production, an occurrence defined by a copy-rule always holds the
//! same value as the copy's source occurrence — both live on the same
//! node instance — so every *read* of the copied occurrence can be
//! forwarded to the chain's root. Intermediate links lose their
//! readers and fall to dead-rule elimination; the paper's subsumption
//! then sees shorter, more uniform chains.

use crate::expr::Expr;
use crate::grammar::Grammar;
use crate::ids::{AttrOcc, ProdId, RuleId};
use std::collections::HashMap;

/// What the collapse did, for the report and the lints.
#[derive(Clone, Debug, Default)]
pub struct CollapseOutcome {
    /// Reads forwarded past at least one copy link, per production.
    pub forwarded: Vec<(ProdId, usize)>,
}

/// Resolve `occ` through the production's copy-definitions to the
/// root of its chain. The visited set guards against copy cycles
/// (rejected by the circularity check, but this transform must not
/// rely on running after it).
fn chain_root(mut occ: AttrOcc, copy_of: &HashMap<AttrOcc, AttrOcc>) -> AttrOcc {
    let mut visited = vec![occ];
    while let Some(&src) = copy_of.get(&occ) {
        if visited.contains(&src) {
            break;
        }
        occ = src;
        visited.push(occ);
    }
    occ
}

/// Rewrite every occurrence read in `e` through `copy_of`, counting
/// the reads that actually moved.
fn forward(e: &mut Expr, copy_of: &HashMap<AttrOcc, AttrOcc>, moved: &mut usize) {
    match e {
        Expr::Occ(o) => {
            let root = chain_root(*o, copy_of);
            if root != *o {
                *o = root;
                *moved += 1;
            }
        }
        Expr::Int(_) | Expr::Bool(_) | Expr::Str(_) | Expr::Const(_) => {}
        Expr::Call { args, .. } => {
            for a in args {
                forward(a, copy_of, moved);
            }
        }
        Expr::Binop { lhs, rhs, .. } => {
            forward(lhs, copy_of, moved);
            forward(rhs, copy_of, moved);
        }
        Expr::If {
            branches,
            otherwise,
        } => {
            for (c, arm) in branches {
                forward(c, copy_of, moved);
                for a in arm {
                    forward(a, copy_of, moved);
                }
            }
            for a in otherwise {
                forward(a, copy_of, moved);
            }
        }
    }
}

/// Collapse copy chains in every production of `g`.
pub fn collapse_copy_chains(g: &mut Grammar) -> CollapseOutcome {
    let mut out = CollapseOutcome::default();
    for pi in 0..g.productions().len() {
        let pid = ProdId(pi as u32);
        // Map each copy-defined occurrence to its source occurrence.
        let mut copy_of: HashMap<AttrOcc, AttrOcc> = HashMap::new();
        for &r in &g.production(pid).rules {
            let rule = g.rule(r);
            if let (Some(src), [target]) = (rule.copy_source(), rule.targets.as_slice()) {
                copy_of.insert(*target, src);
            }
        }
        if copy_of.is_empty() {
            continue;
        }
        let mut moved = 0usize;
        let rule_ids: Vec<RuleId> = g.production(pid).rules.clone();
        for r in rule_ids {
            // A copy-rule's own read forwards too: `t = s, s = u`
            // becomes `t = u, s = u`.
            let expr = &mut g.rule_mut(r).expr;
            forward(expr, &copy_of, &mut moved);
        }
        if moved > 0 {
            out.forwarded.push((pid, moved));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::AgBuilder;
    use crate::ids::AttrId;

    #[test]
    fn chains_forward_to_their_root() {
        // One production: S.A = x.OBJ (copy), S.B = S.A (copy),
        // S.C = S.B + 1. After collapsing, S.B reads x.OBJ and S.C
        // reads S.B's root... i.e. x.OBJ.
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let a = b.synthesized(s, "A", "int");
        let bb = b.synthesized(s, "B", "int");
        let c = b.synthesized(s, "C", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p = b.production(s, vec![x], None);
        b.rule(p, vec![AttrOcc::lhs(a)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.rule(p, vec![AttrOcc::lhs(bb)], Expr::Occ(AttrOcc::lhs(a)));
        b.rule(
            p,
            vec![AttrOcc::lhs(c)],
            Expr::binop(
                crate::expr::BinOp::Add,
                Expr::Occ(AttrOcc::lhs(bb)),
                Expr::Int(1),
            ),
        );
        b.start(s);
        let mut g = b.build().unwrap();
        let outcome = collapse_copy_chains(&mut g);
        assert_eq!(outcome.forwarded, vec![(ProdId(0), 2)]);
        // S.B now copies straight from x.OBJ.
        assert_eq!(g.rule(RuleId(1)).expr, Expr::Occ(AttrOcc::rhs(0, obj)));
        // S.C's read forwarded to the chain root as well.
        assert_eq!(
            g.rule(RuleId(2)).expr,
            Expr::binop(
                crate::expr::BinOp::Add,
                Expr::Occ(AttrOcc::rhs(0, obj)),
                Expr::Int(1),
            )
        );
    }

    #[test]
    fn copy_cycles_do_not_hang() {
        // A <-> B copy cycle (circular, but the transform must still
        // terminate if handed such a grammar).
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let a = b.synthesized(s, "A", "int");
        let bb = b.synthesized(s, "B", "int");
        let p = b.production(s, vec![], None);
        b.rule(p, vec![AttrOcc::lhs(a)], Expr::Occ(AttrOcc::lhs(bb)));
        b.rule(p, vec![AttrOcc::lhs(bb)], Expr::Occ(AttrOcc::lhs(a)));
        b.start(s);
        let mut g = b.build().unwrap();
        let _ = collapse_copy_chains(&mut g);
        let _ = AttrId(0);
    }
}
