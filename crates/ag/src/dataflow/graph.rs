//! The attribute dependency graph and the monotone worklist solver.
//!
//! Every analysis in this module runs over the *symbol-level* attribute
//! dependency graph: one node per [`AttrId`], one edge per (defining
//! rule, argument) pair. Working at symbol level — rather than over
//! attribute *occurrences* per production — keeps every fixpoint here
//! polynomial; Wu's exponential-time-completeness result for the full
//! circularity problem is about the occurrence-level relation, which we
//! deliberately never materialize.
//!
//! # Termination
//!
//! [`solve`] terminates because (1) every [`Lattice`] used here has
//! finite height (three levels for constant propagation, two for
//! liveness), (2) facts only move up: each recomputation joins the
//! boundary fact with monotone per-rule transfer contributions, whose
//! inputs only ever grow, and (3) an attribute re-enters the worklist
//! only when a fact it depends on strictly grew. With `n` attributes
//! and height `h`, at most `n·h` strict increases occur, each enqueuing
//! at most the node's dependents.

use crate::grammar::Grammar;
use crate::ids::{AttrId, RuleId};
use std::collections::VecDeque;

/// Which way facts flow along dependency edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// From a rule's arguments to its targets (constant propagation).
    Forward,
    /// From a rule's targets back to its arguments (liveness).
    Backward,
}

/// A join-semilattice of finite height.
pub trait Lattice: Clone + PartialEq {
    /// The least element every non-boundary fact starts at.
    fn bottom() -> Self;
    /// Least upper bound, in place. Returns whether `self` grew.
    fn join(&mut self, other: &Self) -> bool;
}

/// One dataflow analysis: a lattice, a direction, and a per-rule
/// transfer function.
pub trait Transfer {
    /// The fact domain.
    type Fact: Lattice;
    /// Flow direction.
    const DIRECTION: Direction;
    /// The fact an attribute holds before any rule contributes:
    /// the analysis' boundary condition (intrinsics and undefined
    /// attributes for constants, output roots for liveness).
    fn boundary(&self, g: &Grammar, a: AttrId) -> Self::Fact;
    /// Forward: the contribution of defining rule `r` (with `a` in
    /// target slot `slot`) to `a`'s fact. Backward: the contribution of
    /// using rule `r` to argument `a`'s fact (`slot` is unused).
    fn transfer(
        &self,
        g: &Grammar,
        r: RuleId,
        a: AttrId,
        slot: usize,
        facts: &[Self::Fact],
    ) -> Self::Fact;
}

/// The symbol-level attribute dependency graph, with the per-rule
/// argument sets the solver and the transforms share.
#[derive(Clone, Debug)]
pub struct AttrDepGraph {
    /// Per attribute: the rules defining it, with the target slot.
    pub defs: Vec<Vec<(RuleId, usize)>>,
    /// Per attribute: the rules reading it as an argument.
    pub uses: Vec<Vec<RuleId>>,
    /// Per rule: its argument attributes, deduplicated.
    pub rule_args: Vec<Vec<AttrId>>,
}

impl AttrDepGraph {
    /// Build the graph from every semantic rule of `g`.
    pub fn build(g: &Grammar) -> AttrDepGraph {
        let n = g.attrs().len();
        let mut defs = vec![Vec::new(); n];
        let mut uses = vec![Vec::new(); n];
        let mut rule_args = Vec::with_capacity(g.rules().len());
        for (ri, r) in g.rules().iter().enumerate() {
            let rid = RuleId(ri as u32);
            for (slot, t) in r.targets.iter().enumerate() {
                defs[t.attr.0 as usize].push((rid, slot));
            }
            let mut args: Vec<AttrId> = Vec::new();
            for occ in r.arguments() {
                if !args.contains(&occ.attr) {
                    args.push(occ.attr);
                }
            }
            for &a in &args {
                uses[a.0 as usize].push(rid);
            }
            rule_args.push(args);
        }
        AttrDepGraph {
            defs,
            uses,
            rule_args,
        }
    }
}

/// Run `t` to fixpoint over `graph` with a worklist, returning the
/// final fact per [`AttrId`]. See the module docs for the termination
/// argument.
pub fn solve<T: Transfer>(g: &Grammar, graph: &AttrDepGraph, t: &T) -> Vec<T::Fact> {
    let n = g.attrs().len();
    let mut facts: Vec<T::Fact> = (0..n).map(|i| t.boundary(g, AttrId(i as u32))).collect();
    let mut queued = vec![true; n];
    let mut list: VecDeque<u32> = (0..n as u32).collect();
    while let Some(ai) = list.pop_front() {
        queued[ai as usize] = false;
        let a = AttrId(ai);
        let mut new = t.boundary(g, a);
        match T::DIRECTION {
            Direction::Forward => {
                for &(r, slot) in &graph.defs[ai as usize] {
                    let c = t.transfer(g, r, a, slot, &facts);
                    new.join(&c);
                }
            }
            Direction::Backward => {
                for &r in &graph.uses[ai as usize] {
                    let c = t.transfer(g, r, a, 0, &facts);
                    new.join(&c);
                }
            }
        }
        if new != facts[ai as usize] {
            facts[ai as usize] = new;
            let enqueue = |b: AttrId, queued: &mut Vec<bool>, list: &mut VecDeque<u32>| {
                if !queued[b.0 as usize] {
                    queued[b.0 as usize] = true;
                    list.push_back(b.0);
                }
            };
            match T::DIRECTION {
                Direction::Forward => {
                    for &r in &graph.uses[ai as usize] {
                        for tgt in &g.rule(r).targets {
                            enqueue(tgt.attr, &mut queued, &mut list);
                        }
                    }
                }
                Direction::Backward => {
                    for &(r, _) in &graph.defs[ai as usize] {
                        for &b in &graph.rule_args[r.0 as usize] {
                            enqueue(b, &mut queued, &mut list);
                        }
                    }
                }
            }
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::grammar::AgBuilder;
    use crate::ids::AttrOcc;

    #[test]
    fn graph_records_defs_and_uses() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p = b.production(s, vec![x], None);
        b.rule(p, vec![AttrOcc::lhs(v)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.start(s);
        let g = b.build().unwrap();
        let graph = AttrDepGraph::build(&g);
        assert_eq!(graph.defs[v.0 as usize], vec![(crate::ids::RuleId(0), 0)]);
        assert!(graph.defs[obj.0 as usize].is_empty());
        assert_eq!(graph.uses[obj.0 as usize], vec![crate::ids::RuleId(0)]);
        assert_eq!(graph.rule_args[0], vec![obj]);
    }
}
