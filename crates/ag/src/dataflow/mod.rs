//! The grammar optimizer: a monotone dataflow framework over the
//! attribute dependency graph, plus the transforms built on it.
//!
//! [`optimize`] rewrites an analyzed grammar *before* pass scheduling:
//!
//! 1. **constant propagation/folding** ([`constprop`]) — attributes
//!    every rule defines as one provably crash-free constant are
//!    materialized as literals at each use site;
//! 2. **copy-chain collapsing** ([`copychain`]) — reads of
//!    within-production copy targets are forwarded to the chain root,
//!    shrinking the AG004 residue the paper's subsumption misses;
//! 3. **dead-attribute/dead-rule elimination** ([`liveness`]) —
//!    attributes whose values cannot reach any output lose their rules
//!    and their storage slots (the teeth behind AG001);
//! 4. **change-impact closures** ([`impact`]) — a pure per-production
//!    analysis serialized with the compiled grammar as the substrate
//!    for incremental re-translation.
//!
//! Running before scheduling is the point: folded reads and deleted
//! rules remove dependency edges, so the alternating-pass assignment,
//! the lifetime split, and static subsumption all see the smaller
//! grammar — fewer passes means fewer APT records written per node,
//! which is the evaluator's dominant cost.
//!
//! The framework itself ([`graph`]) is reusable: analyses implement
//! [`Lattice`] and [`Transfer`] and share one worklist solver; see the
//! termination argument in that module's docs.

pub mod constprop;
pub mod copychain;
pub mod graph;
pub mod impact;
pub mod liveness;

pub use constprop::{Abs, ConstProp, ConstVal};
pub use copychain::collapse_copy_chains;
pub use graph::{solve, AttrDepGraph, Direction, Lattice, Transfer};
pub use impact::{impact_closures, ImpactClosure};
pub use liveness::{Live, Liveness};

use crate::grammar::Grammar;
use crate::ids::{AttrId, ProdId, RuleId};

/// Which transform produced a note.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptKind {
    /// Constant propagation/folding (AG013).
    Folded,
    /// Dead-attribute/dead-rule elimination (AG014).
    Eliminated,
    /// Copy-chain collapsing (AG015).
    Collapsed,
}

/// One reportable optimizer decision, anchored to a grammar entity so
/// the lint layer can attach a source span.
#[derive(Clone, Debug)]
pub struct OptNote {
    /// Which transform.
    pub kind: OptKind,
    /// The production involved, if the note is per-production.
    pub prod: Option<ProdId>,
    /// The attribute involved, if the note is per-attribute.
    pub attr: Option<AttrId>,
    /// Name-resolved human text (without the code prefix).
    pub message: String,
}

/// Everything the optimizer did to one grammar.
#[derive(Clone, Debug, Default)]
pub struct OptReport {
    /// `Occ` reads replaced by materialized literals.
    pub folded_uses: usize,
    /// Rules whose whole right-hand side became a literal.
    pub folded_rules: usize,
    /// Reads forwarded past copy chains.
    pub collapsed_copies: usize,
    /// Rules deleted by dead-rule elimination.
    pub eliminated_rules: usize,
    /// Attributes detached from their symbols.
    pub eliminated_attrs: usize,
    /// Per-decision notes for the AG013–AG015 lints.
    pub notes: Vec<OptNote>,
    /// Old → new rule ids from dead-rule compaction (length: the
    /// pre-elimination rule count). Side tables indexed by `RuleId`
    /// must be remapped through this.
    pub rule_remap: Vec<Option<RuleId>>,
    /// Per-production change-impact closures, indexed by `ProdId`.
    pub impact: Vec<ImpactClosure>,
}

impl OptReport {
    /// Whether any transform changed the grammar.
    pub fn changed(&self) -> bool {
        self.folded_uses > 0
            || self.collapsed_copies > 0
            || self.eliminated_rules > 0
            || self.eliminated_attrs > 0
    }
}

/// Run all transforms on `g`, in order, and compute the impact
/// closures of the optimized grammar.
///
/// The caller is responsible for having checked completeness and
/// non-circularity first; every transform preserves both (transforms
/// only remove dependency edges, rules, and required targets).
pub fn optimize(g: &mut Grammar) -> OptReport {
    let mut report = OptReport::default();

    // 1. Constant propagation + folding.
    let graph = AttrDepGraph::build(g);
    let cp = ConstProp::new(&graph);
    let facts = solve(g, &graph, &cp);
    let fold = constprop::fold_constants(g, &facts);
    report.folded_rules = fold.materialized_rules;
    for (a, n) in &fold.folded_uses {
        report.folded_uses += n;
        let val = match &facts[a.0 as usize] {
            Abs::Const(ConstVal::Int(i)) => i.to_string(),
            Abs::Const(ConstVal::Bool(b)) => b.to_string(),
            Abs::Const(ConstVal::Str(s)) => format!("{:?}", s),
            Abs::Const(ConstVal::Sym(n)) => g.resolve(*n).to_owned(),
            _ => "?".to_owned(),
        };
        report.notes.push(OptNote {
            kind: OptKind::Folded,
            prod: None,
            attr: Some(*a),
            message: format!(
                "{}.{} is the constant {}; {} read(s) materialized as literals",
                g.symbol_name(g.attr(*a).symbol),
                g.attr_name(*a),
                val,
                n
            ),
        });
    }

    // 2. Copy-chain collapsing.
    let collapse = collapse_copy_chains(g);
    for (p, n) in &collapse.forwarded {
        report.collapsed_copies += n;
        report.notes.push(OptNote {
            kind: OptKind::Collapsed,
            prod: Some(*p),
            attr: None,
            message: format!(
                "production {} ({}): {} read(s) forwarded past copy chains",
                p.0,
                g.symbol_name(g.production(*p).lhs),
                n
            ),
        });
    }

    // 3. Dead-rule / dead-attribute elimination.
    let graph = AttrDepGraph::build(g);
    let lv = Liveness::new(&graph);
    let live = solve(g, &graph, &lv);
    let elim = liveness::eliminate_dead(g, &live);
    report.eliminated_rules = elim.deleted_rules;
    report.eliminated_attrs = elim.detached.len();
    for a in &elim.detached {
        report.notes.push(OptNote {
            kind: OptKind::Eliminated,
            prod: None,
            attr: Some(*a),
            message: format!(
                "{}.{} cannot reach any output; removed from storage and schedule",
                g.symbol_name(g.attr(*a).symbol),
                g.attr_name(*a),
            ),
        });
    }
    report.rule_remap = elim.rule_remap;

    // 4. Impact closures over the final grammar.
    let graph = AttrDepGraph::build(g);
    report.impact = impact_closures(g, &graph);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::grammar::AgBuilder;
    use crate::ids::AttrOcc;

    /// root.V = S.C; S.A = 2; S.B = S.A + 3; S.C = S.B; S.DEAD = x.OBJ.
    fn sample() -> Grammar {
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "V", "int");
        let s = b.nonterminal("S");
        let sa = b.synthesized(s, "A", "int");
        let sb = b.synthesized(s, "B", "int");
        let sc = b.synthesized(s, "C", "int");
        let sd = b.synthesized(s, "DEAD", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p0 = b.production(root, vec![s], None);
        b.rule(p0, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(0, sc)));
        let p1 = b.production(s, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(sa)], Expr::Int(2));
        b.rule(
            p1,
            vec![AttrOcc::lhs(sb)],
            Expr::binop(
                crate::expr::BinOp::Add,
                Expr::Occ(AttrOcc::lhs(sa)),
                Expr::Int(3),
            ),
        );
        b.rule(p1, vec![AttrOcc::lhs(sc)], Expr::Occ(AttrOcc::lhs(sb)));
        b.rule(p1, vec![AttrOcc::lhs(sd)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.start(root);
        b.build().unwrap()
    }

    #[test]
    fn end_to_end_fold_collapse_eliminate() {
        let mut g = sample();
        let report = optimize(&mut g);
        assert!(report.changed());
        assert!(report.folded_uses >= 3, "A, B, C reads all fold");
        assert!(report.eliminated_rules >= 1, "DEAD's rule dies");
        assert!(report.eliminated_attrs >= 1, "DEAD detaches");
        // The output rule is now a materialized literal.
        let root_rule = g
            .rules()
            .iter()
            .find(|r| r.prod == ProdId(0))
            .expect("root rule survives");
        assert_eq!(root_rule.expr, Expr::Int(5));
        // The whole constant chain became dead and was removed.
        assert_eq!(g.rules().len(), 1);
        // Impact closures exist for every production.
        assert_eq!(report.impact.len(), g.productions().len());
    }

    #[test]
    fn optimize_is_idempotent() {
        let mut g = sample();
        let _ = optimize(&mut g);
        let second = optimize(&mut g);
        assert!(!second.changed(), "second run finds nothing: {:?}", second);
    }
}
