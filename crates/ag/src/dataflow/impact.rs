//! Per-production change-impact closures.
//!
//! For incremental re-translation (ROADMAP item 4), an editor-class
//! consumer needs to know: if the subtree under a node derived by
//! production `p` is edited, which attributes *anywhere* in the tree
//! can change value? A subtree edit is visible to the rest of the tree
//! only through the synthesized attributes of the subtree's root
//! symbol, so the closure is forward reachability from `p`'s
//! LHS-synthesized attributes over the attribute dependency graph —
//! a pure analysis, computed on the optimized grammar and serialized
//! with the compiled form.

use super::graph::AttrDepGraph;
use crate::grammar::{AttrClass, Grammar};
use crate::ids::AttrId;

/// The impact closure of one production.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ImpactClosure {
    /// Attributes whose value a subtree edit can affect, sorted by id.
    pub affected: Vec<AttrId>,
}

/// Compute the closure for every production of `g`.
pub fn impact_closures(g: &Grammar, graph: &AttrDepGraph) -> Vec<ImpactClosure> {
    let n = g.attrs().len();
    g.productions()
        .iter()
        .map(|p| {
            let mut reached = vec![false; n];
            let mut stack: Vec<AttrId> = g
                .symbol(p.lhs)
                .attrs
                .iter()
                .copied()
                .filter(|&a| g.attr(a).class == AttrClass::Synthesized)
                .collect();
            for &a in &stack {
                reached[a.0 as usize] = true;
            }
            while let Some(a) = stack.pop() {
                for &r in &graph.uses[a.0 as usize] {
                    for t in &g.rule(r).targets {
                        if !reached[t.attr.0 as usize] {
                            reached[t.attr.0 as usize] = true;
                            stack.push(t.attr);
                        }
                    }
                }
            }
            let affected = (0..n as u32)
                .map(AttrId)
                .filter(|a| reached[a.0 as usize])
                .collect();
            ImpactClosure { affected }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::grammar::AgBuilder;
    use crate::ids::AttrOcc;

    #[test]
    fn closure_reaches_upward_consumers_only() {
        // root.V = S.V + 1; S.V = x.OBJ. Editing under S can change
        // S.V and root.V, but never x.OBJ (intrinsics are inputs, and
        // nothing defines them from S.V).
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "V", "int");
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "V", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p0 = b.production(root, vec![s], None);
        b.rule(
            p0,
            vec![AttrOcc::lhs(rv)],
            Expr::binop(
                crate::expr::BinOp::Add,
                Expr::Occ(AttrOcc::rhs(0, sv)),
                Expr::Int(1),
            ),
        );
        let p1 = b.production(s, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.start(root);
        let g = b.build().unwrap();
        let graph = AttrDepGraph::build(&g);
        let closures = impact_closures(&g, &graph);
        assert_eq!(closures.len(), 2);
        // Production 0 (root -> S): seeds are root.V only.
        assert_eq!(closures[0].affected, vec![rv]);
        // Production 1 (S -> x): S.V propagates into root.V.
        assert_eq!(closures[1].affected, vec![rv, sv]);
        let _ = obj;
    }
}
