//! Alternating-pass evaluability analysis (§II).
//!
//! LINGUIST-86 "generates evaluators only for those attribute grammars that
//! can be evaluated in alternating passes" \[J\] \[JW\] \[PJ1\]. This module
//! assigns every attribute a pass number under a sequence of passes with
//! alternating directions, by the classical greatest-fixpoint candidate
//! removal: assume every still-unassigned attribute belongs to the current
//! pass, then repeatedly eject attributes whose defining rules cannot be
//! evaluated at their required point in the pass, until stable.
//!
//! Availability is modelled exactly as the Figure-3 paradigm dictates. In
//! a left-to-right pass over `X0 ::= X1 … Xn`, at the moment the inherited
//! attributes of `Xi` are evaluated the procedure can see: `X0`'s record
//! (its inherited attributes of this pass and everything from earlier
//! passes), the records of `X1 … Xi` that have been read, and the
//! synthesized results of the already-visited `X1 … Xi−1`. Crucially, a
//! value sitting at `Xj` for `j > i` is **not** reachable even if it was
//! computed in an earlier pass — its record has not been read yet. That is
//! precisely why alternating the direction between passes enables grammars
//! pure multi-pass left-to-right evaluation cannot handle.
//!
//! Intrinsic attributes are "evaluated before any pass" (§IV) and live in
//! pass 0.

use crate::grammar::{AttrClass, Grammar};
use crate::ids::{AttrId, AttrOcc, OccPos, ProdId, RuleId};
use std::collections::HashSet;
use std::fmt;

/// Direction of one pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Children visited left to right.
    LeftToRight,
    /// Children visited right to left.
    RightToLeft,
}

impl Direction {
    /// The opposite direction.
    pub fn flipped(self) -> Direction {
        match self {
            Direction::LeftToRight => Direction::RightToLeft,
            Direction::RightToLeft => Direction::LeftToRight,
        }
    }

    /// Visit-order index of RHS position `j` among `n` children.
    pub fn order(self, j: usize, n: usize) -> usize {
        match self {
            Direction::LeftToRight => j,
            Direction::RightToLeft => n - 1 - j,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::LeftToRight => write!(f, "left-to-right"),
            Direction::RightToLeft => write!(f, "right-to-left"),
        }
    }
}

/// Configuration of the pass analysis.
#[derive(Clone, Copy, Debug)]
pub struct PassConfig {
    /// Direction of the first pass. The paper's strategy 1 (parser emits
    /// nodes bottom-up) makes the first pass right-to-left; strategy 2
    /// (prefix emission) makes it left-to-right. LINGUIST-86 itself uses
    /// strategy 1.
    pub first_direction: Direction,
    /// Upper bound on the number of passes before giving up.
    pub max_passes: usize,
}

impl Default for PassConfig {
    fn default() -> PassConfig {
        PassConfig {
            first_direction: Direction::RightToLeft,
            max_passes: 32,
        }
    }
}

/// The computed pass assignment.
#[derive(Clone, Debug)]
pub struct PassAssignment {
    /// Per attribute: 0 for intrinsic, otherwise the 1-based pass number.
    pass_of_attr: Vec<u16>,
    /// Per rule: the pass in which it is evaluated.
    rule_pass: Vec<u16>,
    /// Direction of each pass (index 0 = pass 1).
    directions: Vec<Direction>,
}

impl PassAssignment {
    /// Pass number of an attribute (0 = intrinsic / pre-pass).
    pub fn pass_of(&self, a: AttrId) -> u16 {
        self.pass_of_attr[a.0 as usize]
    }

    /// Pass in which a rule runs.
    pub fn rule_pass(&self, r: RuleId) -> u16 {
        self.rule_pass[r.0 as usize]
    }

    /// Number of passes.
    pub fn num_passes(&self) -> usize {
        self.directions.len()
    }

    /// Direction of pass `k` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or greater than [`PassAssignment::num_passes`].
    pub fn direction(&self, k: u16) -> Direction {
        self.directions[k as usize - 1]
    }

    /// All pass directions in order.
    pub fn directions(&self) -> &[Direction] {
        &self.directions
    }
}

/// Why pass assignment failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PassError {
    /// Two consecutive passes assigned nothing while attributes remained —
    /// the grammar is not alternating-pass evaluable.
    NotEvaluable {
        /// Rendered names of the stuck attributes.
        stuck: Vec<String>,
    },
    /// The pass budget was exhausted.
    TooManyPasses {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::NotEvaluable { stuck } => write!(
                f,
                "grammar is not evaluable in alternating passes; stuck attributes: {}",
                stuck.join(", ")
            ),
            PassError::TooManyPasses { limit } => {
                write!(f, "pass assignment exceeded {} passes", limit)
            }
        }
    }
}

impl std::error::Error for PassError {}

/// The scheduling deadline of a rule within a pass: the latest zone of the
/// production-procedure where it may run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Deadline {
    /// Must run before visiting the child at visit-order index `i`.
    PreVisit(usize),
    /// May run any time up to the synthesized-evaluation zone at the end.
    End,
}

/// Assign every attribute to a pass.
///
/// # Errors
///
/// See [`PassError`].
pub fn assign_passes(g: &Grammar, cfg: &PassConfig) -> Result<PassAssignment, PassError> {
    let num_attrs = g.attrs().len();
    // None = unassigned; Some(0) = intrinsic.
    let mut assigned: Vec<Option<u16>> = g
        .attrs()
        .iter()
        .map(|a| (a.class == AttrClass::Intrinsic).then_some(0))
        .collect();

    let mut directions = Vec::new();
    let mut dir = cfg.first_direction;
    let mut consecutive_empty = 0usize;
    let mut k: u16 = 1;

    while assigned.iter().any(|p| p.is_none()) {
        if (k as usize) > cfg.max_passes {
            return Err(PassError::TooManyPasses {
                limit: cfg.max_passes,
            });
        }
        let mut candidates: HashSet<AttrId> = (0..num_attrs as u32)
            .map(AttrId)
            .filter(|a| assigned[a.0 as usize].is_none())
            .collect();

        // Greatest fixpoint: eject attributes whose rules cannot run.
        loop {
            let mut removed = false;
            for (ri, rule) in g.rules().iter().enumerate() {
                let _ = ri;
                // Skip rules entirely assigned to earlier passes.
                if rule
                    .targets
                    .iter()
                    .all(|t| assigned[t.attr.0 as usize].is_some())
                {
                    continue;
                }
                // All targets must be candidates (they are assigned
                // together, since a rule runs exactly once).
                let all_candidates = rule.targets.iter().all(|t| candidates.contains(&t.attr));
                let ok = all_candidates
                    && rule_evaluable(g, rule.prod, rule, k, dir, &assigned, &candidates);
                if !ok {
                    for t in &rule.targets {
                        removed |= candidates.remove(&t.attr);
                    }
                }
            }
            if !removed {
                break;
            }
        }

        if candidates.is_empty() {
            consecutive_empty += 1;
            if consecutive_empty >= 2 {
                let stuck = (0..num_attrs as u32)
                    .map(AttrId)
                    .filter(|a| assigned[a.0 as usize].is_none())
                    .map(|a| format!("{}.{}", g.symbol_name(g.attr(a).symbol), g.attr_name(a)))
                    .collect();
                return Err(PassError::NotEvaluable { stuck });
            }
        } else {
            consecutive_empty = 0;
            for a in candidates {
                assigned[a.0 as usize] = Some(k);
            }
        }
        directions.push(dir);
        dir = dir.flipped();
        k += 1;
    }

    let pass_of_attr: Vec<u16> = assigned.into_iter().map(|p| p.expect("assigned")).collect();
    let rule_pass: Vec<u16> = g
        .rules()
        .iter()
        .map(|r| {
            r.targets
                .iter()
                .map(|t| pass_of_attr[t.attr.0 as usize])
                .max()
                .expect("rules have targets")
        })
        .collect();

    Ok(PassAssignment {
        pass_of_attr,
        rule_pass,
        directions,
    })
}

/// One attribute dependency that kept a rule out of the previous pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockedDep {
    /// The blocked rule.
    pub rule: RuleId,
    /// Its production.
    pub prod: ProdId,
    /// A target occurrence of the blocked rule (a rule's targets always
    /// share one pass).
    pub target: AttrOcc,
    /// The argument occurrence that was not available at the rule's
    /// deadline in the previous pass.
    pub needs: AttrOcc,
}

/// Why a pass boundary exists: for pass `pass` (≥ 2), the dependencies
/// that forced its rules out of pass `pass − 1`.
#[derive(Clone, Debug)]
pub struct PassBlocker {
    /// The pass that had to be added.
    pub pass: u16,
    /// Direction of that pass.
    pub direction: Direction,
    /// Direction of the pass the rules were ejected from.
    pub prev_direction: Direction,
    /// Minimal culprit set: the first failing dependency per blocked
    /// rule, deduplicated by (target attribute, needed attribute).
    pub culprits: Vec<BlockedDep>,
}

/// Explain every pass boundary beyond pass 1 of a computed assignment.
///
/// For each pass `k ≥ 2` this replays the availability test of the
/// pass-(k−1) fixpoint round against the final assignment: attributes
/// finally in passes `< k−1` count as assigned, attributes finally in
/// pass `k−1` as that round's surviving candidates. Every rule of pass
/// `k` then fails on at least one argument occurrence; the first such
/// occurrence is recorded as the rule's culprit dependency — either a
/// direction conflict with a pass-(k−1) value, or a dependency on
/// another attribute that was itself pushed to pass `k` (a chain).
pub fn explain_pass_blockers(g: &Grammar, pa: &PassAssignment) -> Vec<PassBlocker> {
    let mut out = Vec::new();
    for k in 2..=pa.num_passes() as u16 {
        let prev = k - 1;
        let dir = pa.direction(prev);
        let assigned: Vec<Option<u16>> = (0..g.attrs().len() as u32)
            .map(|ai| {
                let p = pa.pass_of(AttrId(ai));
                (p < prev).then_some(p)
            })
            .collect();
        let candidates: HashSet<AttrId> = (0..g.attrs().len() as u32)
            .map(AttrId)
            .filter(|&a| pa.pass_of(a) == prev)
            .collect();
        let mut culprits: Vec<BlockedDep> = Vec::new();
        let mut seen: HashSet<(AttrId, AttrId)> = HashSet::new();
        for (ri, rule) in g.rules().iter().enumerate() {
            let r = RuleId(ri as u32);
            if pa.rule_pass(r) != k {
                continue;
            }
            let deadline = rule_deadline(g, rule.prod, rule, dir);
            let blocked = rule.arguments().into_iter().find(|&arg| {
                let mut visiting = HashSet::new();
                !occ_available(
                    g,
                    rule.prod,
                    arg,
                    deadline,
                    prev,
                    dir,
                    &assigned,
                    &candidates,
                    &mut visiting,
                )
            });
            if let Some(needs) = blocked {
                let target = rule.targets[0];
                if seen.insert((target.attr, needs.attr)) {
                    culprits.push(BlockedDep {
                        rule: r,
                        prod: rule.prod,
                        target,
                        needs,
                    });
                }
            }
        }
        if !culprits.is_empty() {
            out.push(PassBlocker {
                pass: k,
                direction: pa.direction(k),
                prev_direction: dir,
                culprits,
            });
        }
    }
    out
}

/// The deadline of a rule: the earliest of its targets' deadlines.
fn rule_deadline(
    g: &Grammar,
    prod: ProdId,
    rule: &crate::grammar::SemRule,
    dir: Direction,
) -> Deadline {
    let n = g.production(prod).rhs.len();
    rule.targets
        .iter()
        .map(|t| match t.pos {
            OccPos::Rhs(j) => Deadline::PreVisit(dir.order(j as usize, n)),
            OccPos::Lhs | OccPos::Limb => Deadline::End,
        })
        .min()
        .unwrap_or(Deadline::End)
}

fn rule_evaluable(
    g: &Grammar,
    prod: ProdId,
    rule: &crate::grammar::SemRule,
    k: u16,
    dir: Direction,
    assigned: &[Option<u16>],
    candidates: &HashSet<AttrId>,
) -> bool {
    let deadline = rule_deadline(g, prod, rule, dir);
    let mut visiting = HashSet::new();
    rule.arguments().into_iter().all(|arg| {
        occ_available(
            g,
            prod,
            arg,
            deadline,
            k,
            dir,
            assigned,
            candidates,
            &mut visiting,
        )
    })
}

/// Whether occurrence `b`'s value is available before `deadline` in pass
/// `k` with direction `dir`, given current (tentative) pass assignments.
#[allow(clippy::too_many_arguments)]
fn occ_available(
    g: &Grammar,
    prod: ProdId,
    b: AttrOcc,
    deadline: Deadline,
    k: u16,
    dir: Direction,
    assigned: &[Option<u16>],
    candidates: &HashSet<AttrId>,
    visiting: &mut HashSet<AttrId>,
) -> bool {
    let pass = match assigned[b.attr.0 as usize] {
        Some(p) => p,
        None if candidates.contains(&b.attr) => k,
        None => return false, // will land in a later pass
    };
    if pass > k {
        return false;
    }
    let class = g.attr(b.attr).class;
    let n = g.production(prod).rhs.len();
    match b.pos {
        OccPos::Lhs => {
            if pass < k || class == AttrClass::Inherited || class == AttrClass::Intrinsic {
                // The LHS record is the procedure's parameter; this-pass
                // inherited values were set by the parent before the visit.
                true
            } else {
                // Same-pass synthesized of the LHS: defined somewhere in
                // this very procedure; usable only in the End zone
                // (ordered topologically there).
                deadline == Deadline::End
            }
        }
        OccPos::Rhs(j) => {
            let oj = dir.order(j as usize, n);
            match deadline {
                Deadline::End => true, // all children read and visited
                Deadline::PreVisit(oi) => {
                    if oj < oi {
                        // Child already read and visited.
                        true
                    } else if oj == oi {
                        // Child's record has been read (GetNode precedes
                        // the pre-visit zone) but not visited: earlier-pass
                        // values and intrinsics are in the record;
                        // same-pass inherited siblingattributes are being
                        // evaluated in this same zone (ordered
                        // topologically); same-pass synthesized values do
                        // not exist yet.
                        pass < k || matches!(class, AttrClass::Inherited | AttrClass::Intrinsic)
                    } else {
                        // Child to the "right" in visit order: its record
                        // has not even been read yet.
                        false
                    }
                }
            }
        }
        OccPos::Limb => {
            if pass < k {
                return true; // stored in the limb record, read at entry
            }
            // Same-pass limb attribute: available where its own defining
            // rule can run. Recurse through its arguments (cycles among
            // limb attributes make them unavailable).
            if !visiting.insert(b.attr) {
                return false;
            }
            let ok = g
                .production(prod)
                .rules
                .iter()
                .filter(|&&r| g.rule(r).targets.contains(&b))
                .all(|&r| {
                    g.rule(r).arguments().into_iter().all(|arg| {
                        occ_available(
                            g, prod, arg, deadline, k, dir, assigned, candidates, visiting,
                        )
                    })
                });
            visiting.remove(&b.attr);
            ok
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::grammar::AgBuilder;

    fn lr_config() -> PassConfig {
        PassConfig {
            first_direction: Direction::LeftToRight,
            max_passes: 8,
        }
    }

    /// Purely synthesized grammar: one pass regardless of direction.
    #[test]
    fn synthesized_only_needs_one_pass() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p0 = b.production(s, vec![s, x], None);
        b.rule(
            p0,
            vec![AttrOcc::lhs(v)],
            Expr::binop(
                BinOp::Add,
                Expr::Occ(AttrOcc::rhs(0, v)),
                Expr::Occ(AttrOcc::rhs(1, obj)),
            ),
        );
        let p1 = b.production(s, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(v)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.start(s);
        let g = b.build().unwrap();
        let pa = assign_passes(&g, &lr_config()).unwrap();
        assert_eq!(pa.num_passes(), 1);
        assert_eq!(pa.pass_of(v), 1);
        assert_eq!(pa.pass_of(obj), 0, "intrinsics are pre-pass");
    }

    /// Left-to-right inherited chain: one L-R pass.
    #[test]
    fn l2r_inherited_chain_is_single_pass() {
        // root -> S; S -> S x | x. S.POS flows down-left; S.V up.
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "V", "int");
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "V", "int");
        let sp = b.inherited(s, "POS", "int");
        let x = b.terminal("x");
        let p0 = b.production(root, vec![s], None);
        b.rule(p0, vec![AttrOcc::rhs(0, sp)], Expr::Int(0));
        b.rule(p0, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(0, sv)));
        let p1 = b.production(s, vec![s, x], None);
        b.rule(
            p1,
            vec![AttrOcc::rhs(0, sp)],
            Expr::binop(BinOp::Add, Expr::Occ(AttrOcc::lhs(sp)), Expr::Int(1)),
        );
        b.rule(p1, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(0, sv)));
        let p2 = b.production(s, vec![x], None);
        b.rule(p2, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::lhs(sp)));
        b.start(root);
        let g = b.build().unwrap();
        let pa = assign_passes(&g, &lr_config()).unwrap();
        assert_eq!(pa.num_passes(), 1);
        assert_eq!(pa.direction(1), Direction::LeftToRight);
    }

    /// Right-to-left flow with an L-R first pass: information must wait for
    /// pass 2 (the R-L pass).
    #[test]
    fn right_to_left_flow_needs_second_pass_under_lr_start() {
        // S -> A B ; A.I = B.V (A's inherited comes from its right sibling).
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "V", "int");
        let a = b.nonterminal("A");
        let ai = b.inherited(a, "I", "int");
        let av = b.synthesized(a, "V", "int");
        let bb = b.nonterminal("B");
        let bv = b.synthesized(bb, "V", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p0 = b.production(s, vec![a, bb], None);
        b.rule(
            p0,
            vec![AttrOcc::rhs(0, ai)],
            Expr::Occ(AttrOcc::rhs(1, bv)),
        );
        b.rule(p0, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(0, av)));
        let p1 = b.production(a, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(av)], Expr::Occ(AttrOcc::lhs(ai)));
        let p2 = b.production(bb, vec![x], None);
        b.rule(p2, vec![AttrOcc::lhs(bv)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.start(s);
        let g = b.build().unwrap();

        let pa = assign_passes(&g, &lr_config()).unwrap();
        // B.V computable in pass 1 (L-R). A.I needs B.V from the right:
        // only available in the R-L pass 2. A.V same pass as A.I. S.V needs
        // A.V: End-zone argument, so also pass 2.
        assert_eq!(pa.pass_of(bv), 1);
        assert_eq!(pa.pass_of(ai), 2);
        assert_eq!(pa.pass_of(av), 2);
        assert_eq!(pa.direction(2), Direction::RightToLeft);
        assert_eq!(pa.num_passes(), 2);

        // With a R-L first pass the same grammar needs… pass 1 computes
        // B.V (no dependencies) and A.I, A.V immediately: 1 pass? A.I needs
        // B.V with B to the right of A, i.e. *earlier* in R-L visit order:
        // available in pass 1. S.V end-zone: pass 1. So everything in one
        // pass.
        let pa2 = assign_passes(
            &g,
            &PassConfig {
                first_direction: Direction::RightToLeft,
                max_passes: 8,
            },
        )
        .unwrap();
        assert_eq!(pa2.num_passes(), 1);
    }

    /// An attribute pair that bounces information both ways forever is not
    /// alternating-pass evaluable.
    #[test]
    fn non_evaluable_grammar_rejected() {
        // S -> A B with A.I = B.V, B.I = A.V, A.V = A.I, B.V = B.I:
        // a genuine circular flow through siblings.
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "V", "int");
        let a = b.nonterminal("A");
        let ai = b.inherited(a, "I", "int");
        let av = b.synthesized(a, "V", "int");
        let bb = b.nonterminal("B");
        let bi = b.inherited(bb, "I", "int");
        let bv = b.synthesized(bb, "V", "int");
        let x = b.terminal("x");
        let p0 = b.production(s, vec![a, bb], None);
        b.rule(
            p0,
            vec![AttrOcc::rhs(0, ai)],
            Expr::Occ(AttrOcc::rhs(1, bv)),
        );
        b.rule(
            p0,
            vec![AttrOcc::rhs(1, bi)],
            Expr::Occ(AttrOcc::rhs(0, av)),
        );
        b.rule(p0, vec![AttrOcc::lhs(sv)], Expr::Int(0));
        let p1 = b.production(a, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(av)], Expr::Occ(AttrOcc::lhs(ai)));
        let p2 = b.production(bb, vec![x], None);
        b.rule(p2, vec![AttrOcc::lhs(bv)], Expr::Occ(AttrOcc::lhs(bi)));
        b.start(s);
        let g = b.build().unwrap();
        let err = assign_passes(&g, &lr_config()).unwrap_err();
        assert!(matches!(err, PassError::NotEvaluable { .. }));
        assert!(err.to_string().contains("A.I") || err.to_string().contains("B.I"));
    }

    /// Limb attributes take the pass of their definition and are usable in
    /// the same pass by the rules that consume them.
    #[test]
    fn limb_attribute_shares_pass_with_consumers() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let w = b.synthesized(s, "W", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let l = b.limb("P");
        let tmp = b.limb_attr(l, "TMP", "int");
        let p = b.production(s, vec![x], Some(l));
        b.rule(
            p,
            vec![AttrOcc::limb(tmp)],
            Expr::binop(BinOp::Add, Expr::Occ(AttrOcc::rhs(0, obj)), Expr::Int(1)),
        );
        b.rule(p, vec![AttrOcc::lhs(v)], Expr::Occ(AttrOcc::limb(tmp)));
        b.rule(p, vec![AttrOcc::lhs(w)], Expr::Occ(AttrOcc::limb(tmp)));
        b.start(s);
        let g = b.build().unwrap();
        let pa = assign_passes(&g, &lr_config()).unwrap();
        assert_eq!(pa.num_passes(), 1);
        assert_eq!(pa.pass_of(tmp), 1);
        assert_eq!(pa.pass_of(v), 1);
    }

    /// Multi-target rules keep their targets in one pass.
    #[test]
    fn multi_target_rule_lands_in_one_pass() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let a = b.synthesized(s, "A", "int");
        let c = b.synthesized(s, "B", "int");
        let p = b.production(s, vec![], None);
        b.rule(p, vec![AttrOcc::lhs(a), AttrOcc::lhs(c)], Expr::Int(1));
        b.start(s);
        let g = b.build().unwrap();
        let pa = assign_passes(&g, &lr_config()).unwrap();
        assert_eq!(pa.pass_of(a), pa.pass_of(c));
        assert_eq!(pa.rule_pass(RuleId(0)), 1);
    }

    /// Information that bounces right-to-left then left-to-right settles
    /// in exactly two alternating passes under an R-L start.
    #[test]
    fn bouncing_grammar_needs_two_passes() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "V", "int");
        let a = b.nonterminal("A");
        let a1 = b.synthesized(s, "R1", "int"); // on S for simplicity
        let _ = a1;
        let av = b.synthesized(a, "V", "int");
        let ai = b.inherited(a, "I", "int");
        let aj = b.inherited(a, "J", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        // S -> A A
        let p0 = b.production(s, vec![a, a], None);
        // Pass 1 (R-L): right A's V computable bottom-up… make left A's I
        // depend on right A's V (needs R-L), then right A's J depend on
        // left A's… that needs L-R (pass 2), and S.V depend on right A's
        // J-derived value (pass 3).
        b.rule(
            p0,
            vec![AttrOcc::rhs(0, ai)],
            Expr::Occ(AttrOcc::rhs(1, av)),
        ); // L.I = R.V
        b.rule(p0, vec![AttrOcc::rhs(1, ai)], Expr::Int(0)); // R.I = 0
        b.rule(
            p0,
            vec![AttrOcc::rhs(1, aj)],
            Expr::Occ(AttrOcc::rhs(0, ai)),
        ); // R.J = L.I  (L-R flow)
        b.rule(p0, vec![AttrOcc::rhs(0, aj)], Expr::Int(0)); // L.J = 0
        b.rule(p0, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(1, aj))); // uses R.J
        b.rule(p0, vec![AttrOcc::lhs(a1)], Expr::Int(0));
        // A -> x
        let p1 = b.production(a, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(av)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.start(s);
        let g = b.build().unwrap();
        let pa = assign_passes(
            &g,
            &PassConfig {
                first_direction: Direction::RightToLeft,
                max_passes: 8,
            },
        )
        .unwrap();
        assert_eq!(pa.pass_of(av), 1);
        assert_eq!(pa.pass_of(ai), 1, "L.I = R.V works in the first R-L pass");
        assert_eq!(pa.pass_of(aj), 2, "R.J = L.I needs the L-R pass");
        // S.V uses R.J in the End zone, so it could be pass 2 as well.
        assert_eq!(pa.pass_of(sv), 2);
        assert_eq!(pa.num_passes(), 2);

        // The boundary explanation names the dependency that forced pass
        // 2: `R.J = L.I` cannot run in the R-L pass because L sits after
        // R in visit order.
        let blockers = explain_pass_blockers(&g, &pa);
        assert_eq!(blockers.len(), 1);
        let b2 = &blockers[0];
        assert_eq!(b2.pass, 2);
        assert_eq!(b2.prev_direction, Direction::RightToLeft);
        assert_eq!(b2.direction, Direction::LeftToRight);
        assert!(b2
            .culprits
            .iter()
            .any(|c| c.target == AttrOcc::rhs(1, aj) && c.needs == AttrOcc::rhs(0, ai)));
    }

    /// A single-pass grammar has no boundaries to explain.
    #[test]
    fn single_pass_grammar_has_no_blockers() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let p = b.production(s, vec![], None);
        b.rule(p, vec![AttrOcc::lhs(v)], Expr::Int(1));
        b.start(s);
        let g = b.build().unwrap();
        let pa = assign_passes(&g, &lr_config()).unwrap();
        assert!(explain_pass_blockers(&g, &pa).is_empty());
    }
}
