//! Dense ids and attribute-occurrence positions.
//!
//! Everything in the attribute-grammar core is addressed by small dense
//! ids so analyses can be arrays instead of maps. An *attribute occurrence*
//! ([`AttrOcc`]) is an attribute at a position of one production — the
//! paper's unit of account ("1202 attribute-occurrences").

use std::fmt;

/// A grammar symbol (terminal, nonterminal, or limb).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub u32);

/// An attribute of one symbol (symbol × attribute-name).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u32);

/// A production.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProdId(pub u32);

/// A semantic function (grammar-wide dense id).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId(pub u32);

/// Where within a production an occurrence sits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OccPos {
    /// The left-hand-side symbol.
    Lhs,
    /// The `i`-th right-hand-side symbol (0-based).
    Rhs(u16),
    /// The production's limb symbol.
    Limb,
}

impl fmt::Display for OccPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OccPos::Lhs => write!(f, "lhs"),
            OccPos::Rhs(i) => write!(f, "rhs[{}]", i),
            OccPos::Limb => write!(f, "limb"),
        }
    }
}

/// An attribute occurrence: `attr` at `pos` of some production (the
/// production is implied by context — occurrences only appear inside a
/// production's semantic functions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrOcc {
    /// Position within the production.
    pub pos: OccPos,
    /// The attribute (of the symbol at that position).
    pub attr: AttrId,
}

impl AttrOcc {
    /// Occurrence of `attr` on the left-hand side.
    pub fn lhs(attr: AttrId) -> AttrOcc {
        AttrOcc {
            pos: OccPos::Lhs,
            attr,
        }
    }

    /// Occurrence of `attr` on right-hand-side position `i`.
    pub fn rhs(i: u16, attr: AttrId) -> AttrOcc {
        AttrOcc {
            pos: OccPos::Rhs(i),
            attr,
        }
    }

    /// Occurrence of `attr` on the limb.
    pub fn limb(attr: AttrId) -> AttrOcc {
        AttrOcc {
            pos: OccPos::Limb,
            attr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occ_constructors() {
        let a = AttrId(3);
        assert_eq!(AttrOcc::lhs(a).pos, OccPos::Lhs);
        assert_eq!(AttrOcc::rhs(2, a).pos, OccPos::Rhs(2));
        assert_eq!(AttrOcc::limb(a).pos, OccPos::Limb);
        assert_eq!(AttrOcc::lhs(a).attr, a);
    }

    #[test]
    fn pos_display() {
        assert_eq!(OccPos::Lhs.to_string(), "lhs");
        assert_eq!(OccPos::Rhs(1).to_string(), "rhs[1]");
        assert_eq!(OccPos::Limb.to_string(), "limb");
    }
}
