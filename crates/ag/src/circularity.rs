//! Non-circularity: the polynomial sufficient test.
//!
//! §I: "it is an exponentially hard problem \[JOR\] to determine that an
//! attribute grammar is non-circular … Fortunately there are several
//! interesting and widely applicable sufficient conditions that can be
//! checked in polynomial time". This module implements the classic
//! *uniform* (strong) test: one induced inherited→synthesized dependency
//! relation per symbol, iterated to a fixed point, then a cycle check of
//! every production graph augmented with those relations. No cycle ⇒ the
//! grammar is certainly non-circular; a cycle here is reported as
//! (potential) circularity.

use crate::grammar::{AttrClass, Grammar, SymbolKind};
use crate::ids::{AttrId, AttrOcc, OccPos, ProdId};
use std::collections::{HashMap, HashSet};

/// A potential circularity: a dependency cycle in a production graph.
///
/// The cycle is kept as structured occurrences (closed: the first
/// occurrence repeats at the end); the lint layer ([`crate::lint`])
/// renders it with symbol/attribute names and the production's source
/// span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Circularity {
    /// The production whose augmented graph has the cycle.
    pub prod: ProdId,
    /// The cycle, as attribute occurrences of `prod`.
    pub cycle: Vec<AttrOcc>,
}

/// Induced dependency relations per symbol: `(inherited, synthesized)`
/// pairs meaning the synthesized attribute may depend on the inherited one
/// at the same node.
pub type IoRelations = HashMap<u32, HashSet<(AttrId, AttrId)>>;

/// Run the sufficient non-circularity test.
///
/// Returns the per-symbol induced IO relations on success (useful to
/// inspect information flow), or the first cycle found.
///
/// # Errors
///
/// Returns [`Circularity`] describing a dependency cycle if the uniform
/// test cannot prove the grammar non-circular.
pub fn check_noncircular(g: &Grammar) -> Result<IoRelations, Circularity> {
    let mut io: IoRelations = HashMap::new();

    // Fixed point over productions: propagate child IO through production
    // graphs into LHS IO.
    loop {
        let mut changed = false;
        for (pi, prod) in g.productions().iter().enumerate() {
            let prod_id = ProdId(pi as u32);
            let (nodes, edges) = production_graph(g, prod_id, &io);
            let reach = transitive_closure(&nodes, &edges);
            // New IO pairs for the LHS symbol.
            for (&from, tos) in &reach {
                let focc = nodes[from as usize];
                if focc.pos != OccPos::Lhs || g.attr(focc.attr).class != AttrClass::Inherited {
                    continue;
                }
                for &to in tos {
                    let tocc = nodes[to as usize];
                    if tocc.pos == OccPos::Lhs && g.attr(tocc.attr).class == AttrClass::Synthesized
                    {
                        changed |= io
                            .entry(prod.lhs.0)
                            .or_default()
                            .insert((focc.attr, tocc.attr));
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Cycle check with the final relations.
    for (pi, _) in g.productions().iter().enumerate() {
        let prod_id = ProdId(pi as u32);
        let (nodes, edges) = production_graph(g, prod_id, &io);
        if let Some(cycle) = find_cycle(&nodes, &edges) {
            return Err(Circularity {
                prod: prod_id,
                cycle: cycle.into_iter().map(|ix| nodes[ix as usize]).collect(),
            });
        }
    }
    Ok(io)
}

/// Build the dependency graph of one production: nodes are all attribute
/// occurrences; edges are rule argument→target dependencies plus, for each
/// nonterminal RHS occurrence, the child's induced inherited→synthesized
/// edges.
fn production_graph(
    g: &Grammar,
    prod_id: ProdId,
    io: &IoRelations,
) -> (Vec<AttrOcc>, Vec<(u32, u32)>) {
    let prod = g.production(prod_id);
    let mut nodes: Vec<AttrOcc> = Vec::new();
    let mut index: HashMap<AttrOcc, u32> = HashMap::new();
    let push = |occ: AttrOcc, nodes: &mut Vec<AttrOcc>, index: &mut HashMap<AttrOcc, u32>| {
        *index.entry(occ).or_insert_with(|| {
            nodes.push(occ);
            nodes.len() as u32 - 1
        })
    };

    for &a in &g.symbol(prod.lhs).attrs {
        push(AttrOcc::lhs(a), &mut nodes, &mut index);
    }
    for (i, &s) in prod.rhs.iter().enumerate() {
        for &a in &g.symbol(s).attrs {
            push(AttrOcc::rhs(i as u16, a), &mut nodes, &mut index);
        }
    }
    if let Some(l) = prod.limb {
        for &a in &g.symbol(l).attrs {
            push(AttrOcc::limb(a), &mut nodes, &mut index);
        }
    }

    let mut edges = Vec::new();
    for &r in &prod.rules {
        let rule = g.rule(r);
        for arg in rule.arguments() {
            let from = index[&arg];
            for &t in &rule.targets {
                edges.push((from, index[&t]));
            }
        }
    }
    // Child IO edges.
    for (i, &s) in prod.rhs.iter().enumerate() {
        if g.symbol(s).kind != SymbolKind::Nonterminal {
            continue;
        }
        if let Some(pairs) = io.get(&s.0) {
            for &(inh, syn) in pairs {
                edges.push((
                    index[&AttrOcc::rhs(i as u16, inh)],
                    index[&AttrOcc::rhs(i as u16, syn)],
                ));
            }
        }
    }
    (nodes, edges)
}

fn transitive_closure(nodes: &[AttrOcc], edges: &[(u32, u32)]) -> HashMap<u32, HashSet<u32>> {
    let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().push(b);
    }
    let mut reach: HashMap<u32, HashSet<u32>> = HashMap::new();
    for start in 0..nodes.len() as u32 {
        let mut seen: HashSet<u32> = HashSet::new();
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            if let Some(nexts) = adj.get(&n) {
                for &m in nexts {
                    if seen.insert(m) {
                        stack.push(m);
                    }
                }
            }
        }
        reach.insert(start, seen);
    }
    reach
}

/// Find any cycle; returns the node indices along it.
fn find_cycle(nodes: &[AttrOcc], edges: &[(u32, u32)]) -> Option<Vec<u32>> {
    let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().push(b);
    }
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state = vec![0u8; nodes.len()];
    let mut parent: Vec<Option<u32>> = vec![None; nodes.len()];

    fn dfs(
        n: u32,
        adj: &HashMap<u32, Vec<u32>>,
        state: &mut [u8],
        parent: &mut [Option<u32>],
    ) -> Option<(u32, u32)> {
        state[n as usize] = 1;
        if let Some(nexts) = adj.get(&n) {
            for &m in nexts {
                match state[m as usize] {
                    0 => {
                        parent[m as usize] = Some(n);
                        if let Some(hit) = dfs(m, adj, state, parent) {
                            return Some(hit);
                        }
                    }
                    1 => return Some((n, m)),
                    _ => {}
                }
            }
        }
        state[n as usize] = 2;
        None
    }

    for s in 0..nodes.len() as u32 {
        if state[s as usize] == 0 {
            if let Some((from, to)) = dfs(s, &adj, &mut state, &mut parent) {
                // Walk back from `from` to `to` along parents.
                let mut path = vec![from];
                let mut cur = from;
                while cur != to {
                    cur = parent[cur as usize].expect("on-stack node has parent");
                    path.push(cur);
                }
                path.reverse();
                path.push(to); // close the loop for display
                return Some(path);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::grammar::AgBuilder;

    #[test]
    fn simple_grammar_is_noncircular() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let p = b.production(s, vec![], None);
        b.rule(p, vec![AttrOcc::lhs(v)], Expr::Int(1));
        b.start(s);
        let g = b.build().unwrap();
        assert!(check_noncircular(&g).is_ok());
    }

    #[test]
    fn direct_cycle_within_production_detected() {
        // S.A depends on S.B and S.B on S.A (both limb-free LHS syn).
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let a = b.synthesized(s, "A", "int");
        let c = b.synthesized(s, "B", "int");
        let p = b.production(s, vec![], None);
        b.rule(p, vec![AttrOcc::lhs(a)], Expr::Occ(AttrOcc::lhs(c)));
        b.rule(p, vec![AttrOcc::lhs(c)], Expr::Occ(AttrOcc::lhs(a)));
        b.start(s);
        let g = b.build().unwrap();
        let err = check_noncircular(&g).unwrap_err();
        assert_eq!(err.prod, ProdId(0));
        // The cycle is closed (first occurrence repeated) and runs
        // through both LHS occurrences.
        assert_eq!(err.cycle.first(), err.cycle.last());
        assert!(err.cycle.contains(&AttrOcc::lhs(a)));
        assert!(err.cycle.contains(&AttrOcc::lhs(c)));
    }

    #[test]
    fn cycle_through_child_io_detected() {
        // root -> T ; T -> x.
        // In root: T.I = T.S (parent feeds child's syn back as inherited).
        // In T -> x: T.S = T.I. Induced IO of T: I -> S; root's graph then
        // has T.I -> T.S -> T.I : a cycle.
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "V", "int");
        let t = b.nonterminal("T");
        let ti = b.inherited(t, "I", "int");
        let ts = b.synthesized(t, "S", "int");
        let x = b.terminal("x");
        let p0 = b.production(root, vec![t], None);
        b.rule(
            p0,
            vec![AttrOcc::rhs(0, ti)],
            Expr::Occ(AttrOcc::rhs(0, ts)),
        );
        b.rule(p0, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(0, ts)));
        let p1 = b.production(t, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(ts)], Expr::Occ(AttrOcc::lhs(ti)));
        b.start(root);
        let g = b.build().unwrap();
        let err = check_noncircular(&g).unwrap_err();
        assert_eq!(err.prod, ProdId(0));
    }

    #[test]
    fn io_relations_capture_information_flow() {
        // T.S = T.I through T -> x, so IO(T) = {(I, S)}.
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "V", "int");
        let t = b.nonterminal("T");
        let ti = b.inherited(t, "I", "int");
        let ts = b.synthesized(t, "S", "int");
        let x = b.terminal("x");
        let p0 = b.production(root, vec![t], None);
        b.rule(p0, vec![AttrOcc::rhs(0, ti)], Expr::Int(1));
        b.rule(p0, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(0, ts)));
        let p1 = b.production(t, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(ts)], Expr::Occ(AttrOcc::lhs(ti)));
        b.start(root);
        let g = b.build().unwrap();
        let io = check_noncircular(&g).unwrap();
        let t_id = g.symbol_by_name("T").unwrap();
        assert!(io.get(&t_id.0).unwrap().contains(&(ti, ts)));
    }

    #[test]
    fn chain_grammar_noncircular_with_deep_nesting() {
        // S -> S x | x with S.V = inner S.V + 1: no cycles.
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let x = b.terminal("x");
        let p0 = b.production(s, vec![s, x], None);
        b.rule(
            p0,
            vec![AttrOcc::lhs(v)],
            Expr::binop(
                crate::expr::BinOp::Add,
                Expr::Occ(AttrOcc::rhs(0, v)),
                Expr::Int(1),
            ),
        );
        let p1 = b.production(s, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(v)], Expr::Int(0));
        b.start(s);
        let g = b.build().unwrap();
        assert!(check_noncircular(&g).is_ok());
    }
}
