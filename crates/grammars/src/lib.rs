//! Bundled attribute grammars and synthetic workloads.
//!
//! The evaluation section of the paper runs LINGUIST-86 over two real
//! attribute grammars: its own 1800-line grammar and a Pascal grammar.
//! This crate bundles our counterparts plus smaller teaching grammars,
//! each as LINGUIST source text together with a matching scanner
//! definition (token kinds named after the grammar's terminals, so
//! [`linguist_frontend::Translator`] can bind them):
//!
//! * [`meta_source`] — the LINGUIST input language described as an
//!   attribute grammar *in its own notation* (the self-application
//!   workload; 4 alternating passes; lints `.lg` files for duplicate,
//!   undeclared and unused symbols).
//! * [`pascal_source`] — a Pascal subset with symbol tables, type
//!   checking and code-size accounting (computation-heavy; 2 passes).
//! * [`calc_source`] — a desk calculator (one pass, synthesized only).
//! * [`knuth_source`] — Knuth's binary-number grammar (inherited SCALE).
//! * [`block_source`] — a scope-checked block language (2 passes).
//! * [`synth`] — a parametric family of grammars with controlled
//!   copy-rule density for the subsumption ablation (E13).

pub mod synth;

use linguist_frontend::driver::{run, DriverOptions, DriverOutput};
use linguist_lexgen::{Scanner, ScannerDef};

/// The LINGUIST meta attribute grammar (self-application workload).
pub fn meta_source() -> &'static str {
    include_str!("../lg/meta.lg")
}

/// The Pascal-subset attribute grammar.
pub fn pascal_source() -> &'static str {
    include_str!("../lg/pascal.lg")
}

/// The desk-calculator attribute grammar.
pub fn calc_source() -> &'static str {
    include_str!("../lg/calc.lg")
}

/// Knuth's binary-number attribute grammar.
pub fn knuth_source() -> &'static str {
    include_str!("../lg/knuth_binary.lg")
}

/// The scope-checked block-language attribute grammar.
pub fn block_source() -> &'static str {
    include_str!("../lg/block.lg")
}

/// Scanner for the calculator's concrete syntax.
pub fn calc_scanner() -> Scanner {
    ScannerDef::new()
        .skip(r"[ \t\r\n]+")
        .token("NUMBER", "[0-9]+")
        .token("PLUS", r"\+")
        .token("MINUS", "-")
        .token("STAR", r"\*")
        .token("LPAREN", r"\(")
        .token("RPAREN", r"\)")
        .build()
        .expect("calc scanner is well-formed")
}

/// Scanner for binary numerals.
pub fn knuth_scanner() -> Scanner {
    ScannerDef::new()
        .skip(r"[ \t\r\n]+")
        .token("ZERO", "0")
        .token("ONE", "1")
        .token("POINT", r"\.")
        .build()
        .expect("knuth scanner is well-formed")
}

/// Scanner for the block language.
pub fn block_scanner() -> Scanner {
    ScannerDef::new()
        .skip(r"[ \t\r\n]+")
        .skip(r"#[^\n]*")
        .token("VAR", "var")
        .token("USE", "use")
        .token("IDENT", "[a-zA-Z_][a-zA-Z0-9_]*")
        .token("LBRACE", r"\{")
        .token("RBRACE", r"\}")
        .token("SEMI", ";")
        .build()
        .expect("block scanner is well-formed")
}

/// Scanner for the Pascal subset.
pub fn pascal_scanner() -> Scanner {
    ScannerDef::new()
        .skip(r"[ \t\r\n]+")
        .skip(r"\{[^}]*\}")
        .token("PROGRAM", "program")
        .token("VAR", "var")
        .token("BEGIN", "begin")
        .token("ENDKW", "end")
        .token("IF", "if")
        .token("THEN", "then")
        .token("ELSE", "else")
        .token("WHILE", "while")
        .token("DO", "do")
        .token("INTKW", "integer")
        .token("BOOLKW", "boolean")
        .token("NOTKW", "not")
        .token("TRUEKW", "true")
        .token("FALSEKW", "false")
        .token("IDENT", "[a-zA-Z_][a-zA-Z0-9_]*")
        .token("NUMBER", "[0-9]+")
        .token("ASSIGN", ":=")
        .token("SEMI", ";")
        .token("COLON", ":")
        .token("DOT", r"\.")
        .token("PLUS", r"\+")
        .token("MINUS", "-")
        .token("STAR", r"\*")
        .token("LESS", "<")
        .token("EQUALS", "=")
        .token("LPAREN", r"\(")
        .token("RPAREN", r"\)")
        .build()
        .expect("pascal scanner is well-formed")
}

/// Scanner for the LINGUIST input language itself (the meta grammar's
/// concrete syntax) — the same token definitions the front end's own
/// generated scanner uses.
pub fn meta_scanner() -> Scanner {
    ScannerDef::new()
        .skip(r"[ \t\r\n]+")
        .skip(r"#[^\n]*")
        .token("KW_GRAMMAR", "grammar")
        .token("KW_TERMINALS", "terminals")
        .token("KW_NONTERMINALS", "nonterminals")
        .token("KW_LIMBS", "limbs")
        .token("KW_START", "start")
        .token("KW_PRODUCTIONS", "productions")
        .token("KW_PROD", "prod")
        .token("KW_END", "end")
        .token("KW_IF", "if")
        .token("KW_THEN", "then")
        .token("KW_ELSIF", "elsif")
        .token("KW_ELSE", "else")
        .token("KW_ENDIF", "endif")
        .token("KW_TRUE", "true")
        .token("KW_FALSE", "false")
        .token("KW_AND", "AND")
        .token("KW_OR", "OR")
        .token("KW_SYN", "syn")
        .token("KW_INH", "inh")
        .token("KW_INTRINSIC", "intrinsic")
        .token("KW_LOCAL", "local")
        .token("IDENT", "[a-zA-Z_][a-zA-Z0-9_$]*")
        .token("INT", "[0-9]+")
        .token("STRING", "'[^'\n]*'")
        .token("ARROW", "->")
        .token("NE", "<>")
        .token("EQ", "=")
        .token("COMMA", ",")
        .token("SEMI", ";")
        .token("COLON", ":")
        .token("DOT", r"\.")
        .token("LP", r"\(")
        .token("RP", r"\)")
        .token("PLUS", r"\+")
        .token("MINUS", "-")
        .token("LT", "<")
        .token("GT", ">")
        .token("AMP", "&")
        .build()
        .expect("meta scanner is well-formed")
}

/// Run the overlay driver on a bundled source with default options.
///
/// # Errors
///
/// Propagates the driver's error (none of the bundled grammars should
/// fail).
pub fn analyze(source: &str) -> Result<DriverOutput, linguist_frontend::DriverError> {
    run(source, &DriverOptions::default())
}

/// [`analyze`] with the grammar optimizer on — the analysis the CLI's
/// default (`--opt=on`) produces, and the one the `*_opt` AOT evaluator
/// crates are generated from.
///
/// # Errors
///
/// Propagates the driver's error.
pub fn analyze_optimized(source: &str) -> Result<DriverOutput, linguist_frontend::DriverError> {
    let opts = DriverOptions {
        config: linguist_ag::analysis::Config {
            optimize: true,
            ..Default::default()
        },
        ..DriverOptions::default()
    };
    run(source, &opts)
}

/// Generate a Pascal-subset program with `vars` declarations and
/// `stmts` statements (used by throughput and memory sweeps).
pub fn pascal_program(vars: usize, stmts: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("program bench;\n");
    for i in 0..vars {
        let _ = writeln!(out, "var v{} : integer;", i);
    }
    out.push_str("begin\n");
    for i in 0..stmts {
        if i > 0 {
            out.push_str(";\n");
        }
        let _ = write!(
            out,
            "  v{} := v{} + {} * v{}",
            i % vars.max(1),
            (i + 1) % vars.max(1),
            i % 97,
            (i + 2) % vars.max(1)
        );
    }
    out.push_str("\nend.\n");
    out
}

/// Generate a block-language program with nested scopes.
pub fn block_program(decls: usize, depth: usize) -> String {
    let mut out = String::new();
    for d in 0..depth {
        out.push_str(&"  ".repeat(d));
        out.push_str("{\n");
        for i in 0..decls {
            out.push_str(&"  ".repeat(d + 1));
            out.push_str(&format!("var x{}_{} ;\n", d, i));
        }
        for i in 0..decls {
            out.push_str(&"  ".repeat(d + 1));
            out.push_str(&format!("use x{}_{} ;\n", d, i));
        }
    }
    for d in (0..depth).rev() {
        out.push_str(&"  ".repeat(d));
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use linguist_frontend::Translator;

    #[test]
    fn all_bundled_grammars_analyze() {
        for (name, src) in [
            ("calc", calc_source()),
            ("knuth", knuth_source()),
            ("block", block_source()),
            ("pascal", pascal_source()),
            ("meta", meta_source()),
        ] {
            let out = analyze(src).unwrap_or_else(|e| panic!("{}: {}", name, e));
            assert!(out.stats.productions > 0, "{}", name);
        }
    }

    #[test]
    fn pass_structure_matches_design() {
        assert_eq!(analyze(calc_source()).unwrap().stats.passes, 1, "calc");
        assert_eq!(analyze(knuth_source()).unwrap().stats.passes, 1, "knuth");
        assert_eq!(analyze(block_source()).unwrap().stats.passes, 2, "block");
        assert_eq!(analyze(pascal_source()).unwrap().stats.passes, 2, "pascal");
        assert_eq!(
            analyze(meta_source()).unwrap().stats.passes,
            4,
            "the meta grammar needs 4 alternating passes, like the paper's"
        );
    }

    #[test]
    fn translators_build_for_all_bundled_grammars() {
        for (name, src, scanner) in [
            ("calc", calc_source(), calc_scanner()),
            ("knuth", knuth_source(), knuth_scanner()),
            ("block", block_source(), block_scanner()),
            ("pascal", pascal_source(), pascal_scanner()),
            ("meta", meta_source(), meta_scanner()),
        ] {
            let out = analyze(src).unwrap_or_else(|e| panic!("{}: {}", name, e));
            Translator::new(out.analysis, scanner).unwrap_or_else(|e| panic!("{}: {}", name, e));
        }
    }

    #[test]
    fn meta_grammar_has_papers_profile_shape() {
        // E7: not the paper's absolute numbers (its grammar is bigger),
        // but the same shape: half the semantic functions are copy-rules
        // and most copies are implicit.
        let out = analyze(meta_source()).unwrap();
        let s = out.stats;
        assert!(s.symbols > 60, "symbols = {}", s.symbols);
        assert!(s.productions > 50, "productions = {}", s.productions);
        assert!(
            s.semantic_functions > 150,
            "rules = {}",
            s.semantic_functions
        );
        assert!(
            s.copy_fraction() > 0.35 && s.copy_fraction() < 0.75,
            "copy fraction = {:.2}",
            s.copy_fraction()
        );
        assert!(
            s.implicit_copy_rules * 2 > s.copy_rules,
            "most copies implicit: {} of {}",
            s.implicit_copy_rules,
            s.copy_rules
        );
    }

    #[test]
    fn generated_programs_are_wellformed() {
        let p = pascal_program(5, 10);
        assert!(p.contains("program"));
        assert!(p.ends_with("end.\n"));
        let b = block_program(2, 3);
        assert_eq!(b.matches('{').count(), b.matches('}').count());
    }
}
