//! Synthetic attribute-grammar families with controlled copy density.
//!
//! The paper observes that "between 40 and 60 percent of the semantic
//! functions are copy-rules" in typical attribute grammars and that
//! static subsumption's payoff depends on that fraction. This module
//! generates list-shaped grammars where the fraction is a dial, driving
//! the E13 ablation (cost-model sweep, same-name vs coalescing grouping).

use linguist_ag::expr::{BinOp, Expr};
use linguist_ag::grammar::{AgBuilder, Grammar};
use linguist_ag::ids::{AttrOcc, ProdId, SymbolId};
use linguist_eval::tree::PTree;
use linguist_eval::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic grammar.
#[derive(Clone, Copy, Debug)]
pub struct SynthParams {
    /// Number of inherited "context" attributes on the list symbol.
    pub inherited_attrs: usize,
    /// Number of recursive list productions.
    pub list_productions: usize,
    /// Probability that a context attribute flows through a production by
    /// a pure copy (left implicit) rather than being recomputed.
    pub copy_density: f64,
    /// RNG seed (the same seed yields the same grammar).
    pub seed: u64,
}

impl Default for SynthParams {
    fn default() -> SynthParams {
        SynthParams {
            inherited_attrs: 6,
            list_productions: 8,
            copy_density: 0.5,
            seed: 42,
        }
    }
}

/// A generated grammar plus the handles needed to build input trees.
#[derive(Debug)]
pub struct SynthGrammar {
    /// The grammar (not yet analyzed).
    pub grammar: Grammar,
    /// The list nonterminal's leaf production.
    pub leaf_prod: ProdId,
    /// The recursive productions.
    pub list_prods: Vec<ProdId>,
    /// The leaf terminal.
    pub leaf_term: SymbolId,
    /// The leaf terminal's intrinsic attribute.
    pub leaf_attr: linguist_ag::ids::AttrId,
}

/// Generate a grammar from `params`.
pub fn generate(params: &SynthParams) -> SynthGrammar {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut b = AgBuilder::new();

    let root = b.nonterminal("root");
    let out_root = b.synthesized(root, "OUT", "int");
    let s = b.nonterminal("S");
    let out_s = b.synthesized(s, "OUT", "int");
    let mut ctx_attrs = Vec::new();
    for i in 0..params.inherited_attrs {
        ctx_attrs.push(b.inherited(s, &format!("CTX{}", i), "int"));
    }
    let x = b.terminal("x");
    let leaf_attr = b.intrinsic(x, "OBJ", "int");

    // root -> S : seed every context attribute; OUT copied up implicitly.
    let p_root = b.production(root, vec![s], None);
    for (i, &a) in ctx_attrs.iter().enumerate() {
        b.rule(p_root, vec![AttrOcc::rhs(0, a)], Expr::Int(i as i64));
    }
    let _ = out_root;

    // Recursive list productions: S -> S t_k. Context attributes either
    // copy through (implicitly) or get recomputed.
    let mut list_prods = Vec::new();
    for k in 0..params.list_productions {
        let t = b.terminal(&format!("t{}", k));
        let p = b.production(s, vec![s, t], None);
        for &a in &ctx_attrs {
            if rng.gen::<f64>() >= params.copy_density {
                // Recompute: CTX_i of the child = CTX_i of this node + 1.
                b.rule(
                    p,
                    vec![AttrOcc::rhs(0, a)],
                    Expr::binop(BinOp::Add, Expr::Occ(AttrOcc::lhs(a)), Expr::Int(1)),
                );
            }
            // else: left to the implicit copy-rule mechanism.
        }
        // OUT copied up implicitly.
        list_prods.push(p);
    }

    // Leaf: S -> x, OUT sums every context attribute with the intrinsic.
    let leaf_prod = b.production(s, vec![x], None);
    let mut sum = Expr::Occ(AttrOcc::rhs(0, leaf_attr));
    for &a in &ctx_attrs {
        sum = Expr::binop(BinOp::Add, sum, Expr::Occ(AttrOcc::lhs(a)));
    }
    b.rule(leaf_prod, vec![AttrOcc::lhs(out_s)], sum);

    b.start(root);
    SynthGrammar {
        grammar: b.build().expect("synthetic grammar is structurally valid"),
        leaf_prod,
        list_prods,
        leaf_term: x,
        leaf_attr,
    }
}

impl SynthGrammar {
    /// Build an input chain of `len` list nodes (deterministic from
    /// `seed`), cycling through the list productions.
    pub fn chain(&self, len: usize, seed: u64) -> PTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let leaf = |rng: &mut StdRng, this: &SynthGrammar| {
            PTree::leaf(
                this.leaf_term,
                vec![(this.leaf_attr, Value::Int(rng.gen_range(0..100)))],
            )
        };
        let mut t = PTree::node(self.leaf_prod, vec![leaf(&mut rng, self)]);
        for i in 0..len {
            let p = self.list_prods[i % self.list_prods.len()];
            // The terminal of production p is its second RHS symbol.
            let term = self.grammar.production(p).rhs[1];
            t = PTree::node(p, vec![t, PTree::leaf(term, vec![])]);
        }
        // Wrap in root -> S (production 0).
        PTree::node(ProdId(0), vec![t])
    }
}

// ---------------------------------------------------------------------------
// Randomized grammar *shapes* for differential fuzzing.
// ---------------------------------------------------------------------------
//
// Where [`generate`] produces one list-shaped family with a copy-density
// dial (the E13 ablation), [`shape_strategy`] + [`realize`] span a space
// of grammar *shapes*: random nonterminal/production topologies, mixes of
// inherited and synthesized attributes, implicit-copy chains, limb
// attributes, multi-target (Figure 5) semantic functions, and rank
// ladders whose cross-rank dependencies force 1..N alternating passes.
//
// Correctness by construction — the rank model. Every attribute name has
// a rank; semantic functions only consume arguments whose (rank, flow)
// is already available when their target is computed:
//
// * `RHS.I{r}` (inherited, flows down) may read `LHS.I{q<=r}` and
//   `LHS.S{q<r}` — the parent's context, or its lower-rank results.
// * `LHS.S{r}` (synthesized, flows up) may read `RHS.S{q<=r}`, terminal
//   intrinsics, `LHS.I{q<=r}`, and the production's limb attribute.
// * the limb attribute reads only rank-1-available arguments.
//
// Down-flow within a rank and up-flow within a rank both fit a single
// depth-first pass, and every cross-rank edge points from lower to
// higher rank, so the grammar is non-circular and alternating-pass
// evaluable in at most `ranks + 1` passes — comfortably inside the
// default `max_passes = 8`. An `I{r} <- S{r-1}` edge at the root makes
// the ladder *tight*: rank r genuinely cannot evaluate before pass r.
//
// Attribute names are shared across all nonterminals so omitted rules
// fall to the implicit-copy mechanism of §IV exactly when its conditions
// hold (checked structurally below, mirroring `linguist_ag::implicit`).
// Symbol names are digit-free because the frontend's occurrence-suffix
// resolution strips trailing digits (`expr1` names the second `expr`).
//
// [`realize`] round-trips the built grammar through the *text* frontend
// (print → parse → lower → analyze) and, should the analysis ever reject
// a shape, deterministically degrades it feature by feature down to a
// flat synthesized-only grammar, so it always returns an analyzable
// grammar and the differential harness's case count stays exact.

use linguist_ag::analysis::Config;
use linguist_ag::ids::AttrId;
use linguist_frontend::driver::analyze;
use linguist_frontend::printer::print_grammar;
use proptest::prelude::*;

/// The families the shape strategy draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Synthesized-only, one pass.
    Flat,
    /// One rank with inherited context and a high implicit-copy density.
    CopyChain,
    /// 2–3 ranks with tight cross-rank edges: multi-pass schedules.
    Ladder,
    /// Two ranks plus limbs and multi-target functions.
    Mixed,
}

impl Family {
    /// Short tag used in generated grammar names.
    pub fn tag(self) -> &'static str {
        match self {
            Family::Flat => "flat",
            Family::CopyChain => "copy",
            Family::Ladder => "ladder",
            Family::Mixed => "mixed",
        }
    }
}

/// One point in the shape space. `Strategy`-generated; `realize` turns it
/// into an actual grammar deterministically.
#[derive(Clone, Copy, Debug)]
pub struct ShapeParams {
    /// Which feature mix to build.
    pub family: Family,
    /// Nonterminals besides the root (1..=3).
    pub nonterminals: usize,
    /// Attribute ranks (1..=3): the depth of the pass ladder.
    pub ranks: usize,
    /// Whether nonterminals carry inherited context at all.
    pub inherited: bool,
    /// Structural productions per nonterminal beyond its leaf (1..=2).
    pub extra_prods: usize,
    /// Probability that an eligible copy is left to the implicit
    /// mechanism rather than written explicitly.
    pub copy_density: f64,
    /// Generate Figure-5 multi-target semantic functions.
    pub multi_target: bool,
    /// Attach limb symbols/attributes to some productions.
    pub use_limb: bool,
    /// Node budget for `synthesize_tree` when evaluating this shape.
    pub budget: usize,
    /// Sub-seed consumed by the deterministic realization.
    pub seed: u64,
}

/// A realized shape: the structural grammar plus its canonical `.lg`
/// spelling (the artifact every execution mode starts from).
#[derive(Debug)]
pub struct ShapedGrammar {
    /// The parameters that produced this grammar.
    pub params: ShapeParams,
    /// Grammar name (also used for corpus fixture file names).
    pub name: String,
    /// Pretty-printed LINGUIST source; parsing + lowering this is the
    /// canonical way to reconstruct the grammar in every mode.
    pub source: String,
    /// The structural grammar as built (pre-analysis, explicit rules only).
    pub grammar: Grammar,
    /// How many degradation steps `realize` had to take (0 = the shape
    /// analyzed as drawn).
    pub degraded: u32,
}

/// Strategy over the whole shape space: a union of the four families,
/// each with its own dials, all carrying an independent sub-seed.
pub fn shape_strategy() -> BoxedStrategy<ShapeParams> {
    let seed = || 0u64..u64::MAX;
    let budget = || 8usize..=48;
    prop_oneof![
        (1usize..=3, 1usize..=2, budget(), seed(), 0u64..4).prop_map(
            |(nonterminals, extra_prods, budget, seed, coin)| ShapeParams {
                family: Family::Flat,
                nonterminals,
                ranks: 1,
                inherited: false,
                extra_prods,
                copy_density: 0.4,
                multi_target: coin == 0,
                use_limb: coin == 1,
                budget,
                seed,
            }
        ),
        (1usize..=3, 1usize..=2, 0.70f64..0.95, budget(), seed()).prop_map(
            |(nonterminals, extra_prods, copy_density, budget, seed)| ShapeParams {
                family: Family::CopyChain,
                nonterminals,
                ranks: 1,
                inherited: true,
                extra_prods,
                copy_density,
                multi_target: false,
                use_limb: false,
                budget,
                seed,
            }
        ),
        (
            1usize..=3,
            2usize..=3,
            1usize..=2,
            0.20f64..0.60,
            budget(),
            seed()
        )
            .prop_map(
                |(nonterminals, ranks, extra_prods, copy_density, budget, seed)| ShapeParams {
                    family: Family::Ladder,
                    nonterminals,
                    ranks,
                    inherited: true,
                    extra_prods,
                    copy_density,
                    multi_target: false,
                    use_limb: seed % 2 == 0,
                    budget,
                    seed,
                }
            ),
        (1usize..=3, 1usize..=2, 0.30f64..0.70, budget(), seed()).prop_map(
            |(nonterminals, extra_prods, copy_density, budget, seed)| ShapeParams {
                family: Family::Mixed,
                nonterminals,
                ranks: 2,
                inherited: true,
                extra_prods,
                copy_density,
                multi_target: true,
                use_limb: true,
                budget,
                seed,
            }
        ),
    ]
    .boxed()
}

/// Deterministically realize `params` into an analyzable grammar.
///
/// The shape is built rank-correct by construction, then validated by
/// round-tripping its printed source through the full frontend pipeline
/// (`analyze`, i.e. parse → lower → implicit copies → pass analysis). If
/// validation fails, features are peeled off one at a time — multi-target,
/// limbs, implicit copies, finally the whole ladder — and the attempt
/// count is reported in [`ShapedGrammar::degraded`], so the differential
/// harness always gets a runnable grammar per drawn case.
pub fn realize(params: &ShapeParams) -> ShapedGrammar {
    let mut p = *params;
    for attempt in 0u32.. {
        let grammar = construct(&p);
        let name = format!("fz_{}_{:016x}", p.family.tag(), p.seed);
        let source = print_grammar(&grammar, &name);
        if analyze(&source, &Config::default()).is_ok() {
            return ShapedGrammar {
                params: p,
                name,
                source,
                grammar,
                degraded: attempt,
            };
        }
        match attempt {
            0 => p.multi_target = false,
            1 => p.use_limb = false,
            2 => p.copy_density = 0.0,
            3 => {
                p.ranks = 1;
                p.inherited = false;
            }
            _ => panic!(
                "flat fallback failed to analyze (seed {:#x}):\n{}",
                p.seed, source
            ),
        }
    }
    unreachable!()
}

/// Attribute handles of one nonterminal under the shared naming scheme.
struct NtAttrs {
    sym: SymbolId,
    /// `inh[r]` = the rank-`r+1` inherited context attribute (empty when
    /// the shape has no inherited attributes).
    inh: Vec<AttrId>,
    /// `syn[r]` = the rank-`r+1` synthesized value attribute.
    syn: Vec<AttrId>,
    /// The extra rank-R synthesized attribute paired into multi-target
    /// rules (None unless `multi_target`).
    wz: Option<AttrId>,
}

const NT_NAMES: [&str; 3] = ["na", "nb", "nc"];
const TERM_NAMES: [&str; 3] = ["ta", "tb", "tc"];
const INH_NAMES: [&str; 3] = ["CA", "CB", "CC"];
const SYN_NAMES: [&str; 3] = ["VA", "VB", "VC"];

fn construct(p: &ShapeParams) -> Grammar {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut b = AgBuilder::new();
    let ranks = p.ranks.clamp(1, 3);
    let num_nts = p.nonterminals.clamp(1, 3);

    // Root: synthesized results only (nothing above it to seed context).
    let root = b.nonterminal("rt");
    let root_syn: Vec<AttrId> = (0..ranks)
        .map(|r| b.synthesized(root, SYN_NAMES[r], "int"))
        .collect();
    let root_wz = p.multi_target.then(|| b.synthesized(root, "WZ", "int"));

    // Nonterminals share one attribute vocabulary so omitted rules are
    // exactly the cases §IV's implicit copies cover.
    let nts: Vec<NtAttrs> = (0..num_nts)
        .map(|i| {
            let sym = b.nonterminal(NT_NAMES[i]);
            NtAttrs {
                sym,
                inh: if p.inherited {
                    (0..ranks)
                        .map(|r| b.inherited(sym, INH_NAMES[r], "int"))
                        .collect()
                } else {
                    Vec::new()
                },
                syn: (0..ranks)
                    .map(|r| b.synthesized(sym, SYN_NAMES[r], "int"))
                    .collect(),
                wz: p.multi_target.then(|| b.synthesized(sym, "WZ", "int")),
            }
        })
        .collect();

    let terms: Vec<(SymbolId, AttrId)> = TERM_NAMES
        .iter()
        .map(|n| {
            let t = b.terminal(n);
            (t, b.intrinsic(t, "OBJ", "int"))
        })
        .collect();

    let limb = p.use_limb.then(|| {
        let l = b.limb("lb");
        (l, b.limb_attr(l, "TMP", "int"))
    });

    // Root production rt -> na. Inherited context is seeded explicitly
    // (the root has no same-named attributes, so no implicit copy can
    // apply); `I{r} <- S{r-1}` edges make the pass ladder tight.
    let p_root = b.production(root, vec![nts[0].sym], None);
    for (r, rs) in root_syn.iter().enumerate() {
        if p.inherited {
            let seed_expr = if r > 0 && rng.gen_bool(0.8) {
                Expr::binop(
                    BinOp::Add,
                    Expr::Occ(AttrOcc::rhs(0, nts[0].syn[r - 1])),
                    Expr::Int(rng.gen_range(0..5)),
                )
            } else {
                Expr::Int(rng.gen_range(0..7))
            };
            b.rule(p_root, vec![AttrOcc::rhs(0, nts[0].inh[r])], seed_expr);
        }
        if !rng.gen_bool(p.copy_density) {
            b.rule(
                p_root,
                vec![AttrOcc::lhs(*rs)],
                Expr::Occ(AttrOcc::rhs(0, nts[0].syn[r])),
            );
        } // else: implicit synthesized copy (single rhs occurrence).
    }
    if let (Some(rwz), Some(nwz)) = (root_wz, nts[0].wz) {
        if !rng.gen_bool(p.copy_density) {
            b.rule(
                p_root,
                vec![AttrOcc::lhs(rwz)],
                Expr::Occ(AttrOcc::rhs(0, nwz)),
            );
        }
    }

    // Structural productions. nts[i]'s first structural production is
    // forced to mention nts[i+1] so the whole chain stays reachable.
    for i in 0..num_nts {
        for k in 0..p.extra_prods.max(1) {
            let mut rhs_syms: Vec<SymbolId> = Vec::new();
            if k == 0 && i + 1 < num_nts {
                rhs_syms.push(nts[i + 1].sym);
            }
            let extra = rng.gen_range(1..3usize);
            for _ in 0..extra {
                if rng.gen_bool(0.55) {
                    // Self or any deeper nonterminal keeps derivations
                    // well-founded (every nonterminal has a leaf).
                    let j = rng.gen_range(i..num_nts);
                    rhs_syms.push(nts[j].sym);
                } else {
                    rhs_syms.push(terms[rng.gen_range(0..terms.len())].0);
                }
            }
            let prod_limb = limb.filter(|_| rng.gen_bool(0.5));
            let prod = b.production(nts[i].sym, rhs_syms.clone(), prod_limb.map(|(l, _)| l));
            build_rules(
                &mut b,
                &mut rng,
                p,
                prod,
                i,
                &rhs_syms,
                &nts,
                &terms,
                prod_limb.map(|(_, a)| a),
                ranks,
            );
        }
        // Leaf production: every nonterminal bottoms out at a terminal.
        let (t, _) = terms[rng.gen_range(0..terms.len())];
        let leaf = b.production(nts[i].sym, vec![t], None);
        build_rules(
            &mut b,
            &mut rng,
            p,
            leaf,
            i,
            &[t],
            &nts,
            &terms,
            None,
            ranks,
        );
    }

    b.start(root);
    b.build().expect("shaped grammar is structurally valid")
}

/// Emit the semantic functions of one production under the rank model.
#[allow(clippy::too_many_arguments)]
fn build_rules(
    b: &mut AgBuilder,
    rng: &mut StdRng,
    p: &ShapeParams,
    prod: ProdId,
    lhs_nt: usize,
    rhs: &[SymbolId],
    nts: &[NtAttrs],
    terms: &[(SymbolId, AttrId)],
    limb_attr: Option<AttrId>,
    ranks: usize,
) {
    let nt_index = |s: SymbolId| nts.iter().position(|n| n.sym == s);
    let nt_occs: Vec<(u16, usize)> = rhs
        .iter()
        .enumerate()
        .filter_map(|(j, &s)| nt_index(s).map(|i| (j as u16, i)))
        .collect();
    let term_occs: Vec<(u16, AttrId)> = rhs
        .iter()
        .enumerate()
        .filter_map(|(j, &s)| {
            terms
                .iter()
                .find(|(t, _)| *t == s)
                .map(|(_, a)| (j as u16, *a))
        })
        .collect();
    // §IV synthesized-copy precondition: exactly one rhs symbol carrying
    // the attribute, occurring exactly once.
    let syn_copy_ok = nt_occs.len() == 1;
    let me = &nts[lhs_nt];

    // Limb attribute first: rank-1 arguments only, always explicit.
    if let Some(la) = limb_attr {
        let mut pool: Vec<Expr> = Vec::new();
        for &(j, i) in &nt_occs {
            pool.push(Expr::Occ(AttrOcc::rhs(j, nts[i].syn[0])));
        }
        for &(j, a) in &term_occs {
            pool.push(Expr::Occ(AttrOcc::rhs(j, a)));
        }
        if p.inherited {
            pool.push(Expr::Occ(AttrOcc::lhs(me.inh[0])));
        }
        let e = gen_expr(b, rng, &pool, 2);
        b.rule(prod, vec![AttrOcc::limb(la)], e);
    }

    // Inherited context of each nonterminal occurrence, rank by rank.
    if p.inherited {
        for r in 0..ranks {
            for &(j, i) in &nt_occs {
                if rng.gen_bool(p.copy_density) {
                    continue; // implicit copy: RHS.I{r} = LHS.I{r}
                }
                let mut pool: Vec<Expr> = (0..=r)
                    .map(|q| Expr::Occ(AttrOcc::lhs(me.inh[q])))
                    .collect();
                for q in 0..r {
                    pool.push(Expr::Occ(AttrOcc::lhs(me.syn[q])));
                }
                let e = gen_expr(b, rng, &pool, 2);
                b.rule(prod, vec![AttrOcc::rhs(j, nts[i].inh[r])], e);
            }
        }
    }

    // Synthesized results, rank by rank; WZ rides at the top rank and may
    // be fused with it into one Figure-5 multi-target function.
    let syn_pool = |r: usize| -> Vec<Expr> {
        let mut pool: Vec<Expr> = Vec::new();
        for &(j, i) in &nt_occs {
            for q in 0..=r {
                pool.push(Expr::Occ(AttrOcc::rhs(j, nts[i].syn[q])));
            }
        }
        for &(j, a) in &term_occs {
            pool.push(Expr::Occ(AttrOcc::rhs(j, a)));
        }
        if p.inherited {
            for q in 0..=r {
                pool.push(Expr::Occ(AttrOcc::lhs(me.inh[q])));
            }
        }
        if let Some(la) = limb_attr {
            pool.push(Expr::Occ(AttrOcc::limb(la)));
        }
        pool
    };

    let top = ranks - 1;
    let mut wz_fused = false;
    for r in 0..ranks {
        let fuse_wz = r == top && me.wz.is_some() && rng.gen_bool(0.6);
        let explicit = !(syn_copy_ok && rng.gen_bool(p.copy_density)) || fuse_wz;
        if !explicit {
            continue; // implicit copy: LHS.S{r} = <the one rhs child>.S{r}
        }
        let pool = syn_pool(r);
        if fuse_wz {
            // `S & WZ = if c then e, e' else f, f' endif` — one function,
            // two targets, arm width 2 (Figure 5).
            let cond = gen_cond(rng, &pool);
            let arms = |rng: &mut StdRng, b: &mut AgBuilder| {
                vec![gen_expr(b, rng, &pool, 1), gen_expr(b, rng, &pool, 1)]
            };
            let then_arm = arms(rng, b);
            let else_arm = arms(rng, b);
            b.rule(
                prod,
                vec![AttrOcc::lhs(me.syn[r]), AttrOcc::lhs(me.wz.unwrap())],
                Expr::If {
                    branches: vec![(cond, then_arm)],
                    otherwise: else_arm,
                },
            );
            wz_fused = true;
        } else {
            let e = gen_expr(b, rng, &pool, 2);
            b.rule(prod, vec![AttrOcc::lhs(me.syn[r])], e);
        }
    }
    // WZ not fused above: give it its own rule (or implicit copy).
    if let Some(wz) = me.wz {
        if !(wz_fused || syn_copy_ok && rng.gen_bool(p.copy_density)) {
            let pool = syn_pool(top);
            let e = gen_expr(b, rng, &pool, 2);
            b.rule(prod, vec![AttrOcc::lhs(wz)], e);
        }
    }
}

/// A small random int-typed expression over `pool`. Depth-bounded; every
/// function call is int × int → int from the standard registry.
fn gen_expr(b: &mut AgBuilder, rng: &mut StdRng, pool: &[Expr], depth: usize) -> Expr {
    let leaf = |rng: &mut StdRng| -> Expr {
        if !pool.is_empty() && rng.gen_bool(0.7) {
            pool[rng.gen_range(0..pool.len())].clone()
        } else {
            Expr::Int(rng.gen_range(0..10))
        }
    };
    if depth == 0 || rng.gen_bool(0.35) {
        return leaf(rng);
    }
    match rng.gen_range(0..4u32) {
        0 => Expr::binop(
            BinOp::Add,
            gen_expr(b, rng, pool, depth - 1),
            gen_expr(b, rng, pool, depth - 1),
        ),
        1 => Expr::binop(
            BinOp::Sub,
            gen_expr(b, rng, pool, depth - 1),
            gen_expr(b, rng, pool, depth - 1),
        ),
        2 => {
            let f = ["Max", "Min", "Mul"][rng.gen_range(0..3usize)];
            let func = b.name(f);
            Expr::Call {
                func,
                args: vec![
                    gen_expr(b, rng, pool, depth - 1),
                    gen_expr(b, rng, pool, depth - 1),
                ],
            }
        }
        _ => {
            let cond = gen_cond(rng, pool);
            Expr::If {
                branches: vec![(cond, vec![gen_expr(b, rng, pool, depth - 1)])],
                otherwise: vec![gen_expr(b, rng, pool, depth - 1)],
            }
        }
    }
}

/// A boolean condition: a comparison of two pool/int leaves, occasionally
/// conjoined. Comparisons only ever see int operands.
fn gen_cond(rng: &mut StdRng, pool: &[Expr]) -> Expr {
    let leaf = |rng: &mut StdRng| -> Expr {
        if !pool.is_empty() && rng.gen_bool(0.7) {
            pool[rng.gen_range(0..pool.len())].clone()
        } else {
            Expr::Int(rng.gen_range(0..10))
        }
    };
    let cmp = |rng: &mut StdRng| -> Expr {
        let op = [BinOp::Lt, BinOp::Gt, BinOp::Eq, BinOp::Ne][rng.gen_range(0..4usize)];
        Expr::binop(op, leaf(rng), leaf(rng))
    };
    if rng.gen_bool(0.2) {
        Expr::binop(BinOp::And, cmp(rng), cmp(rng))
    } else {
        cmp(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linguist_ag::analysis::{Analysis, Config};
    use linguist_ag::stats::GrammarStats;
    use linguist_eval::funcs::Funcs;
    use linguist_eval::machine::{evaluate, EvalOptions};

    #[test]
    fn copy_density_controls_copy_fraction() {
        let low = generate(&SynthParams {
            copy_density: 0.1,
            ..SynthParams::default()
        });
        let high = generate(&SynthParams {
            copy_density: 0.9,
            ..SynthParams::default()
        });
        let mut gl = low.grammar.clone();
        let mut gh = high.grammar.clone();
        linguist_ag::implicit::insert_implicit_copies(&mut gl);
        linguist_ag::implicit::insert_implicit_copies(&mut gh);
        let sl = GrammarStats::compute(&gl, None);
        let sh = GrammarStats::compute(&gh, None);
        assert!(
            sh.copy_fraction() > sl.copy_fraction(),
            "high {:.2} vs low {:.2}",
            sh.copy_fraction(),
            sl.copy_fraction()
        );
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = generate(&SynthParams::default());
        let b = generate(&SynthParams::default());
        assert_eq!(a.grammar.rules().len(), b.grammar.rules().len());
    }

    #[test]
    fn synthetic_grammars_analyze_and_evaluate() {
        let sg = generate(&SynthParams::default());
        let analysis = Analysis::run(sg.grammar.clone(), &Config::default()).unwrap();
        assert_eq!(analysis.passes.num_passes(), 1);
        let tree = sg.chain(30, 7);
        let r = evaluate(
            &analysis,
            &Funcs::standard(),
            &tree,
            &EvalOptions::default(),
        )
        .unwrap();
        assert!(matches!(r.output(&analysis, "OUT"), Some(Value::Int(_))));
    }

    #[test]
    fn realize_is_deterministic() {
        let p = ShapeParams {
            family: Family::Mixed,
            nonterminals: 2,
            ranks: 2,
            inherited: true,
            extra_prods: 2,
            copy_density: 0.5,
            multi_target: true,
            use_limb: true,
            budget: 24,
            seed: 0xfeed_beef,
        };
        let a = realize(&p);
        let b = realize(&p);
        assert_eq!(a.source, b.source);
        assert_eq!(a.degraded, b.degraded);
    }

    #[test]
    fn shape_space_stays_analyzable_without_degradation() {
        use proptest::test_runner::TestRng;
        // Sweep a fixed slice of the shape space: every realized grammar
        // must analyze, and degradation (the safety net) should be the
        // rare exception, not the norm.
        let strat = shape_strategy();
        let mut rng = TestRng::new(0x5eed);
        let mut degraded = 0u32;
        let mut multipass = 0u32;
        for _ in 0..24 {
            let params = strat.generate(&mut rng);
            let sg = realize(&params);
            degraded += u32::from(sg.degraded > 0);
            let analysis = analyze(&sg.source, &Config::default())
                .unwrap_or_else(|e| panic!("realized grammar must analyze: {}\n{}", e, sg.source));
            if analysis.passes.num_passes() > 1 {
                multipass += 1;
            }
        }
        assert!(degraded <= 4, "too many degraded shapes: {}/24", degraded);
        assert!(
            multipass >= 4,
            "shape space too flat: {}/24 multipass",
            multipass
        );
    }

    #[test]
    fn ladder_shapes_force_multiple_passes() {
        let p = ShapeParams {
            family: Family::Ladder,
            nonterminals: 2,
            ranks: 3,
            inherited: true,
            extra_prods: 2,
            copy_density: 0.3,
            multi_target: false,
            use_limb: false,
            budget: 24,
            seed: 11,
        };
        let sg = realize(&p);
        let analysis = analyze(&sg.source, &Config::default()).unwrap();
        assert!(
            analysis.passes.num_passes() >= 2,
            "rank-3 ladder should need >= 2 passes, got {}\n{}",
            analysis.passes.num_passes(),
            sg.source
        );
    }
}
