//! Synthetic attribute-grammar families with controlled copy density.
//!
//! The paper observes that "between 40 and 60 percent of the semantic
//! functions are copy-rules" in typical attribute grammars and that
//! static subsumption's payoff depends on that fraction. This module
//! generates list-shaped grammars where the fraction is a dial, driving
//! the E13 ablation (cost-model sweep, same-name vs coalescing grouping).

use linguist_ag::expr::{BinOp, Expr};
use linguist_ag::grammar::{AgBuilder, Grammar};
use linguist_ag::ids::{AttrOcc, ProdId, SymbolId};
use linguist_eval::tree::PTree;
use linguist_eval::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic grammar.
#[derive(Clone, Copy, Debug)]
pub struct SynthParams {
    /// Number of inherited "context" attributes on the list symbol.
    pub inherited_attrs: usize,
    /// Number of recursive list productions.
    pub list_productions: usize,
    /// Probability that a context attribute flows through a production by
    /// a pure copy (left implicit) rather than being recomputed.
    pub copy_density: f64,
    /// RNG seed (the same seed yields the same grammar).
    pub seed: u64,
}

impl Default for SynthParams {
    fn default() -> SynthParams {
        SynthParams {
            inherited_attrs: 6,
            list_productions: 8,
            copy_density: 0.5,
            seed: 42,
        }
    }
}

/// A generated grammar plus the handles needed to build input trees.
#[derive(Debug)]
pub struct SynthGrammar {
    /// The grammar (not yet analyzed).
    pub grammar: Grammar,
    /// The list nonterminal's leaf production.
    pub leaf_prod: ProdId,
    /// The recursive productions.
    pub list_prods: Vec<ProdId>,
    /// The leaf terminal.
    pub leaf_term: SymbolId,
    /// The leaf terminal's intrinsic attribute.
    pub leaf_attr: linguist_ag::ids::AttrId,
}

/// Generate a grammar from `params`.
pub fn generate(params: &SynthParams) -> SynthGrammar {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut b = AgBuilder::new();

    let root = b.nonterminal("root");
    let out_root = b.synthesized(root, "OUT", "int");
    let s = b.nonterminal("S");
    let out_s = b.synthesized(s, "OUT", "int");
    let mut ctx_attrs = Vec::new();
    for i in 0..params.inherited_attrs {
        ctx_attrs.push(b.inherited(s, &format!("CTX{}", i), "int"));
    }
    let x = b.terminal("x");
    let leaf_attr = b.intrinsic(x, "OBJ", "int");

    // root -> S : seed every context attribute; OUT copied up implicitly.
    let p_root = b.production(root, vec![s], None);
    for (i, &a) in ctx_attrs.iter().enumerate() {
        b.rule(p_root, vec![AttrOcc::rhs(0, a)], Expr::Int(i as i64));
    }
    let _ = out_root;

    // Recursive list productions: S -> S t_k. Context attributes either
    // copy through (implicitly) or get recomputed.
    let mut list_prods = Vec::new();
    for k in 0..params.list_productions {
        let t = b.terminal(&format!("t{}", k));
        let p = b.production(s, vec![s, t], None);
        for &a in &ctx_attrs {
            if rng.gen::<f64>() >= params.copy_density {
                // Recompute: CTX_i of the child = CTX_i of this node + 1.
                b.rule(
                    p,
                    vec![AttrOcc::rhs(0, a)],
                    Expr::binop(BinOp::Add, Expr::Occ(AttrOcc::lhs(a)), Expr::Int(1)),
                );
            }
            // else: left to the implicit copy-rule mechanism.
        }
        // OUT copied up implicitly.
        list_prods.push(p);
    }

    // Leaf: S -> x, OUT sums every context attribute with the intrinsic.
    let leaf_prod = b.production(s, vec![x], None);
    let mut sum = Expr::Occ(AttrOcc::rhs(0, leaf_attr));
    for &a in &ctx_attrs {
        sum = Expr::binop(BinOp::Add, sum, Expr::Occ(AttrOcc::lhs(a)));
    }
    b.rule(leaf_prod, vec![AttrOcc::lhs(out_s)], sum);

    b.start(root);
    SynthGrammar {
        grammar: b.build().expect("synthetic grammar is structurally valid"),
        leaf_prod,
        list_prods,
        leaf_term: x,
        leaf_attr,
    }
}

impl SynthGrammar {
    /// Build an input chain of `len` list nodes (deterministic from
    /// `seed`), cycling through the list productions.
    pub fn chain(&self, len: usize, seed: u64) -> PTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let leaf = |rng: &mut StdRng, this: &SynthGrammar| {
            PTree::leaf(
                this.leaf_term,
                vec![(this.leaf_attr, Value::Int(rng.gen_range(0..100)))],
            )
        };
        let mut t = PTree::node(self.leaf_prod, vec![leaf(&mut rng, self)]);
        for i in 0..len {
            let p = self.list_prods[i % self.list_prods.len()];
            // The terminal of production p is its second RHS symbol.
            let term = self.grammar.production(p).rhs[1];
            t = PTree::node(p, vec![t, PTree::leaf(term, vec![])]);
        }
        // Wrap in root -> S (production 0).
        PTree::node(ProdId(0), vec![t])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linguist_ag::analysis::{Analysis, Config};
    use linguist_ag::stats::GrammarStats;
    use linguist_eval::funcs::Funcs;
    use linguist_eval::machine::{evaluate, EvalOptions};

    #[test]
    fn copy_density_controls_copy_fraction() {
        let low = generate(&SynthParams {
            copy_density: 0.1,
            ..SynthParams::default()
        });
        let high = generate(&SynthParams {
            copy_density: 0.9,
            ..SynthParams::default()
        });
        let mut gl = low.grammar.clone();
        let mut gh = high.grammar.clone();
        linguist_ag::implicit::insert_implicit_copies(&mut gl);
        linguist_ag::implicit::insert_implicit_copies(&mut gh);
        let sl = GrammarStats::compute(&gl, None);
        let sh = GrammarStats::compute(&gh, None);
        assert!(
            sh.copy_fraction() > sl.copy_fraction(),
            "high {:.2} vs low {:.2}",
            sh.copy_fraction(),
            sl.copy_fraction()
        );
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = generate(&SynthParams::default());
        let b = generate(&SynthParams::default());
        assert_eq!(a.grammar.rules().len(), b.grammar.rules().len());
    }

    #[test]
    fn synthetic_grammars_analyze_and_evaluate() {
        let sg = generate(&SynthParams::default());
        let analysis = Analysis::run(sg.grammar.clone(), &Config::default()).unwrap();
        assert_eq!(analysis.passes.num_passes(), 1);
        let tree = sg.chain(30, 7);
        let r = evaluate(
            &analysis,
            &Funcs::standard(),
            &tree,
            &EvalOptions::default(),
        )
        .unwrap();
        assert!(matches!(r.output(&analysis, "OUT"), Some(Value::Int(_))));
    }
}
