//! Property tests for the scanner generator: tokenization of randomly
//! assembled inputs recovers exactly the tokens that were assembled, and
//! the regex → NFA → DFA → minimized → tables pipeline agrees with a
//! direct NFA simulation.

use linguist_lexgen::{Dfa, Nfa, Regex, ScannerDef};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Tok {
    Ident(String),
    Number(String),
    Arrow,
    Plus,
}

impl Tok {
    fn kind(&self) -> &'static str {
        match self {
            Tok::Ident(_) => "IDENT",
            Tok::Number(_) => "NUMBER",
            Tok::Arrow => "ARROW",
            Tok::Plus => "PLUS",
        }
    }

    fn text(&self) -> String {
        match self {
            Tok::Ident(s) | Tok::Number(s) => s.clone(),
            Tok::Arrow => "->".to_owned(),
            Tok::Plus => "+".to_owned(),
        }
    }
}

fn arb_tok() -> impl Strategy<Value = Tok> {
    prop_oneof![
        "[a-z][a-z0-9]{0,6}".prop_map(Tok::Ident),
        "[0-9]{1,5}".prop_map(Tok::Number),
        Just(Tok::Arrow),
        Just(Tok::Plus),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Assembling tokens with random whitespace and rescanning recovers
    /// exactly the same kinds and lexemes.
    #[test]
    fn tokenization_round_trips(
        toks in prop::collection::vec(arb_tok(), 0..30),
        seps in prop::collection::vec(" |\t|\n|  ", 0..30),
    ) {
        let scanner = ScannerDef::new()
            .skip(r"[ \t\n]+")
            .token("IDENT", "[a-z][a-z0-9]*")
            .token("NUMBER", "[0-9]+")
            .token("ARROW", "->")
            .token("PLUS", r"\+")
            .build()
            .unwrap();
        // Join with mandatory separators so adjacent IDENT/NUMBER tokens
        // don't merge under longest-match.
        let mut src = String::new();
        for (i, t) in toks.iter().enumerate() {
            if i > 0 {
                src.push_str(seps.get(i % seps.len().max(1)).map(String::as_str).unwrap_or(" "));
                src.push(' ');
            }
            src.push_str(&t.text());
        }
        let scanned = scanner.scan(&src).unwrap();
        prop_assert_eq!(scanned.len(), toks.len());
        for (got, want) in scanned.iter().zip(toks.iter()) {
            prop_assert_eq!(scanner.kind_name(got.kind), want.kind());
            prop_assert_eq!(got.text(&src), want.text());
        }
    }

    /// The compiled DFA accepts exactly what direct NFA simulation
    /// accepts, for random inputs over a fixed rule set.
    #[test]
    fn dfa_agrees_with_nfa_simulation(input in "[ab01]{0,12}") {
        let patterns = ["(a|b)*abb", "[01]+", "a0*b"];
        let mut nfa = Nfa::new();
        for (i, p) in patterns.iter().enumerate() {
            nfa.add_rule(&Regex::parse(p).unwrap(), i as u32);
        }
        let dfa = Dfa::from_nfa(&nfa).minimized();

        // Direct NFA simulation.
        let mut cur = nfa.eps_closure(&[nfa.start()]);
        let mut dead = false;
        for b in input.bytes() {
            let next = nfa.step(&cur, b);
            if next.is_empty() {
                dead = true;
                break;
            }
            cur = nfa.eps_closure(&next);
        }
        let nfa_accept = if dead { None } else { nfa.accept_of(&cur) };
        prop_assert_eq!(dfa.run(input.as_bytes()), nfa_accept);
    }
}
