//! Thompson construction: regular expressions to an NFA with ε-moves.
//!
//! All of a scanner's rules are compiled into one NFA with a common start
//! state; each rule's accepting state remembers the rule index so the DFA
//! can resolve ties by declaration priority.

use crate::regex::{ClassSet, Regex};

/// NFA state id.
pub type StateId = u32;

/// A nondeterministic finite automaton with ε-transitions.
#[derive(Debug, Clone, Default)]
pub struct Nfa {
    states: Vec<State>,
}

#[derive(Debug, Clone, Default)]
struct State {
    /// Byte-labelled transitions.
    edges: Vec<(ClassSet, StateId)>,
    /// ε-transitions.
    eps: Vec<StateId>,
    /// Accepting rule index, if this state accepts. Lower index = higher
    /// priority.
    accept: Option<u32>,
}

impl Nfa {
    /// An NFA containing only the shared start state 0.
    pub fn new() -> Nfa {
        Nfa {
            states: vec![State::default()],
        }
    }

    /// The shared start state.
    pub fn start(&self) -> StateId {
        0
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the NFA has only the bare start state.
    pub fn is_empty(&self) -> bool {
        self.states.len() == 1
    }

    fn fresh(&mut self) -> StateId {
        let id = self.states.len() as StateId;
        self.states.push(State::default());
        id
    }

    /// Compile `re` as rule number `rule` and hang it off the shared start
    /// state (Thompson construction).
    pub fn add_rule(&mut self, re: &Regex, rule: u32) {
        let entry = self.fresh();
        let exit = self.fresh();
        self.states[0].eps.push(entry);
        self.build(re, entry, exit);
        self.states[exit as usize].accept = Some(rule);
    }

    fn build(&mut self, re: &Regex, from: StateId, to: StateId) {
        match re {
            Regex::Empty => self.states[from as usize].eps.push(to),
            Regex::Class(set) => self.states[from as usize].edges.push((*set, to)),
            Regex::Concat(parts) => {
                let mut cur = from;
                for (i, part) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() {
                        to
                    } else {
                        self.fresh()
                    };
                    self.build(part, cur, next);
                    cur = next;
                }
                if parts.is_empty() {
                    self.states[from as usize].eps.push(to);
                }
            }
            Regex::Alt(arms) => {
                for arm in arms {
                    let entry = self.fresh();
                    let exit = self.fresh();
                    self.states[from as usize].eps.push(entry);
                    self.build(arm, entry, exit);
                    self.states[exit as usize].eps.push(to);
                }
            }
            Regex::Star(inner) => {
                let entry = self.fresh();
                let exit = self.fresh();
                self.states[from as usize].eps.push(entry);
                self.states[from as usize].eps.push(to);
                self.build(inner, entry, exit);
                self.states[exit as usize].eps.push(entry);
                self.states[exit as usize].eps.push(to);
            }
            Regex::Plus(inner) => {
                let entry = self.fresh();
                let exit = self.fresh();
                self.states[from as usize].eps.push(entry);
                self.build(inner, entry, exit);
                self.states[exit as usize].eps.push(entry);
                self.states[exit as usize].eps.push(to);
            }
            Regex::Opt(inner) => {
                self.states[from as usize].eps.push(to);
                self.build(inner, from, to);
            }
        }
    }

    /// ε-closure of a set of states, returned sorted and deduplicated.
    pub fn eps_closure(&self, seed: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<StateId> = seed.to_vec();
        for &s in seed {
            seen[s as usize] = true;
        }
        while let Some(s) = stack.pop() {
            for &t in &self.states[s as usize].eps {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        (0..self.states.len() as StateId)
            .filter(|&s| seen[s as usize])
            .collect()
    }

    /// States reachable from any of `from` on byte `b` (before ε-closure).
    pub fn step(&self, from: &[StateId], b: u8) -> Vec<StateId> {
        let mut out = Vec::new();
        for &s in from {
            for (set, t) in &self.states[s as usize].edges {
                if set.contains(b) && !out.contains(t) {
                    out.push(*t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Highest-priority (lowest-index) accepting rule among `states`.
    pub fn accept_of(&self, states: &[StateId]) -> Option<u32> {
        states
            .iter()
            .filter_map(|&s| self.states[s as usize].accept)
            .min()
    }

    /// Union of all byte classes leaving `states` — the alphabet the subset
    /// construction needs to consider from this state set.
    pub fn outgoing_bytes(&self, states: &[StateId]) -> ClassSet {
        let mut set = ClassSet::empty();
        for &s in states {
            for (cls, _) in &self.states[s as usize].edges {
                set = set.union(cls);
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn nfa_for(pattern: &str, rule: u32) -> Nfa {
        let mut nfa = Nfa::new();
        nfa.add_rule(&Regex::parse(pattern).unwrap(), rule);
        nfa
    }

    fn simulate(nfa: &Nfa, input: &str) -> Option<u32> {
        let mut cur = nfa.eps_closure(&[nfa.start()]);
        for b in input.bytes() {
            let next = nfa.step(&cur, b);
            if next.is_empty() {
                return None;
            }
            cur = nfa.eps_closure(&next);
        }
        nfa.accept_of(&cur)
    }

    #[test]
    fn literal_match() {
        let nfa = nfa_for("abc", 7);
        assert_eq!(simulate(&nfa, "abc"), Some(7));
        assert_eq!(simulate(&nfa, "ab"), None);
        assert_eq!(simulate(&nfa, "abcd"), None);
    }

    #[test]
    fn star_matches_zero_or_more() {
        let nfa = nfa_for("ab*c", 0);
        assert_eq!(simulate(&nfa, "ac"), Some(0));
        assert_eq!(simulate(&nfa, "abbbc"), Some(0));
        assert_eq!(simulate(&nfa, "abb"), None);
    }

    #[test]
    fn plus_requires_one() {
        let nfa = nfa_for("a+", 0);
        assert_eq!(simulate(&nfa, ""), None);
        assert_eq!(simulate(&nfa, "aaa"), Some(0));
    }

    #[test]
    fn alternation_matches_either() {
        let nfa = nfa_for("foo|bar", 0);
        assert_eq!(simulate(&nfa, "foo"), Some(0));
        assert_eq!(simulate(&nfa, "bar"), Some(0));
        assert_eq!(simulate(&nfa, "baz"), None);
    }

    #[test]
    fn priority_is_lowest_rule_index() {
        let mut nfa = Nfa::new();
        nfa.add_rule(&Regex::parse("if").unwrap(), 0); // keyword first
        nfa.add_rule(&Regex::parse("[a-z]+").unwrap(), 1); // identifier
        assert_eq!(simulate(&nfa, "if"), Some(0));
        assert_eq!(simulate(&nfa, "iffy"), Some(1));
    }

    #[test]
    fn opt_matches_both_ways() {
        let nfa = nfa_for("ab?c", 0);
        assert_eq!(simulate(&nfa, "ac"), Some(0));
        assert_eq!(simulate(&nfa, "abc"), Some(0));
        assert_eq!(simulate(&nfa, "abbc"), None);
    }
}
