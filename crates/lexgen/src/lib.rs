//! Scanner generator: regular expressions to table-driven scanners.
//!
//! Section V of the paper lists "a program that generates a lexical scanner
//! for a set of regular expressions" among the pieces of the
//! translator-writing system, and notes that "Overlay 1 contains the
//! automatically generated scanner tables … and their interpreters". This
//! crate is that program: it compiles a set of named regular expressions
//! through the classical pipeline
//!
//! ```text
//! regex AST ── Thompson ──▶ NFA ── subset ──▶ DFA ── Hopcroft ──▶ minimal DFA ──▶ tables
//! ```
//!
//! and ships the table interpreter (the scanner runtime) that performs
//! longest-match tokenization with rule priority, positions, and skip rules.
//!
//! # Example
//!
//! ```
//! use linguist_lexgen::ScannerDef;
//!
//! let scanner = ScannerDef::new()
//!     .skip(r"[ \t\n]+")
//!     .token("NUMBER", "[0-9]+")
//!     .token("IDENT", "[a-zA-Z_][a-zA-Z0-9_]*")
//!     .token("PLUS", r"\+")
//!     .build()?;
//!
//! let tokens = scanner.scan("x1 + 42")?;
//! let kinds: Vec<&str> = tokens.iter().map(|t| scanner.kind_name(t.kind)).collect();
//! assert_eq!(kinds, ["IDENT", "PLUS", "NUMBER"]);
//! # Ok::<(), linguist_lexgen::LexError>(())
//! ```

pub mod dfa;
pub mod nfa;
pub mod regex;
pub mod scanner;
pub mod tables;

pub use dfa::Dfa;
pub use nfa::Nfa;
pub use regex::{ParseRegexError, Regex};
pub use scanner::{LexError, ScanError, Scanner, Token, TokenKind};
pub use tables::ScanTables;

use linguist_support::intern::NameTable;

/// Builder describing a scanner: an ordered set of named token rules plus
/// skip rules (whitespace, comments).
///
/// Earlier rules win ties: when two rules match the same longest lexeme the
/// one declared first is chosen, which is how keyword-before-identifier
/// ordering is expressed.
#[derive(Debug, Default, Clone)]
pub struct ScannerDef {
    rules: Vec<RuleDef>,
}

#[derive(Debug, Clone)]
struct RuleDef {
    name: String,
    pattern: String,
    skip: bool,
}

impl ScannerDef {
    /// An empty definition.
    pub fn new() -> ScannerDef {
        ScannerDef::default()
    }

    /// Add a named token rule. Declaration order is priority order.
    pub fn token(mut self, name: &str, pattern: &str) -> ScannerDef {
        self.rules.push(RuleDef {
            name: name.to_owned(),
            pattern: pattern.to_owned(),
            skip: false,
        });
        self
    }

    /// Add a skip rule: matched text is discarded (whitespace, comments).
    pub fn skip(mut self, pattern: &str) -> ScannerDef {
        self.rules.push(RuleDef {
            name: format!("<skip{}>", self.rules.len()),
            pattern: pattern.to_owned(),
            skip: true,
        });
        self
    }

    /// Compile the definition into a [`Scanner`].
    ///
    /// # Errors
    ///
    /// Returns [`LexError::Parse`] if a pattern fails to parse,
    /// [`LexError::EmptyMatch`] if a rule can match the empty string (such a
    /// scanner would never make progress), or [`LexError::NoRules`] for an
    /// empty definition.
    pub fn build(self) -> Result<Scanner, LexError> {
        if self.rules.is_empty() {
            return Err(LexError::NoRules);
        }
        let mut names = NameTable::new();
        let mut nfa = Nfa::new();
        let mut kinds = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            let re = Regex::parse(&rule.pattern).map_err(|e| LexError::Parse {
                rule: rule.name.clone(),
                source: e,
            })?;
            if re.matches_empty() {
                return Err(LexError::EmptyMatch {
                    rule: rule.name.clone(),
                });
            }
            nfa.add_rule(&re, i as u32);
            kinds.push(scanner::KindInfo {
                name: names.intern(&rule.name),
                skip: rule.skip,
            });
        }
        let dfa = Dfa::from_nfa(&nfa).minimized();
        let tables = ScanTables::from_dfa(&dfa);
        Ok(Scanner::from_parts(tables, kinds, names))
    }
}
