//! Flattened scanner tables with alphabet compression.
//!
//! The paper's overlay 1 interprets "automatically generated scanner
//! tables". [`ScanTables`] is that artifact: bytes are first mapped through
//! an equivalence-class table (bytes the DFA never distinguishes share a
//! class), then a dense `states × classes` next-state matrix drives the
//! scan. The struct also reports its own size in bytes, which feeds the
//! code-size experiments.

use crate::dfa::{Dfa, DEAD};

/// Compiled, compressed scanner tables.
#[derive(Debug, Clone)]
pub struct ScanTables {
    /// Byte → equivalence class.
    class_of: [u16; 256],
    /// Number of equivalence classes.
    num_classes: u16,
    /// Dense next-state matrix, `next[state * num_classes + class]`;
    /// `u32::MAX` is the dead edge.
    next: Vec<u32>,
    /// Accepting rule per state (`u32::MAX` = none).
    accept: Vec<u32>,
}

impl ScanTables {
    /// Flatten a DFA into compressed tables.
    pub fn from_dfa(dfa: &Dfa) -> ScanTables {
        // Two bytes are equivalent iff every state sends them to the same
        // target. Build column signatures and number them.
        let mut class_of = [0u16; 256];
        let mut signatures: Vec<Vec<u32>> = Vec::new();
        #[allow(clippy::needless_range_loop)] // byte-indexed class map
        for b in 0..256usize {
            let col: Vec<u32> = (0..dfa.len())
                .map(|s| dfa.next(s as u32, b as u8).unwrap_or(DEAD))
                .collect();
            let class = match signatures.iter().position(|sig| *sig == col) {
                Some(ix) => ix,
                None => {
                    signatures.push(col);
                    signatures.len() - 1
                }
            };
            class_of[b] = class as u16;
        }
        let num_classes = signatures.len() as u16;
        let mut next = vec![u32::MAX; dfa.len() * num_classes as usize];
        for (c, sig) in signatures.iter().enumerate() {
            for (s, &t) in sig.iter().enumerate() {
                next[s * num_classes as usize + c] = t;
            }
        }
        let accept = (0..dfa.len())
            .map(|s| dfa.accept(s as u32).unwrap_or(u32::MAX))
            .collect();
        ScanTables {
            class_of,
            num_classes,
            next,
            accept,
        }
    }

    /// Next state from `state` on input byte `b`, or `None` at a dead edge.
    #[inline]
    pub fn next(&self, state: u32, b: u8) -> Option<u32> {
        let c = self.class_of[b as usize] as usize;
        let t = self.next[state as usize * self.num_classes as usize + c];
        (t != u32::MAX).then_some(t)
    }

    /// Accepting rule of `state`, if any.
    #[inline]
    pub fn accept(&self, state: u32) -> Option<u32> {
        let a = self.accept[state as usize];
        (a != u32::MAX).then_some(a)
    }

    /// Number of DFA states.
    pub fn num_states(&self) -> usize {
        self.accept.len()
    }

    /// Number of byte equivalence classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes as usize
    }

    /// Size of the tables in bytes (class map + matrix + accept vector) —
    /// the scanner-table component of "overlay 1" in the paper's code-size
    /// accounting.
    pub fn byte_size(&self) -> usize {
        256 * 2 + self.next.len() * 4 + self.accept.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::regex::Regex;

    fn tables_for(patterns: &[&str]) -> (Dfa, ScanTables) {
        let mut nfa = Nfa::new();
        for (i, p) in patterns.iter().enumerate() {
            nfa.add_rule(&Regex::parse(p).unwrap(), i as u32);
        }
        let dfa = Dfa::from_nfa(&nfa).minimized();
        let tables = ScanTables::from_dfa(&dfa);
        (dfa, tables)
    }

    #[test]
    fn tables_agree_with_dfa() {
        let (dfa, tables) = tables_for(&["[a-z]+", "[0-9]+", "->|=|\\."]);
        for s in 0..dfa.len() as u32 {
            assert_eq!(dfa.accept(s), tables.accept(s));
            for b in 0..=255u8 {
                assert_eq!(dfa.next(s, b), tables.next(s, b), "state {s} byte {b}");
            }
        }
    }

    #[test]
    fn compression_collapses_letter_columns() {
        let (_, tables) = tables_for(&["[a-z]+"]);
        // All 26 lowercase letters behave identically: far fewer classes
        // than 256 bytes.
        assert!(
            tables.num_classes() <= 3,
            "classes = {}",
            tables.num_classes()
        );
    }

    #[test]
    fn byte_size_is_positive_and_scales() {
        let (_, small) = tables_for(&["a"]);
        let (_, big) = tables_for(&["[a-z]+", "[0-9]+", "if|then|else|endif"]);
        assert!(small.byte_size() > 0);
        assert!(big.byte_size() > small.byte_size());
    }
}
