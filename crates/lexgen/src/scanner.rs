//! The table-driven scanner runtime (the "interpreter" of overlay 1).
//!
//! Longest-match scanning with declaration-order tie-breaking, source
//! positions, and skip rules. The scanner also interns lexeme text on
//! request, playing the role of the paper's name-table-filling scanner:
//! "the first overlay scans and parses the input, builds the table of all
//! identifiers encountered".

use crate::regex::ParseRegexError;
use crate::tables::ScanTables;
use linguist_support::intern::{Name, NameTable};
use linguist_support::pos::{Pos, Span};
use std::fmt;

/// Index of a token rule within its [`crate::ScannerDef`].
pub type TokenKind = u32;

/// One scanned token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// Which rule matched.
    pub kind: TokenKind,
    /// Where the lexeme sits in the source.
    pub span: Span,
}

impl Token {
    /// The lexeme text, sliced from the original source.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        self.span.slice(source)
    }
}

pub(crate) struct KindInfo {
    pub(crate) name: Name,
    pub(crate) skip: bool,
}

/// Error constructing a scanner.
#[derive(Debug)]
pub enum LexError {
    /// A rule's pattern failed to parse.
    Parse {
        /// Rule name.
        rule: String,
        /// Underlying parse error.
        source: ParseRegexError,
    },
    /// A rule can match the empty string.
    EmptyMatch {
        /// Rule name.
        rule: String,
    },
    /// The definition had no rules.
    NoRules,
    /// Scanning failed (propagated from [`Scanner::scan`]).
    Scan(ScanError),
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::Parse { rule, source } => {
                write!(f, "rule `{}`: {}", rule, source)
            }
            LexError::EmptyMatch { rule } => {
                write!(f, "rule `{}` can match the empty string", rule)
            }
            LexError::NoRules => write!(f, "scanner definition has no rules"),
            LexError::Scan(e) => write!(f, "{}", e),
        }
    }
}

impl std::error::Error for LexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LexError::Parse { source, .. } => Some(source),
            LexError::Scan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScanError> for LexError {
    fn from(e: ScanError) -> LexError {
        LexError::Scan(e)
    }
}

/// Error while scanning input text: no rule matches at `pos`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanError {
    /// Position of the offending byte.
    pub pos: Pos,
    /// The byte no rule could start with.
    pub byte: u8,
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: no token rule matches byte 0x{:02x}",
            self.pos, self.byte
        )
    }
}

impl std::error::Error for ScanError {}

/// A compiled, table-driven scanner.
///
/// Produced by [`crate::ScannerDef::build`]; see the crate docs for a usage
/// example.
pub struct Scanner {
    tables: ScanTables,
    kinds: Vec<KindInfo>,
    names: NameTable,
}

impl fmt::Debug for Scanner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scanner")
            .field("states", &self.tables.num_states())
            .field("classes", &self.tables.num_classes())
            .field("rules", &self.kinds.len())
            .finish()
    }
}

impl Scanner {
    pub(crate) fn from_parts(
        tables: ScanTables,
        kinds: Vec<KindInfo>,
        names: NameTable,
    ) -> Scanner {
        Scanner {
            tables,
            kinds,
            names,
        }
    }

    /// The name of a token kind, as given to [`crate::ScannerDef::token`].
    pub fn kind_name(&self, kind: TokenKind) -> &str {
        self.names.resolve(self.kinds[kind as usize].name)
    }

    /// Look up the kind with the given rule name.
    pub fn kind_of(&self, name: &str) -> Option<TokenKind> {
        self.kinds
            .iter()
            .position(|k| self.names.resolve(k.name) == name)
            .map(|i| i as TokenKind)
    }

    /// Number of token rules (including skip rules).
    pub fn num_kinds(&self) -> usize {
        self.kinds.len()
    }

    /// Size of the scanner tables in bytes.
    pub fn table_bytes(&self) -> usize {
        self.tables.byte_size()
    }

    /// Scan the whole input into tokens, discarding skip-rule matches.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError`] at the first byte where no rule can match.
    pub fn scan(&self, source: &str) -> Result<Vec<Token>, ScanError> {
        let mut out = Vec::new();
        self.scan_with(source, |t| out.push(t))?;
        Ok(out)
    }

    /// Scan, interning every non-skip lexeme into `names` and pairing each
    /// token with its interned text — the overlay-1 behaviour of building
    /// the identifier table while scanning.
    pub fn scan_interned(
        &self,
        source: &str,
        names: &mut NameTable,
    ) -> Result<Vec<(Token, Name)>, ScanError> {
        let mut out = Vec::new();
        self.scan_with(source, |t| {
            let name = names.intern(t.text(source));
            out.push((t, name));
        })?;
        Ok(out)
    }

    fn scan_with(&self, source: &str, mut emit: impl FnMut(Token)) -> Result<(), ScanError> {
        let bytes = source.as_bytes();
        let mut pos = Pos::start();
        while (pos.offset as usize) < bytes.len() {
            let start = pos;
            let mut state = 0u32;
            let mut cursor = pos;
            let mut last_accept: Option<(TokenKind, Pos)> = None;
            while (cursor.offset as usize) < bytes.len() {
                let b = bytes[cursor.offset as usize];
                match self.tables.next(state, b) {
                    None => break,
                    Some(next) => {
                        state = next;
                        // Advance through the full character so columns stay
                        // sane on UTF-8 input (bytes of one char share a column
                        // step only at the leading byte).
                        cursor = cursor.advance(char_at(source, cursor.offset as usize));
                        if let Some(rule) = self.tables.accept(state) {
                            last_accept = Some((rule, cursor));
                        }
                    }
                }
            }
            match last_accept {
                None => {
                    return Err(ScanError {
                        pos: start,
                        byte: bytes[start.offset as usize],
                    })
                }
                Some((rule, end)) => {
                    if !self.kinds[rule as usize].skip {
                        emit(Token {
                            kind: rule,
                            span: Span::new(start, end),
                        });
                    }
                    pos = end;
                }
            }
        }
        Ok(())
    }
}

fn char_at(source: &str, offset: usize) -> char {
    source[offset..].chars().next().expect("in-bounds offset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScannerDef;

    fn demo_scanner() -> Scanner {
        ScannerDef::new()
            .skip(r"[ \t\n]+")
            .skip(r"#[^\n]*")
            .token("IF", "if")
            .token("IDENT", "[a-zA-Z_][a-zA-Z0-9_]*")
            .token("NUMBER", "[0-9]+")
            .token("ARROW", "->")
            .token("MINUS", "-")
            .token("DOT", r"\.")
            .build()
            .unwrap()
    }

    #[test]
    fn longest_match_wins() {
        let s = demo_scanner();
        // "->" must be one ARROW, not MINUS then error.
        let toks = s.scan("a->b").unwrap();
        let kinds: Vec<&str> = toks.iter().map(|t| s.kind_name(t.kind)).collect();
        assert_eq!(kinds, ["IDENT", "ARROW", "IDENT"]);
    }

    #[test]
    fn keyword_beats_identifier_on_tie() {
        let s = demo_scanner();
        let toks = s.scan("if iffy").unwrap();
        let kinds: Vec<&str> = toks.iter().map(|t| s.kind_name(t.kind)).collect();
        assert_eq!(kinds, ["IF", "IDENT"]);
    }

    #[test]
    fn skip_rules_drop_text_but_keep_positions() {
        let s = demo_scanner();
        let src = "x # comment\n  y";
        let toks = s.scan(src).unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].text(src), "x");
        assert_eq!(toks[1].text(src), "y");
        assert_eq!(toks[1].span.start.line, 2);
        assert_eq!(toks[1].span.start.col, 3);
    }

    #[test]
    fn scan_error_reports_position() {
        let s = demo_scanner();
        let err = s.scan("ok €").unwrap_err();
        assert_eq!(err.pos.line, 1);
        assert!(err.to_string().contains("no token rule"));
    }

    #[test]
    fn scan_interned_builds_name_table() {
        let s = demo_scanner();
        let mut names = NameTable::new();
        let src = "alpha beta alpha";
        let toks = s.scan_interned(src, &mut names).unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].1, toks[2].1, "same identifier interns equal");
        assert_ne!(toks[0].1, toks[1].1);
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn kind_lookup_round_trips() {
        let s = demo_scanner();
        let k = s.kind_of("NUMBER").unwrap();
        assert_eq!(s.kind_name(k), "NUMBER");
        assert!(s.kind_of("MISSING").is_none());
    }

    #[test]
    fn empty_input_scans_to_nothing() {
        let s = demo_scanner();
        assert!(s.scan("").unwrap().is_empty());
    }

    #[test]
    fn empty_matching_rule_rejected_at_build() {
        let err = ScannerDef::new().token("BAD", "a*").build().unwrap_err();
        assert!(matches!(err, LexError::EmptyMatch { .. }));
    }

    #[test]
    fn no_rules_rejected() {
        assert!(matches!(
            ScannerDef::new().build().unwrap_err(),
            LexError::NoRules
        ));
    }

    #[test]
    fn bad_pattern_rejected_with_rule_name() {
        let err = ScannerDef::new().token("OOPS", "(a").build().unwrap_err();
        assert!(err.to_string().contains("OOPS"));
    }
}
