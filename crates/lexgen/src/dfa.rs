//! Subset construction and Hopcroft minimization.
//!
//! The DFA is the automaton the scanner tables are flattened from. States
//! are numbered densely; state 0 is the start state. `accept[s]` carries the
//! highest-priority rule index accepted at `s`, or `None`.

use crate::nfa::{Nfa, StateId};
use std::collections::HashMap;

/// A deterministic finite automaton over bytes.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// `trans[s][b]` = next state from `s` on byte `b`, or `DEAD`.
    trans: Vec<[u32; 256]>,
    /// Accepting rule per state.
    accept: Vec<Option<u32>>,
}

/// Sentinel "no transition" target.
pub const DEAD: u32 = u32::MAX;

impl Dfa {
    /// Subset construction from an NFA.
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        let start = nfa.eps_closure(&[nfa.start()]);
        let mut index: HashMap<Vec<StateId>, u32> = HashMap::new();
        let mut worklist: Vec<Vec<StateId>> = vec![start.clone()];
        index.insert(start, 0);
        let mut trans: Vec<[u32; 256]> = Vec::new();
        let mut accept: Vec<Option<u32>> = Vec::new();

        let mut done = 0usize;
        while done < worklist.len() {
            let cur = worklist[done].clone();
            done += 1;
            let mut row = [DEAD; 256];
            let alphabet = nfa.outgoing_bytes(&cur);
            for b in alphabet.iter() {
                let moved = nfa.step(&cur, b);
                if moved.is_empty() {
                    continue;
                }
                let closed = nfa.eps_closure(&moved);
                let next = match index.get(&closed) {
                    Some(&id) => id,
                    None => {
                        let id = worklist.len() as u32;
                        index.insert(closed.clone(), id);
                        worklist.push(closed);
                        id
                    }
                };
                row[b as usize] = next;
            }
            trans.push(row);
            accept.push(nfa.accept_of(&cur));
        }
        Dfa { trans, accept }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.trans.len()
    }

    /// Whether the DFA has no states (never true for built DFAs).
    pub fn is_empty(&self) -> bool {
        self.trans.is_empty()
    }

    /// Next state from `s` on byte `b`, or `None` at a dead edge.
    pub fn next(&self, s: u32, b: u8) -> Option<u32> {
        let t = self.trans[s as usize][b as usize];
        (t != DEAD).then_some(t)
    }

    /// Accepting rule of state `s`.
    pub fn accept(&self, s: u32) -> Option<u32> {
        self.accept[s as usize]
    }

    /// Hopcroft-style minimization (partition refinement).
    ///
    /// Initial partition groups states by accepting rule; blocks are then
    /// split until every block is transition-consistent. State 0 of the
    /// result corresponds to the block containing the old start state.
    pub fn minimized(&self) -> Dfa {
        let n = self.len();
        // block id per state; initial partition by accept label.
        let mut label_of: HashMap<Option<u32>, u32> = HashMap::new();
        let mut block: Vec<u32> = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)] // indexes two parallel arrays
        for s in 0..n {
            let next_id = label_of.len() as u32;
            let id = *label_of.entry(self.accept[s]).or_insert(next_id);
            block.push(id);
        }
        let mut num_blocks = label_of.len() as u32;

        // Refine until stable: signature = (block, [block of target per byte]).
        loop {
            let mut sig_index: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
            let mut new_block = vec![0u32; n];
            for s in 0..n {
                let sig: Vec<u32> = self.trans[s]
                    .iter()
                    .map(|&t| {
                        if t == DEAD {
                            u32::MAX
                        } else {
                            block[t as usize]
                        }
                    })
                    .collect();
                let key = (block[s], sig);
                let fresh = sig_index.len() as u32;
                let id = *sig_index.entry(key).or_insert(fresh);
                new_block[s] = id;
            }
            let new_count = sig_index.len() as u32;
            if new_count == num_blocks {
                break;
            }
            block = new_block;
            num_blocks = new_count;
        }

        // Renumber so the start state's block is 0, then in discovery order.
        let mut remap: Vec<Option<u32>> = vec![None; num_blocks as usize];
        let mut order: Vec<u32> = Vec::new();
        remap[block[0] as usize] = Some(0);
        order.push(block[0]);
        for &b in block.iter().take(n) {
            if remap[b as usize].is_none() {
                remap[b as usize] = Some(order.len() as u32);
                order.push(b);
            }
        }

        let mut trans = vec![[DEAD; 256]; num_blocks as usize];
        let mut accept = vec![None; num_blocks as usize];
        for s in 0..n {
            let nb = remap[block[s] as usize].expect("mapped") as usize;
            accept[nb] = self.accept[s];
            #[allow(clippy::needless_range_loop)] // byte-indexed rows
            for b in 0..256 {
                let t = self.trans[s][b];
                trans[nb][b] = if t == DEAD {
                    DEAD
                } else {
                    remap[block[t as usize] as usize].expect("mapped")
                };
            }
        }
        Dfa { trans, accept }
    }

    /// Run the DFA from the start over `input`; `Some(rule)` iff the whole
    /// input is accepted.
    pub fn run(&self, input: &[u8]) -> Option<u32> {
        let mut s = 0u32;
        for &b in input {
            s = self.next(s, b)?;
        }
        self.accept(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::regex::Regex;

    fn dfa_for(patterns: &[&str]) -> Dfa {
        let mut nfa = Nfa::new();
        for (i, p) in patterns.iter().enumerate() {
            nfa.add_rule(&Regex::parse(p).unwrap(), i as u32);
        }
        Dfa::from_nfa(&nfa)
    }

    #[test]
    fn subset_construction_matches() {
        let dfa = dfa_for(&["(a|b)*abb"]);
        assert_eq!(dfa.run(b"abb"), Some(0));
        assert_eq!(dfa.run(b"aabb"), Some(0));
        assert_eq!(dfa.run(b"babb"), Some(0));
        assert_eq!(dfa.run(b"ab"), None);
        assert_eq!(dfa.run(b"abba"), None);
    }

    #[test]
    fn priority_resolution() {
        let dfa = dfa_for(&["while", "[a-z]+"]);
        assert_eq!(dfa.run(b"while"), Some(0));
        assert_eq!(dfa.run(b"whilex"), Some(1));
        assert_eq!(dfa.run(b"abc"), Some(1));
    }

    #[test]
    fn minimized_is_equivalent() {
        let dfa = dfa_for(&["(a|b)*abb", "[0-9]+"]);
        let min = dfa.minimized();
        assert!(min.len() <= dfa.len());
        for input in [
            &b"abb"[..],
            b"aabb",
            b"ab",
            b"123",
            b"12a",
            b"",
            b"bbabb",
            b"0",
        ] {
            assert_eq!(dfa.run(input), min.run(input), "input {:?}", input);
        }
    }

    #[test]
    fn minimized_classic_example_size() {
        // (a|b)*abb over {a,b} has a well-known 4-state minimal DFA
        // (plus nothing else since dead states aren't materialized).
        let min = dfa_for(&["(a|b)*abb"]).minimized();
        assert_eq!(min.len(), 4);
    }

    #[test]
    fn distinct_rules_stay_distinct_after_minimization() {
        let dfa = dfa_for(&["a", "b"]).minimized();
        assert_eq!(dfa.run(b"a"), Some(0));
        assert_eq!(dfa.run(b"b"), Some(1));
    }

    #[test]
    fn start_state_is_zero_after_minimization() {
        let dfa = dfa_for(&["ab"]).minimized();
        // From state 0, 'a' must be a live edge.
        assert!(dfa.next(0, b'a').is_some());
        assert!(dfa.next(0, b'b').is_none());
    }
}
