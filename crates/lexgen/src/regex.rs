//! Regular-expression abstract syntax and parser.
//!
//! The surface syntax is the classic lex subset: concatenation, alternation
//! `|`, repetition `* + ?`, grouping `(...)`, character classes `[a-z0-9_]`
//! with negation `[^...]` and ranges, the any-byte dot `.`, and backslash
//! escapes (`\n \t \r \\ \. \+` …). Patterns operate on bytes; non-ASCII
//! input bytes can be matched through classes or `.`.

use std::fmt;

/// A parsed regular expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Regex {
    /// Matches the empty string.
    Empty,
    /// Matches one byte drawn from the class.
    Class(ClassSet),
    /// Concatenation, in order.
    Concat(Vec<Regex>),
    /// Alternation.
    Alt(Vec<Regex>),
    /// Zero or more repetitions.
    Star(Box<Regex>),
    /// One or more repetitions.
    Plus(Box<Regex>),
    /// Zero or one occurrence.
    Opt(Box<Regex>),
}

/// A set of bytes, stored as a 256-bit membership table.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct ClassSet {
    bits: [u64; 4],
}

impl ClassSet {
    /// The empty byte set.
    pub fn empty() -> ClassSet {
        ClassSet { bits: [0; 4] }
    }

    /// The set containing exactly `b`.
    pub fn single(b: u8) -> ClassSet {
        let mut s = ClassSet::empty();
        s.insert(b);
        s
    }

    /// All bytes except `\n` (the dot).
    pub fn dot() -> ClassSet {
        let mut s = ClassSet::empty();
        for b in 0..=255u8 {
            if b != b'\n' {
                s.insert(b);
            }
        }
        s
    }

    /// Add one byte.
    pub fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Add the inclusive range `lo..=hi`.
    pub fn insert_range(&mut self, lo: u8, hi: u8) {
        for b in lo..=hi {
            self.insert(b);
        }
    }

    /// Membership test.
    pub fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// Complement (every byte not in `self`).
    pub fn negated(&self) -> ClassSet {
        ClassSet {
            bits: [!self.bits[0], !self.bits[1], !self.bits[2], !self.bits[3]],
        }
    }

    /// Union with another set.
    pub fn union(&self, other: &ClassSet) -> ClassSet {
        ClassSet {
            bits: [
                self.bits[0] | other.bits[0],
                self.bits[1] | other.bits[1],
                self.bits[2] | other.bits[2],
                self.bits[3] | other.bits[3],
            ],
        }
    }

    /// Whether no byte is in the set.
    pub fn is_empty(&self) -> bool {
        self.bits == [0; 4]
    }

    /// Iterate members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0..=255u8).filter(|&b| self.contains(b))
    }
}

impl fmt::Debug for ClassSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClassSet[")?;
        let mut first = true;
        for b in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            if b.is_ascii_graphic() {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "0x{:02x}", b)?;
            }
        }
        write!(f, "]")
    }
}

/// Error produced when a pattern fails to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRegexError {
    /// Byte offset of the problem within the pattern.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseRegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseRegexError {}

impl Regex {
    /// Parse a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRegexError`] on malformed syntax: unbalanced
    /// parentheses, an unterminated class, a dangling operator, a bad range,
    /// or a trailing backslash.
    ///
    /// # Example
    ///
    /// ```
    /// use linguist_lexgen::Regex;
    /// let re = Regex::parse("(ab|c)*d").unwrap();
    /// assert!(!re.matches_empty());
    /// ```
    pub fn parse(pattern: &str) -> Result<Regex, ParseRegexError> {
        let mut p = Parser {
            bytes: pattern.as_bytes(),
            pos: 0,
        };
        let re = p.alternation()?;
        if p.pos != p.bytes.len() {
            return Err(p.error("unexpected character (unbalanced ')'?)"));
        }
        Ok(re)
    }

    /// Whether the expression can match the empty string. Scanners reject
    /// such rules — they would never consume input.
    pub fn matches_empty(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Class(_) => false,
            Regex::Concat(parts) => parts.iter().all(Regex::matches_empty),
            Regex::Alt(parts) => parts.iter().any(Regex::matches_empty),
            Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Plus(inner) => inner.matches_empty(),
        }
    }
}

struct Parser<'p> {
    bytes: &'p [u8],
    pos: usize,
}

impl<'p> Parser<'p> {
    fn error(&self, message: &str) -> ParseRegexError {
        ParseRegexError {
            at: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn alternation(&mut self) -> Result<Regex, ParseRegexError> {
        let mut arms = vec![self.concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            arms.push(self.concat()?);
        }
        Ok(if arms.len() == 1 {
            arms.pop().expect("one arm")
        } else {
            Regex::Alt(arms)
        })
    }

    fn concat(&mut self) -> Result<Regex, ParseRegexError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.repetition()?);
        }
        Ok(match parts.len() {
            0 => Regex::Empty,
            1 => parts.pop().expect("one part"),
            _ => Regex::Concat(parts),
        })
    }

    fn repetition(&mut self) -> Result<Regex, ParseRegexError> {
        let mut atom = self.atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    atom = Regex::Star(Box::new(atom));
                }
                Some(b'+') => {
                    self.bump();
                    atom = Regex::Plus(Box::new(atom));
                }
                Some(b'?') => {
                    self.bump();
                    atom = Regex::Opt(Box::new(atom));
                }
                _ => return Ok(atom),
            }
        }
    }

    fn atom(&mut self) -> Result<Regex, ParseRegexError> {
        match self.bump() {
            None => Err(self.error("expected an atom")),
            Some(b'(') => {
                let inner = self.alternation()?;
                if self.bump() != Some(b')') {
                    return Err(self.error("expected ')'"));
                }
                Ok(inner)
            }
            Some(b'[') => Ok(Regex::Class(self.class()?)),
            Some(b'.') => Ok(Regex::Class(ClassSet::dot())),
            Some(b'\\') => {
                let b = self
                    .bump()
                    .ok_or_else(|| self.error("trailing backslash"))?;
                Ok(Regex::Class(ClassSet::single(unescape(b))))
            }
            Some(b @ (b'*' | b'+' | b'?')) => Err(ParseRegexError {
                at: self.pos - 1,
                message: format!("dangling repetition operator '{}'", b as char),
            }),
            Some(b) => Ok(Regex::Class(ClassSet::single(b))),
        }
    }

    fn class(&mut self) -> Result<ClassSet, ParseRegexError> {
        let mut set = ClassSet::empty();
        let negate = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        // A ']' immediately after '[' (or '[^') is a literal member.
        let mut first = true;
        loop {
            let b = match self.bump() {
                None => return Err(self.error("unterminated character class")),
                Some(b']') if !first => break,
                Some(b'\\') => {
                    let e = self
                        .bump()
                        .ok_or_else(|| self.error("trailing backslash"))?;
                    unescape(e)
                }
                Some(b) => b,
            };
            first = false;
            if self.peek() == Some(b'-') && self.bytes.get(self.pos + 1).is_some_and(|&n| n != b']')
            {
                self.bump(); // '-'
                let hi = match self.bump() {
                    None => return Err(self.error("unterminated range")),
                    Some(b'\\') => {
                        let e = self
                            .bump()
                            .ok_or_else(|| self.error("trailing backslash"))?;
                        unescape(e)
                    }
                    Some(h) => h,
                };
                if hi < b {
                    return Err(self.error("range upper bound below lower bound"));
                }
                set.insert_range(b, hi);
            } else {
                set.insert(b);
            }
        }
        Ok(if negate { set.negated() } else { set })
    }
}

fn unescape(b: u8) -> u8 {
    match b {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_of(re: &Regex) -> &ClassSet {
        match re {
            Regex::Class(c) => c,
            other => panic!("expected class, got {:?}", other),
        }
    }

    #[test]
    fn parses_literal_concat() {
        let re = Regex::parse("ab").unwrap();
        match re {
            Regex::Concat(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(class_of(&parts[0]).contains(b'a'));
                assert!(class_of(&parts[1]).contains(b'b'));
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn parses_alternation_and_star() {
        let re = Regex::parse("a|b*").unwrap();
        match re {
            Regex::Alt(arms) => {
                assert_eq!(arms.len(), 2);
                assert!(matches!(arms[1], Regex::Star(_)));
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn class_with_ranges_and_negation() {
        let re = Regex::parse("[a-cx]").unwrap();
        let c = class_of(&re);
        for b in [b'a', b'b', b'c', b'x'] {
            assert!(c.contains(b));
        }
        assert!(!c.contains(b'd'));

        let re = Regex::parse("[^a-z]").unwrap();
        let c = class_of(&re);
        assert!(!c.contains(b'm'));
        assert!(c.contains(b'0'));
    }

    #[test]
    fn leading_bracket_is_literal_in_class() {
        let re = Regex::parse("[]x]").unwrap();
        let c = class_of(&re);
        assert!(c.contains(b']'));
        assert!(c.contains(b'x'));
    }

    #[test]
    fn trailing_dash_is_literal() {
        let re = Regex::parse("[a-]").unwrap();
        let c = class_of(&re);
        assert!(c.contains(b'a'));
        assert!(c.contains(b'-'));
    }

    #[test]
    fn escapes_work() {
        let re = Regex::parse(r"\n\+").unwrap();
        match re {
            Regex::Concat(parts) => {
                assert!(class_of(&parts[0]).contains(b'\n'));
                assert!(class_of(&parts[1]).contains(b'+'));
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn dot_excludes_newline() {
        let re = Regex::parse(".").unwrap();
        let c = class_of(&re);
        assert!(c.contains(b'x'));
        assert!(!c.contains(b'\n'));
    }

    #[test]
    fn matches_empty_detection() {
        assert!(Regex::parse("a*").unwrap().matches_empty());
        assert!(Regex::parse("a?").unwrap().matches_empty());
        assert!(Regex::parse("a*|b").unwrap().matches_empty());
        assert!(!Regex::parse("a+").unwrap().matches_empty());
        assert!(!Regex::parse("ab").unwrap().matches_empty());
        assert!(Regex::parse("a*b*").unwrap().matches_empty());
    }

    #[test]
    fn errors_are_reported() {
        assert!(Regex::parse("(a").is_err());
        assert!(Regex::parse("a)").is_err());
        assert!(Regex::parse("[a").is_err());
        assert!(Regex::parse("*a").is_err());
        assert!(Regex::parse("[z-a]").is_err());
        assert!(Regex::parse("\\").is_err());
    }

    #[test]
    fn error_display_mentions_offset() {
        let err = Regex::parse("ab(").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("byte"), "{}", text);
    }

    #[test]
    fn class_set_operations() {
        let mut a = ClassSet::empty();
        a.insert_range(b'a', b'c');
        let b = ClassSet::single(b'z');
        let u = a.union(&b);
        assert!(u.contains(b'b') && u.contains(b'z'));
        assert_eq!(u.iter().count(), 4);
        assert!(ClassSet::empty().is_empty());
        assert!(!u.negated().contains(b'z'));
    }
}
