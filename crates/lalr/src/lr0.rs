//! The LR(0) item automaton: canonical collection of item sets.
//!
//! States are identified by their *kernel* (the augmented start item plus
//! all items with the dot not at the far left); closures are recomputed on
//! demand. The LALR(1) lookahead computation in [`crate::table`] works over
//! these kernels.

use crate::grammar::{Grammar, ProdId, Sym};
use std::collections::HashMap;

/// An LR(0) item: a production with a dot position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Item {
    /// The production.
    pub prod: ProdId,
    /// Dot position: 0 ..= rhs.len().
    pub dot: u16,
}

impl Item {
    /// The symbol right after the dot, if any.
    pub fn next_sym(self, g: &Grammar) -> Option<Sym> {
        g.production(self.prod).rhs.get(self.dot as usize).copied()
    }

    /// Whether the dot is at the end (a completed item).
    pub fn is_complete(self, g: &Grammar) -> bool {
        self.dot as usize == g.production(self.prod).rhs.len()
    }

    /// The item with the dot advanced one symbol.
    pub fn advanced(self) -> Item {
        Item {
            prod: self.prod,
            dot: self.dot + 1,
        }
    }

    /// Render like `S -> a . S b`.
    pub fn display(self, g: &Grammar) -> String {
        let p = g.production(self.prod);
        let mut out = format!("{} ->", g.nonterm_name(p.lhs));
        for (i, &s) in p.rhs.iter().enumerate() {
            if i == self.dot as usize {
                out.push_str(" .");
            }
            out.push(' ');
            out.push_str(g.sym_name(s));
        }
        if self.is_complete(g) {
            out.push_str(" .");
        }
        out
    }
}

/// State id in the LR(0) automaton.
pub type StateId = u32;

/// The canonical LR(0) collection.
#[derive(Debug, Clone)]
pub struct Lr0Automaton {
    /// Kernel items per state, sorted.
    pub kernels: Vec<Vec<Item>>,
    /// `goto[state][sym]` transitions.
    pub gotos: Vec<HashMap<Sym, StateId>>,
}

impl Lr0Automaton {
    /// Build the canonical collection for `g`.
    pub fn build(g: &Grammar) -> Lr0Automaton {
        let start_kernel = vec![Item {
            prod: g.aug_prod(),
            dot: 0,
        }];
        let mut index: HashMap<Vec<Item>, StateId> = HashMap::new();
        let mut kernels = vec![start_kernel.clone()];
        index.insert(start_kernel, 0);
        let mut gotos: Vec<HashMap<Sym, StateId>> = vec![HashMap::new()];

        let mut done = 0;
        while done < kernels.len() {
            let closure = closure_of(g, &kernels[done]);
            // Group advanced items by the symbol crossed.
            let mut moved: HashMap<Sym, Vec<Item>> = HashMap::new();
            for item in &closure {
                if let Some(sym) = item.next_sym(g) {
                    moved.entry(sym).or_default().push(item.advanced());
                }
            }
            let mut edges: Vec<(Sym, Vec<Item>)> = moved.into_iter().collect();
            // Deterministic state numbering regardless of hash order.
            edges.sort_by_key(|(sym, _)| match *sym {
                Sym::T(t) => (0u8, t.0),
                Sym::N(n) => (1u8, n.0),
            });
            for (sym, mut kernel) in edges {
                kernel.sort_unstable();
                kernel.dedup();
                let next = match index.get(&kernel) {
                    Some(&id) => id,
                    None => {
                        let id = kernels.len() as StateId;
                        index.insert(kernel.clone(), id);
                        kernels.push(kernel);
                        gotos.push(HashMap::new());
                        id
                    }
                };
                gotos[done].insert(sym, next);
            }
            done += 1;
        }
        Lr0Automaton { kernels, gotos }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the automaton is empty (never true once built).
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// The transition from `state` on `sym`.
    pub fn goto(&self, state: StateId, sym: Sym) -> Option<StateId> {
        self.gotos[state as usize].get(&sym).copied()
    }

    /// Full closure (kernel + derived items) of a state.
    pub fn closure(&self, g: &Grammar, state: StateId) -> Vec<Item> {
        closure_of(g, &self.kernels[state as usize])
    }
}

/// LR(0) closure of a kernel.
pub fn closure_of(g: &Grammar, kernel: &[Item]) -> Vec<Item> {
    let mut out: Vec<Item> = kernel.to_vec();
    let mut added_nt = vec![false; g.num_nonterms()];
    let mut i = 0;
    while i < out.len() {
        if let Some(Sym::N(nt)) = out[i].next_sym(g) {
            if !added_nt[nt.0 as usize] {
                added_nt[nt.0 as usize] = true;
                for prod in g.productions_of(nt) {
                    let item = Item { prod, dot: 0 };
                    if !out.contains(&item) {
                        out.push(item);
                    }
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{Grammar, GrammarBuilder};

    /// The dragon-book grammar 4.1:
    /// E -> E + T | T ;  T -> T * F | F ;  F -> ( E ) | id
    fn dragon() -> Grammar {
        let mut b = GrammarBuilder::new();
        let e = b.nonterminal("E");
        let t = b.nonterminal("T");
        let f = b.nonterminal("F");
        let plus = b.terminal("+");
        let star = b.terminal("*");
        let lp = b.terminal("(");
        let rp = b.terminal(")");
        let id = b.terminal("id");
        b.production(e, vec![Sym::N(e), Sym::T(plus), Sym::N(t)]);
        b.production(e, vec![Sym::N(t)]);
        b.production(t, vec![Sym::N(t), Sym::T(star), Sym::N(f)]);
        b.production(t, vec![Sym::N(f)]);
        b.production(f, vec![Sym::T(lp), Sym::N(e), Sym::T(rp)]);
        b.production(f, vec![Sym::T(id)]);
        b.start(e).build().unwrap()
    }

    #[test]
    fn dragon_grammar_has_twelve_states() {
        // The canonical LR(0) collection for grammar 4.1 is I0..I11.
        let g = dragon();
        let a = Lr0Automaton::build(&g);
        assert_eq!(a.len(), 12);
    }

    #[test]
    fn start_state_kernel_is_aug_item() {
        let g = dragon();
        let a = Lr0Automaton::build(&g);
        assert_eq!(
            a.kernels[0],
            vec![Item {
                prod: g.aug_prod(),
                dot: 0
            }]
        );
    }

    #[test]
    fn closure_of_start_contains_all_initial_items() {
        let g = dragon();
        let a = Lr0Automaton::build(&g);
        let c = a.closure(&g, 0);
        // aug item + 6 productions with dot at 0.
        assert_eq!(c.len(), 7);
        assert!(c.iter().all(|i| i.dot == 0));
    }

    #[test]
    fn gotos_are_functional_and_consistent() {
        let g = dragon();
        let a = Lr0Automaton::build(&g);
        let id = g.term_by_name("id").unwrap();
        let s_id = a.goto(0, Sym::T(id)).unwrap();
        // In the id-state the only item is F -> id .
        let c = a.closure(&g, s_id);
        assert_eq!(c.len(), 1);
        assert!(c[0].is_complete(&g));
        assert_eq!(c[0].display(&g), "F -> id .");
    }

    #[test]
    fn item_display_places_dot() {
        let g = dragon();
        let item = Item {
            prod: crate::grammar::ProdId(0),
            dot: 1,
        };
        assert_eq!(item.display(&g), "E -> E . + T");
    }

    #[test]
    fn building_twice_is_deterministic() {
        let g = dragon();
        let a = Lr0Automaton::build(&g);
        let b = Lr0Automaton::build(&g);
        assert_eq!(a.kernels, b.kernels);
        for (x, y) in a.gotos.iter().zip(b.gotos.iter()) {
            assert_eq!(x, y);
        }
    }
}
