//! Context-free grammars: the input to the table builder.
//!
//! Symbols are interned into two dense id spaces — [`TermId`] and
//! [`NonTermId`] — so the analyses can index arrays by symbol. Building
//! adds an augmented start production `S' → S` and a reserved end-of-input
//! terminal, as every LR construction requires.

use linguist_support::intern::{Name, NameTable};
use std::fmt;

/// A terminal symbol id (dense, grammar-local).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

/// A nonterminal symbol id (dense, grammar-local).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NonTermId(pub u32);

/// A production id (index into [`Grammar::productions`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProdId(pub u32);

/// A grammar symbol: terminal or nonterminal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sym {
    /// Terminal.
    T(TermId),
    /// Nonterminal.
    N(NonTermId),
}

/// One production `lhs → rhs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Production {
    /// Left-hand-side nonterminal.
    pub lhs: NonTermId,
    /// Right-hand-side symbols, left to right.
    pub rhs: Vec<Sym>,
}

/// Errors from [`GrammarBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GrammarError {
    /// No start symbol was set.
    NoStart,
    /// A nonterminal has no productions.
    UselessNonterminal(String),
    /// The grammar has no productions at all.
    Empty,
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::NoStart => write!(f, "no start symbol set"),
            GrammarError::UselessNonterminal(n) => {
                write!(f, "nonterminal `{}` has no productions", n)
            }
            GrammarError::Empty => write!(f, "grammar has no productions"),
        }
    }
}

impl std::error::Error for GrammarError {}

/// Incrementally assembles a [`Grammar`].
#[derive(Debug, Default, Clone)]
pub struct GrammarBuilder {
    names: NameTable,
    terms: Vec<Name>,
    nonterms: Vec<Name>,
    productions: Vec<Production>,
    start: Option<NonTermId>,
}

impl GrammarBuilder {
    /// An empty builder.
    pub fn new() -> GrammarBuilder {
        GrammarBuilder::default()
    }

    /// Declare (or fetch) the terminal named `name`.
    pub fn terminal(&mut self, name: &str) -> TermId {
        let n = self.names.intern(name);
        if let Some(ix) = self.terms.iter().position(|&t| t == n) {
            return TermId(ix as u32);
        }
        self.terms.push(n);
        TermId(self.terms.len() as u32 - 1)
    }

    /// Declare (or fetch) the nonterminal named `name`.
    pub fn nonterminal(&mut self, name: &str) -> NonTermId {
        let n = self.names.intern(name);
        if let Some(ix) = self.nonterms.iter().position(|&t| t == n) {
            return NonTermId(ix as u32);
        }
        self.nonterms.push(n);
        NonTermId(self.nonterms.len() as u32 - 1)
    }

    /// Add a production; returns its id. Production ids are dense and in
    /// declaration order (the augmented production is appended last by
    /// [`GrammarBuilder::build`]).
    pub fn production(&mut self, lhs: NonTermId, rhs: Vec<Sym>) -> ProdId {
        self.productions.push(Production { lhs, rhs });
        ProdId(self.productions.len() as u32 - 1)
    }

    /// Set the start symbol.
    pub fn start(mut self, start: NonTermId) -> GrammarBuilder {
        self.start = Some(start);
        self
    }

    /// Finish: augment with `S' → S` and the end-of-input terminal.
    ///
    /// # Errors
    ///
    /// [`GrammarError::NoStart`] if no start symbol was set,
    /// [`GrammarError::Empty`] for a production-less grammar, and
    /// [`GrammarError::UselessNonterminal`] if some nonterminal never
    /// appears as a left-hand side.
    pub fn build(mut self) -> Result<Grammar, GrammarError> {
        let start = self.start.ok_or(GrammarError::NoStart)?;
        if self.productions.is_empty() {
            return Err(GrammarError::Empty);
        }
        for (ix, &name) in self.nonterms.iter().enumerate() {
            if !self
                .productions
                .iter()
                .any(|p| p.lhs == NonTermId(ix as u32))
            {
                return Err(GrammarError::UselessNonterminal(
                    self.names.resolve(name).to_owned(),
                ));
            }
        }
        let eof = self.terminal("<eof>");
        let aug_start = {
            // The augmented symbol is synthetic; pick a name no user symbol
            // can collide with.
            let n = self.names.intern("<start'>");
            self.nonterms.push(n);
            NonTermId(self.nonterms.len() as u32 - 1)
        };
        let aug_prod = ProdId(self.productions.len() as u32);
        self.productions.push(Production {
            lhs: aug_start,
            rhs: vec![Sym::N(start)],
        });
        Ok(Grammar {
            names: self.names,
            terms: self.terms,
            nonterms: self.nonterms,
            productions: self.productions,
            start,
            aug_start,
            aug_prod,
            eof,
        })
    }
}

/// A validated, augmented context-free grammar.
#[derive(Debug, Clone)]
pub struct Grammar {
    names: NameTable,
    terms: Vec<Name>,
    nonterms: Vec<Name>,
    productions: Vec<Production>,
    start: NonTermId,
    aug_start: NonTermId,
    aug_prod: ProdId,
    eof: TermId,
}

impl Grammar {
    /// All productions, including the augmented one (last).
    pub fn productions(&self) -> &[Production] {
        &self.productions
    }

    /// The production with the given id.
    pub fn production(&self, id: ProdId) -> &Production {
        &self.productions[id.0 as usize]
    }

    /// Ids of the productions whose left-hand side is `nt`.
    pub fn productions_of(&self, nt: NonTermId) -> impl Iterator<Item = ProdId> + '_ {
        self.productions
            .iter()
            .enumerate()
            .filter(move |(_, p)| p.lhs == nt)
            .map(|(i, _)| ProdId(i as u32))
    }

    /// The user's start symbol.
    pub fn start(&self) -> NonTermId {
        self.start
    }

    /// The synthetic augmented start symbol `S'`.
    pub fn aug_start(&self) -> NonTermId {
        self.aug_start
    }

    /// The synthetic production `S' → S`.
    pub fn aug_prod(&self) -> ProdId {
        self.aug_prod
    }

    /// The reserved end-of-input terminal.
    pub fn eof(&self) -> TermId {
        self.eof
    }

    /// Number of terminals (including end-of-input).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Number of nonterminals (including the augmented start).
    pub fn num_nonterms(&self) -> usize {
        self.nonterms.len()
    }

    /// Terminal name.
    pub fn term_name(&self, t: TermId) -> &str {
        self.names.resolve(self.terms[t.0 as usize])
    }

    /// Nonterminal name.
    pub fn nonterm_name(&self, n: NonTermId) -> &str {
        self.names.resolve(self.nonterms[n.0 as usize])
    }

    /// Display a symbol.
    pub fn sym_name(&self, s: Sym) -> &str {
        match s {
            Sym::T(t) => self.term_name(t),
            Sym::N(n) => self.nonterm_name(n),
        }
    }

    /// Render a production like `expr -> expr PLUS term`.
    pub fn prod_display(&self, id: ProdId) -> String {
        let p = self.production(id);
        let mut out = format!("{} ->", self.nonterm_name(p.lhs));
        if p.rhs.is_empty() {
            out.push_str(" <empty>");
        }
        for &s in &p.rhs {
            out.push(' ');
            out.push_str(self.sym_name(s));
        }
        out
    }

    /// Find a terminal by name.
    pub fn term_by_name(&self, name: &str) -> Option<TermId> {
        let n = self.names.get(name)?;
        self.terms
            .iter()
            .position(|&t| t == n)
            .map(|i| TermId(i as u32))
    }

    /// Find a nonterminal by name.
    pub fn nonterm_by_name(&self, name: &str) -> Option<NonTermId> {
        let n = self.names.get(name)?;
        self.nonterms
            .iter()
            .position(|&t| t == n)
            .map(|i| NonTermId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Grammar {
        let mut b = GrammarBuilder::new();
        let s = b.nonterminal("S");
        let a = b.terminal("a");
        b.production(s, vec![Sym::T(a)]);
        b.start(s).build().unwrap()
    }

    #[test]
    fn build_adds_augmentation() {
        let g = tiny();
        assert_eq!(g.productions().len(), 2);
        let aug = g.production(g.aug_prod());
        assert_eq!(aug.lhs, g.aug_start());
        assert_eq!(aug.rhs, vec![Sym::N(g.start())]);
    }

    #[test]
    fn interning_is_stable() {
        let mut b = GrammarBuilder::new();
        let s1 = b.nonterminal("S");
        let s2 = b.nonterminal("S");
        assert_eq!(s1, s2);
        let t1 = b.terminal("x");
        let t2 = b.terminal("x");
        assert_eq!(t1, t2);
    }

    #[test]
    fn missing_start_is_error() {
        let mut b = GrammarBuilder::new();
        let s = b.nonterminal("S");
        let a = b.terminal("a");
        b.production(s, vec![Sym::T(a)]);
        assert_eq!(b.build().unwrap_err(), GrammarError::NoStart);
    }

    #[test]
    fn useless_nonterminal_is_error() {
        let mut b = GrammarBuilder::new();
        let s = b.nonterminal("S");
        let dead = b.nonterminal("Dead");
        b.production(s, vec![Sym::N(dead)]);
        let err = b.start(s).build().unwrap_err();
        assert_eq!(err, GrammarError::UselessNonterminal("Dead".into()));
    }

    #[test]
    fn lookup_by_name() {
        let g = tiny();
        assert_eq!(g.term_by_name("a"), Some(TermId(0)));
        assert!(g.term_by_name("zzz").is_none());
        assert_eq!(g.nonterm_by_name("S"), Some(g.start()));
    }

    #[test]
    fn prod_display_renders() {
        let g = tiny();
        assert_eq!(g.prod_display(ProdId(0)), "S -> a");
    }

    #[test]
    fn empty_rhs_displays_as_empty() {
        let mut b = GrammarBuilder::new();
        let s = b.nonterminal("S");
        b.production(s, vec![]);
        let g = b.start(s).build().unwrap();
        assert_eq!(g.prod_display(ProdId(0)), "S -> <empty>");
    }
}
