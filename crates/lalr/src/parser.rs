//! The table-driven shift/reduce parser.
//!
//! The driver emits [`ParseEvent`]s in exactly the order the paper's first
//! APT-construction strategy needs: "the parser emits tree nodes in
//! bottom-up order. This creates an intermediate APT file that is identical
//! to what would have been created by a left-to-right attribute evaluator."
//! A [`ParseEvent::Shift`] is a leaf node; a [`ParseEvent::Reduce`] is an
//! interior node appearing after all of its children — a left-to-right
//! postfix linearization of the parse tree.

use crate::grammar::{NonTermId, ProdId, TermId};
use crate::lr0::StateId;
use crate::table::{Action, LalrTable};
use std::fmt;

/// One event of the right parse, generic over a token payload `V`
/// (typically a span or an interned lexeme).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseEvent<V> {
    /// A terminal was shifted: a leaf node of the APT.
    Shift {
        /// The terminal.
        terminal: TermId,
        /// Caller-supplied payload (span, interned text, …).
        payload: V,
    },
    /// A production was reduced: an interior node, emitted after all of its
    /// children's events.
    Reduce {
        /// The production reduced by.
        production: ProdId,
        /// Its left-hand side.
        lhs: NonTermId,
        /// Number of right-hand-side symbols (children popped).
        arity: usize,
    },
}

/// A syntax error: the token (or end of input) had no action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Index of the offending token in the input stream (input length if
    /// the error is at end of input).
    pub at_token: usize,
    /// Name of the offending terminal (`<eof>` at end of input).
    pub found: String,
    /// Terminal names that would have been accepted.
    pub expected: Vec<String>,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "syntax error at token {}: found `{}`, expected one of: {}",
            self.at_token,
            self.found,
            self.expected.join(", ")
        )
    }
}

impl std::error::Error for ParseError {}

/// The table interpreter.
///
/// Borrows the tables; construction is free. See the crate-level example.
#[derive(Debug, Clone, Copy)]
pub struct Parser<'t> {
    table: &'t LalrTable,
}

impl<'t> Parser<'t> {
    /// A parser over `table`.
    pub fn new(table: &'t LalrTable) -> Parser<'t> {
        Parser { table }
    }

    /// Parse a token stream into its right parse (bottom-up event list).
    ///
    /// The end-of-input terminal is appended automatically. The final
    /// reduce of the augmented production is *not* emitted — the last event
    /// is the reduce that creates the root node for the user's start
    /// symbol.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] at the first token with no table action.
    pub fn parse<V, I>(&self, tokens: I) -> Result<Vec<ParseEvent<V>>, ParseError>
    where
        I: IntoIterator<Item = (TermId, V)>,
    {
        let mut events = Vec::new();
        self.parse_with(tokens, |e| events.push(e))?;
        Ok(events)
    }

    /// Streaming variant of [`Parser::parse`]: `emit` is called for each
    /// event as soon as it is known. This is how the first overlay writes
    /// the right-parse straight to an intermediate file without holding the
    /// tree in memory.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] at the first token with no table action.
    pub fn parse_with<V, I>(
        &self,
        tokens: I,
        mut emit: impl FnMut(ParseEvent<V>),
    ) -> Result<(), ParseError>
    where
        I: IntoIterator<Item = (TermId, V)>,
    {
        let g = self.table.grammar();
        let eof = g.eof();
        let mut stack: Vec<StateId> = vec![0];
        let mut index = 0usize;

        let mut input = tokens.into_iter();
        let mut lookahead: Option<(TermId, Option<V>)> = input.next().map(|(t, v)| (t, Some(v)));

        loop {
            let (term, _) = match &lookahead {
                Some((t, v)) => (*t, v.is_some()),
                None => (eof, false),
            };
            let state = *stack.last().expect("stack never empties");
            match self.table.action(state, term) {
                Some(Action::Shift(next)) => {
                    let (t, payload) = lookahead.take().expect("eof has no shift action");
                    emit(ParseEvent::Shift {
                        terminal: t,
                        payload: payload.expect("shifted token has payload"),
                    });
                    stack.push(next);
                    index += 1;
                    lookahead = input.next().map(|(t, v)| (t, Some(v)));
                }
                Some(Action::Reduce(prod)) => {
                    let p = g.production(prod);
                    let arity = p.rhs.len();
                    for _ in 0..arity {
                        stack.pop();
                    }
                    let state = *stack.last().expect("stack never empties");
                    let next = self
                        .table
                        .goto(state, p.lhs)
                        .expect("goto defined after reduce");
                    stack.push(next);
                    emit(ParseEvent::Reduce {
                        production: prod,
                        lhs: p.lhs,
                        arity,
                    });
                }
                Some(Action::Accept) => return Ok(()),
                None => {
                    return Err(ParseError {
                        at_token: index,
                        found: g.term_name(term).to_owned(),
                        expected: self.table.expected_in(state),
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{Grammar, GrammarBuilder, Sym};
    use crate::table::LalrTable;

    /// Dragon 4.1 expression grammar.
    fn dragon() -> Grammar {
        let mut b = GrammarBuilder::new();
        let e = b.nonterminal("E");
        let t = b.nonterminal("T");
        let f = b.nonterminal("F");
        let plus = b.terminal("+");
        let star = b.terminal("*");
        let lp = b.terminal("(");
        let rp = b.terminal(")");
        let id = b.terminal("id");
        b.production(e, vec![Sym::N(e), Sym::T(plus), Sym::N(t)]); // 0
        b.production(e, vec![Sym::N(t)]); // 1
        b.production(t, vec![Sym::N(t), Sym::T(star), Sym::N(f)]); // 2
        b.production(t, vec![Sym::N(f)]); // 3
        b.production(f, vec![Sym::T(lp), Sym::N(e), Sym::T(rp)]); // 4
        b.production(f, vec![Sym::T(id)]); // 5
        b.start(e).build().unwrap()
    }

    fn reduces(events: &[ParseEvent<usize>]) -> Vec<u32> {
        events
            .iter()
            .filter_map(|e| match e {
                ParseEvent::Reduce { production, .. } => Some(production.0),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn right_parse_of_id_plus_id_star_id() {
        let g = dragon();
        let table = LalrTable::build(&g).unwrap();
        let parser = Parser::new(&table);
        let id = g.term_by_name("id").unwrap();
        let plus = g.term_by_name("+").unwrap();
        let star = g.term_by_name("*").unwrap();
        let tokens = [id, plus, id, star, id]
            .into_iter()
            .enumerate()
            .map(|(i, t)| (t, i));
        let events = parser.parse(tokens).unwrap();
        // The reverse rightmost derivation of id+id*id in grammar 4.1:
        // F->id, T->F, E->T, F->id, T->F, F->id, T->T*F, E->E+T
        assert_eq!(reduces(&events), vec![5, 3, 1, 5, 3, 5, 2, 0]);
    }

    #[test]
    fn shifts_appear_before_covering_reduces() {
        let g = dragon();
        let table = LalrTable::build(&g).unwrap();
        let parser = Parser::new(&table);
        let id = g.term_by_name("id").unwrap();
        let events = parser.parse([(id, 0usize)]).unwrap();
        assert!(matches!(events[0], ParseEvent::Shift { .. }));
        assert!(matches!(events[1], ParseEvent::Reduce { arity: 1, .. }));
        // id: F->id, T->F, E->T
        assert_eq!(reduces(&events), vec![5, 3, 1]);
    }

    #[test]
    fn nested_parens_parse() {
        let g = dragon();
        let table = LalrTable::build(&g).unwrap();
        let parser = Parser::new(&table);
        let id = g.term_by_name("id").unwrap();
        let lp = g.term_by_name("(").unwrap();
        let rp = g.term_by_name(")").unwrap();
        let toks = [lp, lp, id, rp, rp].into_iter().map(|t| (t, ()));
        assert!(parser.parse(toks).is_ok());
    }

    #[test]
    fn syntax_error_reports_expected_set() {
        let g = dragon();
        let table = LalrTable::build(&g).unwrap();
        let parser = Parser::new(&table);
        let plus = g.term_by_name("+").unwrap();
        let err = parser.parse([(plus, 0usize)]).unwrap_err();
        assert_eq!(err.at_token, 0);
        assert_eq!(err.found, "+");
        assert!(err.expected.contains(&"id".to_owned()));
        assert!(err.to_string().contains("syntax error"));
    }

    #[test]
    fn error_at_eof() {
        let g = dragon();
        let table = LalrTable::build(&g).unwrap();
        let parser = Parser::new(&table);
        let id = g.term_by_name("id").unwrap();
        let plus = g.term_by_name("+").unwrap();
        let err = parser.parse([(id, 0usize), (plus, 1usize)]).unwrap_err();
        assert_eq!(err.found, "<eof>");
    }

    #[test]
    fn empty_input_fails_for_nonnullable_start() {
        let g = dragon();
        let table = LalrTable::build(&g).unwrap();
        let parser = Parser::new(&table);
        let err = parser
            .parse(std::iter::empty::<(TermId, ())>())
            .unwrap_err();
        assert_eq!(err.found, "<eof>");
    }

    #[test]
    fn streaming_emits_same_events() {
        let g = dragon();
        let table = LalrTable::build(&g).unwrap();
        let parser = Parser::new(&table);
        let id = g.term_by_name("id").unwrap();
        let plus = g.term_by_name("+").unwrap();
        let toks: Vec<(TermId, usize)> = [id, plus, id]
            .into_iter()
            .enumerate()
            .map(|(i, t)| (t, i))
            .collect();
        let collected = parser.parse(toks.clone()).unwrap();
        let mut streamed = Vec::new();
        parser.parse_with(toks, |e| streamed.push(e)).unwrap();
        assert_eq!(collected, streamed);
    }
}
