//! LALR(1) lookaheads and the ACTION/GOTO tables.
//!
//! Lookaheads are computed with the classic "spontaneous generation and
//! propagation" algorithm (Aho–Sethi–Ullman Alg. 4.63): for every kernel
//! item, an LR(1) closure seeded with a dummy lookahead `#` discovers which
//! lookaheads are generated spontaneously at goto-successors and which
//! propagate; propagation then iterates to a fixed point. Reduce actions
//! are read off the LR(1) closure of each state's kernel with its final
//! lookahead sets.

use crate::first::{FirstSets, TermSet};
use crate::grammar::{Grammar, NonTermId, ProdId, Sym, TermId};
use crate::lr0::{Item, Lr0Automaton, StateId};
use std::collections::HashMap;
use std::fmt;

/// A parse action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Shift the terminal and move to the state.
    Shift(StateId),
    /// Reduce by the production.
    Reduce(ProdId),
    /// Accept the input.
    Accept,
}

/// An LALR conflict: two actions competing for one `(state, terminal)`
/// cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conflict {
    /// The state where the conflict occurs.
    pub state: StateId,
    /// The lookahead terminal (by name, for reporting).
    pub terminal: String,
    /// The action already in the cell (rendered).
    pub existing: String,
    /// The competing action (rendered).
    pub incoming: String,
    /// The items of the state, rendered for the report.
    pub items: Vec<String>,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "state {} on `{}`: {} vs {}",
            self.state, self.terminal, self.existing, self.incoming
        )?;
        for item in &self.items {
            writeln!(f, "    {}", item)?;
        }
        Ok(())
    }
}

/// Error from [`LalrTable::build`]: the grammar is not LALR(1).
#[derive(Clone, Debug)]
pub struct TableError {
    /// All conflicts found.
    pub conflicts: Vec<Conflict>,
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "grammar is not LALR(1): {} conflict(s)",
            self.conflicts.len()
        )?;
        for c in &self.conflicts {
            write!(f, "{}", c)?;
        }
        Ok(())
    }
}

impl std::error::Error for TableError {}

/// Lookahead set: terminals plus the dummy `#` used during propagation
/// discovery.
#[derive(Clone, Debug)]
struct LookSet {
    terms: TermSet,
    dummy: bool,
}

/// The compiled LALR(1) parse tables.
#[derive(Debug, Clone)]
pub struct LalrTable {
    grammar: Grammar,
    action: Vec<HashMap<TermId, Action>>,
    goto_nt: Vec<HashMap<NonTermId, StateId>>,
    num_states: usize,
}

impl LalrTable {
    /// Build LALR(1) tables for `g`.
    ///
    /// # Errors
    ///
    /// Returns [`TableError`] listing every shift/reduce and reduce/reduce
    /// conflict if the grammar is not LALR(1).
    pub fn build(g: &Grammar) -> Result<LalrTable, TableError> {
        let firsts = FirstSets::compute(g);
        let lr0 = Lr0Automaton::build(g);
        let n = lr0.len();

        // Index kernel items: (state, position-in-kernel) → slot.
        let mut slot_of: HashMap<(StateId, Item), usize> = HashMap::new();
        let mut slots: Vec<(StateId, Item)> = Vec::new();
        for (s, kernel) in lr0.kernels.iter().enumerate() {
            for &item in kernel {
                slot_of.insert((s as StateId, item), slots.len());
                slots.push((s as StateId, item));
            }
        }

        // Discover spontaneous lookaheads and propagation links.
        let mut la: Vec<TermSet> = (0..slots.len())
            .map(|_| TermSet::empty(g.num_terms()))
            .collect();
        let mut propagates: Vec<Vec<usize>> = vec![Vec::new(); slots.len()];

        for (slot, &(state, item)) in slots.iter().enumerate() {
            // LR(1) closure of {(item, #)}.
            let closure = lr1_closure(g, &firsts, &[(item, dummy_set(g))]);
            for (citem, look) in &closure {
                let Some(sym) = citem.next_sym(g) else {
                    continue;
                };
                let target_state = lr0.goto(state, sym).expect("goto exists for closure item");
                let target_item = citem.advanced();
                let target_slot = slot_of[&(target_state, target_item)];
                // Spontaneous lookaheads.
                la[target_slot].union_from(&look.terms);
                // Propagation link if # survived into this closure item.
                // A self-link (state goto-ing back into the same slot) is a
                // no-op for propagation.
                if look.dummy && target_slot != slot {
                    propagates[slot].push(target_slot);
                }
            }
        }

        // Initialize: end-of-input on the augmented start item.
        let start_slot = slot_of[&(
            0,
            Item {
                prod: g.aug_prod(),
                dot: 0,
            },
        )];
        la[start_slot].insert(g.eof());

        // Propagate to fixpoint.
        let mut changed = true;
        while changed {
            changed = false;
            #[allow(clippy::needless_range_loop)] // parallel-array indexing
            for slot in 0..slots.len() {
                for i in 0..propagates[slot].len() {
                    let target = propagates[slot][i];
                    let (src, dst) = split_two(&mut la, slot, target);
                    changed |= dst.union_from(src);
                }
            }
        }

        // Assemble actions.
        let mut action: Vec<HashMap<TermId, Action>> = vec![HashMap::new(); n];
        let mut goto_nt: Vec<HashMap<NonTermId, StateId>> = vec![HashMap::new(); n];
        let mut conflicts = Vec::new();

        for state in 0..n as StateId {
            // Shifts and gotos from the LR(0) edges.
            for (&sym, &target) in &lr0.gotos[state as usize] {
                match sym {
                    Sym::T(t) => {
                        insert_action(
                            g,
                            &lr0,
                            &mut action[state as usize],
                            &mut conflicts,
                            state,
                            t,
                            Action::Shift(target),
                        );
                    }
                    Sym::N(nt) => {
                        goto_nt[state as usize].insert(nt, target);
                    }
                }
            }
            // Reduces from the LR(1) closure of the kernel with final LA.
            let seeds: Vec<(Item, LookSet)> = lr0.kernels[state as usize]
                .iter()
                .map(|&item| {
                    let slot = slot_of[&(state, item)];
                    (
                        item,
                        LookSet {
                            terms: la[slot].clone(),
                            dummy: false,
                        },
                    )
                })
                .collect();
            let closure = lr1_closure(g, &firsts, &seeds);
            for (item, look) in &closure {
                if !item.is_complete(g) {
                    continue;
                }
                for t in look.terms.iter() {
                    let act = if item.prod == g.aug_prod() {
                        Action::Accept
                    } else {
                        Action::Reduce(item.prod)
                    };
                    insert_action(
                        g,
                        &lr0,
                        &mut action[state as usize],
                        &mut conflicts,
                        state,
                        t,
                        act,
                    );
                }
            }
        }

        if conflicts.is_empty() {
            Ok(LalrTable {
                grammar: g.clone(),
                action,
                goto_nt,
                num_states: n,
            })
        } else {
            Err(TableError { conflicts })
        }
    }

    /// The grammar these tables were built for.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// The action for `(state, terminal)`, if any.
    pub fn action(&self, state: StateId, t: TermId) -> Option<Action> {
        self.action[state as usize].get(&t).copied()
    }

    /// The goto for `(state, nonterminal)`, if any.
    pub fn goto(&self, state: StateId, nt: NonTermId) -> Option<StateId> {
        self.goto_nt[state as usize].get(&nt).copied()
    }

    /// Number of parser states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Terminals with an action in `state` (for error messages), by name.
    pub fn expected_in(&self, state: StateId) -> Vec<String> {
        let mut names: Vec<String> = self.action[state as usize]
            .keys()
            .map(|&t| self.grammar.term_name(t).to_owned())
            .collect();
        names.sort();
        names
    }

    /// Approximate size of the tables in bytes (cells × entry size), for
    /// overlay-1 code-size accounting.
    pub fn byte_size(&self) -> usize {
        let action_cells: usize = self.action.iter().map(|m| m.len()).sum();
        let goto_cells: usize = self.goto_nt.iter().map(|m| m.len()).sum();
        action_cells * 6 + goto_cells * 6
    }
}

fn dummy_set(g: &Grammar) -> LookSet {
    LookSet {
        terms: TermSet::empty(g.num_terms()),
        dummy: true,
    }
}

#[allow(clippy::too_many_arguments)]
fn insert_action(
    g: &Grammar,
    lr0: &Lr0Automaton,
    row: &mut HashMap<TermId, Action>,
    conflicts: &mut Vec<Conflict>,
    state: StateId,
    t: TermId,
    act: Action,
) {
    match row.get(&t) {
        None => {
            row.insert(t, act);
        }
        Some(&existing) if existing == act => {}
        Some(&existing) => {
            conflicts.push(Conflict {
                state,
                terminal: g.term_name(t).to_owned(),
                existing: render_action(g, existing),
                incoming: render_action(g, act),
                items: lr0.closure(g, state).iter().map(|i| i.display(g)).collect(),
            });
        }
    }
}

fn render_action(g: &Grammar, a: Action) -> String {
    match a {
        Action::Shift(s) => format!("shift to state {}", s),
        Action::Reduce(p) => format!("reduce {}", g.prod_display(p)),
        Action::Accept => "accept".to_owned(),
    }
}

/// LR(1) closure over items with lookahead sets.
fn lr1_closure(g: &Grammar, firsts: &FirstSets, seeds: &[(Item, LookSet)]) -> Vec<(Item, LookSet)> {
    let mut index: HashMap<Item, usize> = HashMap::new();
    let mut items: Vec<(Item, LookSet)> = Vec::new();
    for (item, look) in seeds {
        match index.get(item) {
            Some(&ix) => {
                let slot = &mut items[ix].1;
                slot.terms.union_from(&look.terms);
                slot.dummy |= look.dummy;
            }
            None => {
                index.insert(*item, items.len());
                items.push((*item, look.clone()));
            }
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..items.len() {
            let (item, look) = items[i].clone();
            let Some(Sym::N(nt)) = item.next_sym(g) else {
                continue;
            };
            // beta = what follows the crossed nonterminal.
            let rhs = &g.production(item.prod).rhs;
            let beta = &rhs[item.dot as usize + 1..];
            let (mut new_terms, beta_nullable) = firsts.first_of_string(beta);
            let mut new_dummy = false;
            if beta_nullable {
                new_terms.union_from(&look.terms);
                new_dummy = look.dummy;
            }
            for prod in g.productions_of(nt) {
                let sub = Item { prod, dot: 0 };
                match index.get(&sub) {
                    Some(&ix) => {
                        let slot = &mut items[ix].1;
                        let mut delta = slot.terms.union_from(&new_terms);
                        if new_dummy && !slot.dummy {
                            slot.dummy = true;
                            delta = true;
                        }
                        changed |= delta;
                    }
                    None => {
                        index.insert(sub, items.len());
                        items.push((
                            sub,
                            LookSet {
                                terms: new_terms.clone(),
                                dummy: new_dummy,
                            },
                        ));
                        changed = true;
                    }
                }
            }
        }
    }
    items
}

fn split_two<T>(v: &mut [T], a: usize, b: usize) -> (&T, &mut T) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;

    /// Dragon-book grammar 4.1: E -> E+T | T ; T -> T*F | F ; F -> (E) | id
    fn dragon() -> Grammar {
        let mut b = GrammarBuilder::new();
        let e = b.nonterminal("E");
        let t = b.nonterminal("T");
        let f = b.nonterminal("F");
        let plus = b.terminal("+");
        let star = b.terminal("*");
        let lp = b.terminal("(");
        let rp = b.terminal(")");
        let id = b.terminal("id");
        b.production(e, vec![Sym::N(e), Sym::T(plus), Sym::N(t)]);
        b.production(e, vec![Sym::N(t)]);
        b.production(t, vec![Sym::N(t), Sym::T(star), Sym::N(f)]);
        b.production(t, vec![Sym::N(f)]);
        b.production(f, vec![Sym::T(lp), Sym::N(e), Sym::T(rp)]);
        b.production(f, vec![Sym::T(id)]);
        b.start(e).build().unwrap()
    }

    /// The canonical LALR-but-not-SLR grammar (dragon 4.20):
    /// S -> L = R | R ;  L -> * R | id ;  R -> L
    fn lalr_not_slr() -> Grammar {
        let mut b = GrammarBuilder::new();
        let s = b.nonterminal("S");
        let l = b.nonterminal("L");
        let r = b.nonterminal("R");
        let eq = b.terminal("=");
        let star = b.terminal("*");
        let id = b.terminal("id");
        b.production(s, vec![Sym::N(l), Sym::T(eq), Sym::N(r)]);
        b.production(s, vec![Sym::N(r)]);
        b.production(l, vec![Sym::T(star), Sym::N(r)]);
        b.production(l, vec![Sym::T(id)]);
        b.production(r, vec![Sym::N(l)]);
        b.start(s).build().unwrap()
    }

    #[test]
    fn dragon_grammar_builds_without_conflicts() {
        let g = dragon();
        let table = LalrTable::build(&g).unwrap();
        assert_eq!(table.num_states(), 12);
    }

    #[test]
    fn lalr_but_not_slr_builds() {
        // SLR(1) has a shift/reduce conflict on '=' here; LALR(1) must not.
        let g = lalr_not_slr();
        assert!(LalrTable::build(&g).is_ok());
    }

    #[test]
    fn ambiguous_grammar_reports_conflicts() {
        // E -> E + E | id : classic shift/reduce ambiguity.
        let mut b = GrammarBuilder::new();
        let e = b.nonterminal("E");
        let plus = b.terminal("+");
        let id = b.terminal("id");
        b.production(e, vec![Sym::N(e), Sym::T(plus), Sym::N(e)]);
        b.production(e, vec![Sym::T(id)]);
        let g = b.start(e).build().unwrap();
        let err = LalrTable::build(&g).unwrap_err();
        assert!(!err.conflicts.is_empty());
        let text = err.to_string();
        assert!(text.contains("not LALR(1)"));
        assert!(text.contains("shift"), "report renders actions: {text}");
    }

    #[test]
    fn reduce_reduce_conflict_detected() {
        // S -> A | B ; A -> x ; B -> x
        let mut b = GrammarBuilder::new();
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        let bb = b.nonterminal("B");
        let x = b.terminal("x");
        b.production(s, vec![Sym::N(a)]);
        b.production(s, vec![Sym::N(bb)]);
        b.production(a, vec![Sym::T(x)]);
        b.production(bb, vec![Sym::T(x)]);
        let g = b.start(s).build().unwrap();
        let err = LalrTable::build(&g).unwrap_err();
        assert!(err
            .conflicts
            .iter()
            .any(|c| c.existing.contains("reduce") && c.incoming.contains("reduce")));
    }

    #[test]
    fn expected_in_lists_terminals() {
        let g = dragon();
        let table = LalrTable::build(&g).unwrap();
        let expected = table.expected_in(0);
        assert!(expected.contains(&"id".to_owned()));
        assert!(expected.contains(&"(".to_owned()));
        assert!(!expected.contains(&"+".to_owned()));
    }

    #[test]
    fn byte_size_positive() {
        let table = LalrTable::build(&dragon()).unwrap();
        assert!(table.byte_size() > 0);
    }

    #[test]
    fn epsilon_productions_reduce_on_lookahead() {
        // S -> A 'b' ; A -> ε | 'a'
        let mut b = GrammarBuilder::new();
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        let ta = b.terminal("a");
        let tb = b.terminal("b");
        b.production(s, vec![Sym::N(a), Sym::T(tb)]);
        b.production(a, vec![]);
        b.production(a, vec![Sym::T(ta)]);
        let g = b.start(s).build().unwrap();
        let table = LalrTable::build(&g).unwrap();
        // In state 0 on 'b' we must reduce A -> ε.
        let tb = g.term_by_name("b").unwrap();
        match table.action(0, tb) {
            Some(Action::Reduce(p)) => {
                assert_eq!(g.prod_display(p), "A -> <empty>");
            }
            other => panic!("expected reduce, got {:?}", other),
        }
    }
}
