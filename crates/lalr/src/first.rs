//! Nullable and FIRST-set computation.
//!
//! Standard fixed-point computation over the grammar; FIRST sets are stored
//! as bit vectors indexed by [`TermId`] so closure inner loops stay cheap.

use crate::grammar::{Grammar, NonTermId, Sym, TermId};

/// A set of terminals as a bit vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TermSet {
    bits: Vec<u64>,
}

impl TermSet {
    /// The empty set sized for `num_terms` terminals.
    pub fn empty(num_terms: usize) -> TermSet {
        TermSet {
            bits: vec![0; num_terms.div_ceil(64)],
        }
    }

    /// Insert `t`; returns true if newly added.
    pub fn insert(&mut self, t: TermId) -> bool {
        let (w, b) = (t.0 as usize / 64, t.0 as usize % 64);
        let old = self.bits[w];
        self.bits[w] |= 1 << b;
        self.bits[w] != old
    }

    /// Membership test.
    pub fn contains(&self, t: TermId) -> bool {
        self.bits[t.0 as usize / 64] & (1 << (t.0 as usize % 64)) != 0
    }

    /// Union `other` into `self`; returns true if anything changed.
    pub fn union_from(&mut self, other: &TermSet) -> bool {
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// Iterate members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = TermId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1 << b) != 0)
                .map(move |b| TermId((w * 64 + b) as u32))
        })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }
}

/// Precomputed nullable flags and FIRST sets for a grammar.
#[derive(Clone, Debug)]
pub struct FirstSets {
    nullable: Vec<bool>,
    first: Vec<TermSet>,
    num_terms: usize,
}

impl FirstSets {
    /// Compute nullable and FIRST for every nonterminal.
    pub fn compute(g: &Grammar) -> FirstSets {
        let nn = g.num_nonterms();
        let nt = g.num_terms();
        let mut nullable = vec![false; nn];
        let mut first: Vec<TermSet> = (0..nn).map(|_| TermSet::empty(nt)).collect();

        let mut changed = true;
        while changed {
            changed = false;
            for p in g.productions() {
                let lhs = p.lhs.0 as usize;
                // nullable
                if !nullable[lhs]
                    && p.rhs.iter().all(|s| match s {
                        Sym::T(_) => false,
                        Sym::N(n) => nullable[n.0 as usize],
                    })
                {
                    nullable[lhs] = true;
                    changed = true;
                }
                // first
                for s in &p.rhs {
                    match s {
                        Sym::T(t) => {
                            changed |= first[lhs].insert(*t);
                            break;
                        }
                        Sym::N(n) => {
                            if *n != p.lhs {
                                let (a, b) = split_two(&mut first, lhs, n.0 as usize);
                                changed |= a.union_from(b);
                            }
                            if !nullable[n.0 as usize] {
                                break;
                            }
                        }
                    }
                }
            }
        }
        FirstSets {
            nullable,
            first,
            num_terms: nt,
        }
    }

    /// Whether nonterminal `n` derives ε.
    pub fn nullable(&self, n: NonTermId) -> bool {
        self.nullable[n.0 as usize]
    }

    /// FIRST set of nonterminal `n`.
    pub fn first(&self, n: NonTermId) -> &TermSet {
        &self.first[n.0 as usize]
    }

    /// FIRST of a symbol string `syms`, returned together with whether the
    /// whole string is nullable.
    pub fn first_of_string(&self, syms: &[Sym]) -> (TermSet, bool) {
        let mut out = TermSet::empty(self.num_terms);
        for s in syms {
            match s {
                Sym::T(t) => {
                    out.insert(*t);
                    return (out, false);
                }
                Sym::N(n) => {
                    out.union_from(self.first(*n));
                    if !self.nullable(*n) {
                        return (out, false);
                    }
                }
            }
        }
        (out, true)
    }
}

/// Borrow two distinct elements of a slice mutably/immutably.
fn split_two(v: &mut [TermSet], a: usize, b: usize) -> (&mut TermSet, &TermSet) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;

    /// E -> T E' ; E' -> '+' T E' | ε ; T -> 'id'
    fn expr_grammar() -> Grammar {
        let mut b = GrammarBuilder::new();
        let e = b.nonterminal("E");
        let ep = b.nonterminal("Ep");
        let t = b.nonterminal("T");
        let plus = b.terminal("+");
        let id = b.terminal("id");
        b.production(e, vec![Sym::N(t), Sym::N(ep)]);
        b.production(ep, vec![Sym::T(plus), Sym::N(t), Sym::N(ep)]);
        b.production(ep, vec![]);
        b.production(t, vec![Sym::T(id)]);
        b.start(e).build().unwrap()
    }

    #[test]
    fn nullable_detects_epsilon_chains() {
        let g = expr_grammar();
        let f = FirstSets::compute(&g);
        let ep = g.nonterm_by_name("Ep").unwrap();
        let e = g.nonterm_by_name("E").unwrap();
        assert!(f.nullable(ep));
        assert!(!f.nullable(e));
    }

    #[test]
    fn first_sets_are_classic() {
        let g = expr_grammar();
        let f = FirstSets::compute(&g);
        let id = g.term_by_name("id").unwrap();
        let plus = g.term_by_name("+").unwrap();
        let e = g.nonterm_by_name("E").unwrap();
        let ep = g.nonterm_by_name("Ep").unwrap();
        assert!(f.first(e).contains(id));
        assert!(!f.first(e).contains(plus));
        assert!(f.first(ep).contains(plus));
        assert_eq!(f.first(ep).len(), 1);
    }

    #[test]
    fn first_of_string_respects_nullability() {
        let g = expr_grammar();
        let f = FirstSets::compute(&g);
        let ep = g.nonterm_by_name("Ep").unwrap();
        let id = g.term_by_name("id").unwrap();
        let plus = g.term_by_name("+").unwrap();

        let (set, nullable) = f.first_of_string(&[Sym::N(ep), Sym::T(id)]);
        assert!(set.contains(plus));
        assert!(set.contains(id), "id visible through nullable Ep");
        assert!(!nullable);

        let (set, nullable) = f.first_of_string(&[Sym::N(ep)]);
        assert!(set.contains(plus));
        assert!(nullable);

        let (set, nullable) = f.first_of_string(&[]);
        assert!(set.is_empty());
        assert!(nullable);
    }

    #[test]
    fn termset_basic_ops() {
        let mut s = TermSet::empty(70);
        assert!(s.insert(TermId(0)));
        assert!(s.insert(TermId(69)));
        assert!(!s.insert(TermId(69)));
        assert!(s.contains(TermId(69)));
        assert_eq!(s.len(), 2);
        let collected: Vec<u32> = s.iter().map(|t| t.0).collect();
        assert_eq!(collected, vec![0, 69]);
        let mut t = TermSet::empty(70);
        assert!(t.union_from(&s));
        assert!(!t.union_from(&s));
    }

    #[test]
    fn left_recursive_first_terminates() {
        // S -> S 'a' | 'b'
        let mut b = GrammarBuilder::new();
        let s = b.nonterminal("S");
        let a = b.terminal("a");
        let bb = b.terminal("b");
        b.production(s, vec![Sym::N(s), Sym::T(a)]);
        b.production(s, vec![Sym::T(bb)]);
        let g = b.start(s).build().unwrap();
        let f = FirstSets::compute(&g);
        let s = g.nonterm_by_name("S").unwrap();
        assert!(f.first(s).contains(g.term_by_name("b").unwrap()));
        assert!(!f.first(s).contains(g.term_by_name("a").unwrap()));
    }
}
