//! The recovery runtime end to end: retry-with-backoff over transient
//! faults, pass-boundary checkpointing with resume, walk-back past
//! corrupted checkpoints, cooperative deadlines, and panic-isolated
//! batch supervision.

use linguist_ag::analysis::{Analysis, Config};
use linguist_ag::expr::{BinOp, Expr};
use linguist_ag::grammar::AgBuilder;
use linguist_ag::ids::{AttrId, AttrOcc, ProdId, SymbolId};
use linguist_ag::passes::{Direction, PassConfig};
use linguist_eval::aptfile::{boundary_path, AptError, FaultSpec, FaultTarget};
use linguist_eval::batch::{BatchEvaluator, FailureKind};
use linguist_eval::funcs::{FuncError, Funcs};
use linguist_eval::machine::{
    evaluate, evaluate_resumable, EvalError, EvalOptions, Evaluation, RetryPolicy, Strategy,
};
use linguist_eval::tree::PTree;
use linguist_eval::value::Value;
use std::time::Duration;

/// S -> S x | x, S.V = sum of the leaves' OBJ values; the base leaf goes
/// through the external `Checked` function (a panic trigger in the batch
/// tests, the identity everywhere else). One pass.
fn leaf_sum_analysis() -> (Analysis, SymbolId, AttrId) {
    let mut b = AgBuilder::new();
    let s = b.nonterminal("S");
    let v = b.synthesized(s, "V", "int");
    let x = b.terminal("x");
    let obj = b.intrinsic(x, "OBJ", "int");
    let checked = b.name("Checked");
    let p0 = b.production(s, vec![s, x], None);
    b.rule(
        p0,
        vec![AttrOcc::lhs(v)],
        Expr::binop(
            BinOp::Add,
            Expr::Occ(AttrOcc::rhs(0, v)),
            Expr::Occ(AttrOcc::rhs(1, obj)),
        ),
    );
    let p1 = b.production(s, vec![x], None);
    b.rule(
        p1,
        vec![AttrOcc::lhs(v)],
        Expr::Call {
            func: checked,
            args: vec![Expr::Occ(AttrOcc::rhs(0, obj))],
        },
    );
    b.start(s);
    let analysis = Analysis::run(b.build().unwrap(), &Config::default()).unwrap();
    (analysis, x, obj)
}

/// Standard functions plus `Checked`: the identity on ints, except that
/// the poison value 13 panics — a deterministic stand-in for a buggy
/// user-registered semantic function.
fn funcs_with_checked() -> Funcs {
    let mut f = Funcs::standard();
    f.register("Checked", |args: &[Value]| match args {
        [Value::Int(13)] => panic!("boom: semantic function rejected 13"),
        [v] => Ok(v.clone()),
        _ => Err(FuncError::Arity {
            name: "Checked".to_owned(),
            expected: 1,
            got: args.len(),
        }),
    });
    f
}

fn chain_tree(x: SymbolId, obj: AttrId, base: i64, extra: i64) -> PTree {
    let leaf = |n| PTree::leaf(x, vec![(obj, Value::Int(n))]);
    let mut t = PTree::node(ProdId(1), vec![leaf(base)]);
    for n in 2..=extra {
        t = PTree::node(ProdId(0), vec![t, leaf(n)]);
    }
    t
}

/// S -> A B with A.I = B.V and A.V = A.I + 100: a genuinely two-pass
/// grammar (B.V flows right-to-left in pass 2 of a left-to-right-first
/// analysis), so checkpoints at boundary 1 carry real cross-pass state.
fn two_pass_setup() -> (Analysis, PTree) {
    let mut b = AgBuilder::new();
    let s = b.nonterminal("S");
    let sv = b.synthesized(s, "V", "int");
    let a = b.nonterminal("A");
    let ai = b.inherited(a, "I", "int");
    let av = b.synthesized(a, "V", "int");
    let bb = b.nonterminal("B");
    let bv = b.synthesized(bb, "V", "int");
    let x = b.terminal("x");
    let obj = b.intrinsic(x, "OBJ", "int");
    let p0 = b.production(s, vec![a, bb], None);
    b.rule(
        p0,
        vec![AttrOcc::rhs(0, ai)],
        Expr::Occ(AttrOcc::rhs(1, bv)),
    );
    b.rule(p0, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(0, av)));
    let p1 = b.production(a, vec![x], None);
    b.rule(
        p1,
        vec![AttrOcc::lhs(av)],
        Expr::binop(BinOp::Add, Expr::Occ(AttrOcc::lhs(ai)), Expr::Int(100)),
    );
    let p2 = b.production(bb, vec![x], None);
    b.rule(p2, vec![AttrOcc::lhs(bv)], Expr::Occ(AttrOcc::rhs(0, obj)));
    b.start(s);
    let analysis = Analysis::run(
        b.build().unwrap(),
        &Config {
            pass: PassConfig {
                first_direction: Direction::LeftToRight,
                max_passes: 8,
            },
            ..Config::default()
        },
    )
    .unwrap();
    assert_eq!(analysis.passes.num_passes(), 2);
    let g = &analysis.grammar;
    let x = g.symbol_by_name("x").unwrap();
    let obj = g.attr_by_name(x, "OBJ").unwrap();
    let tree = PTree::node(
        ProdId(0),
        vec![
            PTree::node(ProdId(1), vec![PTree::leaf(x, vec![(obj, Value::Int(0))])]),
            PTree::node(ProdId(2), vec![PTree::leaf(x, vec![(obj, Value::Int(7))])]),
        ],
    );
    (analysis, tree)
}

fn prefix_opts() -> EvalOptions {
    EvalOptions {
        strategy: Strategy::Prefix,
        ..EvalOptions::default()
    }
}

/// Canonical byte encoding of an evaluation's outputs, for the
/// byte-identical acceptance criterion.
fn encoded_outputs(eval: &Evaluation) -> Vec<u8> {
    let mut buf = Vec::new();
    for (a, v) in &eval.outputs {
        buf.extend_from_slice(&a.0.to_le_bytes());
        v.encode(&mut buf);
    }
    buf
}

/// A unique checkpoint directory under the target dir (persistent across
/// the simulated crash *within* the test, removed at the end).
struct Ckpt(std::path::PathBuf);
impl Ckpt {
    fn new(name: &str) -> Ckpt {
        let dir = std::env::temp_dir().join(format!(
            "linguist86-recovery-{}-{}",
            std::process::id(),
            name
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Ckpt(dir)
    }
    fn path(&self) -> &std::path::Path {
        &self.0
    }
}
impl Drop for Ckpt {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn transient_fault_recovers_under_retry_policy() {
    let (analysis, x, obj) = leaf_sum_analysis();
    let tree = chain_tree(x, obj, 1, 20);
    let opts = EvalOptions {
        fault: Some(FaultSpec::transient(1, FaultTarget::Write, 3, 2)),
        retry: RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
        },
        ..EvalOptions::default()
    };
    let eval = evaluate(&analysis, &funcs_with_checked(), &tree, &opts)
        .expect("two transient faults within three attempts must recover");
    assert_eq!(eval.output(&analysis, "V"), Some(&Value::Int(210)));
    assert_eq!(eval.stats.retries, 2, "both shots should cost one retry");
}

#[test]
fn retry_exhaustion_surfaces_the_root_io_error_with_context() {
    let (analysis, x, obj) = leaf_sum_analysis();
    let tree = chain_tree(x, obj, 1, 20);
    let opts = EvalOptions {
        fault: Some(FaultSpec::transient(1, FaultTarget::Write, 3, 5)),
        retry: RetryPolicy {
            max_attempts: 2,
            backoff: Duration::ZERO,
        },
        ..EvalOptions::default()
    };
    match evaluate(&analysis, &funcs_with_checked(), &tree, &opts) {
        Err(EvalError::Apt(a)) => {
            assert!(matches!(a.root(), AptError::Io(_)));
            let msg = a.to_string();
            assert!(msg.contains("pass 1"), "pass context missing: {}", msg);
        }
        other => panic!("five shots must exhaust two attempts: {:?}", other),
    }
}

#[test]
fn corrupt_streams_are_not_retried() {
    // Retrying a deterministic failure would just burn the budget: a
    // poisoned tree fails on attempt one even with retries configured.
    let (analysis, x, obj) = leaf_sum_analysis();
    let tree = chain_tree(x, obj, 13, 5);
    let opts = EvalOptions {
        retry: RetryPolicy {
            max_attempts: 5,
            backoff: Duration::ZERO,
        },
        ..EvalOptions::default()
    };
    // The panic from Checked(13) unwinds out of `evaluate` (supervision
    // lives in the batch layer); catch it here to inspect retry state.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        evaluate(&analysis, &funcs_with_checked(), &tree, &opts)
    }));
    assert!(result.is_err(), "Checked(13) must panic");
}

#[test]
fn fault_at_every_pass_boundary_resumes_byte_identical() {
    let (analysis, tree) = two_pass_setup();
    let funcs = Funcs::standard();

    // Uninterrupted references, on both backings, must agree bytewise.
    let reference = evaluate(&analysis, &funcs, &tree, &prefix_opts()).unwrap();
    let mem = evaluate(
        &analysis,
        &funcs,
        &tree,
        &EvalOptions {
            backing: linguist_eval::machine::Backing::Memory,
            ..prefix_opts()
        },
    )
    .unwrap();
    assert_eq!(reference.output(&analysis, "V"), Some(&Value::Int(107)));
    assert_eq!(encoded_outputs(&reference), encoded_outputs(&mem));

    for fault_pass in 0u16..=2 {
        let ckpt = Ckpt::new(&format!("faultpass{}", fault_pass));
        let opts = EvalOptions {
            fault: Some(FaultSpec::new(fault_pass, FaultTarget::Write, 1)),
            ..prefix_opts()
        };
        // The "crash": a one-shot fault with no retry budget kills the
        // checkpointed run at pass `fault_pass`.
        let crash = evaluate_resumable(&analysis, &funcs, &tree, &opts, ckpt.path());
        assert!(crash.is_err(), "fault at pass {} must fire", fault_pass);

        let resumed = match Evaluation::resume(&analysis, &funcs, &prefix_opts(), ckpt.path()) {
            Ok(eval) => {
                // A fault at pass k leaves boundary k-1 as the newest
                // valid checkpoint.
                assert_eq!(
                    eval.stats.resumed_from,
                    Some(fault_pass - 1),
                    "resume point after fault at pass {}",
                    fault_pass
                );
                eval
            }
            Err(_) if fault_pass == 0 => {
                // Nothing was checkpointed before the crash; the caller
                // falls back to a fresh checkpointed run with the tree.
                evaluate_resumable(&analysis, &funcs, &tree, &prefix_opts(), ckpt.path()).unwrap()
            }
            Err(e) => panic!("resume after fault at pass {} failed: {}", fault_pass, e),
        };
        assert_eq!(
            encoded_outputs(&resumed),
            encoded_outputs(&reference),
            "resumed output after a pass-{} crash must be byte-identical",
            fault_pass
        );
    }
}

#[test]
fn completed_checkpoint_resumes_by_rerunning_only_the_final_pass() {
    let (analysis, tree) = two_pass_setup();
    let funcs = Funcs::standard();
    let ckpt = Ckpt::new("complete");
    let full = evaluate_resumable(&analysis, &funcs, &tree, &prefix_opts(), ckpt.path()).unwrap();
    assert_eq!(full.stats.passes.len(), 2);

    let again = Evaluation::resume(&analysis, &funcs, &prefix_opts(), ckpt.path()).unwrap();
    assert_eq!(encoded_outputs(&again), encoded_outputs(&full));
    // Root outputs live only in the machine, so the final pass re-runs
    // from boundary 1; passes 1..=1 are not repeated.
    assert_eq!(again.stats.resumed_from, Some(1));
    assert_eq!(again.stats.passes.len(), 1);
}

#[test]
fn corrupted_newest_checkpoint_walks_back_to_an_earlier_one() {
    let (analysis, tree) = two_pass_setup();
    let funcs = Funcs::standard();
    let ckpt = Ckpt::new("walkback");
    let full = evaluate_resumable(&analysis, &funcs, &tree, &prefix_opts(), ckpt.path()).unwrap();

    // Flip one byte in the newest resumable boundary (1): its manifest
    // entry no longer matches, so resume must fall back to boundary 0
    // and re-run both passes — same bytes out.
    let b1 = boundary_path(ckpt.path(), 1);
    let mut data = std::fs::read(&b1).unwrap();
    let mid = data.len() / 2;
    data[mid] ^= 0xFF;
    std::fs::write(&b1, &data).unwrap();

    let resumed = Evaluation::resume(&analysis, &funcs, &prefix_opts(), ckpt.path()).unwrap();
    assert_eq!(resumed.stats.resumed_from, Some(0));
    assert_eq!(resumed.stats.passes.len(), 2);
    assert_eq!(encoded_outputs(&resumed), encoded_outputs(&full));
}

#[test]
fn deleted_checkpoint_files_walk_back_one_at_a_time() {
    // The walk-back must survive *missing* boundary files, not only
    // corrupted ones: deleting boundary k makes its manifest entry
    // unverifiable (`file_summary` errors instead of mismatching), and
    // resume must fall back to the newest surviving boundary with
    // byte-identical output.
    let (analysis, tree) = two_pass_setup();
    let funcs = Funcs::standard();

    for deleted in 0u16..=1 {
        let ckpt = Ckpt::new(&format!("delete{}", deleted));
        let full =
            evaluate_resumable(&analysis, &funcs, &tree, &prefix_opts(), ckpt.path()).unwrap();
        std::fs::remove_file(boundary_path(ckpt.path(), deleted)).unwrap();

        let resumed = Evaluation::resume(&analysis, &funcs, &prefix_opts(), ckpt.path()).unwrap();
        // Deleting 1 forces the walk back to 0; deleting 0 leaves the
        // newer boundary 1 as the (still valid) resume point.
        let expect_from = if deleted == 1 { 0 } else { 1 };
        assert_eq!(
            resumed.stats.resumed_from,
            Some(expect_from),
            "resume point after deleting boundary {}",
            deleted
        );
        assert_eq!(
            resumed.stats.passes.len(),
            (2 - expect_from) as usize,
            "only the passes after boundary {} re-run",
            expect_from
        );
        assert_eq!(
            encoded_outputs(&resumed),
            encoded_outputs(&full),
            "byte-identical output after deleting boundary {}",
            deleted
        );
    }
}

#[test]
fn deleting_every_checkpoint_file_fails_typed_then_fresh_run_recovers() {
    let (analysis, tree) = two_pass_setup();
    let funcs = Funcs::standard();
    let ckpt = Ckpt::new("deleteall");
    let full = evaluate_resumable(&analysis, &funcs, &tree, &prefix_opts(), ckpt.path()).unwrap();

    for k in 0u16..=1 {
        std::fs::remove_file(boundary_path(ckpt.path(), k)).unwrap();
    }
    // The manifest survives but no boundary it records exists: resume
    // (tree-free, so nothing to restart from) must fail typed rather
    // than fabricate output.
    let err = Evaluation::resume(&analysis, &funcs, &prefix_opts(), ckpt.path())
        .expect_err("no boundary file can validate");
    assert!(
        matches!(err, EvalError::Corrupt(_)),
        "expected a corrupt-checkpoint error, got {:?}",
        err
    );
    // A caller holding the tree falls back to a fresh checkpointed run
    // in the same directory — same bytes out, checkpoints rebuilt.
    let fresh = evaluate_resumable(&analysis, &funcs, &tree, &prefix_opts(), ckpt.path()).unwrap();
    assert_eq!(encoded_outputs(&fresh), encoded_outputs(&full));
    let again = Evaluation::resume(&analysis, &funcs, &prefix_opts(), ckpt.path()).unwrap();
    assert_eq!(encoded_outputs(&again), encoded_outputs(&full));
}

#[test]
fn resume_without_any_checkpoint_is_a_typed_error() {
    let (analysis, _) = two_pass_setup();
    let ckpt = Ckpt::new("empty");
    std::fs::create_dir_all(ckpt.path()).unwrap();
    match Evaluation::resume(&analysis, &Funcs::standard(), &prefix_opts(), ckpt.path()) {
        Err(EvalError::Manifest(e)) => assert!(e.is_missing()),
        other => panic!("expected a missing-manifest error, got {:?}", other),
    }
}

#[test]
fn zero_deadline_fails_with_a_typed_deadline_error() {
    let (analysis, x, obj) = leaf_sum_analysis();
    let tree = chain_tree(x, obj, 1, 5);
    let opts = EvalOptions {
        deadline: Some(Duration::ZERO),
        ..EvalOptions::default()
    };
    match evaluate(&analysis, &funcs_with_checked(), &tree, &opts) {
        Err(EvalError::Deadline { limit }) => assert_eq!(limit, Duration::ZERO),
        other => panic!("expected a deadline error, got {:?}", other),
    }
}

#[test]
fn eight_job_batch_survives_one_panicking_job() {
    // The focused slot.expect regression: before supervision, the panic
    // below unwound through a worker thread and the coordinator died on
    // its empty result slot, killing all eight jobs.
    let (analysis, x, obj) = leaf_sum_analysis();
    let funcs = funcs_with_checked();
    let trees: Vec<PTree> = (1..=8)
        .map(|i| chain_tree(x, obj, if i == 3 { 13 } else { i }, 10))
        .collect();
    let outcome = BatchEvaluator::new(8).run(&analysis, &funcs, &trees);

    assert_eq!(outcome.stats.jobs, 8);
    assert_eq!(outcome.stats.failed, 1, "only the poisoned job fails");
    assert_eq!(outcome.stats.panicked, 1);
    let failure = &outcome.stats.failures[0];
    assert_eq!(failure.job, 2, "job index of the poisoned tree");
    assert_eq!(failure.kind, FailureKind::Panicked);
    assert!(
        failure.message.contains("boom"),
        "panic message should survive: {}",
        failure.message
    );
    for (i, result) in outcome.results.iter().enumerate() {
        let base = (i as i64) + 1;
        if base == 3 {
            assert!(matches!(result, Err(EvalError::Panicked(_))));
        } else {
            let expect = base + (2..=10).sum::<i64>();
            assert_eq!(
                result.as_ref().unwrap().output(&analysis, "V"),
                Some(&Value::Int(expect)),
                "sibling job {} must be unaffected",
                i
            );
        }
    }
}

#[test]
fn acceptance_batch_with_panic_and_transient_fault() {
    // The ISSUE acceptance scenario: an 8-job batch where one job
    // panics and one draws a transient one-shot I/O fault. With a
    // 2-attempt retry policy the faulted job recovers; the panicking job
    // fails typed; the other counters stay exact.
    let (analysis, x, obj) = leaf_sum_analysis();
    let funcs = funcs_with_checked();
    let trees: Vec<PTree> = (1..=8)
        .map(|i| chain_tree(x, obj, if i == 5 { 13 } else { i }, 12))
        .collect();
    // The panicking job dies at its first semantic function, before it
    // writes a single pass-1 record — so the fault's one shot is always
    // consumed (and recovered) by a healthy job.
    let fault = FaultSpec::transient(1, FaultTarget::Write, 2, 1);
    let opts = EvalOptions {
        fault: Some(fault.clone()),
        retry: RetryPolicy {
            max_attempts: 2,
            backoff: Duration::from_millis(1),
        },
        ..EvalOptions::default()
    };
    let outcome = BatchEvaluator::with_options(8, opts).run(&analysis, &funcs, &trees);

    assert!(!fault.is_armed(), "the transient fault never fired");
    assert_eq!(outcome.stats.jobs, 8);
    assert_eq!(outcome.stats.failed, 1, "only the panicking job may fail");
    assert_eq!(outcome.stats.panicked, 1);
    assert_eq!(outcome.stats.retried, 1, "one pass retry across the batch");
    assert_eq!(outcome.stats.recovered, 1, "one job recovered via retry");
    assert_eq!(outcome.stats.failures[0].kind, FailureKind::Panicked);
    let ok = outcome.results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(ok, 7, "7+ successes with no coordinator panic");
}
