//! Fault injection: a mid-pass intermediate-file I/O failure must
//! surface as a typed per-job error — never a panic — and must not
//! poison sibling jobs sharing the batch worker pool.

use linguist_ag::analysis::{Analysis, Config};
use linguist_ag::expr::{BinOp, Expr};
use linguist_ag::grammar::AgBuilder;
use linguist_ag::ids::{AttrId, AttrOcc, ProdId, SymbolId};
use linguist_eval::aptfile::{AptError, FaultSpec, FaultTarget};
use linguist_eval::batch::{BatchEvaluator, FailureKind};
use linguist_eval::funcs::Funcs;
use linguist_eval::machine::{evaluate, EvalError, EvalOptions};
use linguist_eval::tree::PTree;
use linguist_eval::value::Value;

/// S -> S x | x, S.V = sum of the leaves' OBJ values.
fn leaf_sum_analysis() -> (Analysis, SymbolId, AttrId) {
    let mut b = AgBuilder::new();
    let s = b.nonterminal("S");
    let v = b.synthesized(s, "V", "int");
    let x = b.terminal("x");
    let obj = b.intrinsic(x, "OBJ", "int");
    let p0 = b.production(s, vec![s, x], None);
    b.rule(
        p0,
        vec![AttrOcc::lhs(v)],
        Expr::binop(
            BinOp::Add,
            Expr::Occ(AttrOcc::rhs(0, v)),
            Expr::Occ(AttrOcc::rhs(1, obj)),
        ),
    );
    let p1 = b.production(s, vec![x], None);
    b.rule(p1, vec![AttrOcc::lhs(v)], Expr::Occ(AttrOcc::rhs(0, obj)));
    b.start(s);
    let analysis = Analysis::run(b.build().unwrap(), &Config::default()).unwrap();
    (analysis, x, obj)
}

fn chain_tree(x: SymbolId, obj: AttrId, leaves: i64) -> PTree {
    let leaf = |n| PTree::leaf(x, vec![(obj, Value::Int(n))]);
    let mut t = PTree::node(ProdId(1), vec![leaf(1)]);
    for n in 2..=leaves {
        t = PTree::node(ProdId(0), vec![t, leaf(n)]);
    }
    t
}

#[test]
fn single_eval_write_fault_is_a_typed_io_error() {
    let (analysis, x, obj) = leaf_sum_analysis();
    let tree = chain_tree(x, obj, 20);
    let opts = EvalOptions {
        fault: Some(FaultSpec::new(1, FaultTarget::Write, 5)),
        ..EvalOptions::default()
    };
    match evaluate(&analysis, &Funcs::standard(), &tree, &opts) {
        // The error carries the boundary-file path and pass as context;
        // the root cause stays a typed I/O error.
        Err(EvalError::Apt(a)) if matches!(a.root(), AptError::Io(_)) => {
            let msg = a.to_string();
            assert!(
                msg.contains("pass 1") && msg.contains("boundary_1.apt"),
                "error should name the pass and boundary file: {}",
                msg
            );
        }
        other => panic!("expected a typed I/O error, got {:?}", other),
    }
}

#[test]
fn single_eval_read_fault_is_a_typed_io_error() {
    let (analysis, x, obj) = leaf_sum_analysis();
    let tree = chain_tree(x, obj, 20);
    let opts = EvalOptions {
        fault: Some(FaultSpec::new(1, FaultTarget::Read, 5)),
        ..EvalOptions::default()
    };
    match evaluate(&analysis, &Funcs::standard(), &tree, &opts) {
        Err(EvalError::Apt(a)) if matches!(a.root(), AptError::Io(_)) => {
            let msg = a.to_string();
            assert!(
                msg.contains("pass 1") && msg.contains("boundary_0.apt"),
                "error should name the pass and the faulted input file: {}",
                msg
            );
        }
        other => panic!("expected a typed I/O error, got {:?}", other),
    }
}

#[test]
fn one_faulted_job_does_not_poison_an_eight_worker_batch() {
    let (analysis, x, obj) = leaf_sum_analysis();
    const JOBS: i64 = 24;
    let trees: Vec<PTree> = (1..=JOBS).map(|n| chain_tree(x, obj, 10 + n)).collect();

    // The fault spec is cloned into every worker, but the shared arming
    // flag fires it exactly once — so exactly one job of the batch dies
    // mid-pass, and which one is a scheduling accident.
    let fault = FaultSpec::new(1, FaultTarget::Write, 3);
    let opts = EvalOptions {
        fault: Some(fault.clone()),
        profile: true,
        ..EvalOptions::default()
    };
    let batch = BatchEvaluator::with_options(8, opts);
    let outcome = batch.run(&analysis, &Funcs::standard(), &trees);

    assert!(!fault.is_armed(), "the injected fault never fired");
    assert_eq!(outcome.stats.jobs, JOBS as usize);
    assert_eq!(outcome.stats.failed, 1, "exactly one job must fail");
    assert_eq!(outcome.stats.failures.len(), 1);
    let failure = &outcome.stats.failures[0];
    assert_eq!(failure.kind, FailureKind::Io);
    assert!(
        failure.message.contains("injected"),
        "message should identify the injected fault: {}",
        failure.message
    );

    // Every sibling completed with the right answer.
    let mut ok = 0;
    for (i, result) in outcome.results.iter().enumerate() {
        let leaves = 10 + (i as i64) + 1;
        match result {
            Ok(eval) => {
                let expect = leaves * (leaves + 1) / 2;
                assert_eq!(
                    eval.output(&analysis, "V"),
                    Some(&Value::Int(expect)),
                    "job {} answer",
                    i
                );
                ok += 1;
            }
            Err(e) => assert_eq!(i, failure.job, "unexpected failure in job {}: {}", i, e),
        }
    }
    assert_eq!(ok, JOBS as usize - 1);

    // The aggregated profile covers only the survivors: every pass-1 row
    // read exactly what the survivors' initial files held.
    let metrics = outcome.stats.metrics.as_ref().expect("profiled batch");
    assert_eq!(metrics.passes.len(), 1);
    assert_eq!(metrics.passes[0].records_read, metrics.initial_records);
}
