//! Integration tests for the alternating-pass machine: multi-pass
//! evaluation, both §II bootstrap strategies, the static-subsumption
//! global protocol, and the memory-residency story.

use linguist_ag::analysis::{Analysis, Config};
use linguist_ag::expr::{BinOp, Expr};
use linguist_ag::grammar::{AgBuilder, Grammar};
use linguist_ag::ids::{AttrOcc, ProdId};
use linguist_ag::passes::{Direction, PassConfig};
use linguist_eval::funcs::Funcs;
use linguist_eval::machine::{evaluate, EvalOptions, Strategy};
use linguist_eval::tree::PTree;
use linguist_eval::value::Value;

fn config(first: Direction) -> Config {
    Config {
        pass: PassConfig {
            first_direction: first,
            max_passes: 8,
        },
        ..Config::default()
    }
}

fn options(strategy: Strategy) -> EvalOptions {
    EvalOptions {
        strategy,
        ..EvalOptions::default()
    }
}

/// S -> S x | x with S.V summing leaf OBJ values (single pass).
fn sum_grammar() -> Grammar {
    let mut b = AgBuilder::new();
    let s = b.nonterminal("S");
    let v = b.synthesized(s, "V", "int");
    let x = b.terminal("x");
    let obj = b.intrinsic(x, "OBJ", "int");
    let p0 = b.production(s, vec![s, x], None);
    b.rule(
        p0,
        vec![AttrOcc::lhs(v)],
        Expr::binop(
            BinOp::Add,
            Expr::Occ(AttrOcc::rhs(0, v)),
            Expr::Occ(AttrOcc::rhs(1, obj)),
        ),
    );
    let p1 = b.production(s, vec![x], None);
    b.rule(p1, vec![AttrOcc::lhs(v)], Expr::Occ(AttrOcc::rhs(0, obj)));
    b.start(s);
    b.build().unwrap()
}

fn chain_tree(g: &Grammar, values: &[i64]) -> PTree {
    let x = g.symbol_by_name("x").unwrap();
    let obj = g.attr_by_name(x, "OBJ").unwrap();
    let leaf = |n: i64| PTree::leaf(x, vec![(obj, Value::Int(n))]);
    let mut t = PTree::node(ProdId(1), vec![leaf(values[0])]);
    for &v in &values[1..] {
        t = PTree::node(ProdId(0), vec![t, leaf(v)]);
    }
    t
}

#[test]
fn sums_leaves_bottom_up() {
    let analysis = Analysis::run(sum_grammar(), &config(Direction::RightToLeft)).unwrap();
    let tree = chain_tree(&analysis.grammar, &[1, 2, 3, 4, 5]);
    let result = evaluate(
        &analysis,
        &Funcs::standard(),
        &tree,
        &options(Strategy::BottomUp),
    )
    .unwrap();
    assert_eq!(result.output(&analysis, "V"), Some(&Value::Int(15)));
    assert_eq!(result.stats.passes.len(), 1);
}

#[test]
fn both_strategies_agree() {
    // E14: strategy 1 (bottom-up, first pass R-L) and strategy 2 (prefix,
    // first pass L-R) produce identical results.
    let g1 = sum_grammar();
    let g2 = sum_grammar();
    let a_rl = Analysis::run(g1, &config(Direction::RightToLeft)).unwrap();
    let a_lr = Analysis::run(g2, &config(Direction::LeftToRight)).unwrap();
    let values = [3, 1, 4, 1, 5, 9, 2, 6];
    let t1 = chain_tree(&a_rl.grammar, &values);
    let t2 = chain_tree(&a_lr.grammar, &values);
    let r1 = evaluate(&a_rl, &Funcs::standard(), &t1, &options(Strategy::BottomUp)).unwrap();
    let r2 = evaluate(&a_lr, &Funcs::standard(), &t2, &options(Strategy::Prefix)).unwrap();
    assert_eq!(
        r1.output(&a_rl, "V"),
        r2.output(&a_lr, "V"),
        "the two §II bootstrap strategies must agree"
    );
}

#[test]
fn strategy_mismatch_is_rejected() {
    // Regression guard: every incompatible (strategy, first-direction)
    // pairing must come back as a descriptive StrategyMismatch error —
    // never a panic, and never a silent wrong-direction evaluation.
    use linguist_eval::machine::EvalError;
    for (first, strategy) in [
        (Direction::RightToLeft, Strategy::Prefix),
        (Direction::LeftToRight, Strategy::BottomUp),
    ] {
        let analysis = Analysis::run(sum_grammar(), &config(first)).unwrap();
        let tree = chain_tree(&analysis.grammar, &[1]);
        let err = evaluate(&analysis, &Funcs::standard(), &tree, &options(strategy)).unwrap_err();
        match &err {
            EvalError::StrategyMismatch {
                strategy: s,
                first_direction,
            } => {
                assert_eq!(*s, strategy);
                assert_eq!(*first_direction, first);
            }
            other => panic!("expected StrategyMismatch, got {:?}", other),
        }
        let msg = err.to_string();
        assert!(
            msg.contains("incompatible") && msg.contains(&format!("{:?}", strategy)),
            "message should name the offending strategy: {}",
            msg
        );
    }
}

/// Two-pass grammar: left sibling's inherited comes from the right
/// sibling's synthesized value.
fn two_pass_grammar() -> Grammar {
    let mut b = AgBuilder::new();
    let s = b.nonterminal("S");
    let sv = b.synthesized(s, "V", "int");
    let a = b.nonterminal("A");
    let ai = b.inherited(a, "I", "int");
    let av = b.synthesized(a, "V", "int");
    let bb = b.nonterminal("B");
    let bv = b.synthesized(bb, "V", "int");
    let x = b.terminal("x");
    let obj = b.intrinsic(x, "OBJ", "int");
    let p0 = b.production(s, vec![a, bb], None);
    b.rule(
        p0,
        vec![AttrOcc::rhs(0, ai)],
        Expr::Occ(AttrOcc::rhs(1, bv)),
    );
    b.rule(p0, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(0, av)));
    let p1 = b.production(a, vec![x], None);
    b.rule(
        p1,
        vec![AttrOcc::lhs(av)],
        Expr::binop(BinOp::Add, Expr::Occ(AttrOcc::lhs(ai)), Expr::Int(100)),
    );
    let p2 = b.production(bb, vec![x], None);
    b.rule(p2, vec![AttrOcc::lhs(bv)], Expr::Occ(AttrOcc::rhs(0, obj)));
    b.start(s);
    b.build().unwrap()
}

#[test]
fn right_to_left_information_crosses_passes() {
    let analysis = Analysis::run(two_pass_grammar(), &config(Direction::LeftToRight)).unwrap();
    assert_eq!(analysis.passes.num_passes(), 2);
    let g = &analysis.grammar;
    let x = g.symbol_by_name("x").unwrap();
    let obj = g.attr_by_name(x, "OBJ").unwrap();
    let tree = PTree::node(
        ProdId(0),
        vec![
            PTree::node(ProdId(1), vec![PTree::leaf(x, vec![(obj, Value::Int(0))])]),
            PTree::node(ProdId(2), vec![PTree::leaf(x, vec![(obj, Value::Int(7))])]),
        ],
    );
    let result = evaluate(
        &analysis,
        &Funcs::standard(),
        &tree,
        &options(Strategy::Prefix),
    )
    .unwrap();
    // B.V = 7 (pass 1); A.I = 7, A.V = 107 (pass 2); S.V = 107.
    assert_eq!(result.output(&analysis, "V"), Some(&Value::Int(107)));
    assert_eq!(result.stats.passes.len(), 2);
    // Pass 2 must re-read what pass 1 wrote.
    assert!(result.stats.passes[1].bytes_read > 0);
}

/// Copy-chain grammar exercising static subsumption: ENV propagates down
/// through copies only.
fn env_grammar() -> Grammar {
    let mut b = AgBuilder::new();
    let root = b.nonterminal("root");
    let rv = b.synthesized(root, "OUT", "int");
    let s = b.nonterminal("S");
    let sv = b.synthesized(s, "OUT", "int");
    let se = b.inherited(s, "ENV", "int");
    let x = b.terminal("x");
    let obj = b.intrinsic(x, "OBJ", "int");
    let p0 = b.production(root, vec![s], None);
    b.rule(p0, vec![AttrOcc::rhs(0, se)], Expr::Int(1000));
    b.rule(p0, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(0, sv)));
    // S -> S x : ENV copied down (implicitly), OUT copied up (implicitly).
    let _p1 = b.production(s, vec![s, x], None);
    // S -> x : OUT = ENV + OBJ.
    let p2 = b.production(s, vec![x], None);
    b.rule(
        p2,
        vec![AttrOcc::lhs(sv)],
        Expr::binop(
            BinOp::Add,
            Expr::Occ(AttrOcc::lhs(se)),
            Expr::Occ(AttrOcc::rhs(0, obj)),
        ),
    );
    b.start(root);
    b.build().unwrap()
}

fn env_tree(g: &Grammar, depth: usize) -> PTree {
    let x = g.symbol_by_name("x").unwrap();
    let obj = g.attr_by_name(x, "OBJ").unwrap();
    let leaf = |n: i64| PTree::leaf(x, vec![(obj, Value::Int(n))]);
    let mut t = PTree::node(ProdId(2), vec![leaf(5)]);
    for _ in 0..depth {
        t = PTree::node(ProdId(1), vec![t, leaf(0)]);
    }
    PTree::node(ProdId(0), vec![t])
}

#[test]
fn subsumption_protocol_verifies_cleanly() {
    // Generous costs so the implicit copy chain goes static.
    let cfg = Config {
        costs: linguist_ag::subsumption::SubsumptionCosts {
            copy: 50,
            save_restore: 10,
        },
        ..config(Direction::RightToLeft)
    };
    let analysis = Analysis::run(env_grammar(), &cfg).unwrap();
    let g = &analysis.grammar;
    let s = g.symbol_by_name("S").unwrap();
    let se = g.attr_by_name(s, "ENV").unwrap();
    assert!(
        analysis.subsumption.is_static(se),
        "ENV chain should be statically allocated"
    );
    let sub_stats = analysis.subsumption.stats(g);
    assert!(sub_stats.subsumed_rules > 0);

    let tree = env_tree(g, 10);
    let result = evaluate(
        &analysis,
        &Funcs::standard(),
        &tree,
        &options(Strategy::BottomUp),
    )
    .unwrap();
    assert_eq!(result.output(&analysis, "OUT"), Some(&Value::Int(1005)));
    assert!(
        result.stats.globals_checked > 0,
        "subsumed copies were verified against the globals"
    );
    assert_eq!(
        result.stats.globals_repaired, 0,
        "no clobbered globals in a pure downward chain"
    );
}

#[test]
fn subsumption_on_and_off_agree() {
    // The optimization must be semantics-preserving; the paper timed both
    // configurations and only code size differed.
    let base = config(Direction::RightToLeft);
    let with = Analysis::run(env_grammar(), &base).unwrap();
    let without = Analysis::run(
        env_grammar(),
        &Config {
            disable_subsumption: true,
            ..base
        },
    )
    .unwrap();
    let t1 = env_tree(&with.grammar, 6);
    let t2 = env_tree(&without.grammar, 6);
    let r1 = evaluate(&with, &Funcs::standard(), &t1, &options(Strategy::BottomUp)).unwrap();
    let r2 = evaluate(
        &without,
        &Funcs::standard(),
        &t2,
        &options(Strategy::BottomUp),
    )
    .unwrap();
    assert_eq!(r1.output(&with, "OUT"), r2.output(&without, "OUT"));
}

#[test]
fn peak_memory_tracks_depth_not_size() {
    // E12: the file-resident APT means a WIDE tree of many nodes needs no
    // more stack than its depth dictates.
    let analysis = Analysis::run(sum_grammar(), &config(Direction::RightToLeft)).unwrap();
    let small = chain_tree(&analysis.grammar, &[1; 4]);
    let deep = chain_tree(&analysis.grammar, &[1; 150]);
    let r_small = evaluate(
        &analysis,
        &Funcs::standard(),
        &small,
        &options(Strategy::BottomUp),
    )
    .unwrap();
    let r_deep = evaluate(
        &analysis,
        &Funcs::standard(),
        &deep,
        &options(Strategy::BottomUp),
    )
    .unwrap();
    // This chain grammar is pathological (depth = size), so peak grows…
    assert!(r_deep.stats.meter.peak() > r_small.stats.meter.peak());
    // …but the total APT moved through the files is far larger than the
    // peak residency would suggest on its own.
    assert!(r_deep.stats.total_io_bytes() > r_deep.stats.meter.peak() as u64);
    assert_eq!(r_deep.stats.max_depth, 150);
}

#[test]
fn budget_exceeded_is_recorded_not_fatal() {
    let analysis = Analysis::run(sum_grammar(), &config(Direction::RightToLeft)).unwrap();
    let tree = chain_tree(&analysis.grammar, &[1; 120]);
    let result = evaluate(
        &analysis,
        &Funcs::standard(),
        &tree,
        &EvalOptions {
            strategy: Strategy::BottomUp,
            check_globals: false,
            budget: Some(64), // absurdly small
            ..EvalOptions::default()
        },
    )
    .unwrap();
    assert!(result.stats.meter.exceeded());
    assert_eq!(result.output(&analysis, "V"), Some(&Value::Int(120)));
}

#[test]
fn conditionals_and_constants_evaluate() {
    // S -> x with V = if OBJ > 0 then OBJ else 0 endif and a symbolic TAG.
    let mut b = AgBuilder::new();
    let s = b.nonterminal("S");
    let v = b.synthesized(s, "V", "int");
    let tag = b.synthesized(s, "TAG", "name");
    let x = b.terminal("x");
    let obj = b.intrinsic(x, "OBJ", "int");
    let no_msg = b.name("no$msg");
    let p = b.production(s, vec![x], None);
    b.rule(
        p,
        vec![AttrOcc::lhs(v)],
        Expr::ite(
            Expr::binop(BinOp::Gt, Expr::Occ(AttrOcc::rhs(0, obj)), Expr::Int(0)),
            Expr::Occ(AttrOcc::rhs(0, obj)),
            Expr::Int(0),
        ),
    );
    b.rule(p, vec![AttrOcc::lhs(tag)], Expr::Const(no_msg));
    b.start(s);
    let analysis = Analysis::run(b.build().unwrap(), &config(Direction::RightToLeft)).unwrap();
    let g = &analysis.grammar;
    let x = g.symbol_by_name("x").unwrap();
    let obj = g.attr_by_name(x, "OBJ").unwrap();

    for (input, expect) in [(-5, 0i64), (9, 9)] {
        let tree = PTree::node(
            ProdId(0),
            vec![PTree::leaf(x, vec![(obj, Value::Int(input))])],
        );
        let r = evaluate(
            &analysis,
            &Funcs::standard(),
            &tree,
            &options(Strategy::BottomUp),
        )
        .unwrap();
        assert_eq!(r.output(&analysis, "V"), Some(&Value::Int(expect)));
        assert!(matches!(r.output(&analysis, "TAG"), Some(Value::Sym(_))));
    }
}

#[test]
fn multi_target_if_assigns_pairwise() {
    // Figure 5: one semantic function defining two occurrences with
    // per-branch expression lists.
    let mut b = AgBuilder::new();
    let s = b.nonterminal("S");
    let a = b.synthesized(s, "A", "int");
    let c = b.synthesized(s, "B", "int");
    let x = b.terminal("x");
    let obj = b.intrinsic(x, "OBJ", "int");
    let p = b.production(s, vec![x], None);
    b.rule(
        p,
        vec![AttrOcc::lhs(a), AttrOcc::lhs(c)],
        Expr::If {
            branches: vec![(
                Expr::binop(BinOp::Eq, Expr::Occ(AttrOcc::rhs(0, obj)), Expr::Int(0)),
                vec![Expr::Int(10), Expr::Int(20)],
            )],
            otherwise: vec![Expr::Int(30), Expr::Int(40)],
        },
    );
    b.start(s);
    let analysis = Analysis::run(b.build().unwrap(), &config(Direction::RightToLeft)).unwrap();
    let g = &analysis.grammar;
    let x = g.symbol_by_name("x").unwrap();
    let obj = g.attr_by_name(x, "OBJ").unwrap();

    let run = |input: i64| {
        let tree = PTree::node(
            ProdId(0),
            vec![PTree::leaf(x, vec![(obj, Value::Int(input))])],
        );
        evaluate(
            &analysis,
            &Funcs::standard(),
            &tree,
            &options(Strategy::BottomUp),
        )
        .unwrap()
    };
    let r0 = run(0);
    assert_eq!(r0.output(&analysis, "A"), Some(&Value::Int(10)));
    assert_eq!(r0.output(&analysis, "B"), Some(&Value::Int(20)));
    let r1 = run(5);
    assert_eq!(r1.output(&analysis, "A"), Some(&Value::Int(30)));
    assert_eq!(r1.output(&analysis, "B"), Some(&Value::Int(40)));
}

#[test]
fn limb_attributes_name_common_subexpressions() {
    // One limb TMP consumed by two synthesized attributes.
    let mut b = AgBuilder::new();
    let s = b.nonterminal("S");
    let v = b.synthesized(s, "V", "int");
    let w = b.synthesized(s, "W", "int");
    let x = b.terminal("x");
    let obj = b.intrinsic(x, "OBJ", "int");
    let l = b.limb("Leaf");
    let tmp = b.limb_attr(l, "TMP", "int");
    let p = b.production(s, vec![x], Some(l));
    b.rule(
        p,
        vec![AttrOcc::limb(tmp)],
        Expr::binop(BinOp::Add, Expr::Occ(AttrOcc::rhs(0, obj)), Expr::Int(1)),
    );
    b.rule(p, vec![AttrOcc::lhs(v)], Expr::Occ(AttrOcc::limb(tmp)));
    b.rule(
        p,
        vec![AttrOcc::lhs(w)],
        Expr::binop(
            BinOp::Add,
            Expr::Occ(AttrOcc::limb(tmp)),
            Expr::Occ(AttrOcc::limb(tmp)),
        ),
    );
    b.start(s);
    let analysis = Analysis::run(b.build().unwrap(), &config(Direction::RightToLeft)).unwrap();
    let g = &analysis.grammar;
    let x = g.symbol_by_name("x").unwrap();
    let obj = g.attr_by_name(x, "OBJ").unwrap();
    let tree = PTree::node(ProdId(0), vec![PTree::leaf(x, vec![(obj, Value::Int(4))])]);
    let r = evaluate(
        &analysis,
        &Funcs::standard(),
        &tree,
        &options(Strategy::BottomUp),
    )
    .unwrap();
    assert_eq!(r.output(&analysis, "V"), Some(&Value::Int(5)));
    assert_eq!(r.output(&analysis, "W"), Some(&Value::Int(10)));
}

#[test]
fn external_functions_flow_through_sets() {
    // S collects leaf OBJ values in a set and reports its size.
    let mut b = AgBuilder::new();
    let root = b.nonterminal("root");
    let rn = b.synthesized(root, "N", "int");
    let s = b.nonterminal("S");
    let sset = b.synthesized(s, "SET", "set");
    let x = b.terminal("x");
    let obj = b.intrinsic(x, "OBJ", "int");
    let setsize = b.name("SetSize");
    let unionsetof = b.name("UnionSetof");
    let emptyset = b.name("EmptySet");
    let p0 = b.production(root, vec![s], None);
    b.rule(
        p0,
        vec![AttrOcc::lhs(rn)],
        Expr::Call {
            func: setsize,
            args: vec![Expr::Occ(AttrOcc::rhs(0, sset))],
        },
    );
    let p1 = b.production(s, vec![s, x], None);
    b.rule(
        p1,
        vec![AttrOcc::lhs(sset)],
        Expr::Call {
            func: unionsetof,
            args: vec![
                Expr::Occ(AttrOcc::rhs(1, obj)),
                Expr::Occ(AttrOcc::rhs(0, sset)),
            ],
        },
    );
    let p2 = b.production(s, vec![x], None);
    b.rule(
        p2,
        vec![AttrOcc::lhs(sset)],
        Expr::Call {
            func: unionsetof,
            args: vec![
                Expr::Occ(AttrOcc::rhs(0, obj)),
                Expr::Call {
                    func: emptyset,
                    args: vec![],
                },
            ],
        },
    );
    b.start(root);
    let analysis = Analysis::run(b.build().unwrap(), &config(Direction::RightToLeft)).unwrap();
    let g = &analysis.grammar;
    let x = g.symbol_by_name("x").unwrap();
    let obj = g.attr_by_name(x, "OBJ").unwrap();
    let leaf = |n: i64| PTree::leaf(x, vec![(obj, Value::Int(n))]);
    // Values 1, 2, 2, 3 → set of size 3.
    let mut t = PTree::node(ProdId(2), vec![leaf(1)]);
    for v in [2, 2, 3] {
        t = PTree::node(ProdId(1), vec![t, leaf(v)]);
    }
    let tree = PTree::node(ProdId(0), vec![t]);
    let r = evaluate(
        &analysis,
        &Funcs::standard(),
        &tree,
        &options(Strategy::BottomUp),
    )
    .unwrap();
    assert_eq!(r.output(&analysis, "N"), Some(&Value::Int(3)));
}

#[test]
fn wrong_tree_is_rejected_before_evaluation() {
    let analysis = Analysis::run(sum_grammar(), &config(Direction::RightToLeft)).unwrap();
    let g = &analysis.grammar;
    let x = g.symbol_by_name("x").unwrap();
    // Production 0 wants (S, x); give it (x, x).
    let bad = PTree::node(
        ProdId(0),
        vec![PTree::leaf(x, vec![]), PTree::leaf(x, vec![])],
    );
    let err = evaluate(
        &analysis,
        &Funcs::standard(),
        &bad,
        &options(Strategy::BottomUp),
    )
    .unwrap_err();
    assert!(err.to_string().contains("malformed parse tree"));
}

#[test]
fn io_volume_scales_with_tree_size_and_passes() {
    let analysis = Analysis::run(two_pass_grammar(), &config(Direction::LeftToRight)).unwrap();
    let g = &analysis.grammar;
    let x = g.symbol_by_name("x").unwrap();
    let obj = g.attr_by_name(x, "OBJ").unwrap();
    let tree = PTree::node(
        ProdId(0),
        vec![
            PTree::node(ProdId(1), vec![PTree::leaf(x, vec![(obj, Value::Int(0))])]),
            PTree::node(ProdId(2), vec![PTree::leaf(x, vec![(obj, Value::Int(7))])]),
        ],
    );
    let r = evaluate(
        &analysis,
        &Funcs::standard(),
        &tree,
        &options(Strategy::Prefix),
    )
    .unwrap();
    // Every record visits both files in both passes.
    let p1 = &r.stats.passes[0];
    let p2 = &r.stats.passes[1];
    assert_eq!(p1.records_read, p2.records_read);
    assert_eq!(p1.records_read, p1.records_written);
    assert!(r.stats.total_io_bytes() > 0);
}

#[test]
fn memory_backing_agrees_with_disk() {
    // The "virtual memory" ablation: identical record format, RAM-backed.
    use linguist_eval::machine::Backing;
    let analysis = Analysis::run(sum_grammar(), &config(Direction::RightToLeft)).unwrap();
    let tree = chain_tree(&analysis.grammar, &[4, 8, 15, 16, 23, 42]);
    let funcs = Funcs::standard();
    let disk = evaluate(&analysis, &funcs, &tree, &options(Strategy::BottomUp)).unwrap();
    let mem = evaluate(
        &analysis,
        &funcs,
        &tree,
        &EvalOptions {
            backing: Backing::Memory,
            ..options(Strategy::BottomUp)
        },
    )
    .unwrap();
    assert_eq!(disk.output(&analysis, "V"), mem.output(&analysis, "V"));
    assert_eq!(
        disk.stats.total_io_bytes(),
        mem.stats.total_io_bytes(),
        "identical record traffic either way"
    );
}
