//! Corruption properties of the checksummed APT v2 format: flipping or
//! truncating *any* single byte of a finished boundary file must surface
//! as a typed `Header`/`Frame`/`Checksum` error — never as a silently
//! wrong `Record` — and a crash at any pass boundary must resume to a
//! byte-identical result.

use linguist_ag::analysis::{Analysis, Config};
use linguist_ag::expr::{BinOp, Expr};
use linguist_ag::grammar::AgBuilder;
use linguist_ag::ids::{AttrId, AttrOcc, ProdId, SymbolId};
use linguist_ag::passes::{Direction, PassConfig};
use linguist_eval::aptfile::{
    AptError, AptReader, AptWriter, FaultSpec, FaultTarget, ReadDir, Record, RecordBody,
};
use linguist_eval::funcs::Funcs;
use linguist_eval::machine::{
    evaluate, evaluate_resumable, Backing, EvalOptions, Evaluation, Strategy as BootStrategy,
};
use linguist_eval::tree::PTree;
use linguist_eval::value::Value;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Header length of the v2 format (magic + version + reserved + record
/// and byte totals + header CRC). Kept in sync with `aptfile.rs` by the
/// `header_len_matches_format` test below.
const HEADER_LEN: usize = 28;

static CASE: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch path per proptest case (the shim generates cases in a
/// loop inside one test fn, so a fixed name would collide across cases).
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "linguist86-corrupt-{}-{}-{}",
        std::process::id(),
        tag,
        CASE.fetch_add(1, Ordering::SeqCst)
    ))
}

fn arb_record() -> impl Strategy<Value = Record> {
    (
        any::<bool>(),
        0u32..50,
        prop::collection::vec((0u32..20, -1_000_000i64..1_000_000), 0..5),
    )
        .prop_map(|(is_sym, id, mut values)| {
            values.sort_by_key(|(a, _)| *a);
            values.dedup_by_key(|(a, _)| *a);
            Record {
                body: if is_sym {
                    RecordBody::Sym(SymbolId(id))
                } else {
                    RecordBody::Prod(ProdId(id))
                },
                values: values
                    .into_iter()
                    .map(|(a, v)| (AttrId(a), Value::Int(v)))
                    .collect(),
            }
        })
}

fn write_file(path: &std::path::Path, records: &[Record]) {
    let mut w = AptWriter::create(path).unwrap();
    for r in records {
        w.write(r).unwrap();
    }
    w.finish().unwrap();
}

/// Read records until the stream ends or errors.
fn drain(path: &std::path::Path, dir: ReadDir) -> (Vec<Record>, Option<AptError>) {
    let mut out = Vec::new();
    let mut r = match AptReader::open(path, dir) {
        Ok(r) => r,
        Err(e) => return (out, Some(e)),
    };
    loop {
        match r.next() {
            Ok(Some(rec)) => out.push(rec),
            Ok(None) => return (out, None),
            Err(e) => return (out, Some(e)),
        }
    }
}

fn is_typed_corruption(e: &AptError) -> bool {
    matches!(
        e.root(),
        AptError::Header(_) | AptError::Frame { .. } | AptError::Checksum { .. }
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Flip one arbitrary byte anywhere in a finished file: every read
    /// direction either fails with a typed corruption error before the
    /// flipped byte is consumed, and every record served up to that point
    /// is bit-for-bit the pristine one. No flip may pass undetected.
    #[test]
    fn single_byte_flips_are_always_detected(
        records in prop::collection::vec(arb_record(), 1..12),
        offset_seed in any::<u64>(),
        mask in 1u8..=255,
        forward in any::<bool>(),
    ) {
        let path = scratch("flip");
        write_file(&path, &records);
        let dir = if forward { ReadDir::Forward } else { ReadDir::Backward };
        let (pristine, pristine_err) = drain(&path, dir);
        prop_assert!(pristine_err.is_none(), "pristine file must read clean");
        prop_assert_eq!(pristine.len(), records.len());

        let mut data = std::fs::read(&path).unwrap();
        let offset = (offset_seed % data.len() as u64) as usize;
        data[offset] ^= mask;
        std::fs::write(&path, &data).unwrap();

        let (read, err) = drain(&path, dir);
        let e = err.expect("a corrupted file must not read clean");
        prop_assert!(
            is_typed_corruption(&e),
            "flip at {} must be Header/Frame/Checksum, got {:?}", offset, e
        );
        if offset < HEADER_LEN {
            prop_assert!(
                matches!(e.root(), AptError::Header(_)),
                "header flip at {} must fail at open, got {:?}", offset, e
            );
            prop_assert!(read.is_empty());
        }
        // The records served before the error are a pristine prefix (in
        // the direction of travel) — corruption never rewrites a record.
        prop_assert!(read.len() < pristine.len());
        prop_assert_eq!(&read[..], &pristine[..read.len()]);
        std::fs::remove_file(&path).ok();
    }

    /// Truncate a finished file at any point short of its full length:
    /// the header's byte total no longer matches, so `open` fails with a
    /// typed `Header` error in both directions — a half-written boundary
    /// file can never be mistaken for a complete one.
    #[test]
    fn truncation_is_always_detected_at_open(
        records in prop::collection::vec(arb_record(), 1..12),
        cut_seed in any::<u64>(),
        forward in any::<bool>(),
    ) {
        let path = scratch("cut");
        write_file(&path, &records);
        let len = std::fs::metadata(&path).unwrap().len();
        let cut = cut_seed % len; // strictly shorter than the real file
        let mut data = std::fs::read(&path).unwrap();
        data.truncate(cut as usize);
        std::fs::write(&path, &data).unwrap();

        let dir = if forward { ReadDir::Forward } else { ReadDir::Backward };
        match AptReader::open(&path, dir) {
            Err(e) => prop_assert!(
                matches!(e.root(), AptError::Header(_)),
                "truncation to {} of {} must be a Header error, got {:?}", cut, len, e
            ),
            Ok(_) => prop_assert!(false, "truncated file must not open"),
        }
        std::fs::remove_file(&path).ok();
    }
}

// ---- crash/resume property -------------------------------------------------

/// S -> A B with A.I = B.V (right-to-left flow) and A.V = A.I + 100: a
/// two-pass grammar whose checkpoint at boundary 1 carries real
/// cross-pass state.
fn two_pass_analysis() -> Analysis {
    let mut b = AgBuilder::new();
    let s = b.nonterminal("S");
    let sv = b.synthesized(s, "V", "int");
    let a = b.nonterminal("A");
    let ai = b.inherited(a, "I", "int");
    let av = b.synthesized(a, "V", "int");
    let bb = b.nonterminal("B");
    let bv = b.synthesized(bb, "V", "int");
    let x = b.terminal("x");
    let obj = b.intrinsic(x, "OBJ", "int");
    let p0 = b.production(s, vec![a, bb], None);
    b.rule(
        p0,
        vec![AttrOcc::rhs(0, ai)],
        Expr::Occ(AttrOcc::rhs(1, bv)),
    );
    b.rule(p0, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(0, av)));
    let p1 = b.production(a, vec![x], None);
    b.rule(
        p1,
        vec![AttrOcc::lhs(av)],
        Expr::binop(BinOp::Add, Expr::Occ(AttrOcc::lhs(ai)), Expr::Int(100)),
    );
    let p2 = b.production(bb, vec![x], None);
    b.rule(p2, vec![AttrOcc::lhs(bv)], Expr::Occ(AttrOcc::rhs(0, obj)));
    b.start(s);
    Analysis::run(
        b.build().unwrap(),
        &Config {
            pass: PassConfig {
                first_direction: Direction::LeftToRight,
                max_passes: 8,
            },
            ..Config::default()
        },
    )
    .unwrap()
}

fn two_pass_tree(analysis: &Analysis, left: i64, right: i64) -> PTree {
    let g = &analysis.grammar;
    let x = g.symbol_by_name("x").unwrap();
    let obj = g.attr_by_name(x, "OBJ").unwrap();
    PTree::node(
        ProdId(0),
        vec![
            PTree::node(
                ProdId(1),
                vec![PTree::leaf(x, vec![(obj, Value::Int(left))])],
            ),
            PTree::node(
                ProdId(2),
                vec![PTree::leaf(x, vec![(obj, Value::Int(right))])],
            ),
        ],
    )
}

fn encoded_outputs(eval: &Evaluation) -> Vec<u8> {
    let mut buf = Vec::new();
    for (a, v) in &eval.outputs {
        buf.extend_from_slice(&a.0.to_le_bytes());
        v.encode(&mut buf);
    }
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Inject a one-shot fault at an arbitrary pass and record offset,
    /// then resume from the surviving checkpoints: the final attributed
    /// output is byte-identical to uninterrupted runs on *both* backings.
    #[test]
    fn crash_at_any_boundary_resumes_byte_identical(
        left in -1_000i64..1_000,
        right in -1_000i64..1_000,
        fault_pass in 0u16..3,
        after in 0u64..8,
        write_side in any::<bool>(),
    ) {
        let analysis = two_pass_analysis();
        prop_assert_eq!(analysis.passes.num_passes(), 2);
        let tree = two_pass_tree(&analysis, left, right);
        let funcs = Funcs::standard();
        let prefix = EvalOptions { strategy: BootStrategy::Prefix, ..EvalOptions::default() };

        let disk = evaluate(&analysis, &funcs, &tree, &prefix).unwrap();
        let mem = evaluate(&analysis, &funcs, &tree, &EvalOptions {
            backing: Backing::Memory,
            ..prefix.clone()
        }).unwrap();
        prop_assert_eq!(encoded_outputs(&disk), encoded_outputs(&mem));

        let ckpt = scratch("resume");
        let target = if write_side { FaultTarget::Write } else { FaultTarget::Read };
        let faulted = EvalOptions {
            fault: Some(FaultSpec::new(fault_pass, target, after)),
            ..prefix.clone()
        };
        let resumed = match evaluate_resumable(&analysis, &funcs, &tree, &faulted, &ckpt) {
            // A late record offset (or a read fault on pass 0, which has
            // no input file) may never fire: the run completes untouched.
            Ok(eval) => eval,
            Err(_) => match Evaluation::resume(&analysis, &funcs, &prefix, &ckpt) {
                Ok(eval) => eval,
                // Crashed before checkpointing anything: restart fresh,
                // still through the checkpoint path.
                Err(_) => {
                    evaluate_resumable(&analysis, &funcs, &tree, &prefix, &ckpt).unwrap()
                }
            },
        };
        prop_assert_eq!(
            encoded_outputs(&resumed),
            encoded_outputs(&disk),
            "crash at pass {} after {} records must resume byte-identical",
            fault_pass, after
        );
        std::fs::remove_dir_all(&ckpt).ok();
    }
}

/// Pins the local `HEADER_LEN` mirror to the real format: a one-record
/// file is exactly header + frame overhead + payload bytes.
#[test]
fn header_len_matches_format() {
    let path = scratch("hdr");
    let rec = Record {
        body: RecordBody::Sym(SymbolId(1)),
        values: vec![],
    };
    write_file(&path, std::slice::from_ref(&rec));
    let len = std::fs::metadata(&path).unwrap().len() as usize;
    assert_eq!(len, HEADER_LEN + rec.byte_size());
    std::fs::remove_file(&path).ok();
}
