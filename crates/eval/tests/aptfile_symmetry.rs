//! Direction-symmetry tests for the intermediate APT files.
//!
//! The paradigm's load-bearing trick is that one byte stream serves both
//! directions: "if the output file of a left-to-right pass is read
//! backwards it can be the input file for a right-to-left pass" (§II).
//! These tests pin the symmetry down on both backings (disk files and
//! the RAM "virtual memory" buffers), including the degenerate shapes a
//! unit test is likely to miss: records with no attribute values at all,
//! and a record carrying the u16-maximum 65535 attribute instances.

use linguist_ag::ids::{AttrId, ProdId, SymbolId};
use linguist_eval::aptfile::{
    AptReader, AptWriter, MemFile, ReadDir, Record, RecordBody, TempAptDir,
};
use linguist_eval::value::Value;
use std::sync::{Arc, Mutex};

fn sample_records() -> Vec<Record> {
    (0..25u32)
        .map(|i| Record {
            body: if i % 2 == 0 {
                RecordBody::Sym(SymbolId(i))
            } else {
                RecordBody::Prod(ProdId(i))
            },
            values: (0..(i % 5))
                .map(|k| (AttrId(k), Value::Int((i * 10 + k) as i64)))
                .collect(),
        })
        .collect()
}

/// Write `recs`, then read them back in `dir` — on disk.
fn disk_round_trip(recs: &[Record], dir: ReadDir) -> Vec<Record> {
    let tmp = TempAptDir::new().unwrap();
    let path = tmp.boundary(0);
    let mut w = AptWriter::create(&path).unwrap();
    for r in recs {
        w.write(r).unwrap();
    }
    w.finish().unwrap();
    let mut rd = AptReader::open(&path, dir).unwrap();
    let mut out = Vec::new();
    while let Some(rec) = rd.next().unwrap() {
        out.push(rec);
    }
    out
}

/// Write `recs`, then read them back in `dir` — in memory.
fn mem_round_trip(recs: &[Record], dir: ReadDir) -> Vec<Record> {
    let buf: MemFile = Arc::new(Mutex::new(Vec::new()));
    let mut w = AptWriter::create_mem(buf.clone());
    for r in recs {
        w.write(r).unwrap();
    }
    w.finish().unwrap();
    let mut rd = AptReader::open_mem(buf, dir).unwrap();
    let mut out = Vec::new();
    while let Some(rec) = rd.next().unwrap() {
        out.push(rec);
    }
    out
}

#[test]
fn forward_then_backward_is_identity_on_disk() {
    let recs = sample_records();
    assert_eq!(disk_round_trip(&recs, ReadDir::Forward), recs);
    let mut rev = disk_round_trip(&recs, ReadDir::Backward);
    rev.reverse();
    assert_eq!(rev, recs);
}

#[test]
fn forward_then_backward_is_identity_in_memory() {
    let recs = sample_records();
    assert_eq!(mem_round_trip(&recs, ReadDir::Forward), recs);
    let mut rev = mem_round_trip(&recs, ReadDir::Backward);
    rev.reverse();
    assert_eq!(rev, recs);
}

#[test]
fn disk_and_memory_produce_identical_bytes() {
    let recs = sample_records();
    let tmp = TempAptDir::new().unwrap();
    let path = tmp.boundary(0);
    let mut w = AptWriter::create(&path).unwrap();
    for r in &recs {
        w.write(r).unwrap();
    }
    let (disk_bytes, disk_records) = w.finish().unwrap();

    let buf: MemFile = Arc::new(Mutex::new(Vec::new()));
    let mut w = AptWriter::create_mem(buf.clone());
    for r in &recs {
        w.write(r).unwrap();
    }
    let (mem_bytes, mem_records) = w.finish().unwrap();

    assert_eq!(disk_bytes, mem_bytes);
    assert_eq!(disk_records, mem_records);
    let on_disk = std::fs::read(&path).unwrap();
    assert_eq!(
        on_disk,
        *buf.lock().unwrap(),
        "identical framing regardless of backing"
    );
}

#[test]
fn empty_payload_records_round_trip_both_directions() {
    // A record with zero attribute values still needs its full frame —
    // the decoder and both readers must not special-case it away.
    let recs: Vec<Record> = (0..8u32)
        .map(|i| Record {
            body: RecordBody::Sym(SymbolId(i)),
            values: Vec::new(),
        })
        .collect();
    for rec in &recs {
        assert_eq!(Record::decode(&rec.encode()).unwrap(), *rec);
    }
    assert_eq!(disk_round_trip(&recs, ReadDir::Forward), recs);
    let mut rev = disk_round_trip(&recs, ReadDir::Backward);
    rev.reverse();
    assert_eq!(rev, recs);
    assert_eq!(mem_round_trip(&recs, ReadDir::Forward), recs);
    let mut rev = mem_round_trip(&recs, ReadDir::Backward);
    rev.reverse();
    assert_eq!(rev, recs);
}

#[test]
fn max_u16_attribute_count_round_trips() {
    // The record header stores the value count in a u16; 65535 is the
    // largest representable record and must survive both directions.
    let big = Record {
        body: RecordBody::Prod(ProdId(7)),
        values: (0..u16::MAX as u32)
            .map(|k| (AttrId(k), Value::Int(k as i64)))
            .collect(),
    };
    assert_eq!(big.values.len(), 65535);
    let decoded = Record::decode(&big.encode()).unwrap();
    assert_eq!(decoded, big);

    let recs = vec![big];
    assert_eq!(mem_round_trip(&recs, ReadDir::Forward), recs);
    assert_eq!(mem_round_trip(&recs, ReadDir::Backward), recs);
}

#[test]
fn mixed_sizes_interleave_cleanly_backward() {
    // Alternate empty and fat records so backward frame arithmetic has to
    // handle consecutive frames of very different lengths.
    let recs: Vec<Record> = (0..12u32)
        .map(|i| Record {
            body: RecordBody::Sym(SymbolId(i)),
            values: if i % 2 == 0 {
                Vec::new()
            } else {
                (0..200u32)
                    .map(|k| (AttrId(k), Value::str(&format!("attr-{i}-{k}"))))
                    .collect()
            },
        })
        .collect();
    let mut rev = disk_round_trip(&recs, ReadDir::Backward);
    rev.reverse();
    assert_eq!(rev, recs);
    let mut rev = mem_round_trip(&recs, ReadDir::Backward);
    rev.reverse();
    assert_eq!(rev, recs);
}
