//! The alternating-pass evaluation machine.
//!
//! This is the Figure-3 paradigm as an interpreter of the analysis plans:
//! each pass streams the APT from one intermediate file to another,
//! keeping only the current spine of the tree on the stack. "When an APT
//! node, N, is encountered … it is read from the intermediate file onto a
//! stack in memory. N is kept on the stack while the sub-tree descended
//! from N is visited … When the evaluation pass over N's subtree is
//! finished node N is written to the intermediate file."
//!
//! The machine also *executes the static-subsumption protocol* alongside
//! reference evaluation: it maintains the global variables, performs the
//! save/set/restore dance around child visits for non-subsumed definitions
//! of static attributes, and — for every subsumed copy-rule — **checks**
//! that the value already sitting in the global equals the reference
//! value. [`EvalStats::globals_checked`] counts those verifications;
//! [`EvalStats::globals_repaired`] counts the places where a clobbered
//! global had to be re-captured (the paper's `POST2_ZQP`-style temporaries
//! pay for exactly these sites in generated code).

use crate::aptfile::{
    boundary_path, file_summary, AptError, AptReader, AptWriter, FaultSpec, FaultTarget,
    FileSummary, MemFile, ReadDir, Record, RecordBody, TempAptDir,
};
use crate::funcs::{FuncError, Funcs};
use crate::manifest::{Manifest, ManifestError, PassEntry};
use crate::metrics::{EvalMetrics, PassProbe};
use crate::tree::{PTree, TreeError};
use crate::value::Value;
use linguist_ag::analysis::Analysis;
use linguist_ag::expr::{BinOp, Expr};
use linguist_ag::grammar::AttrClass;
use linguist_ag::ids::{AttrId, AttrOcc, OccPos, ProdId, RuleId, SymbolId};
use linguist_ag::passes::Direction;
use linguist_ag::plan::Step;
use linguist_ag::subsumption::GroupId;
use linguist_support::size::Meter;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How the initial linearized APT file is produced (§II).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Bottom-up (shift/reduce) emission; first pass is right-to-left.
    /// "LINGUIST-86 itself uses the first method."
    BottomUp,
    /// Prefix (recursive-descent) emission; first pass is left-to-right.
    Prefix,
}

/// Where the intermediate APT lives.
///
/// [`Backing::Disk`] is the paper's configuration (real temporary files);
/// [`Backing::Memory`] answers its closing question — "would some form of
/// virtual memory system significantly speed up the evaluators?" — by
/// backing the identical record format with RAM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backing {
    /// Temporary files on disk (the paper's paradigm).
    #[default]
    Disk,
    /// RAM-resident buffers with the same record format, owned by the
    /// evaluation: writes append to a plain `Vec<u8>`, completed
    /// boundaries are sealed into immutable `Arc<Vec<u8>>`s, and no
    /// mutex is taken anywhere on the read/write path. This is the
    /// shared-nothing batch hot path.
    Memory,
    /// The legacy mutex-guarded RAM store (`Arc<Mutex<Vec<u8>>>` per
    /// boundary): every record read and write pays a lock acquisition.
    /// Kept as an ablation so the contention the shared-nothing refactor
    /// removed stays measurable — its lock traffic is reported through
    /// [`EvalStats::lock_acquisitions`].
    SharedMemory,
}

/// Evaluation options.
#[derive(Clone, Debug)]
pub struct EvalOptions {
    /// Initial-file strategy; must match the pass analysis's first
    /// direction.
    pub strategy: Strategy,
    /// Run the static-subsumption global-variable protocol and verify it
    /// against reference values.
    pub check_globals: bool,
    /// Dynamic-memory budget in bytes (the paper's machine allows 48 KB);
    /// exceeding it is recorded, not fatal.
    pub budget: Option<usize>,
    /// Disk files (default, as in the paper) or RAM buffers.
    pub backing: Backing,
    /// Collect the pass-level [`EvalMetrics`] profile (per-pass file
    /// traffic, attribute and semantic-function work). Off by default:
    /// the unprofiled hot path pays only an untaken `Option` branch.
    pub profile: bool,
    /// Inject an I/O failure (test support); see [`FaultSpec`].
    pub fault: Option<FaultSpec>,
    /// Transient-failure policy: how many times a failed *pass* is re-run
    /// from its preceding boundary file, and with what backoff. The
    /// default makes a single attempt (no retries).
    pub retry: RetryPolicy,
    /// Optional wall-clock ceiling for the whole evaluation, checked
    /// cooperatively at every pass boundary (and before each retry):
    /// exceeding it fails the run with [`EvalError::Deadline`] instead of
    /// letting one pathological job hold a batch worker forever.
    pub deadline: Option<Duration>,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            strategy: Strategy::BottomUp,
            check_globals: true,
            budget: Some(48 * 1024),
            backing: Backing::Disk,
            profile: false,
            fault: None,
            retry: RetryPolicy::default(),
            deadline: None,
        }
    }
}

/// How failed passes are retried.
///
/// A pass that fails with a *transient* error (an I/O-rooted
/// [`AptError`]) is re-run from its preceding boundary file — the APT on
/// secondary storage makes the pass a natural retry unit, since its
/// input file is immutable while it runs. Backoff is deterministic
/// exponential: after the `n`-th failed attempt the machine sleeps
/// `backoff × 2ⁿ⁻¹`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per pass (1 = no retries).
    pub max_attempts: u32,
    /// Sleep after the first failed attempt; doubles each further attempt.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `n` retries (so `n + 1` attempts) with a small
    /// default backoff — what the CLI's `--retries N` maps to.
    pub fn retries(n: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: n.saturating_add(1),
            backoff: Duration::from_millis(10),
        }
    }

    /// Deterministic exponential delay after failed attempt `attempt`
    /// (1-based): `backoff × 2^(attempt-1)`, saturating.
    pub fn delay(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        self.backoff.saturating_mul(1u32 << shift)
    }
}

/// Per-pass measurements.
#[derive(Clone, Debug, Default)]
pub struct PassStats {
    /// Wall-clock time of the pass.
    pub duration: Duration,
    /// Bytes read from the input intermediate file.
    pub bytes_read: u64,
    /// Bytes written to the output intermediate file.
    pub bytes_written: u64,
    /// Records read.
    pub records_read: u64,
    /// Records written.
    pub records_written: u64,
    /// Semantic functions evaluated.
    pub rules_evaluated: u64,
}

/// Whole-evaluation measurements.
#[derive(Clone, Debug, Default)]
pub struct EvalStats {
    /// Per-pass breakdown.
    pub passes: Vec<PassStats>,
    /// Stack-residency meter (peak is what must fit in the 48 KB window).
    pub meter: Meter,
    /// Deepest production-procedure recursion reached.
    pub max_depth: usize,
    /// Subsumption verifications performed.
    pub globals_checked: u64,
    /// Subsumption verifications that found a clobbered global and
    /// repaired it (capture sites).
    pub globals_repaired: u64,
    /// Pass attempts that failed transiently and were re-run under the
    /// [`RetryPolicy`].
    pub retries: u64,
    /// When the evaluation resumed from a checkpoint, the boundary it
    /// restarted after (passes `1..=resumed_from` were *not* re-run).
    pub resumed_from: Option<u16>,
    /// Mutex acquisitions the intermediate store performed. Zero for
    /// [`Backing::Disk`] and the owned [`Backing::Memory`] path; counts
    /// every lock (per-record and per-boundary) under the legacy
    /// [`Backing::SharedMemory`] ablation. The scaling tests assert this
    /// is zero on the batch hot path.
    pub lock_acquisitions: u64,
}

impl EvalStats {
    /// Total bytes moved through intermediate files.
    pub fn total_io_bytes(&self) -> u64 {
        self.passes
            .iter()
            .map(|p| p.bytes_read + p.bytes_written)
            .sum()
    }

    /// Total semantic functions evaluated.
    pub fn total_rules(&self) -> u64 {
        self.passes.iter().map(|p| p.rules_evaluated).sum()
    }
}

/// The result of an evaluation.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Values of the root's synthesized attributes — "the result of the
    /// translation" (§I).
    pub outputs: Vec<(AttrId, Value)>,
    /// Measurements.
    pub stats: EvalStats,
    /// The pass-level profile, present when
    /// [`EvalOptions::profile`] was set.
    pub metrics: Option<EvalMetrics>,
}

impl Evaluation {
    /// Output value by attribute name.
    pub fn output(&self, analysis: &Analysis, name: &str) -> Option<&Value> {
        self.outputs
            .iter()
            .find(|(a, _)| analysis.grammar.attr_name(*a) == name)
            .map(|(_, v)| v)
    }

    /// Resume a checkpointed evaluation from `checkpoint_dir` alone — no
    /// parse tree needed, because boundary 0 (the parser's output) is
    /// itself a checkpoint. Restarts after the newest boundary whose
    /// file validates against the manifest and finishes the remaining
    /// passes.
    ///
    /// # Errors
    ///
    /// Fails with [`EvalError::Manifest`] when the directory holds no
    /// readable manifest, and [`EvalError::Corrupt`] when the manifest
    /// belongs to a different strategy/pass configuration or no boundary
    /// file validates (callers with the tree at hand should fall back to
    /// [`evaluate_resumable`], which restarts from scratch instead).
    pub fn resume(
        analysis: &Analysis,
        funcs: &Funcs,
        opts: &EvalOptions,
        checkpoint_dir: &Path,
    ) -> Result<Evaluation, EvalError> {
        evaluate_inner(analysis, funcs, None, opts, Some(checkpoint_dir), true)
    }
}

/// An evaluation failure.
#[derive(Debug)]
pub enum EvalError {
    /// Intermediate-file failure.
    Apt(AptError),
    /// Semantic-function failure.
    Func(FuncError),
    /// The input tree does not fit the grammar.
    Tree(TreeError),
    /// The strategy's first direction disagrees with the pass analysis.
    StrategyMismatch {
        /// The strategy requested.
        strategy: Strategy,
        /// The analysis's first direction.
        first_direction: Direction,
    },
    /// The file stream disagrees with the grammar (wrong record kind or
    /// symbol).
    Corrupt(String),
    /// A needed attribute instance was absent (indicates an analysis or
    /// interpreter bug).
    Missing(String),
    /// The job's code panicked; the batch supervisor caught the unwind
    /// and converted it into this typed failure so one bad semantic
    /// function cannot take down the coordinator.
    Panicked(String),
    /// The evaluation exceeded its [`EvalOptions::deadline`].
    Deadline {
        /// The configured wall-clock ceiling.
        limit: Duration,
    },
    /// The checkpoint manifest could not be read or written.
    Manifest(ManifestError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Apt(e) => write!(f, "{}", e),
            EvalError::Func(e) => write!(f, "{}", e),
            EvalError::Tree(e) => write!(f, "{}", e),
            EvalError::StrategyMismatch {
                strategy,
                first_direction,
            } => write!(
                f,
                "strategy {:?} incompatible with first pass direction {}",
                strategy, first_direction
            ),
            EvalError::Corrupt(m) => write!(f, "APT stream corrupt: {}", m),
            EvalError::Missing(m) => write!(f, "missing attribute instance: {}", m),
            EvalError::Panicked(m) => write!(f, "evaluation panicked: {}", m),
            EvalError::Deadline { limit } => {
                write!(f, "evaluation exceeded its {:?} deadline", limit)
            }
            EvalError::Manifest(e) => write!(f, "{}", e),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<AptError> for EvalError {
    fn from(e: AptError) -> EvalError {
        EvalError::Apt(e)
    }
}
impl From<ManifestError> for EvalError {
    fn from(e: ManifestError) -> EvalError {
        EvalError::Manifest(e)
    }
}
impl From<FuncError> for EvalError {
    fn from(e: FuncError) -> EvalError {
        EvalError::Func(e)
    }
}
impl From<TreeError> for EvalError {
    fn from(e: TreeError) -> EvalError {
        EvalError::Tree(e)
    }
}

/// Evaluate `tree` under `analysis` with the external functions in
/// `funcs`.
///
/// # Errors
///
/// See [`EvalError`].
///
/// # Example
///
/// See the crate-level documentation for a complete walk-through.
pub fn evaluate(
    analysis: &Analysis,
    funcs: &Funcs,
    tree: &PTree,
    opts: &EvalOptions,
) -> Result<Evaluation, EvalError> {
    evaluate_inner(analysis, funcs, Some(tree), opts, None, false)
}

/// Evaluate `tree` with pass-boundary checkpointing into `checkpoint_dir`.
///
/// Each boundary file is fsynced and recorded (totals + CRC) in an
/// atomically rewritten [`Manifest`] before the next pass starts. If the
/// directory already holds a valid manifest for the same strategy and
/// pass count — this evaluation was started before and died — the run
/// *resumes* after the newest boundary whose file still matches its
/// manifest entry, instead of starting from pass 0. A checkpoint whose
/// file fails validation silently degrades to the previous one.
///
/// The caller owns `checkpoint_dir`: it is created if absent and left in
/// place on success (so the outputs can be audited), never deleted.
///
/// # Errors
///
/// See [`EvalError`]. Manifest I/O failures surface as
/// [`EvalError::Manifest`].
pub fn evaluate_resumable(
    analysis: &Analysis,
    funcs: &Funcs,
    tree: &PTree,
    opts: &EvalOptions,
    checkpoint_dir: &Path,
) -> Result<Evaluation, EvalError> {
    evaluate_inner(
        analysis,
        funcs,
        Some(tree),
        opts,
        Some(checkpoint_dir),
        false,
    )
}

fn strategy_name(s: Strategy) -> &'static str {
    match s {
        Strategy::BottomUp => "BottomUp",
        Strategy::Prefix => "Prefix",
    }
}

fn tag_pass(e: EvalError, k: u16) -> EvalError {
    match e {
        EvalError::Apt(a) => EvalError::Apt(a.at_pass(k)),
        other => other,
    }
}

/// Only I/O-rooted failures are transient; corrupt streams, semantic
/// errors, and deadline overruns would fail identically on every retry.
fn is_retryable(e: &EvalError) -> bool {
    matches!(e, EvalError::Apt(a) if matches!(a.root(), AptError::Io(_)))
}

fn evaluate_inner(
    analysis: &Analysis,
    funcs: &Funcs,
    tree: Option<&PTree>,
    opts: &EvalOptions,
    checkpoint: Option<&Path>,
    require_manifest: bool,
) -> Result<Evaluation, EvalError> {
    if let Some(t) = tree {
        t.validate(&analysis.grammar)?;
    }
    let first = analysis.passes.direction(1);
    let compatible = matches!(
        (opts.strategy, first),
        (Strategy::BottomUp, Direction::RightToLeft) | (Strategy::Prefix, Direction::LeftToRight)
    );
    if !compatible {
        return Err(EvalError::StrategyMismatch {
            strategy: opts.strategy,
            first_direction: first,
        });
    }

    let started = Instant::now();
    let num_passes = analysis.passes.num_passes() as u16;
    let store = match checkpoint {
        Some(dir) => {
            std::fs::create_dir_all(dir)
                .map_err(|e| EvalError::Apt(AptError::Io(e).in_file(dir)))?;
            Store::Dir(dir.to_path_buf())
        }
        None => Store::new(opts.backing)?,
    };

    // Resume detection: trust the newest manifest boundary (below the
    // final pass, whose root outputs are not on disk) whose file still
    // matches its recorded summary; walk back past corrupted ones.
    let mut manifest: Option<Manifest> = None;
    let mut resume_boundary: Option<u16> = None;
    if let Some(dir) = checkpoint {
        match Manifest::load(dir) {
            Ok(m) if m.strategy == strategy_name(opts.strategy) && m.num_passes == num_passes => {
                for e in m.entries.iter().rev() {
                    if e.pass >= num_passes {
                        continue;
                    }
                    let recorded = FileSummary {
                        records: e.records,
                        bytes: e.bytes,
                        crc: e.crc,
                    };
                    if file_summary(&boundary_path(dir, e.pass)).is_ok_and(|s| s == recorded) {
                        resume_boundary = Some(e.pass);
                        break;
                    }
                }
                let mut m = m;
                match resume_boundary {
                    // Later boundaries are now unproven; they will be
                    // re-recorded as their passes re-run.
                    Some(b) => m.entries.retain(|e| e.pass <= b),
                    None => m.entries.clear(),
                }
                manifest = Some(m);
            }
            Ok(m) if require_manifest => {
                return Err(EvalError::Corrupt(format!(
                    "checkpoint in {} is for a different configuration \
                     ({} × {} passes; this run needs {} × {})",
                    dir.display(),
                    m.strategy,
                    m.num_passes,
                    strategy_name(opts.strategy),
                    num_passes
                )));
            }
            Ok(_) => {}
            Err(e) if require_manifest => return Err(EvalError::Manifest(e)),
            Err(_) => {}
        }
        if require_manifest && resume_boundary.is_none() {
            return Err(EvalError::Corrupt(format!(
                "no valid checkpoint boundary to resume from in {}",
                dir.display()
            )));
        }
        if manifest.is_none() {
            manifest = Some(Manifest::new(strategy_name(opts.strategy), num_passes));
        }
    }
    let start_pass = resume_boundary.map_or(1, |b| b + 1);

    let mut metrics = opts.profile.then(EvalMetrics::default);
    let mut machine = Machine {
        analysis,
        funcs,
        globals: HashMap::new(),
        stats: EvalStats {
            meter: Meter::with_budget(opts.budget),
            resumed_from: resume_boundary,
            ..EvalStats::default()
        },
        check_globals: opts.check_globals,
        pass: 0,
        depth: 0,
        rules_this_pass: 0,
        probe: None,
    };
    let check_deadline = || -> Result<(), EvalError> {
        match opts.deadline {
            Some(limit) if started.elapsed() >= limit => Err(EvalError::Deadline { limit }),
            _ => Ok(()),
        }
    };

    // Boundary 0: the parser-built file (skipped entirely on resume —
    // the checkpointed copy *is* the parser's output).
    if resume_boundary.is_none() {
        let tree = tree.ok_or_else(|| {
            EvalError::Corrupt(
                "nothing to resume and no parse tree supplied to rebuild boundary 0".to_owned(),
            )
        })?;
        let mut attempt = 1u32;
        let summary = loop {
            check_deadline()?;
            let result = (|| -> Result<FileSummary, EvalError> {
                let mut w = store.writer(0)?;
                if checkpoint.is_some() {
                    w.set_sync(true);
                }
                if let Some(f) = &opts.fault {
                    if f.pass == 0 && f.target == FaultTarget::Write {
                        w.set_fault(f.clone());
                    }
                }
                match opts.strategy {
                    Strategy::BottomUp => {
                        tree.write_postfix(&analysis.grammar, &analysis.lifetimes, &mut w)?
                    }
                    Strategy::Prefix => {
                        tree.write_prefix(&analysis.grammar, &analysis.lifetimes, &mut w)?
                    }
                }
                Ok(store.finish(0, w)?)
            })();
            match result {
                Ok(s) => break s,
                Err(e) => {
                    let e = tag_pass(e, 0);
                    if attempt >= opts.retry.max_attempts || !is_retryable(&e) {
                        return Err(e);
                    }
                    machine.stats.retries += 1;
                    std::thread::sleep(opts.retry.delay(attempt));
                    attempt += 1;
                }
            }
        };
        if let Some(m) = &mut metrics {
            m.initial_bytes = summary.bytes;
            m.initial_records = summary.records;
        }
        if let (Some(m), Some(dir)) = (&mut manifest, checkpoint) {
            m.record(PassEntry {
                pass: 0,
                records: summary.records,
                bytes: summary.bytes,
                crc: summary.crc,
            });
            m.save(dir)?;
        }
    }

    let mut root_state: Option<NodeState> = None;
    for k in start_pass..=num_passes {
        let read_dir = match (k, opts.strategy) {
            (1, Strategy::Prefix) => ReadDir::Forward,
            _ => ReadDir::Backward,
        };
        let mut attempt = 1u32;
        // Each attempt re-runs the whole pass from the (immutable)
        // boundary k-1 file; a clean attempt breaks with the pass result.
        let (root, pass_stats, summary) = loop {
            check_deadline()?;
            let pass_started = Instant::now();
            machine.pass = k;
            machine.depth = 0;
            machine.globals.clear();
            machine.rules_this_pass = 0;
            if metrics.is_some() {
                machine.probe = Some(PassProbe::new());
            }
            let mem_before = machine.stats.meter.current();
            let result = (|| -> Result<(NodeState, u64, u64, FileSummary), EvalError> {
                let mut reader = store.reader(k - 1, read_dir)?;
                let mut writer = store.writer(k)?;
                if checkpoint.is_some() {
                    writer.set_sync(true);
                }
                if let Some(probe) = &machine.probe {
                    reader.set_profile(probe.read.clone());
                    writer.set_profile(probe.written.clone());
                }
                if let Some(f) = &opts.fault {
                    if f.pass == k {
                        match f.target {
                            FaultTarget::Read => reader.set_fault(f.clone()),
                            FaultTarget::Write => writer.set_fault(f.clone()),
                        }
                    }
                }
                let root = machine.run_pass(&mut reader, &mut writer)?;
                let bytes_read = reader.bytes_read();
                let records_read = reader.records_read();
                let summary = store.finish(k, writer)?;
                Ok((root, bytes_read, records_read, summary))
            })();
            match result {
                Ok((root, bytes_read, records_read, summary)) => {
                    break (
                        root,
                        PassStats {
                            duration: pass_started.elapsed(),
                            bytes_read,
                            bytes_written: summary.bytes,
                            records_read,
                            records_written: summary.records,
                            rules_evaluated: machine.rules_this_pass,
                        },
                        summary,
                    );
                }
                Err(e) => {
                    let e = tag_pass(e, k);
                    if attempt >= opts.retry.max_attempts || !is_retryable(&e) {
                        return Err(e);
                    }
                    machine.stats.retries += 1;
                    // The aborted attempt left its spine charges on the
                    // meter; release them so retries don't compound
                    // (peak stays — that memory really was used).
                    let leaked = machine.stats.meter.current().saturating_sub(mem_before);
                    machine.stats.meter.release(leaked);
                    machine.probe = None;
                    std::thread::sleep(opts.retry.delay(attempt));
                    attempt += 1;
                }
            }
        };
        machine.stats.passes.push(pass_stats);
        // Pass-boundary heartbeat: keep the scratch dir's lock fresh so
        // a sweeping daemon in another process never reaps a long
        // evaluation's intermediates mid-run.
        if let Store::Disk(dir) = &store {
            dir.refresh_lock();
        }
        if let (Some(m), Some(probe)) = (&mut metrics, machine.probe.take()) {
            m.passes
                .push(probe.finish(k, read_dir, machine.rules_this_pass));
        }
        if let (Some(m), Some(dir)) = (&mut manifest, checkpoint) {
            m.record(PassEntry {
                pass: k,
                records: summary.records,
                bytes: summary.bytes,
                crc: summary.crc,
            });
            m.save(dir)?;
        }
        root_state = Some(root);
    }

    let root = root_state.ok_or_else(|| {
        EvalError::Corrupt("grammar evaluates in zero passes; nothing to do".to_owned())
    })?;
    let g = &analysis.grammar;
    let mut outputs = Vec::new();
    for &a in &g.symbol(g.start()).attrs {
        if g.attr(a).class == AttrClass::Synthesized {
            let v = root
                .values
                .get(&a)
                .ok_or_else(|| EvalError::Missing(format!("root output {}", g.attr_name(a))))?;
            outputs.push((a, v.clone()));
        }
    }
    machine.stats.lock_acquisitions = store.lock_acquisitions();
    if let Some(m) = &mut metrics {
        m.lock_acquisitions = machine.stats.lock_acquisitions;
    }
    Ok(Evaluation {
        outputs,
        stats: machine.stats,
        metrics,
    })
}

/// An APT node held on the stack: its symbol plus every attribute instance
/// currently materialized.
#[derive(Clone, Debug)]
struct NodeState {
    sym: SymbolId,
    values: HashMap<AttrId, Value>,
    charged: usize,
}

impl NodeState {
    fn from_record(rec: Record) -> Result<NodeState, EvalError> {
        let charged = rec.byte_size();
        match rec.body {
            RecordBody::Sym(sym) => Ok(NodeState {
                sym,
                values: rec.values.into_iter().collect(),
                charged,
            }),
            RecordBody::Prod(p) => Err(EvalError::Corrupt(format!(
                "expected a symbol record, found production {}",
                p.0
            ))),
        }
    }
}

struct Machine<'a> {
    analysis: &'a Analysis,
    funcs: &'a Funcs,
    globals: HashMap<GroupId, Value>,
    stats: EvalStats,
    check_globals: bool,
    pass: u16,
    depth: usize,
    rules_this_pass: u64,
    probe: Option<PassProbe>,
}

impl<'a> Machine<'a> {
    fn run_pass(
        &mut self,
        reader: &mut AptReader,
        writer: &mut AptWriter,
    ) -> Result<NodeState, EvalError> {
        let g = &self.analysis.grammar;
        let rec = reader
            .next()?
            .ok_or_else(|| EvalError::Corrupt("empty APT file".to_owned()))?;
        let mut root = NodeState::from_record(rec)?;
        if root.sym != g.start() {
            return Err(EvalError::Corrupt(format!(
                "root record is {}, expected start symbol {}",
                g.symbol_name(root.sym),
                g.symbol_name(g.start())
            )));
        }
        self.stats.meter.charge(root.charged);
        self.visit(&mut root, reader, writer)?;
        writer.write(&self.to_record(&root))?;
        self.stats.meter.release(root.charged);
        Ok(root)
    }

    fn to_record(&self, state: &NodeState) -> Record {
        let g = &self.analysis.grammar;
        let lt = &self.analysis.lifetimes;
        let mut values: Vec<(AttrId, Value)> = g
            .symbol(state.sym)
            .attrs
            .iter()
            .filter(|&&a| lt.alive_across(a, self.pass))
            .filter_map(|&a| state.values.get(&a).map(|v| (a, v.clone())))
            .collect();
        values.sort_by_key(|(a, _)| *a);
        Record {
            body: RecordBody::Sym(state.sym),
            values,
        }
    }

    fn visit(
        &mut self,
        state: &mut NodeState,
        reader: &mut AptReader,
        writer: &mut AptWriter,
    ) -> Result<(), EvalError> {
        self.depth += 1;
        if self.depth > self.stats.max_depth {
            self.stats.max_depth = self.depth;
        }
        let g = &self.analysis.grammar;
        let lt = &self.analysis.lifetimes;

        // The production record drives dispatch (the limb's role of
        // "synchronizing the identification of productions").
        let prod_rec = reader
            .next()?
            .ok_or_else(|| EvalError::Corrupt("APT file ended inside a visit".to_owned()))?;
        let (prod, mut limb_vals, prod_charged) = match prod_rec.body {
            RecordBody::Prod(p) => {
                let charged = prod_rec.byte_size();
                let vals: HashMap<AttrId, Value> = prod_rec.values.into_iter().collect();
                (p, vals, charged)
            }
            RecordBody::Sym(s) => {
                return Err(EvalError::Corrupt(format!(
                    "expected a production record, found symbol {}",
                    g.symbol_name(s)
                )))
            }
        };
        if g.production(prod).lhs != state.sym {
            return Err(EvalError::Corrupt(format!(
                "production {} does not derive {}",
                prod.0,
                g.symbol_name(state.sym)
            )));
        }
        self.stats.meter.charge(prod_charged);

        let rhs_len = g.production(prod).rhs.len();
        let mut children: Vec<Option<NodeState>> = (0..rhs_len).map(|_| None).collect();
        let mut locals: HashMap<AttrOcc, Value> = HashMap::new();
        let plan = self.analysis.plans.plan(self.pass, prod);
        let mut charged_children = 0usize;

        for step in &plan.steps {
            match *step {
                Step::Get(i) => {
                    let want = g.production(prod).rhs[i as usize];
                    // An elided terminal has no record in the input
                    // file: materialize its (empty) state directly.
                    if lt.elides(g, want, self.pass - 1) {
                        children[i as usize] = Some(NodeState {
                            sym: want,
                            values: HashMap::new(),
                            charged: 0,
                        });
                        continue;
                    }
                    let rec = reader.next()?.ok_or_else(|| {
                        EvalError::Corrupt("APT file ended before child record".to_owned())
                    })?;
                    let child = NodeState::from_record(rec)?;
                    if child.sym != want {
                        return Err(EvalError::Corrupt(format!(
                            "child {} of production {}: expected {}, found {}",
                            i,
                            prod.0,
                            g.symbol_name(want),
                            g.symbol_name(child.sym)
                        )));
                    }
                    self.stats.meter.charge(child.charged);
                    charged_children += child.charged;
                    children[i as usize] = Some(child);
                }
                Step::Eval(r) => {
                    self.eval_rule(r, prod, state, &children, &limb_vals, &mut locals)?;
                }
                Step::Visit(i) => {
                    let saves = if self.check_globals {
                        self.pre_visit_globals(prod, i, state, &children, &locals)?
                    } else {
                        Vec::new()
                    };
                    let mut child = children[i as usize]
                        .take()
                        .ok_or_else(|| EvalError::Missing(format!("child {} state", i)))?;
                    // This-pass inherited definitions must be visible to
                    // the child's procedure (the paradigm's "eval inherited
                    // attribs of Xi" happens before the visit).
                    for (occ, v) in &locals {
                        if occ.pos == OccPos::Rhs(i) {
                            child.values.insert(occ.attr, v.clone());
                        }
                    }
                    self.visit(&mut child, reader, writer)?;
                    children[i as usize] = Some(child);
                    if self.check_globals {
                        self.post_visit_globals(prod, i, &children, saves);
                    }
                }
                Step::Put(i) => {
                    let child = children[i as usize]
                        .as_mut()
                        .ok_or_else(|| EvalError::Missing(format!("child {} state", i)))?;
                    // Symmetric with Get: the next pass will not look
                    // for this record, so don't write it.
                    if lt.elides(g, child.sym, self.pass) {
                        continue;
                    }
                    // Merge this frame's definitions for the child into its
                    // record before writing.
                    for (occ, v) in &locals {
                        if occ.pos == OccPos::Rhs(i) {
                            child.values.insert(occ.attr, v.clone());
                        }
                    }
                    let rec = {
                        let mut values: Vec<(AttrId, Value)> = g
                            .symbol(child.sym)
                            .attrs
                            .iter()
                            .filter(|&&a| lt.alive_across(a, self.pass))
                            .filter_map(|&a| child.values.get(&a).map(|v| (a, v.clone())))
                            .collect();
                        values.sort_by_key(|(a, _)| *a);
                        Record {
                            body: RecordBody::Sym(child.sym),
                            values,
                        }
                    };
                    writer.write(&rec)?;
                }
            }
        }

        // End zone: merge LHS and limb definitions, run the synthesized
        // global protocol, write the production record. `locals` is dead
        // after this merge, so the values *move* into their destination
        // maps — no clone, which for list-valued attributes means no
        // refcount churn on the cons spine.
        for (occ, v) in locals {
            match occ.pos {
                OccPos::Lhs => {
                    state.values.insert(occ.attr, v);
                }
                OccPos::Limb => {
                    limb_vals.insert(occ.attr, v);
                }
                OccPos::Rhs(_) => {}
            }
        }
        if self.check_globals {
            self.end_globals(prod, state);
        }
        {
            let mut values: Vec<(AttrId, Value)> = g
                .production(prod)
                .limb
                .map(|l| {
                    g.symbol(l)
                        .attrs
                        .iter()
                        .filter(|&&a| lt.alive_across(a, self.pass))
                        .filter_map(|&a| limb_vals.get(&a).map(|v| (a, v.clone())))
                        .collect()
                })
                .unwrap_or_default();
            values.sort_by_key(|(a, _)| *a);
            writer.write(&Record {
                body: RecordBody::Prod(prod),
                values,
            })?;
        }

        self.stats.meter.release(charged_children + prod_charged);
        self.depth -= 1;
        Ok(())
    }

    fn resolve(
        &self,
        occ: AttrOcc,
        state: &NodeState,
        children: &[Option<NodeState>],
        limb_vals: &HashMap<AttrId, Value>,
        locals: &HashMap<AttrOcc, Value>,
    ) -> Result<Value, EvalError> {
        if let Some(v) = locals.get(&occ) {
            return Ok(v.clone());
        }
        let g = &self.analysis.grammar;
        let found = match occ.pos {
            OccPos::Lhs => state.values.get(&occ.attr),
            OccPos::Rhs(i) => children
                .get(i as usize)
                .and_then(|c| c.as_ref())
                .and_then(|c| c.values.get(&occ.attr)),
            OccPos::Limb => limb_vals.get(&occ.attr),
        };
        found.cloned().ok_or_else(|| {
            EvalError::Missing(format!(
                "{} at {} (pass {})",
                g.attr_name(occ.attr),
                occ.pos,
                self.pass
            ))
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_rule(
        &mut self,
        rule: RuleId,
        _prod: ProdId,
        state: &NodeState,
        children: &[Option<NodeState>],
        limb_vals: &HashMap<AttrId, Value>,
        locals: &mut HashMap<AttrOcc, Value>,
    ) -> Result<(), EvalError> {
        let r = self.analysis.grammar.rule(rule);
        let width = r.targets.len();
        let vals: Vec<Value> = match &r.expr {
            Expr::If {
                branches,
                otherwise,
            } if width > 1 => {
                let arm =
                    self.select_arm(branches, otherwise, state, children, limb_vals, locals)?;
                let mut out = Vec::with_capacity(width);
                for e in arm {
                    out.push(self.eval_expr(e, state, children, limb_vals, locals)?);
                }
                out
            }
            expr => {
                let v = self.eval_expr(expr, state, children, limb_vals, locals)?;
                vec![v; width]
            }
        };
        for (t, v) in r.targets.iter().zip(vals) {
            locals.insert(*t, v);
        }
        self.rules_this_pass += 1;
        if let Some(probe) = &self.probe {
            probe
                .attrs_evaluated
                .fetch_add(width as u64, std::sync::atomic::Ordering::Relaxed);
        }
        Ok(())
    }

    fn select_arm<'e>(
        &mut self,
        branches: &'e [(Expr, Vec<Expr>)],
        otherwise: &'e [Expr],
        state: &NodeState,
        children: &[Option<NodeState>],
        limb_vals: &HashMap<AttrId, Value>,
        locals: &HashMap<AttrOcc, Value>,
    ) -> Result<&'e [Expr], EvalError> {
        for (cond, arm) in branches {
            let c = self.eval_expr(cond, state, children, limb_vals, locals)?;
            match c {
                Value::Bool(true) => return Ok(arm),
                Value::Bool(false) => continue,
                other => {
                    return Err(EvalError::Func(FuncError::Type {
                        name: "if".to_owned(),
                        expected: "bool",
                        got: other.type_name(),
                    }))
                }
            }
        }
        Ok(otherwise)
    }

    fn eval_expr(
        &mut self,
        expr: &Expr,
        state: &NodeState,
        children: &[Option<NodeState>],
        limb_vals: &HashMap<AttrId, Value>,
        locals: &HashMap<AttrOcc, Value>,
    ) -> Result<Value, EvalError> {
        match expr {
            Expr::Occ(o) => self.resolve(*o, state, children, limb_vals, locals),
            Expr::Int(i) => Ok(Value::Int(*i)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Str(s) => Ok(Value::str(s)),
            Expr::Const(n) => Ok(Value::Sym(*n)),
            Expr::Call { func, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_expr(a, state, children, limb_vals, locals)?);
                }
                if let Some(probe) = &self.probe {
                    probe
                        .funcs_invoked
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                let name = self.analysis.grammar.resolve(*func).to_owned();
                Ok(self.funcs.call(&name, &vals)?)
            }
            Expr::Binop { op, lhs, rhs } => {
                let a = self.eval_expr(lhs, state, children, limb_vals, locals)?;
                let b = self.eval_expr(rhs, state, children, limb_vals, locals)?;
                self.apply_binop(*op, a, b)
            }
            Expr::If {
                branches,
                otherwise,
            } => {
                let arm =
                    self.select_arm(branches, otherwise, state, children, limb_vals, locals)?;
                match arm {
                    [single] => self.eval_expr(single, state, children, limb_vals, locals),
                    _ => Err(EvalError::Corrupt(
                        "multi-expression arm outside a multi-target rule".to_owned(),
                    )),
                }
            }
        }
    }

    fn apply_binop(&self, op: BinOp, a: Value, b: Value) -> Result<Value, EvalError> {
        let int = |v: &Value| -> Result<i64, EvalError> {
            match v {
                Value::Int(i) => Ok(*i),
                other => Err(EvalError::Func(FuncError::Type {
                    name: op.to_string(),
                    expected: "int",
                    got: other.type_name(),
                })),
            }
        };
        let boolean = |v: &Value| -> Result<bool, EvalError> {
            match v {
                Value::Bool(b) => Ok(*b),
                other => Err(EvalError::Func(FuncError::Type {
                    name: op.to_string(),
                    expected: "bool",
                    got: other.type_name(),
                })),
            }
        };
        Ok(match op {
            BinOp::Add => Value::Int(int(&a)?.wrapping_add(int(&b)?)),
            BinOp::Sub => Value::Int(int(&a)?.wrapping_sub(int(&b)?)),
            BinOp::And => Value::Bool(boolean(&a)? && boolean(&b)?),
            BinOp::Or => Value::Bool(boolean(&a)? || boolean(&b)?),
            BinOp::Eq => Value::Bool(a == b),
            BinOp::Ne => Value::Bool(a != b),
            BinOp::Gt => Value::Bool(int(&a)? > int(&b)?),
            BinOp::Lt => Value::Bool(int(&a)? < int(&b)?),
        })
    }

    // ---- static-subsumption global protocol ---------------------------

    /// Before visiting child `i`: install this-pass inherited static
    /// values in the globals. Subsumed copies must already be there
    /// (verified); other definitions save the old value and set the new
    /// one.
    fn pre_visit_globals(
        &mut self,
        prod: ProdId,
        i: u16,
        state: &NodeState,
        children: &[Option<NodeState>],
        locals: &HashMap<AttrOcc, Value>,
    ) -> Result<Vec<(GroupId, Option<Value>)>, EvalError> {
        let g = &self.analysis.grammar;
        let sub = &self.analysis.subsumption;
        let child_sym = g.production(prod).rhs[i as usize];
        let mut saves = Vec::new();
        for &a in &g.symbol(child_sym).attrs {
            if g.attr(a).class != AttrClass::Inherited
                || self.analysis.passes.pass_of(a) != self.pass
                || !sub.is_static(a)
            {
                continue;
            }
            let occ = AttrOcc::rhs(i, a);
            let val = self.resolve(occ, state, children, &HashMap::new(), locals)?;
            let group = sub.group_of(a);
            let def_subsumed = g
                .production(prod)
                .rules
                .iter()
                .find(|&&r| g.rule(r).targets.contains(&occ))
                .is_some_and(|&r| sub.is_subsumed(r));
            if def_subsumed {
                self.stats.globals_checked += 1;
                if self.globals.get(&group) != Some(&val) {
                    self.stats.globals_repaired += 1;
                    self.globals.insert(group, val);
                }
            } else {
                saves.push((group, self.globals.insert(group, val)));
            }
        }
        Ok(saves)
    }

    /// After visiting child `i`: verify the child's this-pass synthesized
    /// static values arrived in the globals, then restore what we saved.
    fn post_visit_globals(
        &mut self,
        prod: ProdId,
        i: u16,
        children: &[Option<NodeState>],
        saves: Vec<(GroupId, Option<Value>)>,
    ) {
        let g = &self.analysis.grammar;
        let sub = &self.analysis.subsumption;
        let child_sym = g.production(prod).rhs[i as usize];
        if let Some(child) = children[i as usize].as_ref() {
            for &a in &g.symbol(child_sym).attrs {
                if g.attr(a).class != AttrClass::Synthesized
                    || self.analysis.passes.pass_of(a) != self.pass
                    || !sub.is_static(a)
                {
                    continue;
                }
                if let Some(val) = child.values.get(&a) {
                    let group = sub.group_of(a);
                    self.stats.globals_checked += 1;
                    if self.globals.get(&group) != Some(val) {
                        self.stats.globals_repaired += 1;
                        self.globals.insert(group, val.clone());
                    }
                }
            }
        }
        for (group, old) in saves.into_iter().rev() {
            match old {
                Some(v) => self.globals.insert(group, v),
                None => self.globals.remove(&group),
            };
        }
    }

    /// Procedure end: leave this node's this-pass synthesized static
    /// values in the globals for the parent. A subsumed upward copy means
    /// the value should already be there (verified).
    fn end_globals(&mut self, prod: ProdId, state: &NodeState) {
        let g = &self.analysis.grammar;
        let sub = &self.analysis.subsumption;
        for &a in &g.symbol(state.sym).attrs {
            if g.attr(a).class != AttrClass::Synthesized
                || self.analysis.passes.pass_of(a) != self.pass
                || !sub.is_static(a)
            {
                continue;
            }
            let Some(val) = state.values.get(&a) else {
                continue;
            };
            let group = sub.group_of(a);
            let occ = AttrOcc::lhs(a);
            let def_subsumed = g
                .production(prod)
                .rules
                .iter()
                .find(|&&r| g.rule(r).targets.contains(&occ))
                .is_some_and(|&r| sub.is_subsumed(r));
            if def_subsumed {
                self.stats.globals_checked += 1;
                if self.globals.get(&group) != Some(val) {
                    self.stats.globals_repaired += 1;
                    self.globals.insert(group, val.clone());
                }
            } else {
                self.globals.insert(group, val.clone());
            }
        }
    }
}

/// Per-evaluation intermediate storage: a temp directory of real files
/// (the paper), a job-owned set of RAM buffers (the shared-nothing batch
/// hot path), or the legacy mutex-guarded RAM store (the contention
/// ablation). Each evaluation builds its own `Store`, so jobs running on
/// different batch-evaluator threads never share intermediate state.
enum Store {
    Disk(TempAptDir),
    /// A caller-owned persistent checkpoint directory: same file layout
    /// as [`Store::Disk`], but it survives the evaluation (and the
    /// process) so a resumed run can pick its boundary files back up.
    Dir(PathBuf),
    /// Shared-nothing RAM store. Writers append to a plain owned
    /// `Vec<u8>` ([`AptWriter::create_owned`]); [`Store::finish`] seals
    /// the completed boundary into an immutable `Arc<Vec<u8>>` that
    /// readers share lock-free ([`AptReader::open_shared`]). The map is
    /// only touched at pass boundaries (one `RefCell` borrow per
    /// open/seal), never per record — and only updated on a *successful*
    /// finish, so a failed pass attempt simply drops its half-written
    /// buffer while boundary `k-1` stays intact for the retry. `RefCell`
    /// (not `Mutex`) is sound because a `Store` never leaves the
    /// evaluation's thread.
    Memory(RefCell<HashMap<u16, Arc<Vec<u8>>>>),
    /// The legacy shared store: one `Arc<Mutex<Vec<u8>>>` per boundary,
    /// locked on every record read and write. `lock_tally` counts every
    /// acquisition so [`EvalStats::lock_acquisitions`] can expose what
    /// the owned path saves.
    SharedMemory {
        files: Mutex<HashMap<u16, MemFile>>,
        lock_tally: Arc<AtomicU64>,
    },
}

impl Store {
    fn new(backing: Backing) -> Result<Store, AptError> {
        Ok(match backing {
            Backing::Disk => Store::Disk(TempAptDir::new()?),
            Backing::Memory => Store::Memory(RefCell::new(HashMap::new())),
            Backing::SharedMemory => Store::SharedMemory {
                files: Mutex::new(HashMap::new()),
                lock_tally: Arc::new(AtomicU64::new(0)),
            },
        })
    }

    fn buffer(&self, k: u16) -> MemFile {
        match self {
            Store::SharedMemory { files, lock_tally } => {
                lock_tally.fetch_add(1, Ordering::Relaxed);
                files
                    .lock()
                    .expect("store poisoned")
                    .entry(k)
                    .or_insert_with(|| Arc::new(Mutex::new(Vec::new())))
                    .clone()
            }
            Store::Disk(_) | Store::Dir(_) | Store::Memory(_) => {
                unreachable!("buffer() is shared-memory-only")
            }
        }
    }

    /// The sealed boundary-`k` buffer (empty if the boundary was never
    /// finished — the reader then rejects it as truncated, exactly like a
    /// missing file).
    fn sealed(&self, k: u16) -> Arc<Vec<u8>> {
        match self {
            Store::Memory(files) => files.borrow().get(&k).cloned().unwrap_or_default(),
            _ => unreachable!("sealed() is owned-memory-only"),
        }
    }

    fn writer(&self, k: u16) -> Result<AptWriter, AptError> {
        match self {
            Store::Disk(dir) => AptWriter::create(&dir.boundary(k)),
            Store::Dir(dir) => AptWriter::create(&boundary_path(dir, k)),
            Store::Memory(_) => Ok(AptWriter::create_owned()),
            Store::SharedMemory { lock_tally, .. } => {
                let mut w = AptWriter::create_mem(self.buffer(k));
                // `create_mem` locked once to truncate and stamp the
                // placeholder header, before the tally was attached.
                lock_tally.fetch_add(1, Ordering::Relaxed);
                w.set_lock_tally(lock_tally.clone());
                Ok(w)
            }
        }
    }

    fn reader(&self, k: u16, dir_: ReadDir) -> Result<AptReader, AptError> {
        match self {
            Store::Disk(dir) => AptReader::open(&dir.boundary(k), dir_),
            Store::Dir(dir) => AptReader::open(&boundary_path(dir, k), dir_),
            Store::Memory(_) => AptReader::open_shared(self.sealed(k), dir_),
            Store::SharedMemory { lock_tally, .. } => {
                let mut r = AptReader::open_mem(self.buffer(k), dir_)?;
                // `open_mem` locked once to validate the header, before
                // the tally was attached.
                lock_tally.fetch_add(1, Ordering::Relaxed);
                r.set_lock_tally(lock_tally.clone());
                Ok(r)
            }
        }
    }

    /// Complete boundary `k`: patch the header and, on the owned-memory
    /// path, seal the buffer into the store so the next pass can read it
    /// lock-free. The map is untouched on failure, keeping retries safe.
    fn finish(&self, k: u16, w: AptWriter) -> Result<FileSummary, AptError> {
        match self {
            Store::Memory(files) => {
                let (summary, buf) = w.finish_owned()?;
                files.borrow_mut().insert(k, Arc::new(buf));
                Ok(summary)
            }
            Store::Disk(_) | Store::Dir(_) | Store::SharedMemory { .. } => w.finish_summary(),
        }
    }

    /// Mutex acquisitions performed so far (always zero outside
    /// [`Store::SharedMemory`]).
    fn lock_acquisitions(&self) -> u64 {
        match self {
            Store::SharedMemory { lock_tally, .. } => lock_tally.load(Ordering::Relaxed),
            _ => 0,
        }
    }
}
