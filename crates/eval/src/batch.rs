//! Parallel batch evaluation over a fixed worker pool.
//!
//! The paper's evaluator is strictly sequential — one APT streamed
//! through two intermediate files. A production translator, however,
//! faces *many* independent inputs (a compilation unit per source file),
//! and nothing in the paradigm couples two evaluations: each builds its
//! own initial file, alternates over its own pair of intermediates, and
//! never touches shared mutable state. [`BatchEvaluator`] exploits that
//! independence, fanning N parse trees out over a fixed pool of
//! `std::thread` workers.
//!
//! Per-job isolation is structural, not locked-in: every call to
//! [`evaluate`] constructs its own intermediate store (a fresh
//! [`TempAptDir`](crate::aptfile::TempAptDir) on disk, or a private set
//! of [`MemFile`](crate::aptfile::MemFile) buffers in RAM), so two jobs
//! can never observe each other's boundary files. The shared inputs —
//! the [`Analysis`] and the [`Funcs`] registry — are read-only and
//! `Sync`, crossed by reference via `std::thread::scope`.
//!
//! Results come back in input order together with a [`BatchStats`]
//! aggregate: per-pass I/O and rule counts summed across jobs (pass *k*
//! of every job contributes to slot *k*), plus wall time and jobs/sec
//! for throughput experiments.

use crate::aptfile::AptError;
use crate::funcs::Funcs;
use crate::machine::{evaluate, EvalError, EvalOptions, Evaluation, PassStats};
use crate::metrics::EvalMetrics;
use crate::tree::PTree;
use linguist_ag::analysis::Analysis;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// The category of a failed batch job — a typed projection of
/// [`EvalError`] that survives aggregation into [`BatchStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// Intermediate-file I/O failure (including injected faults).
    Io,
    /// Malformed record payload.
    Decode,
    /// Corrupt record framing.
    Frame,
    /// A record failed its CRC-32 — bytes flipped after the writer
    /// framed them.
    Checksum,
    /// Rejected APT file header.
    Header,
    /// Semantic-function failure.
    Func,
    /// Tree/grammar mismatch.
    Tree,
    /// Strategy/first-direction mismatch.
    Strategy,
    /// Corrupt APT stream.
    Corrupt,
    /// Missing attribute instance.
    Missing,
    /// The job's code panicked; the supervisor caught the unwind.
    Panicked,
    /// The job exceeded its wall-clock deadline.
    Deadline,
    /// Checkpoint-manifest failure.
    Manifest,
}

impl FailureKind {
    /// Classify an evaluation error. APT errors are classified by their
    /// *root* cause, so file/pass context wrapping never hides the kind.
    pub fn of(e: &EvalError) -> FailureKind {
        match e {
            EvalError::Apt(a) => match a.root() {
                AptError::Io(_) => FailureKind::Io,
                AptError::Decode(_) => FailureKind::Decode,
                AptError::Frame { .. } => FailureKind::Frame,
                AptError::Checksum { .. } => FailureKind::Checksum,
                AptError::Header(_) => FailureKind::Header,
                AptError::File { .. } => unreachable!("root() strips File context"),
            },
            EvalError::Func(_) => FailureKind::Func,
            EvalError::Tree(_) => FailureKind::Tree,
            EvalError::StrategyMismatch { .. } => FailureKind::Strategy,
            EvalError::Corrupt(_) => FailureKind::Corrupt,
            EvalError::Missing(_) => FailureKind::Missing,
            EvalError::Panicked(_) => FailureKind::Panicked,
            EvalError::Deadline { .. } => FailureKind::Deadline,
            EvalError::Manifest(_) => FailureKind::Manifest,
        }
    }

    /// Stable lower-case name, used in `--profile` JSON output and as
    /// the `error.kind` field of `linguist-serve` wire replies.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureKind::Io => "io",
            FailureKind::Decode => "decode",
            FailureKind::Frame => "frame",
            FailureKind::Checksum => "checksum",
            FailureKind::Header => "header",
            FailureKind::Func => "func",
            FailureKind::Tree => "tree",
            FailureKind::Strategy => "strategy",
            FailureKind::Corrupt => "corrupt",
            FailureKind::Missing => "missing",
            FailureKind::Panicked => "panicked",
            FailureKind::Deadline => "deadline",
            FailureKind::Manifest => "manifest",
        }
    }

    /// Inverse of [`as_str`](FailureKind::as_str): service clients
    /// reconstruct the typed kind from a wire reply.
    pub fn parse(name: &str) -> Option<FailureKind> {
        const ALL: &[FailureKind] = &[
            FailureKind::Io,
            FailureKind::Decode,
            FailureKind::Frame,
            FailureKind::Checksum,
            FailureKind::Header,
            FailureKind::Func,
            FailureKind::Tree,
            FailureKind::Strategy,
            FailureKind::Corrupt,
            FailureKind::Missing,
            FailureKind::Panicked,
            FailureKind::Deadline,
            FailureKind::Manifest,
        ];
        ALL.iter().copied().find(|k| k.as_str() == name)
    }
}

/// One failed job, recorded in [`BatchStats::failures`].
#[derive(Clone, Debug)]
pub struct JobFailure {
    /// Input-order index of the failed job.
    pub job: usize,
    /// Typed failure category.
    pub kind: FailureKind,
    /// Rendered error message.
    pub message: String,
}

/// Aggregated measurements over one batch run.
#[derive(Clone, Debug, Default)]
pub struct BatchStats {
    /// Number of trees submitted.
    pub jobs: usize,
    /// Number of jobs that returned an error.
    pub failed: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Pass-by-pass totals: slot *k* sums pass *k* of every successful
    /// job (durations sum CPU-side pass time across workers, so they can
    /// exceed wall time).
    pub per_pass: Vec<PassStats>,
    /// Total bytes moved through intermediate files, all jobs.
    pub total_io_bytes: u64,
    /// Total semantic functions evaluated, all jobs.
    pub total_rules: u64,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Pass attempts re-run under the jobs'
    /// [`RetryPolicy`](crate::machine::RetryPolicy), summed across
    /// successful jobs.
    pub retried: u64,
    /// Jobs that succeeded only after at least one retried pass — the
    /// runs a non-recovering batch would have failed.
    pub recovered: usize,
    /// Jobs whose code panicked; the supervisor caught the unwind and
    /// recorded a [`FailureKind::Panicked`] failure instead of letting
    /// the panic poison the coordinator.
    pub panicked: usize,
    /// Mutex acquisitions the jobs' intermediate stores performed,
    /// summed across successful jobs at join time. Zero on the
    /// shared-nothing [`Backing::Memory`](crate::machine::Backing::Memory)
    /// and disk paths; counts every per-record lock under the legacy
    /// [`Backing::SharedMemory`](crate::machine::Backing::SharedMemory)
    /// ablation.
    pub lock_acquisitions: u64,
    /// One typed entry per failed job, in input order.
    pub failures: Vec<JobFailure>,
    /// Aggregated pass-level profile across successful jobs, present
    /// when the batch evaluated with
    /// [`EvalOptions::profile`](crate::machine::EvalOptions::profile) on.
    pub metrics: Option<EvalMetrics>,
}

impl BatchStats {
    /// Completed jobs (successful or not) per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.jobs as f64 / self.wall.as_secs_f64()
    }

    fn absorb(&mut self, stats: &crate::machine::EvalStats) {
        if self.per_pass.len() < stats.passes.len() {
            self.per_pass
                .resize_with(stats.passes.len(), PassStats::default);
        }
        for (slot, pass) in self.per_pass.iter_mut().zip(&stats.passes) {
            slot.duration += pass.duration;
            slot.bytes_read += pass.bytes_read;
            slot.bytes_written += pass.bytes_written;
            slot.records_read += pass.records_read;
            slot.records_written += pass.records_written;
            slot.rules_evaluated += pass.rules_evaluated;
        }
        self.total_io_bytes += stats.total_io_bytes();
        self.total_rules += stats.total_rules();
        self.lock_acquisitions += stats.lock_acquisitions;
    }

    fn absorb_metrics(&mut self, metrics: &EvalMetrics) {
        self.metrics
            .get_or_insert_with(EvalMetrics::default)
            .merge(metrics);
    }
}

/// The result of [`BatchEvaluator::run`].
#[derive(Debug)]
pub struct BatchOutcome {
    /// One result per input tree, in input order.
    pub results: Vec<Result<Evaluation, EvalError>>,
    /// Aggregate measurements.
    pub stats: BatchStats,
}

impl BatchOutcome {
    /// Iterate over the successful evaluations, in input order.
    pub fn successes(&self) -> impl Iterator<Item = &Evaluation> {
        self.results.iter().filter_map(|r| r.as_ref().ok())
    }
}

/// Evaluates batches of parse trees concurrently on a fixed thread pool.
///
/// # Example
///
/// ```no_run
/// use linguist_eval::batch::BatchEvaluator;
/// # fn demo(analysis: &linguist_ag::analysis::Analysis,
/// #         funcs: &linguist_eval::funcs::Funcs,
/// #         trees: Vec<linguist_eval::tree::PTree>) {
/// let batch = BatchEvaluator::new(4);
/// let outcome = batch.run(analysis, funcs, &trees);
/// println!("{:.1} jobs/sec", outcome.stats.jobs_per_sec());
/// # }
/// ```
/// A pluggable evaluation backend for batch jobs.
///
/// The compiled-evaluator engine (`linguist-engine`) supplies one to
/// route jobs through compiled code instead of the interpreter; the
/// indirection keeps `linguist-eval` free of a dependency on the engine
/// while letting `BatchEvaluator` stay the single batch front door. The
/// hook runs under the same panic fence as the interpreter, so a
/// misbehaving backend becomes a per-job [`FailureKind::Panicked`], not
/// a dead worker.
pub type EvalBackend = std::sync::Arc<
    dyn Fn(&Analysis, &Funcs, &PTree, &EvalOptions) -> Result<Evaluation, EvalError> + Send + Sync,
>;

#[derive(Clone)]
pub struct BatchEvaluator {
    workers: usize,
    opts: EvalOptions,
    backend: Option<EvalBackend>,
}

impl std::fmt::Debug for BatchEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchEvaluator")
            .field("workers", &self.workers)
            .field("opts", &self.opts)
            .field("backend", &self.backend.as_ref().map(|_| "custom"))
            .finish()
    }
}

impl BatchEvaluator {
    /// A pool of `workers` threads with default [`EvalOptions`].
    /// `workers` is clamped to at least 1.
    pub fn new(workers: usize) -> BatchEvaluator {
        BatchEvaluator::with_options(workers, EvalOptions::default())
    }

    /// A pool of `workers` threads evaluating with `opts`.
    pub fn with_options(workers: usize, opts: EvalOptions) -> BatchEvaluator {
        BatchEvaluator {
            workers: workers.max(1),
            opts,
            backend: None,
        }
    }

    /// Route every job through `backend` instead of the interpreter
    /// (e.g. the compiled-evaluator engine). The backend is expected to
    /// be result-identical to [`evaluate`]; it still runs under the
    /// per-job panic fence.
    pub fn with_backend(mut self, backend: EvalBackend) -> BatchEvaluator {
        self.backend = Some(backend);
        self
    }

    /// Configured pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The options each job evaluates with.
    pub fn options(&self) -> &EvalOptions {
        &self.opts
    }

    /// Evaluate every tree in `trees` against the same analysis and
    /// function registry, in parallel, returning per-job results in
    /// input order plus aggregate [`BatchStats`].
    ///
    /// A job that fails records its [`EvalError`] in its result slot and
    /// in `stats.failed`; it never aborts the rest of the batch. That
    /// holds even for *panics*: every job runs under `catch_unwind`, so a
    /// panicking semantic function becomes a [`FailureKind::Panicked`]
    /// failure for that one job while its worker thread carries on with
    /// the next — the coordinator never sees a missing result slot.
    pub fn run(&self, analysis: &Analysis, funcs: &Funcs, trees: &[PTree]) -> BatchOutcome {
        let started = Instant::now();
        let n = trees.len();
        let pool = self.workers.min(n.max(1));
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<Evaluation, EvalError>)>();

        std::thread::scope(|scope| {
            for _ in 0..pool {
                let tx = tx.clone();
                let next = &next;
                let opts = self.opts.clone();
                let backend = self.backend.clone();
                scope.spawn(move || {
                    // Workers claim the next unstarted tree until the
                    // batch is drained — natural load balancing when
                    // tree sizes vary.
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let result = match &backend {
                            Some(b) => supervised(|| b(analysis, funcs, &trees[i], &opts)),
                            None => supervised_evaluate(analysis, funcs, &trees[i], &opts),
                        };
                        if tx.send((i, result)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);

            let mut slots: Vec<Option<Result<Evaluation, EvalError>>> =
                (0..n).map(|_| None).collect();
            for (i, result) in rx {
                slots[i] = Some(result);
            }

            let mut stats = BatchStats {
                jobs: n,
                workers: pool,
                ..BatchStats::default()
            };
            // Defense in depth: `supervised_evaluate` already converts
            // panics into results, but if a worker nevertheless died
            // without reporting, record a typed failure for its job
            // instead of panicking the coordinator too.
            let results: Vec<Result<Evaluation, EvalError>> = slots
                .into_iter()
                .map(|slot| {
                    slot.unwrap_or_else(|| {
                        Err(EvalError::Panicked(
                            "worker died without reporting a result".to_owned(),
                        ))
                    })
                })
                .collect();
            for (i, r) in results.iter().enumerate() {
                match r {
                    Ok(eval) => {
                        stats.absorb(&eval.stats);
                        stats.retried += eval.stats.retries;
                        if eval.stats.retries > 0 {
                            stats.recovered += 1;
                        }
                        if let Some(m) = &eval.metrics {
                            stats.absorb_metrics(m);
                        }
                    }
                    Err(e) => {
                        let kind = FailureKind::of(e);
                        if kind == FailureKind::Panicked {
                            stats.panicked += 1;
                        }
                        stats.failed += 1;
                        stats.failures.push(JobFailure {
                            job: i,
                            kind,
                            message: e.to_string(),
                        });
                    }
                }
            }
            stats.wall = started.elapsed();
            BatchOutcome { results, stats }
        })
    }
}

/// Run one evaluation with panic isolation: an unwind out of `evaluate`
/// (a buggy user-registered semantic function, say) is caught and
/// converted into [`EvalError::Panicked`] carrying the panic message.
///
/// `AssertUnwindSafe` is sound here because the job's entire mutable
/// state (its store, machine, meter) is constructed inside `evaluate`
/// and dropped with the unwind — nothing observable survives in a
/// broken state. The shared `analysis`/`funcs` are only read.
pub fn supervised_evaluate(
    analysis: &Analysis,
    funcs: &Funcs,
    tree: &PTree,
    opts: &EvalOptions,
) -> Result<Evaluation, EvalError> {
    supervised(|| evaluate(analysis, funcs, tree, opts))
}

/// The batch workers' panic fence, as a standalone building block: run
/// `job`, converting an unwind into [`EvalError::Panicked`] with the
/// panic message. `linguist-serve`'s resident worker pool wraps every
/// request in this, so one panicking semantic function answers *its own*
/// client with a typed failure instead of killing a pool thread.
///
/// The same `AssertUnwindSafe` argument as [`supervised_evaluate`]
/// applies: callers must pass jobs whose mutable state dies with the
/// unwind.
pub fn supervised<T>(job: impl FnOnce() -> Result<T, EvalError>) -> Result<T, EvalError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)) {
        Ok(result) => result,
        Err(payload) => Err(EvalError::Panicked(panic_message(payload))),
    }
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    // The tentpole invariant, enforced at compile time: everything a
    // worker thread touches must cross the scope boundary.
    #[test]
    fn shared_evaluation_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Analysis>();
        assert_send_sync::<Funcs>();
        assert_send_sync::<PTree>();
        assert_send_sync::<Value>();
        assert_send_sync::<Evaluation>();
        assert_send_sync::<EvalError>();
        assert_send_sync::<BatchStats>();
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(BatchEvaluator::new(0).workers(), 1);
        assert_eq!(BatchEvaluator::new(8).workers(), 8);
    }

    fn leaf_sum_analysis() -> (
        Analysis,
        linguist_ag::ids::SymbolId,
        linguist_ag::ids::AttrId,
    ) {
        use linguist_ag::analysis::Config;
        use linguist_ag::expr::{BinOp, Expr};
        use linguist_ag::grammar::AgBuilder;
        use linguist_ag::ids::AttrOcc;

        // S -> S x | x, S.V = sum of the leaves' OBJ values.
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p0 = b.production(s, vec![s, x], None);
        b.rule(
            p0,
            vec![AttrOcc::lhs(v)],
            Expr::binop(
                BinOp::Add,
                Expr::Occ(AttrOcc::rhs(0, v)),
                Expr::Occ(AttrOcc::rhs(1, obj)),
            ),
        );
        let p1 = b.production(s, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(v)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.start(s);
        let analysis = Analysis::run(b.build().unwrap(), &Config::default()).unwrap();
        (analysis, x, obj)
    }

    fn chain_tree(
        x: linguist_ag::ids::SymbolId,
        obj: linguist_ag::ids::AttrId,
        leaves: i64,
    ) -> PTree {
        use linguist_ag::ids::ProdId;
        let leaf = |n| PTree::leaf(x, vec![(obj, Value::Int(n))]);
        let mut t = PTree::node(ProdId(1), vec![leaf(1)]);
        for n in 2..=leaves {
            t = PTree::node(ProdId(0), vec![t, leaf(n)]);
        }
        t
    }

    #[test]
    fn empty_batch_returns_empty_outcome() {
        let (analysis, _, _) = leaf_sum_analysis();
        let batch = BatchEvaluator::new(4);
        let outcome = batch.run(&analysis, &Funcs::standard(), &[]);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.stats.jobs, 0);
        assert_eq!(outcome.stats.failed, 0);
        assert_eq!(outcome.stats.jobs_per_sec(), 0.0);
    }

    #[test]
    fn batch_matches_sequential_on_leaf_sums() {
        let (analysis, x, obj) = leaf_sum_analysis();
        let funcs = Funcs::standard();
        let trees: Vec<PTree> = (1..=12).map(|n| chain_tree(x, obj, n)).collect();

        let outcome = BatchEvaluator::new(4).run(&analysis, &funcs, &trees);
        assert_eq!(outcome.stats.jobs, 12);
        assert_eq!(outcome.stats.failed, 0);
        for (n, result) in (1i64..=12).zip(&outcome.results) {
            let eval = result.as_ref().expect("job succeeds");
            let seq = evaluate(
                &analysis,
                &funcs,
                &chain_tree(x, obj, n),
                &EvalOptions::default(),
            )
            .expect("sequential succeeds");
            assert_eq!(eval.outputs, seq.outputs, "job for {n} leaves diverged");
            assert_eq!(
                eval.output(&analysis, "V"),
                Some(&Value::Int(n * (n + 1) / 2))
            );
        }
    }

    #[test]
    fn stats_sum_per_job_stats() {
        let (analysis, x, obj) = leaf_sum_analysis();
        let funcs = Funcs::standard();
        let trees: Vec<PTree> = (1..=8).map(|n| chain_tree(x, obj, n)).collect();

        let outcome = BatchEvaluator::new(3).run(&analysis, &funcs, &trees);
        let (mut io, mut rules) = (0u64, 0u64);
        for eval in outcome.successes() {
            io += eval.stats.total_io_bytes();
            rules += eval.stats.total_rules();
        }
        assert_eq!(outcome.stats.total_io_bytes, io);
        assert_eq!(outcome.stats.total_rules, rules);
        let per_pass_rules: u64 = outcome
            .stats
            .per_pass
            .iter()
            .map(|p| p.rules_evaluated)
            .sum();
        assert_eq!(per_pass_rules, rules);
    }
}
