//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) for APT file integrity.
//!
//! Format v2 of the intermediate APT files stamps every record frame and
//! the file header with a CRC so corruption is detected at record
//! granularity ([`AptError::Checksum`](crate::aptfile::AptError::Checksum))
//! instead of being decoded as garbage attribute values. CRC-32 detects
//! all single-bit and single-byte errors and all burst errors up to 32
//! bits — exactly the failure modes a torn write or flipped disk byte
//! produces. No external dependency: the table is built at compile time.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (final value, standard init/xor-out).
pub fn crc32(bytes: &[u8]) -> u32 {
    update(0, bytes)
}

/// Continue a CRC-32: `update(crc32(a), b) == crc32(a ++ b)`.
///
/// The [`AptWriter`](crate::aptfile::AptWriter) uses this to keep a
/// running checksum of every framed body byte it emits, so a whole-file
/// checksum is available at [`finish`](crate::aptfile::AptWriter::finish)
/// time without a second read.
pub fn update(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The universal CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn update_chains_like_concatenation() {
        let whole = crc32(b"hello, world");
        let chained = update(crc32(b"hello, "), b"world");
        assert_eq!(whole, chained);
    }

    #[test]
    fn single_byte_flips_always_change_the_crc() {
        let base = b"the quick brown fox jumps over the lazy dog";
        let reference = crc32(base);
        for i in 0..base.len() {
            let mut corrupt = base.to_vec();
            corrupt[i] ^= 0xFF;
            assert_ne!(crc32(&corrupt), reference, "flip at {} undetected", i);
        }
    }
}
