//! Parse trees and their linearization into the initial APT file.
//!
//! §II gives two ways to build the first linearized APT file:
//!
//! 1. "for the parser to emit tree nodes in bottom-up order. This creates
//!    an intermediate APT file that is identical to what would have been
//!    created by a left-to-right attribute evaluator … the first attribute
//!    evaluation pass is right-to-left." ([`PTree::write_postfix`])
//! 2. "for the parser to emit nodes in prefix order, like a recursive
//!    descent parser … the first semantic pass is a left-to-right pass."
//!    ([`PTree::write_prefix`])
//!
//! LINGUIST-86 itself uses the first method; both are supported here and
//! must produce identical results (experiment E14).

use crate::aptfile::{AptError, AptWriter, Record, RecordBody};
use crate::value::Value;
use linguist_ag::grammar::Grammar;
use linguist_ag::ids::{AttrId, ProdId, SymbolId};
use linguist_ag::lifetime::Lifetimes;
use std::fmt;

/// An explicit parse tree, used to seed an evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PTree {
    /// A terminal leaf with its parser-set intrinsic attributes.
    Leaf {
        /// The terminal symbol.
        sym: SymbolId,
        /// Intrinsic attribute values (the paper's name-table indices,
        /// source locations, …).
        intrinsics: Vec<(AttrId, Value)>,
    },
    /// An interior node: a production applied to children.
    Node {
        /// The production.
        prod: ProdId,
        /// Children, left to right, matching the production's RHS.
        children: Vec<PTree>,
    },
}

impl PTree {
    /// Leaf constructor.
    pub fn leaf(sym: SymbolId, intrinsics: Vec<(AttrId, Value)>) -> PTree {
        PTree::Leaf { sym, intrinsics }
    }

    /// Interior-node constructor.
    pub fn node(prod: ProdId, children: Vec<PTree>) -> PTree {
        PTree::Node { prod, children }
    }

    /// Total number of nodes.
    pub fn size(&self) -> usize {
        match self {
            PTree::Leaf { .. } => 1,
            PTree::Node { children, .. } => 1 + children.iter().map(PTree::size).sum::<usize>(),
        }
    }

    /// Height of the tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            PTree::Leaf { .. } => 1,
            PTree::Node { children, .. } => {
                1 + children.iter().map(PTree::depth).max().unwrap_or(0)
            }
        }
    }

    /// The grammar symbol labelling this node.
    pub fn symbol(&self, g: &Grammar) -> SymbolId {
        match self {
            PTree::Leaf { sym, .. } => *sym,
            PTree::Node { prod, .. } => g.production(*prod).lhs,
        }
    }

    /// Check the tree is structurally valid for `g`: each node's children
    /// match its production's RHS symbols.
    ///
    /// # Errors
    ///
    /// Returns a rendered description of the first mismatch.
    pub fn validate(&self, g: &Grammar) -> Result<(), TreeError> {
        match self {
            PTree::Leaf { .. } => Ok(()),
            PTree::Node { prod, children } => {
                let p = g.production(*prod);
                if p.rhs.len() != children.len() {
                    return Err(TreeError {
                        message: format!(
                            "production {} expects {} children, tree node has {}",
                            prod.0,
                            p.rhs.len(),
                            children.len()
                        ),
                    });
                }
                for (i, (child, &want)) in children.iter().zip(p.rhs.iter()).enumerate() {
                    let got = child.symbol(g);
                    if got != want {
                        return Err(TreeError {
                            message: format!(
                                "child {} of production {}: expected {}, found {}",
                                i,
                                prod.0,
                                g.symbol_name(want),
                                g.symbol_name(got)
                            ),
                        });
                    }
                    child.validate(g)?;
                }
                Ok(())
            }
        }
    }

    fn sym_record(&self, g: &Grammar, lt: &Lifetimes) -> Record {
        match self {
            PTree::Leaf { sym, intrinsics } => {
                let mut values: Vec<(AttrId, Value)> = intrinsics
                    .iter()
                    .filter(|(a, _)| lt.alive_across(*a, 0))
                    .cloned()
                    .collect();
                values.sort_by_key(|(a, _)| *a);
                Record {
                    body: RecordBody::Sym(*sym),
                    values,
                }
            }
            PTree::Node { prod, .. } => Record {
                body: RecordBody::Sym(g.production(*prod).lhs),
                values: Vec::new(),
            },
        }
    }

    /// Strategy 1: write the bottom-up (postfix) initial file — exactly the
    /// stream a shift/reduce parser emits. Returns `(bytes, records)`.
    ///
    /// # Errors
    ///
    /// Propagates [`AptError`] I/O failures.
    pub fn write_postfix(
        &self,
        g: &Grammar,
        lt: &Lifetimes,
        w: &mut AptWriter,
    ) -> Result<(), AptError> {
        if let PTree::Node { prod, children } = self {
            for c in children {
                c.write_postfix(g, lt, w)?;
            }
            w.write(&Record {
                body: RecordBody::Prod(*prod),
                values: Vec::new(),
            })?;
        } else if lt.elides(g, self.symbol(g), 0) {
            // Attribute-free terminal under record elision: pass 1 will
            // not look for this record.
            return Ok(());
        }
        w.write(&self.sym_record(g, lt))
    }

    /// Strategy 2: write the prefix initial file (recursive-descent
    /// emission order).
    ///
    /// # Errors
    ///
    /// Propagates [`AptError`] I/O failures.
    pub fn write_prefix(
        &self,
        g: &Grammar,
        lt: &Lifetimes,
        w: &mut AptWriter,
    ) -> Result<(), AptError> {
        if matches!(self, PTree::Leaf { .. }) && lt.elides(g, self.symbol(g), 0) {
            return Ok(());
        }
        w.write(&self.sym_record(g, lt))?;
        if let PTree::Node { prod, children } = self {
            w.write(&Record {
                body: RecordBody::Prod(*prod),
                values: Vec::new(),
            })?;
            for c in children {
                c.write_prefix(g, lt, w)?;
            }
        }
        Ok(())
    }
}

/// A structural mismatch between a tree and its grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed parse tree: {}", self.message)
    }
}

impl std::error::Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aptfile::{AptReader, ReadDir, TempAptDir};
    use linguist_ag::expr::Expr;
    use linguist_ag::grammar::AgBuilder;
    use linguist_ag::ids::AttrOcc;
    use linguist_ag::passes::{assign_passes, Direction, PassConfig};

    /// S -> S x | x with S.V summing x.OBJ.
    fn grammar() -> (Grammar, Lifetimes) {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p0 = b.production(s, vec![s, x], None);
        b.rule(
            p0,
            vec![AttrOcc::lhs(v)],
            Expr::binop(
                linguist_ag::expr::BinOp::Add,
                Expr::Occ(AttrOcc::rhs(0, v)),
                Expr::Occ(AttrOcc::rhs(1, obj)),
            ),
        );
        let p1 = b.production(s, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(v)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.start(s);
        let g = b.build().unwrap();
        let pa = assign_passes(
            &g,
            &PassConfig {
                first_direction: Direction::RightToLeft,
                max_passes: 4,
            },
        )
        .unwrap();
        let lt = Lifetimes::compute(&g, &pa);
        (g, lt)
    }

    fn sample_tree(g: &Grammar) -> PTree {
        let x = g.symbol_by_name("x").unwrap();
        let obj = g.attr_by_name(x, "OBJ").unwrap();
        let leaf = |v: i64| PTree::leaf(x, vec![(obj, Value::Int(v))]);
        // S( S(x1), x2 )
        PTree::node(
            ProdId(0),
            vec![PTree::node(ProdId(1), vec![leaf(1)]), leaf(2)],
        )
    }

    #[test]
    fn size_and_depth() {
        let (g, _) = grammar();
        let t = sample_tree(&g);
        assert_eq!(t.size(), 4);
        assert_eq!(t.depth(), 3);
        t.validate(&g).unwrap();
    }

    #[test]
    fn validate_rejects_wrong_child() {
        let (g, _) = grammar();
        let x = g.symbol_by_name("x").unwrap();
        // Production 0 expects (S, x) but gets (x, x).
        let bad = PTree::node(
            ProdId(0),
            vec![PTree::leaf(x, vec![]), PTree::leaf(x, vec![])],
        );
        let err = bad.validate(&g).unwrap_err();
        assert!(err.to_string().contains("expected S"));
    }

    #[test]
    fn postfix_stream_matches_shift_reduce_order() {
        let (g, lt) = grammar();
        let t = sample_tree(&g);
        let dir = TempAptDir::new().unwrap();
        let mut w = AptWriter::create(&dir.boundary(0)).unwrap();
        t.write_postfix(&g, &lt, &mut w).unwrap();
        w.finish().unwrap();

        let mut r = AptReader::open(&dir.boundary(0), ReadDir::Forward).unwrap();
        let mut tags = Vec::new();
        while let Some(rec) = r.next().unwrap() {
            tags.push(rec.body);
        }
        // shift x1; reduce S->x (prod1, S); shift x2; reduce S->Sx (prod0, S)
        let x = g.symbol_by_name("x").unwrap();
        let s = g.symbol_by_name("S").unwrap();
        assert_eq!(
            tags,
            vec![
                RecordBody::Sym(x),
                RecordBody::Prod(ProdId(1)),
                RecordBody::Sym(s),
                RecordBody::Sym(x),
                RecordBody::Prod(ProdId(0)),
                RecordBody::Sym(s),
            ]
        );
    }

    #[test]
    fn prefix_stream_is_preorder() {
        let (g, lt) = grammar();
        let t = sample_tree(&g);
        let dir = TempAptDir::new().unwrap();
        let mut w = AptWriter::create(&dir.boundary(0)).unwrap();
        t.write_prefix(&g, &lt, &mut w).unwrap();
        w.finish().unwrap();

        let mut r = AptReader::open(&dir.boundary(0), ReadDir::Forward).unwrap();
        let mut tags = Vec::new();
        while let Some(rec) = r.next().unwrap() {
            tags.push(rec.body);
        }
        let x = g.symbol_by_name("x").unwrap();
        let s = g.symbol_by_name("S").unwrap();
        assert_eq!(
            tags,
            vec![
                RecordBody::Sym(s),
                RecordBody::Prod(ProdId(0)),
                RecordBody::Sym(s),
                RecordBody::Prod(ProdId(1)),
                RecordBody::Sym(x),
                RecordBody::Sym(x),
            ]
        );
    }

    #[test]
    fn postfix_backwards_equals_prefix_mirrored() {
        // The paper's diagram: an L-R postfix file read backwards is an
        // R-L prefix traversal. For our stream that means: reading the
        // postfix file backwards visits each node before its children,
        // with children in right-to-left order.
        let (g, lt) = grammar();
        let t = sample_tree(&g);
        let dir = TempAptDir::new().unwrap();
        let mut w = AptWriter::create(&dir.boundary(0)).unwrap();
        t.write_postfix(&g, &lt, &mut w).unwrap();
        w.finish().unwrap();

        let mut r = AptReader::open(&dir.boundary(0), ReadDir::Backward).unwrap();
        let mut tags = Vec::new();
        while let Some(rec) = r.next().unwrap() {
            tags.push(rec.body);
        }
        let x = g.symbol_by_name("x").unwrap();
        let s = g.symbol_by_name("S").unwrap();
        // Root sym, root prod, right child (x2), left child (S), its prod,
        // its leaf.
        assert_eq!(
            tags,
            vec![
                RecordBody::Sym(s),
                RecordBody::Prod(ProdId(0)),
                RecordBody::Sym(x),
                RecordBody::Sym(s),
                RecordBody::Prod(ProdId(1)),
                RecordBody::Sym(x),
            ]
        );
    }

    #[test]
    fn dead_intrinsics_are_not_written() {
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let v = b.synthesized(s, "V", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let dead = b.intrinsic(x, "UNUSED", "int");
        let p = b.production(s, vec![x], None);
        b.rule(p, vec![AttrOcc::lhs(v)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.start(s);
        let g = b.build().unwrap();
        let pa = assign_passes(&g, &PassConfig::default()).unwrap();
        let lt = Lifetimes::compute(&g, &pa);

        let t = PTree::node(
            ProdId(0),
            vec![PTree::leaf(
                x,
                vec![(obj, Value::Int(1)), (dead, Value::Int(9))],
            )],
        );
        let dir = TempAptDir::new().unwrap();
        let mut w = AptWriter::create(&dir.boundary(0)).unwrap();
        t.write_postfix(&g, &lt, &mut w).unwrap();
        w.finish().unwrap();
        let mut r = AptReader::open(&dir.boundary(0), ReadDir::Forward).unwrap();
        let leaf = r.next().unwrap().unwrap();
        assert!(leaf.value_of(obj).is_some());
        assert!(
            leaf.value_of(dead).is_none(),
            "never-referenced intrinsic must not be written (§III dead-attribute optimization)"
        );
    }
}
