//! Durable per-evaluation checkpoint manifests.
//!
//! The paper's evaluation paradigm materializes a complete boundary file
//! between passes anyway; the manifest is the small piece of bookkeeping
//! that turns those files into *checkpoints*. After each pass the
//! machine appends one [`PassEntry`] — the boundary's record/byte totals
//! and whole-body CRC from [`FileSummary`](crate::aptfile::FileSummary) —
//! and rewrites the manifest **atomically**: the new content goes to a
//! temp file, the temp file is fsynced, renamed over `MANIFEST`, and the
//! directory is fsynced. A crash at any instant therefore leaves either
//! the old manifest or the new one, never a torn mix, and a boundary is
//! only ever claimed *after* its file is durable (the writer fsyncs
//! before the manifest does).
//!
//! On resume, [`evaluate_resumable`](crate::machine::evaluate_resumable)
//! loads the manifest, walks its entries from the newest back, and
//! restarts after the last boundary whose on-disk file still matches its
//! recorded summary — so a corrupted or truncated checkpoint silently
//! degrades to an earlier one instead of poisoning the resumed run.
//!
//! Checkpointing is the one place the ownership model deliberately
//! *shares*: batch jobs on the hot path keep their whole working set in
//! a job-owned RAM store
//! ([`Backing::Memory`](crate::machine::Backing::Memory) — no mutex, no
//! cross-thread state), but a checkpoint directory is by definition
//! shared with future processes, so checkpointed evaluations always go
//! through real files, fsync, and this manifest regardless of backing.
//!
//! The format is a line-oriented text file (trivially inspectable in a
//! crash post-mortem):
//!
//! ```text
//! linguist86 manifest v1
//! strategy BottomUp
//! passes 4
//! boundary 0 154 4312 89abcdef
//! boundary 1 154 4980 00c0ffee
//! ```

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File name of the manifest inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// One completed pass boundary: the totals the boundary file must still
/// match for a resume to trust it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PassEntry {
    /// Boundary index (0 is the parser-built initial file; boundary `k`
    /// is the output of pass `k`).
    pub pass: u16,
    /// Records in the boundary file.
    pub records: u64,
    /// Framed body bytes in the boundary file.
    pub bytes: u64,
    /// CRC-32 over the boundary file's body.
    pub crc: u32,
}

/// The checkpoint manifest of one evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Initial-file strategy name (`BottomUp`/`Prefix`); a resumed run
    /// must use the same one or its read directions would not line up
    /// with the checkpointed files.
    pub strategy: String,
    /// Total passes the evaluation needs.
    pub num_passes: u16,
    /// Completed boundaries, oldest first.
    pub entries: Vec<PassEntry>,
}

/// A manifest that cannot be read, written, or parsed.
#[derive(Debug)]
pub enum ManifestError {
    /// Filesystem failure on the named path.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The manifest file exists but is not a manifest (or a newer,
    /// unknown version).
    Parse {
        /// The manifest path.
        path: PathBuf,
        /// 1-based line of the offending content.
        line: usize,
        /// What was wrong.
        msg: String,
    },
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Io { path, source } => {
                write!(f, "manifest {}: {}", path.display(), source)
            }
            ManifestError::Parse { path, line, msg } => {
                write!(f, "manifest {} line {}: {}", path.display(), line, msg)
            }
        }
    }
}

impl std::error::Error for ManifestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManifestError::Io { source, .. } => Some(source),
            ManifestError::Parse { .. } => None,
        }
    }
}

impl ManifestError {
    /// True when the failure is simply "no manifest there" — a fresh
    /// checkpoint directory, not a corrupt one.
    pub fn is_missing(&self) -> bool {
        matches!(
            self,
            ManifestError::Io { source, .. } if source.kind() == io::ErrorKind::NotFound
        )
    }
}

impl Manifest {
    /// A manifest for a fresh evaluation with no completed boundaries.
    pub fn new(strategy: &str, num_passes: u16) -> Manifest {
        Manifest {
            strategy: strategy.to_owned(),
            num_passes,
            entries: Vec::new(),
        }
    }

    /// Record boundary `entry.pass` as completed, replacing any previous
    /// claim for the same or a later boundary (a retried pass supersedes
    /// the attempt it replaces).
    pub fn record(&mut self, entry: PassEntry) {
        self.entries.retain(|e| e.pass < entry.pass);
        self.entries.push(entry);
    }

    /// The newest completed boundary, if any.
    pub fn last_completed(&self) -> Option<u16> {
        self.entries.last().map(|e| e.pass)
    }

    /// The recorded entry for boundary `pass`.
    pub fn entry(&self, pass: u16) -> Option<&PassEntry> {
        self.entries.iter().find(|e| e.pass == pass)
    }

    /// Path of the manifest inside checkpoint directory `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// Serialize the manifest text.
    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("linguist86 manifest v1\n");
        out.push_str(&format!("strategy {}\n", self.strategy));
        out.push_str(&format!("passes {}\n", self.num_passes));
        for e in &self.entries {
            out.push_str(&format!(
                "boundary {} {} {} {:08x}\n",
                e.pass, e.records, e.bytes, e.crc
            ));
        }
        out
    }

    /// Atomically (re)write the manifest in `dir`: temp file → fsync →
    /// rename → directory fsync. Interrupting this at any point leaves a
    /// readable manifest (old or new), never a torn one.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures with the offending path attached.
    pub fn save(&self, dir: &Path) -> Result<(), ManifestError> {
        let final_path = Manifest::path_in(dir);
        let tmp_path = dir.join(format!("{}.tmp", MANIFEST_FILE));
        let io_err = |path: &Path| {
            let path = path.to_path_buf();
            move |source| ManifestError::Io {
                path: path.clone(),
                source,
            }
        };
        {
            let mut tmp = File::create(&tmp_path).map_err(io_err(&tmp_path))?;
            tmp.write_all(self.render().as_bytes())
                .map_err(io_err(&tmp_path))?;
            tmp.sync_all().map_err(io_err(&tmp_path))?;
        }
        fs::rename(&tmp_path, &final_path).map_err(io_err(&final_path))?;
        // Rename durability needs the containing directory synced too.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Load the manifest from checkpoint directory `dir`.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Io`] when unreadable (see
    /// [`is_missing`](ManifestError::is_missing) for the benign case),
    /// [`ManifestError::Parse`] when the content is not a v1 manifest.
    pub fn load(dir: &Path) -> Result<Manifest, ManifestError> {
        let path = Manifest::path_in(dir);
        let text = fs::read_to_string(&path).map_err(|source| ManifestError::Io {
            path: path.clone(),
            source,
        })?;
        let parse_err = |line: usize, msg: &str| ManifestError::Parse {
            path: path.clone(),
            line,
            msg: msg.to_owned(),
        };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "linguist86 manifest v1")) => {}
            _ => return Err(parse_err(1, "bad or missing manifest magic")),
        }
        let strategy = match lines.next() {
            Some((_, l)) if l.starts_with("strategy ") => l["strategy ".len()..].to_owned(),
            _ => return Err(parse_err(2, "expected a strategy line")),
        };
        let num_passes = lines
            .next()
            .and_then(|(_, l)| l.strip_prefix("passes "))
            .and_then(|n| n.parse::<u16>().ok())
            .ok_or_else(|| parse_err(3, "expected a passes line"))?;
        let mut entries = Vec::new();
        for (i, l) in lines {
            if l.is_empty() {
                continue;
            }
            let fields: Vec<&str> = l.split(' ').collect();
            let entry = match fields.as_slice() {
                ["boundary", pass, records, bytes, crc] => PassEntry {
                    pass: pass
                        .parse()
                        .map_err(|_| parse_err(i + 1, "bad boundary index"))?,
                    records: records
                        .parse()
                        .map_err(|_| parse_err(i + 1, "bad record count"))?,
                    bytes: bytes
                        .parse()
                        .map_err(|_| parse_err(i + 1, "bad byte count"))?,
                    crc: u32::from_str_radix(crc, 16)
                        .map_err(|_| parse_err(i + 1, "bad checksum"))?,
                },
                _ => return Err(parse_err(i + 1, "expected a boundary line")),
            };
            if entries
                .last()
                .is_some_and(|prev: &PassEntry| prev.pass >= entry.pass)
            {
                return Err(parse_err(i + 1, "boundary entries out of order"));
            }
            entries.push(entry);
        }
        Ok(Manifest {
            strategy,
            num_passes,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aptfile::TempAptDir;

    fn sample() -> Manifest {
        let mut m = Manifest::new("BottomUp", 4);
        m.record(PassEntry {
            pass: 0,
            records: 154,
            bytes: 4312,
            crc: 0x89AB_CDEF,
        });
        m.record(PassEntry {
            pass: 1,
            records: 154,
            bytes: 4980,
            crc: 0x00C0_FFEE,
        });
        m
    }

    #[test]
    fn save_load_round_trips() {
        let dir = TempAptDir::new().unwrap();
        let m = sample();
        m.save(dir.path()).unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap(), m);
        assert_eq!(m.last_completed(), Some(1));
        assert_eq!(m.entry(0).unwrap().bytes, 4312);
    }

    #[test]
    fn record_supersedes_later_boundaries() {
        // A retried pass 1 invalidates the old boundaries 1 and 2.
        let mut m = sample();
        m.record(PassEntry {
            pass: 2,
            records: 10,
            bytes: 300,
            crc: 1,
        });
        m.record(PassEntry {
            pass: 1,
            records: 154,
            bytes: 5000,
            crc: 2,
        });
        assert_eq!(m.last_completed(), Some(1));
        assert_eq!(m.entry(1).unwrap().crc, 2);
        assert!(m.entry(2).is_none());
    }

    #[test]
    fn missing_manifest_is_distinguishable() {
        let dir = TempAptDir::new().unwrap();
        let err = Manifest::load(dir.path()).unwrap_err();
        assert!(err.is_missing(), "NotFound should read as missing: {}", err);
    }

    #[test]
    fn torn_or_garbled_manifests_are_typed_parse_errors() {
        let dir = TempAptDir::new().unwrap();
        for garbage in [
            "",
            "not a manifest",
            "linguist86 manifest v1\nstrategy BottomUp\n",
            "linguist86 manifest v1\nstrategy BottomUp\npasses 4\nboundary nope",
            "linguist86 manifest v1\nstrategy BottomUp\npasses 4\nboundary 1 1 19 zz\n",
            // Out-of-order boundaries (torn rewrite).
            "linguist86 manifest v1\nstrategy BottomUp\npasses 4\n\
             boundary 1 1 19 00000000\nboundary 0 1 19 00000000\n",
        ] {
            std::fs::write(Manifest::path_in(dir.path()), garbage).unwrap();
            match Manifest::load(dir.path()) {
                Err(ManifestError::Parse { .. }) => {}
                other => panic!("garbage {:?} accepted: {:?}", garbage, other),
            }
        }
    }

    #[test]
    fn save_replaces_atomically() {
        // Saving over an existing manifest leaves no temp file behind and
        // the final content is the new manifest.
        let dir = TempAptDir::new().unwrap();
        sample().save(dir.path()).unwrap();
        let mut m2 = sample();
        m2.record(PassEntry {
            pass: 2,
            records: 154,
            bytes: 5100,
            crc: 3,
        });
        m2.save(dir.path()).unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap(), m2);
        assert!(!dir.path().join(format!("{}.tmp", MANIFEST_FILE)).exists());
    }
}
