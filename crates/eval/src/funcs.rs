//! The external-function library.
//!
//! "Any identifier that is not a grammar symbol, attribute, or attribute
//! type is treated as an uninterpreted constant or function. All
//! type-checking, storage allocation, and interpretation of types,
//! constants, and functions is done by the compiler for the target
//! programming language" (§IV). Our interpreter plays that target-language
//! role: a [`Funcs`] registry binds the function names a grammar uses to
//! Rust closures. [`Funcs::standard`] provides the library visible in the
//! paper's own figures — `UnionSetof`, `Union`, `IsIn`, `IncrIfZero`,
//! `IncrIfTrue`, `consPF`/`EvalPF`, `cons`-style list builders, message
//! construction — and callers can register more.

use crate::value::Value;
use linguist_support::list::List;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Error raised by a semantic-function evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FuncError {
    /// Call of a function never registered.
    Unknown {
        /// Function name text.
        name: String,
    },
    /// Wrong number of arguments.
    Arity {
        /// Function name.
        name: String,
        /// Expected count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
    /// An argument had the wrong type.
    Type {
        /// Function or operator name.
        name: String,
        /// What was expected.
        expected: &'static str,
        /// What arrived.
        got: &'static str,
    },
}

impl fmt::Display for FuncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuncError::Unknown { name } => write!(f, "unknown external function `{}`", name),
            FuncError::Arity {
                name,
                expected,
                got,
            } => write!(
                f,
                "`{}` expects {} argument(s), got {}",
                name, expected, got
            ),
            FuncError::Type {
                name,
                expected,
                got,
            } => write!(
                f,
                "`{}` expected a {} argument, got {}",
                name, expected, got
            ),
        }
    }
}

impl std::error::Error for FuncError {}

/// Signature of a registered external function.
///
/// `Send + Sync` so a registry can be shared by reference across the
/// batch evaluator's worker threads.
pub type ExternalFn = Arc<dyn Fn(&[Value]) -> Result<Value, FuncError> + Send + Sync>;

/// The function registry.
#[derive(Clone, Default)]
pub struct Funcs {
    map: HashMap<String, ExternalFn>,
}

impl fmt::Debug for Funcs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.map.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("Funcs").field("functions", &names).finish()
    }
}

macro_rules! expect_arity {
    ($name:expr, $args:expr, $n:expr) => {
        if $args.len() != $n {
            return Err(FuncError::Arity {
                name: $name.to_owned(),
                expected: $n,
                got: $args.len(),
            });
        }
    };
}

/// The distinguished "undefined" atom `EvalPF` yields outside a partial
/// function's domain; test with `IsBottom`.
fn bottom() -> Value {
    Value::str("\u{22A5}bottom")
}

fn as_int(name: &str, v: &Value) -> Result<i64, FuncError> {
    match v {
        Value::Int(i) => Ok(*i),
        other => Err(FuncError::Type {
            name: name.to_owned(),
            expected: "int",
            got: other.type_name(),
        }),
    }
}

fn as_bool(name: &str, v: &Value) -> Result<bool, FuncError> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(FuncError::Type {
            name: name.to_owned(),
            expected: "bool",
            got: other.type_name(),
        }),
    }
}

fn as_set(name: &str, v: &Value) -> Result<linguist_support::set::LSet<Value>, FuncError> {
    match v {
        Value::Set(s) => Ok(s.clone()),
        other => Err(FuncError::Type {
            name: name.to_owned(),
            expected: "set",
            got: other.type_name(),
        }),
    }
}

fn as_list(name: &str, v: &Value) -> Result<List<Value>, FuncError> {
    match v {
        Value::List(l) => Ok(l.clone()),
        other => Err(FuncError::Type {
            name: name.to_owned(),
            expected: "list",
            got: other.type_name(),
        }),
    }
}

impl Funcs {
    /// An empty registry.
    pub fn new() -> Funcs {
        Funcs::default()
    }

    /// The standard library (the functions the paper's figures use).
    /// Names are matched case-insensitively.
    pub fn standard() -> Funcs {
        let mut f = Funcs::new();

        // ---- sets -------------------------------------------------------
        f.register("EmptySet", |args| {
            expect_arity!("EmptySet", args, 0);
            Ok(Value::empty_set())
        });
        f.register("UnionSetof", |args| {
            // union$setof(elem, set) — add one element.
            expect_arity!("UnionSetof", args, 2);
            let s = as_set("UnionSetof", &args[1])?;
            Ok(Value::Set(s.with(args[0].clone())))
        });
        f.register("Union", |args| {
            expect_arity!("Union", args, 2);
            let a = as_set("Union", &args[0])?;
            let b = as_set("Union", &args[1])?;
            Ok(Value::Set(a.union(&b)))
        });
        f.register("IsIn", |args| {
            expect_arity!("IsIn", args, 2);
            let s = as_set("IsIn", &args[1])?;
            Ok(Value::Bool(s.contains(&args[0])))
        });
        f.register("SetSize", |args| {
            expect_arity!("SetSize", args, 1);
            Ok(Value::Int(as_set("SetSize", &args[0])?.len() as i64))
        });
        f.register("Intersect", |args| {
            expect_arity!("Intersect", args, 2);
            let a = as_set("Intersect", &args[0])?;
            let b = as_set("Intersect", &args[1])?;
            Ok(Value::Set(a.intersection(&b)))
        });
        f.register("Difference", |args| {
            expect_arity!("Difference", args, 2);
            let a = as_set("Difference", &args[0])?;
            let b = as_set("Difference", &args[1])?;
            Ok(Value::Set(a.difference(&b)))
        });
        f.register("StripDigits", |args| {
            // Remove the occurrence-index suffix from an occurrence name:
            // StripDigits('expr1') = 'expr' (Figure-1 convention).
            expect_arity!("StripDigits", args, 1);
            match &args[0] {
                Value::Str(s) => Ok(Value::str(s.trim_end_matches(|c: char| c.is_ascii_digit()))),
                other => Err(FuncError::Type {
                    name: "StripDigits".to_owned(),
                    expected: "string",
                    got: other.type_name(),
                }),
            }
        });

        // ---- lists ------------------------------------------------------
        f.register("NullList", |args| {
            expect_arity!("NullList", args, 0);
            Ok(Value::nil())
        });
        f.register("Cons", |args| {
            expect_arity!("Cons", args, 2);
            let l = as_list("Cons", &args[1])?;
            Ok(Value::List(l.cons(args[0].clone())))
        });
        f.register("Cons2", |args| {
            // cons2(a, b, list): push a pair.
            expect_arity!("Cons2", args, 3);
            let l = as_list("Cons2", &args[2])?;
            let pair: List<Value> = [args[0].clone(), args[1].clone()].into_iter().collect();
            Ok(Value::List(l.cons(Value::List(pair))))
        });
        f.register("Cons3", |args| {
            expect_arity!("Cons3", args, 4);
            let l = as_list("Cons3", &args[3])?;
            let triple: List<Value> = [args[0].clone(), args[1].clone(), args[2].clone()]
                .into_iter()
                .collect();
            Ok(Value::List(l.cons(Value::List(triple))))
        });
        f.register("Head", |args| {
            expect_arity!("Head", args, 1);
            let l = as_list("Head", &args[0])?;
            l.head().cloned().ok_or(FuncError::Type {
                name: "Head".to_owned(),
                expected: "non-empty list",
                got: "empty list",
            })
        });
        f.register("Tail", |args| {
            expect_arity!("Tail", args, 1);
            let l = as_list("Tail", &args[0])?;
            Ok(Value::List(l.tail().cloned().unwrap_or_default()))
        });
        f.register("Append", |args| {
            expect_arity!("Append", args, 2);
            let a = as_list("Append", &args[0])?;
            let b = as_list("Append", &args[1])?;
            Ok(Value::List(a.append(&b)))
        });
        f.register("Length", |args| {
            expect_arity!("Length", args, 1);
            Ok(Value::Int(as_list("Length", &args[0])?.len() as i64))
        });

        // ---- partial functions ------------------------------------------
        f.register("EmptyPF", |args| {
            expect_arity!("EmptyPF", args, 0);
            Ok(Value::empty_map())
        });
        f.register("ConsPF", |args| {
            expect_arity!("ConsPF", args, 3);
            match &args[2] {
                Value::Map(m) => Ok(Value::Map(m.bind(args[0].clone(), args[1].clone()))),
                other => Err(FuncError::Type {
                    name: "ConsPF".to_owned(),
                    expected: "map",
                    got: other.type_name(),
                }),
            }
        });
        f.register("EvalPF", |args| {
            // EvalPF(pf, key) = value or the `bottom` atom.
            expect_arity!("EvalPF", args, 2);
            match &args[0] {
                Value::Map(m) => Ok(m.eval(&args[1]).cloned().unwrap_or_else(bottom)),
                other => Err(FuncError::Type {
                    name: "EvalPF".to_owned(),
                    expected: "map",
                    got: other.type_name(),
                }),
            }
        });
        f.register("IsBottom", |args| {
            // Tests a value against the bottom atom EvalPF returns outside
            // a partial function's domain.
            expect_arity!("IsBottom", args, 1);
            Ok(Value::Bool(args[0] == bottom()))
        });

        // ---- arithmetic / counting --------------------------------------
        f.register("IncrIfZero", |args| {
            // IncrIfZero(x, y): y+1 if x = 0 else y (Figure 1 flavour).
            expect_arity!("IncrIfZero", args, 2);
            let x = as_int("IncrIfZero", &args[0])?;
            let y = as_int("IncrIfZero", &args[1])?;
            Ok(Value::Int(if x == 0 { y + 1 } else { y }))
        });
        f.register("IncrIfTrue", |args| {
            expect_arity!("IncrIfTrue", args, 2);
            let c = as_bool("IncrIfTrue", &args[0])?;
            let y = as_int("IncrIfTrue", &args[1])?;
            Ok(Value::Int(if c { y + 1 } else { y }))
        });
        f.register("Max", |args| {
            expect_arity!("Max", args, 2);
            Ok(Value::Int(
                as_int("Max", &args[0])?.max(as_int("Max", &args[1])?),
            ))
        });
        f.register("Min", |args| {
            expect_arity!("Min", args, 2);
            Ok(Value::Int(
                as_int("Min", &args[0])?.min(as_int("Min", &args[1])?),
            ))
        });
        f.register("Mul", |args| {
            expect_arity!("Mul", args, 2);
            Ok(Value::Int(
                as_int("Mul", &args[0])?.wrapping_mul(as_int("Mul", &args[1])?),
            ))
        });
        f.register("Div", |args| {
            expect_arity!("Div", args, 2);
            let d = as_int("Div", &args[1])?;
            if d == 0 {
                return Err(FuncError::Type {
                    name: "Div".to_owned(),
                    expected: "non-zero divisor",
                    got: "0",
                });
            }
            Ok(Value::Int(as_int("Div", &args[0])? / d))
        });
        f.register("Not", |args| {
            expect_arity!("Not", args, 1);
            Ok(Value::Bool(!as_bool("Not", &args[0])?))
        });
        f.register("Pow2", |args| {
            // 2^n for small non-negative n (Knuth's binary-number values).
            expect_arity!("Pow2", args, 1);
            let n = as_int("Pow2", &args[0])?;
            if !(0..=62).contains(&n) {
                return Err(FuncError::Type {
                    name: "Pow2".to_owned(),
                    expected: "exponent in 0..=62",
                    got: "int",
                });
            }
            Ok(Value::Int(1 << n))
        });

        // ---- messages (the cons$msg / merge$msgs family) -----------------
        f.register("NullMsgList", |args| {
            expect_arity!("NullMsgList", args, 0);
            Ok(Value::nil())
        });
        f.register("ConsMsg", |args| {
            // ConsMsg(line, msg, name, rest)
            expect_arity!("ConsMsg", args, 4);
            let rest = as_list("ConsMsg", &args[3])?;
            let entry: List<Value> = [args[0].clone(), args[1].clone(), args[2].clone()]
                .into_iter()
                .collect();
            Ok(Value::List(rest.cons(Value::List(entry))))
        });
        f.register("MergeMsgs", |args| {
            expect_arity!("MergeMsgs", args, 2);
            let a = as_list("MergeMsgs", &args[0])?;
            let b = as_list("MergeMsgs", &args[1])?;
            Ok(Value::List(a.append(&b)))
        });

        f
    }

    /// Register (or replace) a function.
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value, FuncError> + Send + Sync + 'static,
    ) {
        self.map.insert(name.to_ascii_lowercase(), Arc::new(f));
    }

    /// Look up by name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&ExternalFn> {
        self.map.get(&name.to_ascii_lowercase())
    }

    /// Invoke `name` with `args`.
    ///
    /// # Errors
    ///
    /// [`FuncError::Unknown`] if unregistered, or whatever the function
    /// raises.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value, FuncError> {
        match self.get(name) {
            Some(f) => f(args),
            None => Err(FuncError::Unknown {
                name: name.to_owned(),
            }),
        }
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_functions_behave() {
        let f = Funcs::standard();
        let s = f.call("EmptySet", &[]).unwrap();
        let s = f.call("UnionSetof", &[Value::Int(1), s]).unwrap();
        let s = f.call("UnionSetof", &[Value::Int(2), s]).unwrap();
        let s2 = f.call("UnionSetof", &[Value::Int(1), s.clone()]).unwrap();
        assert_eq!(
            f.call("SetSize", std::slice::from_ref(&s2)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            f.call("IsIn", &[Value::Int(2), s2]).unwrap(),
            Value::Bool(true)
        );
        let t = f
            .call("UnionSetof", &[Value::Int(9), Value::empty_set()])
            .unwrap();
        let u = f.call("Union", &[s, t]).unwrap();
        assert_eq!(f.call("SetSize", &[u]).unwrap(), Value::Int(3));
    }

    #[test]
    fn list_functions_behave() {
        let f = Funcs::standard();
        let l = f.call("NullList", &[]).unwrap();
        let l = f.call("Cons", &[Value::Int(2), l]).unwrap();
        let l = f.call("Cons", &[Value::Int(1), l]).unwrap();
        assert_eq!(
            f.call("Length", std::slice::from_ref(&l)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            f.call("Head", std::slice::from_ref(&l)).unwrap(),
            Value::Int(1)
        );
        let t = f.call("Tail", &[l]).unwrap();
        assert_eq!(f.call("Head", &[t]).unwrap(), Value::Int(2));
    }

    #[test]
    fn pf_functions_behave() {
        let f = Funcs::standard();
        let m = f.call("EmptyPF", &[]).unwrap();
        let m = f
            .call("ConsPF", &[Value::str("k"), Value::Int(5), m])
            .unwrap();
        assert_eq!(
            f.call("EvalPF", &[m.clone(), Value::str("k")]).unwrap(),
            Value::Int(5)
        );
        // Outside the domain: the bottom atom, which is <> any normal value.
        let bottom = f.call("EvalPF", &[m, Value::str("zz")]).unwrap();
        assert_ne!(bottom, Value::Int(5));
    }

    #[test]
    fn incr_functions_match_figure_one() {
        let f = Funcs::standard();
        assert_eq!(
            f.call("IncrIfZero", &[Value::Int(0), Value::Int(7)])
                .unwrap(),
            Value::Int(8)
        );
        assert_eq!(
            f.call("IncrIfZero", &[Value::Int(3), Value::Int(7)])
                .unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            f.call("IncrIfTrue", &[Value::Bool(true), Value::Int(1)])
                .unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn errors_are_descriptive() {
        let f = Funcs::standard();
        let e = f.call("NoSuchFn", &[]).unwrap_err();
        assert!(e.to_string().contains("NoSuchFn"));
        let e = f.call("Head", &[]).unwrap_err();
        assert!(matches!(e, FuncError::Arity { .. }));
        let e = f.call("IsIn", &[Value::Int(1), Value::Int(2)]).unwrap_err();
        assert!(matches!(e, FuncError::Type { .. }));
        let e = f.call("Div", &[Value::Int(1), Value::Int(0)]).unwrap_err();
        assert!(e.to_string().contains("non-zero"));
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let f = Funcs::standard();
        assert!(f
            .call("unionsetof", &[Value::Int(1), Value::empty_set()])
            .is_ok());
        assert!(f
            .call("UNIONSETOF", &[Value::Int(1), Value::empty_set()])
            .is_ok());
    }

    #[test]
    fn user_registration_overrides() {
        let mut f = Funcs::standard();
        f.register("Max", |_| Ok(Value::Int(42)));
        assert_eq!(
            f.call("Max", &[Value::Int(1), Value::Int(2)]).unwrap(),
            Value::Int(42)
        );
    }

    #[test]
    fn messages_build_and_merge() {
        let f = Funcs::standard();
        let nil = f.call("NullMsgList", &[]).unwrap();
        let a = f
            .call(
                "ConsMsg",
                &[
                    Value::Int(3),
                    Value::str("boom"),
                    Value::str("x"),
                    nil.clone(),
                ],
            )
            .unwrap();
        let b = f
            .call(
                "ConsMsg",
                &[Value::Int(7), Value::str("pow"), Value::str("y"), nil],
            )
            .unwrap();
        let m = f.call("MergeMsgs", &[a, b]).unwrap();
        assert_eq!(f.call("Length", &[m]).unwrap(), Value::Int(2));
    }
}
