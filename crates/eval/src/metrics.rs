//! The evaluation profiler: per-pass I/O accounting and work counters.
//!
//! The paper's measurements are all *pass-level*: how many alternating
//! passes a grammar needs, how much APT traffic each pass moves through
//! the two intermediate files, and how much semantic work runs per pass.
//! [`EvalMetrics`] is that table, produced live by the machine when
//! [`EvalOptions::profile`](crate::machine::EvalOptions::profile) is on.
//!
//! The counters are atomics ([`IoCounters`]) shared between the machine
//! and the [`AptReader`](crate::aptfile::AptReader) /
//! [`AptWriter`](crate::aptfile::AptWriter) it drives, so one sink can in
//! principle be observed while a pass is still running (and so the batch
//! evaluator can aggregate without any locking). With profiling off, no
//! sink is allocated and the readers/writers skip a single `Option`
//! check per record — near-zero overhead on the unprofiled hot path.

use crate::aptfile::ReadDir;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A pair of record/byte tallies, bumped atomically by the APT file layer.
#[derive(Debug, Default)]
pub struct IoCounters {
    records: AtomicU64,
    bytes: AtomicU64,
}

impl IoCounters {
    /// A fresh zeroed counter pair behind an `Arc`, ready to hand to an
    /// `AptReader`/`AptWriter`.
    pub fn shared() -> Arc<IoCounters> {
        Arc::new(IoCounters::default())
    }

    /// Record one transferred record of `bytes` framed bytes.
    #[inline]
    pub fn add_record(&self, bytes: u64) {
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Current `(records, bytes)` totals.
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.records.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
        )
    }
}

/// The live counter set the machine carries through one pass.
#[derive(Debug)]
pub struct PassProbe {
    /// Traffic read from the pass's input intermediate file.
    pub read: Arc<IoCounters>,
    /// Traffic written to the pass's output intermediate file.
    pub written: Arc<IoCounters>,
    /// Attribute instances defined (rule targets assigned) this pass.
    pub attrs_evaluated: AtomicU64,
    /// External semantic-function invocations this pass.
    pub funcs_invoked: AtomicU64,
}

impl PassProbe {
    /// Fresh zeroed probe.
    pub fn new() -> PassProbe {
        PassProbe {
            read: IoCounters::shared(),
            written: IoCounters::shared(),
            attrs_evaluated: AtomicU64::new(0),
            funcs_invoked: AtomicU64::new(0),
        }
    }

    /// Freeze the probe into the per-pass report row.
    pub fn finish(&self, pass: u16, direction: ReadDir, rules_evaluated: u64) -> PassIo {
        let (records_read, bytes_read) = self.read.snapshot();
        let (records_written, bytes_written) = self.written.snapshot();
        PassIo {
            pass,
            direction,
            input_boundary: pass - 1,
            output_boundary: pass,
            records_read,
            bytes_read,
            records_written,
            bytes_written,
            attrs_evaluated: self.attrs_evaluated.load(Ordering::Relaxed),
            funcs_invoked: self.funcs_invoked.load(Ordering::Relaxed),
            rules_evaluated,
        }
    }
}

impl Default for PassProbe {
    fn default() -> PassProbe {
        PassProbe::new()
    }
}

/// One row of the pass-level profile: everything pass `k` did to the two
/// intermediate files plus the semantic work it performed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassIo {
    /// Pass number (1-based, as in the paper).
    pub pass: u16,
    /// Direction the input file was traversed.
    pub direction: ReadDir,
    /// Boundary index of the input intermediate file (`pass - 1`).
    pub input_boundary: u16,
    /// Boundary index of the output intermediate file (`pass`).
    pub output_boundary: u16,
    /// Records read from the input file.
    pub records_read: u64,
    /// Framed bytes read from the input file.
    pub bytes_read: u64,
    /// Records written to the output file.
    pub records_written: u64,
    /// Framed bytes written to the output file.
    pub bytes_written: u64,
    /// Attribute instances defined during the pass.
    pub attrs_evaluated: u64,
    /// External semantic-function calls during the pass.
    pub funcs_invoked: u64,
    /// Semantic functions (rules) evaluated during the pass.
    pub rules_evaluated: u64,
}

impl PassIo {
    fn add(&mut self, other: &PassIo) {
        self.records_read += other.records_read;
        self.bytes_read += other.bytes_read;
        self.records_written += other.records_written;
        self.bytes_written += other.bytes_written;
        self.attrs_evaluated += other.attrs_evaluated;
        self.funcs_invoked += other.funcs_invoked;
        self.rules_evaluated += other.rules_evaluated;
    }
}

/// The full pass-level profile of one evaluation (or, aggregated, of a
/// whole batch: pass *k* of every job lands in row *k*).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalMetrics {
    /// Records written to the parser-built boundary-0 file.
    pub initial_records: u64,
    /// Framed bytes written to the parser-built boundary-0 file.
    pub initial_bytes: u64,
    /// Mutex acquisitions on the APT store during evaluation — the
    /// contention-visibility counter. Zero on the shared-nothing owned
    /// path ([`Backing::Memory`](crate::machine::Backing::Memory)) and on
    /// disk; non-zero only under the legacy
    /// [`Backing::SharedMemory`](crate::machine::Backing::SharedMemory)
    /// ablation, where every record read/write pays the lock. Tests pin
    /// the batch hot path at zero through this field.
    pub lock_acquisitions: u64,
    /// One row per alternating pass.
    pub passes: Vec<PassIo>,
}

impl EvalMetrics {
    /// Total framed bytes moved through intermediate files, including the
    /// initial emission.
    pub fn total_io_bytes(&self) -> u64 {
        self.initial_bytes
            + self
                .passes
                .iter()
                .map(|p| p.bytes_read + p.bytes_written)
                .sum::<u64>()
    }

    /// Total attribute instances defined across all passes.
    pub fn total_attrs_evaluated(&self) -> u64 {
        self.passes.iter().map(|p| p.attrs_evaluated).sum()
    }

    /// Total external semantic-function invocations across all passes.
    pub fn total_funcs_invoked(&self) -> u64 {
        self.passes.iter().map(|p| p.funcs_invoked).sum()
    }

    /// Fold another profile into this one, row by row (the batch
    /// evaluator's aggregation). Directions and boundary indices must
    /// agree where rows overlap, which they do for jobs evaluated under
    /// one analysis; the first profile wins those fields.
    pub fn merge(&mut self, other: &EvalMetrics) {
        self.initial_records += other.initial_records;
        self.initial_bytes += other.initial_bytes;
        self.lock_acquisitions += other.lock_acquisitions;
        for row in &other.passes {
            match self.passes.iter_mut().find(|r| r.pass == row.pass) {
                Some(mine) => mine.add(row),
                None => self.passes.push(row.clone()),
            }
        }
        self.passes.sort_by_key(|r| r.pass);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(pass: u16, n: u64) -> PassIo {
        PassIo {
            pass,
            direction: ReadDir::Backward,
            input_boundary: pass - 1,
            output_boundary: pass,
            records_read: n,
            bytes_read: 10 * n,
            records_written: n,
            bytes_written: 10 * n,
            attrs_evaluated: 2 * n,
            funcs_invoked: n / 2,
            rules_evaluated: n,
        }
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = IoCounters::shared();
        c.add_record(16);
        c.add_record(24);
        assert_eq!(c.snapshot(), (2, 40));
    }

    #[test]
    fn probe_freezes_into_pass_row() {
        let p = PassProbe::new();
        p.read.add_record(12);
        p.written.add_record(20);
        p.written.add_record(20);
        p.attrs_evaluated.fetch_add(3, Ordering::Relaxed);
        let row = p.finish(2, ReadDir::Forward, 5);
        assert_eq!(row.pass, 2);
        assert_eq!(row.input_boundary, 1);
        assert_eq!(row.output_boundary, 2);
        assert_eq!((row.records_read, row.bytes_read), (1, 12));
        assert_eq!((row.records_written, row.bytes_written), (2, 40));
        assert_eq!(row.attrs_evaluated, 3);
        assert_eq!(row.rules_evaluated, 5);
    }

    #[test]
    fn merge_sums_matching_passes_and_keeps_extras() {
        let mut a = EvalMetrics {
            initial_records: 5,
            initial_bytes: 50,
            lock_acquisitions: 2,
            passes: vec![row(1, 10)],
        };
        let b = EvalMetrics {
            initial_records: 3,
            initial_bytes: 30,
            lock_acquisitions: 3,
            passes: vec![row(1, 4), row(2, 7)],
        };
        a.merge(&b);
        assert_eq!(a.initial_records, 8);
        assert_eq!(a.lock_acquisitions, 5);
        assert_eq!(a.passes.len(), 2);
        assert_eq!(a.passes[0].records_read, 14);
        assert_eq!(a.passes[1].records_read, 7);
        assert_eq!(a.total_io_bytes(), 80 + 2 * 140 + 2 * 70);
    }
}
