//! Attribute values and their on-disk encoding.
//!
//! Attribute types in LINGUIST-86 are "uninterpreted identifiers" (§IV);
//! the values flowing through semantic functions at run time are the kinds
//! the paper's own grammar uses: integers, booleans, interned names,
//! strings, and the list-package shapes (lists, sets, partial functions).
//! Uninterpreted constants (`no$msg`, `bottom`, …) evaluate to symbolic
//! [`Value::Sym`] atoms.
//!
//! Values serialize to a compact tagged binary form — the payload of the
//! intermediate-APT-file records, so [`Value::byte_size`] doubles as the
//! record-size accounting the memory experiments charge against the 48 KB
//! budget.

use linguist_support::intern::Name;
use linguist_support::list::List;
use linguist_support::pfunc::PartialFn;
use linguist_support::set::LSet;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Bytes a [`Str`] can hold inline before spilling to the heap. The
/// `Heap(Arc<str>)` variant already forces the enum to 24 bytes (fat
/// pointer + discriminant), so the inline buffer uses the full payload
/// width: tag + length + 22 bytes.
const STR_INLINE_CAP: usize = 22;

/// A string attribute value with a small-string optimization.
///
/// Most strings on the evaluation hot path are short (error-message
/// fragments, digit-stripped identifiers); storing them inline avoids
/// both the heap allocation and — more importantly for the shared-nothing
/// batch path — the atomic refcount traffic of cloning an `Arc<str>`
/// every time a record is copied between boundary files. Longer strings
/// fall back to the shared heap form so values stay cheap to clone and
/// `Send + Sync`.
#[derive(Clone)]
pub enum Str {
    /// Up to [`STR_INLINE_CAP`] bytes stored inline: clone is a 16-byte
    /// memcpy, no allocation, no refcount.
    Inline {
        /// Number of initialized bytes in `buf`.
        len: u8,
        /// Inline UTF-8 storage (valid up to `len`).
        buf: [u8; STR_INLINE_CAP],
    },
    /// Heap-shared fallback for longer strings.
    Heap(Arc<str>),
}

impl Str {
    /// Build from a borrowed string, inlining when it fits.
    pub fn new(s: &str) -> Str {
        if s.len() <= STR_INLINE_CAP {
            let mut buf = [0u8; STR_INLINE_CAP];
            buf[..s.len()].copy_from_slice(s.as_bytes());
            Str::Inline {
                len: s.len() as u8,
                buf,
            }
        } else {
            Str::Heap(Arc::from(s))
        }
    }

    /// Borrow the string contents.
    pub fn as_str(&self) -> &str {
        match self {
            Str::Inline { len, buf } => {
                std::str::from_utf8(&buf[..*len as usize]).expect("Str holds UTF-8 by construction")
            }
            Str::Heap(s) => s,
        }
    }
}

impl Deref for Str {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Str {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for Str {
    fn from(s: &str) -> Str {
        Str::new(s)
    }
}

impl PartialEq for Str {
    fn eq(&self, other: &Str) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for Str {}

impl fmt::Debug for Str {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for Str {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self.as_str(), f)
    }
}

/// A run-time attribute value.
#[derive(Clone, Debug)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Interned identifier (name-table index).
    Sym(Name),
    /// String (inline when short; heap-shared otherwise — see [`Str`]).
    Str(Str),
    /// Sequence.
    List(List<Value>),
    /// Set.
    Set(LSet<Value>),
    /// Partial function.
    Map(PartialFn<Value, Value>),
}

impl Value {
    /// String value helper.
    pub fn str(s: &str) -> Value {
        Value::Str(Str::new(s))
    }

    /// The empty list.
    pub fn nil() -> Value {
        Value::List(List::nil())
    }

    /// The empty set.
    pub fn empty_set() -> Value {
        Value::Set(LSet::empty())
    }

    /// The everywhere-undefined partial function.
    pub fn empty_map() -> Value {
        Value::Map(PartialFn::empty())
    }

    /// Type tag name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Sym(_) => "name",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Set(_) => "set",
            Value::Map(_) => "map",
        }
    }

    /// Approximate serialized size in bytes (used for stack/file
    /// accounting).
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Int(_) => 9,
            Value::Bool(_) => 2,
            Value::Sym(_) => 5,
            Value::Str(s) => 5 + s.len(),
            Value::List(l) => 5 + l.iter().map(Value::byte_size).sum::<usize>(),
            Value::Set(s) => 5 + s.iter().map(Value::byte_size).sum::<usize>(),
            Value::Map(m) => {
                5 + m
                    .iter()
                    .map(|(k, v)| k.byte_size() + v.byte_size())
                    .sum::<usize>()
            }
        }
    }

    /// Append the binary encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(i) => {
                out.push(0);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Bool(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            Value::Sym(n) => {
                out.push(2);
                out.extend_from_slice(&(n.index() as u32).to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::List(l) => {
                out.push(4);
                let items: Vec<&Value> = l.iter().collect();
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for v in items {
                    v.encode(out);
                }
            }
            Value::Set(s) => {
                out.push(5);
                let items: Vec<&Value> = s.iter().collect();
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for v in items {
                    v.encode(out);
                }
            }
            Value::Map(m) => {
                out.push(6);
                let items: Vec<(&Value, &Value)> = m.iter().map(|(k, v)| (k, v)).collect();
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for (k, v) in items {
                    k.encode(out);
                    v.encode(out);
                }
            }
        }
    }

    /// Decode one value from `buf` starting at `*pos`, advancing `*pos`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Value, DecodeError> {
        let tag = *buf.get(*pos).ok_or(DecodeError { at: *pos })?;
        *pos += 1;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], DecodeError> {
            let s = buf.get(*pos..*pos + n).ok_or(DecodeError { at: *pos })?;
            *pos += n;
            Ok(s)
        };
        match tag {
            0 => {
                let b: [u8; 8] = take(pos, 8)?.try_into().expect("sized");
                Ok(Value::Int(i64::from_le_bytes(b)))
            }
            1 => {
                let b = take(pos, 1)?[0];
                Ok(Value::Bool(b != 0))
            }
            2 => {
                let b: [u8; 4] = take(pos, 4)?.try_into().expect("sized");
                Ok(Value::Sym(Name::from_index(u32::from_le_bytes(b) as usize)))
            }
            3 => {
                let b: [u8; 4] = take(pos, 4)?.try_into().expect("sized");
                let n = u32::from_le_bytes(b) as usize;
                let bytes = take(pos, n)?;
                let s = std::str::from_utf8(bytes).map_err(|_| DecodeError { at: *pos })?;
                Ok(Value::str(s))
            }
            4..=6 => {
                let b: [u8; 4] = take(pos, 4)?.try_into().expect("sized");
                let n = u32::from_le_bytes(b) as usize;
                match tag {
                    4 => {
                        let mut items = Vec::with_capacity(n);
                        for _ in 0..n {
                            items.push(Value::decode(buf, pos)?);
                        }
                        Ok(Value::List(items.into_iter().collect()))
                    }
                    5 => {
                        // Sets encode newest-first; rebuild preserving
                        // membership (order is irrelevant for equality).
                        let mut items = Vec::with_capacity(n);
                        for _ in 0..n {
                            items.push(Value::decode(buf, pos)?);
                        }
                        Ok(Value::Set(items.into_iter().collect()))
                    }
                    _ => {
                        let mut pairs = Vec::with_capacity(n);
                        for _ in 0..n {
                            let k = Value::decode(buf, pos)?;
                            let v = Value::decode(buf, pos)?;
                            pairs.push((k, v));
                        }
                        // Iteration order is newest-binding-first; rebind in
                        // reverse so shadowing is preserved.
                        let mut m = PartialFn::empty();
                        for (k, v) in pairs.into_iter().rev() {
                            m = m.bind(k, v);
                        }
                        Ok(Value::Map(m))
                    }
                }
            }
            _ => Err(DecodeError { at: *pos - 1 }),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Sym(a), Value::Sym(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            (Value::Set(a), Value::Set(b)) => a == b,
            (Value::Map(a), Value::Map(b)) => {
                // Extensional equality over effective bindings.
                let da = a.domain();
                let db = b.domain();
                da.len() == db.len() && da.iter().all(|k| a.eval(k) == b.eval(k))
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{}", i),
            Value::Bool(b) => write!(f, "{}", b),
            Value::Sym(n) => write!(f, "#{}", n.index()),
            Value::Str(s) => write!(f, "{:?}", s),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", v)?;
                }
                write!(f, "]")
            }
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", v)?;
                }
                write!(f, "}}")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, k) in m.domain().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} -> {}", k, m.eval(k).expect("domain key"))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Malformed or truncated value encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset of the problem.
    pub at: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed value encoding at byte {}", self.at)
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut pos = 0;
        let out = Value::decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len(), "decoded exactly the encoding");
        out
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Int(0),
            Value::Int(-123456789),
            Value::Bool(true),
            Value::Bool(false),
            Value::Sym(Name::from_index(42)),
            Value::str(""),
            Value::str("hello world"),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn nested_collections_round_trip() {
        let list: Value = Value::List(
            [Value::Int(1), Value::str("x"), Value::nil()]
                .into_iter()
                .collect(),
        );
        assert_eq!(round_trip(&list), list);

        let set: Value = Value::Set([Value::Int(1), Value::Int(2)].into_iter().collect());
        assert_eq!(round_trip(&set), set);

        let map = Value::Map(
            PartialFn::empty()
                .bind(Value::str("k1"), Value::Int(1))
                .bind(Value::str("k2"), list.clone()),
        );
        assert_eq!(round_trip(&map), map);
    }

    #[test]
    fn map_shadowing_survives_round_trip() {
        let m = Value::Map(
            PartialFn::empty()
                .bind(Value::Int(1), Value::str("old"))
                .bind(Value::Int(1), Value::str("new")),
        );
        let rt = round_trip(&m);
        if let Value::Map(m2) = rt {
            assert_eq!(m2.eval(&Value::Int(1)), Some(&Value::str("new")));
        } else {
            panic!("not a map");
        }
    }

    #[test]
    fn set_equality_ignores_order() {
        let a: Value = Value::Set([Value::Int(1), Value::Int(2)].into_iter().collect());
        let b: Value = Value::Set([Value::Int(2), Value::Int(1)].into_iter().collect());
        assert_eq!(a, b);
    }

    #[test]
    fn cross_type_not_equal() {
        assert_ne!(Value::Int(1), Value::Bool(true));
        assert_ne!(Value::str("1"), Value::Int(1));
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        Value::Int(7).encode(&mut buf);
        buf.truncate(4);
        let mut pos = 0;
        assert!(Value::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn bad_tag_errors() {
        let buf = vec![99u8];
        let mut pos = 0;
        assert!(Value::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn byte_size_tracks_structure() {
        assert!(Value::Int(1).byte_size() < Value::str("a long string here").byte_size());
        let deep: Value = Value::List((0..10).map(Value::Int).collect());
        assert!(deep.byte_size() > 10 * Value::Int(0).byte_size() / 2);
    }

    #[test]
    fn small_strings_are_inline() {
        assert!(matches!(Str::new(""), Str::Inline { .. }));
        assert!(matches!(
            Str::new("exactly twenty-two by!"),
            Str::Inline { .. }
        ));
        assert!(matches!(Str::new("twenty-three bytes long"), Str::Heap(_)));
        // Inline and heap forms of the same text are equal and encode
        // identically.
        let long = "x".repeat(STR_INLINE_CAP + 1);
        for s in ["", "short", "exactly twenty-two by!", long.as_str()] {
            assert_eq!(Value::str(s), Value::str(s));
            assert_eq!(round_trip(&Value::str(s)), Value::str(s));
        }
        // The small-string form must not grow Value beyond one word over
        // the old bare-Arc<str> layout.
        assert!(std::mem::size_of::<Str>() <= 24);
        assert!(std::mem::size_of::<Value>() <= 32);
    }

    #[test]
    fn str_debug_and_display_match_str() {
        let s = Str::new("a \"quoted\" str");
        assert_eq!(format!("{:?}", s), format!("{:?}", "a \"quoted\" str"));
        assert_eq!(format!("{}", s), "a \"quoted\" str");
    }

    #[test]
    fn display_is_readable() {
        let v: Value = Value::List([Value::Int(1), Value::Bool(true)].into_iter().collect());
        assert_eq!(v.to_string(), "[1, true]");
    }
}
