//! Attribute values and their on-disk encoding.
//!
//! Attribute types in LINGUIST-86 are "uninterpreted identifiers" (§IV);
//! the values flowing through semantic functions at run time are the kinds
//! the paper's own grammar uses: integers, booleans, interned names,
//! strings, and the list-package shapes (lists, sets, partial functions).
//! Uninterpreted constants (`no$msg`, `bottom`, …) evaluate to symbolic
//! [`Value::Sym`] atoms.
//!
//! Values serialize to a compact tagged binary form — the payload of the
//! intermediate-APT-file records, so [`Value::byte_size`] doubles as the
//! record-size accounting the memory experiments charge against the 48 KB
//! budget.

use linguist_support::intern::Name;
use linguist_support::list::List;
use linguist_support::pfunc::PartialFn;
use linguist_support::set::LSet;
use std::fmt;
use std::sync::Arc;

/// A run-time attribute value.
#[derive(Clone, Debug)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Interned identifier (name-table index).
    Sym(Name),
    /// String (shared; atomically counted so values can cross threads).
    Str(Arc<str>),
    /// Sequence.
    List(List<Value>),
    /// Set.
    Set(LSet<Value>),
    /// Partial function.
    Map(PartialFn<Value, Value>),
}

impl Value {
    /// String value helper.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// The empty list.
    pub fn nil() -> Value {
        Value::List(List::nil())
    }

    /// The empty set.
    pub fn empty_set() -> Value {
        Value::Set(LSet::empty())
    }

    /// The everywhere-undefined partial function.
    pub fn empty_map() -> Value {
        Value::Map(PartialFn::empty())
    }

    /// Type tag name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Sym(_) => "name",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Set(_) => "set",
            Value::Map(_) => "map",
        }
    }

    /// Approximate serialized size in bytes (used for stack/file
    /// accounting).
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Int(_) => 9,
            Value::Bool(_) => 2,
            Value::Sym(_) => 5,
            Value::Str(s) => 5 + s.len(),
            Value::List(l) => 5 + l.iter().map(Value::byte_size).sum::<usize>(),
            Value::Set(s) => 5 + s.iter().map(Value::byte_size).sum::<usize>(),
            Value::Map(m) => {
                5 + m
                    .iter()
                    .map(|(k, v)| k.byte_size() + v.byte_size())
                    .sum::<usize>()
            }
        }
    }

    /// Append the binary encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(i) => {
                out.push(0);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Bool(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            Value::Sym(n) => {
                out.push(2);
                out.extend_from_slice(&(n.index() as u32).to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::List(l) => {
                out.push(4);
                let items: Vec<&Value> = l.iter().collect();
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for v in items {
                    v.encode(out);
                }
            }
            Value::Set(s) => {
                out.push(5);
                let items: Vec<&Value> = s.iter().collect();
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for v in items {
                    v.encode(out);
                }
            }
            Value::Map(m) => {
                out.push(6);
                let items: Vec<(&Value, &Value)> = m.iter().map(|(k, v)| (k, v)).collect();
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for (k, v) in items {
                    k.encode(out);
                    v.encode(out);
                }
            }
        }
    }

    /// Decode one value from `buf` starting at `*pos`, advancing `*pos`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Value, DecodeError> {
        let tag = *buf.get(*pos).ok_or(DecodeError { at: *pos })?;
        *pos += 1;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], DecodeError> {
            let s = buf.get(*pos..*pos + n).ok_or(DecodeError { at: *pos })?;
            *pos += n;
            Ok(s)
        };
        match tag {
            0 => {
                let b: [u8; 8] = take(pos, 8)?.try_into().expect("sized");
                Ok(Value::Int(i64::from_le_bytes(b)))
            }
            1 => {
                let b = take(pos, 1)?[0];
                Ok(Value::Bool(b != 0))
            }
            2 => {
                let b: [u8; 4] = take(pos, 4)?.try_into().expect("sized");
                Ok(Value::Sym(Name::from_index(u32::from_le_bytes(b) as usize)))
            }
            3 => {
                let b: [u8; 4] = take(pos, 4)?.try_into().expect("sized");
                let n = u32::from_le_bytes(b) as usize;
                let bytes = take(pos, n)?;
                let s = std::str::from_utf8(bytes).map_err(|_| DecodeError { at: *pos })?;
                Ok(Value::str(s))
            }
            4..=6 => {
                let b: [u8; 4] = take(pos, 4)?.try_into().expect("sized");
                let n = u32::from_le_bytes(b) as usize;
                match tag {
                    4 => {
                        let mut items = Vec::with_capacity(n);
                        for _ in 0..n {
                            items.push(Value::decode(buf, pos)?);
                        }
                        Ok(Value::List(items.into_iter().collect()))
                    }
                    5 => {
                        // Sets encode newest-first; rebuild preserving
                        // membership (order is irrelevant for equality).
                        let mut items = Vec::with_capacity(n);
                        for _ in 0..n {
                            items.push(Value::decode(buf, pos)?);
                        }
                        Ok(Value::Set(items.into_iter().collect()))
                    }
                    _ => {
                        let mut pairs = Vec::with_capacity(n);
                        for _ in 0..n {
                            let k = Value::decode(buf, pos)?;
                            let v = Value::decode(buf, pos)?;
                            pairs.push((k, v));
                        }
                        // Iteration order is newest-binding-first; rebind in
                        // reverse so shadowing is preserved.
                        let mut m = PartialFn::empty();
                        for (k, v) in pairs.into_iter().rev() {
                            m = m.bind(k, v);
                        }
                        Ok(Value::Map(m))
                    }
                }
            }
            _ => Err(DecodeError { at: *pos - 1 }),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Sym(a), Value::Sym(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            (Value::Set(a), Value::Set(b)) => a == b,
            (Value::Map(a), Value::Map(b)) => {
                // Extensional equality over effective bindings.
                let da = a.domain();
                let db = b.domain();
                da.len() == db.len() && da.iter().all(|k| a.eval(k) == b.eval(k))
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{}", i),
            Value::Bool(b) => write!(f, "{}", b),
            Value::Sym(n) => write!(f, "#{}", n.index()),
            Value::Str(s) => write!(f, "{:?}", s),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", v)?;
                }
                write!(f, "]")
            }
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", v)?;
                }
                write!(f, "}}")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, k) in m.domain().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} -> {}", k, m.eval(k).expect("domain key"))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Malformed or truncated value encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset of the problem.
    pub at: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed value encoding at byte {}", self.at)
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut pos = 0;
        let out = Value::decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len(), "decoded exactly the encoding");
        out
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Int(0),
            Value::Int(-123456789),
            Value::Bool(true),
            Value::Bool(false),
            Value::Sym(Name::from_index(42)),
            Value::str(""),
            Value::str("hello world"),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn nested_collections_round_trip() {
        let list: Value = Value::List(
            [Value::Int(1), Value::str("x"), Value::nil()]
                .into_iter()
                .collect(),
        );
        assert_eq!(round_trip(&list), list);

        let set: Value = Value::Set([Value::Int(1), Value::Int(2)].into_iter().collect());
        assert_eq!(round_trip(&set), set);

        let map = Value::Map(
            PartialFn::empty()
                .bind(Value::str("k1"), Value::Int(1))
                .bind(Value::str("k2"), list.clone()),
        );
        assert_eq!(round_trip(&map), map);
    }

    #[test]
    fn map_shadowing_survives_round_trip() {
        let m = Value::Map(
            PartialFn::empty()
                .bind(Value::Int(1), Value::str("old"))
                .bind(Value::Int(1), Value::str("new")),
        );
        let rt = round_trip(&m);
        if let Value::Map(m2) = rt {
            assert_eq!(m2.eval(&Value::Int(1)), Some(&Value::str("new")));
        } else {
            panic!("not a map");
        }
    }

    #[test]
    fn set_equality_ignores_order() {
        let a: Value = Value::Set([Value::Int(1), Value::Int(2)].into_iter().collect());
        let b: Value = Value::Set([Value::Int(2), Value::Int(1)].into_iter().collect());
        assert_eq!(a, b);
    }

    #[test]
    fn cross_type_not_equal() {
        assert_ne!(Value::Int(1), Value::Bool(true));
        assert_ne!(Value::str("1"), Value::Int(1));
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        Value::Int(7).encode(&mut buf);
        buf.truncate(4);
        let mut pos = 0;
        assert!(Value::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn bad_tag_errors() {
        let buf = vec![99u8];
        let mut pos = 0;
        assert!(Value::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn byte_size_tracks_structure() {
        assert!(Value::Int(1).byte_size() < Value::str("a long string here").byte_size());
        let deep: Value = Value::List((0..10).map(Value::Int).collect());
        assert!(deep.byte_size() > 10 * Value::Int(0).byte_size() / 2);
    }

    #[test]
    fn display_is_readable() {
        let v: Value = Value::List([Value::Int(1), Value::Bool(true)].into_iter().collect());
        assert_eq!(v.to_string(), "[1, true]");
    }
}
