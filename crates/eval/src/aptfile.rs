//! The linearized APT intermediate files.
//!
//! "The evaluation strategy calls for storing a linearized version of the
//! APT in an intermediate file … Two intermediate files are used per pass;
//! APT nodes are read from one intermediate file and written to the other"
//! (§II). The key trick is directional: "if the output file of a
//! left-to-right pass is read backwards it can be the input file for a
//! right-to-left pass". To make a byte file readable in both directions,
//! every record is framed with its length on *both* sides:
//!
//! ```text
//! [len: u32][payload: len bytes][len: u32]
//! ```
//!
//! A forward reader consumes the leading length; a backward reader seeks
//! from the end and consumes the trailing one. Records carry either a
//! symbol node (leaf or interior) or a production node (the paper's limb
//! record, which also tells the visiting procedure *which* production
//! applies — "to synchronize the identification of productions with the
//! parser").

use crate::metrics::IoCounters;
use crate::value::{DecodeError, Value};
use linguist_ag::ids::{AttrId, ProdId, SymbolId};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Magic bytes opening every intermediate APT file.
const MAGIC: [u8; 4] = *b"APT1";
/// Format version stamped after the magic.
const VERSION: u16 = 1;
/// Fixed header size: magic (4) + version (2) + reserved (2) +
/// total records (8) + total framed record bytes (8).
pub(crate) const HEADER_LEN: u64 = 24;
/// Smallest possible framed record: two 4-byte frame lengths around the
/// minimal payload (1-byte tag + 4-byte id + 2-byte value count).
const MIN_FRAMED_RECORD: u64 = 15;

fn encode_header(records: u64, bytes: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[0..4].copy_from_slice(&MAGIC);
    h[4..6].copy_from_slice(&VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&records.to_le_bytes());
    h[16..24].copy_from_slice(&bytes.to_le_bytes());
    h
}

/// Why an APT file header was rejected at open time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeaderError {
    /// The file is shorter than a header.
    Truncated {
        /// Actual file length.
        len: u64,
    },
    /// The magic bytes are wrong — not an APT file, or a corrupted one.
    BadMagic,
    /// The version field names a format this reader does not speak.
    UnsupportedVersion {
        /// The version found in the file.
        found: u16,
    },
    /// The header's recorded body length disagrees with the file size
    /// (truncated mid-write, or bytes flipped in the header totals).
    LengthMismatch {
        /// Body bytes the header promises.
        expected: u64,
        /// Body bytes actually present.
        actual: u64,
    },
    /// The header's record count cannot fit in the body it describes
    /// (every framed record occupies at least 15 bytes).
    ImplausibleRecordCount {
        /// Records the header promises.
        records: u64,
        /// Body bytes available to hold them.
        bytes: u64,
    },
}

impl fmt::Display for HeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderError::Truncated { len } => {
                write!(f, "file of {} bytes is shorter than the header", len)
            }
            HeaderError::BadMagic => write!(f, "bad magic (not an APT file)"),
            HeaderError::UnsupportedVersion { found } => {
                write!(f, "unsupported format version {}", found)
            }
            HeaderError::LengthMismatch { expected, actual } => write!(
                f,
                "header promises {} body bytes but the file holds {}",
                expected, actual
            ),
            HeaderError::ImplausibleRecordCount { records, bytes } => write!(
                f,
                "header promises {} records but only {} body bytes hold them",
                records, bytes
            ),
        }
    }
}

/// A deliberately injected I/O failure, for fault testing.
///
/// A spec is *armed* once; the first reader or writer that crosses
/// `after_records` records on the targeted side fires it exactly once
/// (the `Arc<AtomicBool>` is shared across every clone, so in a batch
/// run exactly one job observes the fault).
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// The pass whose reader/writer carries the fault (0 targets the
    /// parser-built initial emission).
    pub pass: u16,
    /// Inject on the read or the write side.
    pub target: FaultTarget,
    /// Fire when this many records have already been transferred.
    pub after_records: u64,
    armed: Arc<AtomicBool>,
}

/// Which side of a pass a [`FaultSpec`] poisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// Fail an [`AptReader::next`] call.
    Read,
    /// Fail an [`AptWriter::write`] call.
    Write,
}

impl FaultSpec {
    /// An armed fault on `target` of `pass`, firing after `after_records`
    /// successful records.
    pub fn new(pass: u16, target: FaultTarget, after_records: u64) -> FaultSpec {
        FaultSpec {
            pass,
            target,
            after_records,
            armed: Arc::new(AtomicBool::new(true)),
        }
    }

    /// True while no reader/writer has fired the fault yet.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    fn fire(&self, records_so_far: u64) -> Result<(), AptError> {
        if records_so_far >= self.after_records && self.armed.swap(false, Ordering::Relaxed) {
            return Err(AptError::Io(io::Error::other(format!(
                "injected fault after {} records",
                records_so_far
            ))));
        }
        Ok(())
    }
}

/// A memory-resident intermediate "file" — the paper's closing question
/// made concrete: "would some form of virtual memory system significantly
/// speed up the evaluators?" Backing the same record format with RAM
/// instead of disk is that hypothetical; the `ablation_virtual_memory`
/// bench measures the difference.
///
/// The buffer is `Arc<Mutex<…>>` rather than `Rc<RefCell<…>>` so
/// memory-backed evaluations are `Send` and can run on the batch
/// evaluator's worker threads. Each evaluation owns its own buffers
/// (per-job isolation), so the mutex is uncontended in practice.
pub type MemFile = Arc<Mutex<Vec<u8>>>;

/// What a record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordBody {
    /// A node labelled with a grammar symbol (terminal leaf or
    /// nonterminal interior node).
    Sym(SymbolId),
    /// A production/limb record: identifies the production applying at an
    /// interior node and carries limb-attribute instances.
    Prod(ProdId),
}

/// One record of an intermediate APT file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Node or production tag.
    pub body: RecordBody,
    /// Attribute instances travelling with the record, sorted by attribute
    /// id (self-describing layout).
    pub values: Vec<(AttrId, Value)>,
}

impl Record {
    /// Serialized payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self.body {
            RecordBody::Sym(s) => {
                out.push(0u8);
                out.extend_from_slice(&s.0.to_le_bytes());
            }
            RecordBody::Prod(p) => {
                out.push(1u8);
                out.extend_from_slice(&p.0.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for (a, v) in &self.values {
            out.extend_from_slice(&a.0.to_le_bytes());
            v.encode(&mut out);
        }
        out
    }

    /// Decode a payload produced by [`Record::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`AptError::Decode`] on malformed payloads.
    pub fn decode(buf: &[u8]) -> Result<Record, AptError> {
        let mut pos = 0usize;
        let err = |at| AptError::Decode(DecodeError { at });
        let tag = *buf.first().ok_or(err(0))?;
        pos += 1;
        let id_bytes: [u8; 4] = buf
            .get(pos..pos + 4)
            .ok_or(err(pos))?
            .try_into()
            .expect("sized");
        pos += 4;
        let id = u32::from_le_bytes(id_bytes);
        let body = match tag {
            0 => RecordBody::Sym(SymbolId(id)),
            1 => RecordBody::Prod(ProdId(id)),
            _ => return Err(err(0)),
        };
        let n_bytes: [u8; 2] = buf
            .get(pos..pos + 2)
            .ok_or(err(pos))?
            .try_into()
            .expect("sized");
        pos += 2;
        let n = u16::from_le_bytes(n_bytes) as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let a_bytes: [u8; 4] = buf
                .get(pos..pos + 4)
                .ok_or(err(pos))?
                .try_into()
                .expect("sized");
            pos += 4;
            let v = Value::decode(buf, &mut pos).map_err(AptError::Decode)?;
            values.push((AttrId(u32::from_le_bytes(a_bytes)), v));
        }
        if pos != buf.len() {
            return Err(err(pos));
        }
        Ok(Record { body, values })
    }

    /// Look up an attribute instance in the record.
    pub fn value_of(&self, a: AttrId) -> Option<&Value> {
        self.values
            .iter()
            .find(|(attr, _)| *attr == a)
            .map(|(_, v)| v)
    }

    /// Approximate on-disk size (payload + both length frames).
    pub fn byte_size(&self) -> usize {
        self.encode().len() + 8
    }
}

/// I/O or format failure on an APT file.
#[derive(Debug)]
pub enum AptError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Malformed record payload.
    Decode(DecodeError),
    /// A record frame is inconsistent (leading/trailing length mismatch or
    /// truncated file).
    Frame {
        /// Byte offset of the bad frame.
        at: u64,
    },
    /// The file header is missing, corrupt, or inconsistent with the file
    /// size — detected at [`AptReader::open`] time, before any record is
    /// served.
    Header(HeaderError),
}

impl fmt::Display for AptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AptError::Io(e) => write!(f, "APT file I/O error: {}", e),
            AptError::Decode(e) => write!(f, "APT record: {}", e),
            AptError::Frame { at } => write!(f, "APT file frame corrupt at byte {}", at),
            AptError::Header(e) => write!(f, "APT file header: {}", e),
        }
    }
}

impl std::error::Error for AptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AptError::Io(e) => Some(e),
            AptError::Decode(e) => Some(e),
            AptError::Frame { .. } | AptError::Header(_) => None,
        }
    }
}

impl From<io::Error> for AptError {
    fn from(e: io::Error) -> AptError {
        AptError::Io(e)
    }
}

/// Sequential writer of an intermediate APT file (disk- or RAM-backed).
///
/// Every file opens with a fixed header whose totals are patched in by
/// [`AptWriter::finish`]; a file abandoned before `finish` (or truncated
/// afterwards) is rejected by [`AptReader::open`] with a typed
/// [`HeaderError`] instead of being served as silently empty.
#[derive(Debug)]
pub struct AptWriter {
    sink: Sink,
    bytes: u64,
    records: u64,
    profile: Option<Arc<IoCounters>>,
    fault: Option<FaultSpec>,
}

#[derive(Debug)]
enum Sink {
    File(BufWriter<File>),
    Mem(MemFile),
}

impl AptWriter {
    /// Create (truncate) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path) -> Result<AptWriter, AptError> {
        let mut f = BufWriter::new(File::create(path)?);
        // Placeholder header; `finish` seeks back and patches the totals.
        f.write_all(&encode_header(0, 0))?;
        Ok(AptWriter {
            sink: Sink::File(f),
            bytes: 0,
            records: 0,
            profile: None,
            fault: None,
        })
    }

    /// Create a writer over a memory buffer (truncating it).
    pub fn create_mem(buf: MemFile) -> AptWriter {
        {
            let mut b = buf.lock().expect("mem file poisoned");
            b.clear();
            b.extend_from_slice(&encode_header(0, 0));
        }
        AptWriter {
            sink: Sink::Mem(buf),
            bytes: 0,
            records: 0,
            profile: None,
            fault: None,
        }
    }

    /// Attach a profiling counter pair; every subsequent [`write`](Self::write)
    /// bumps it atomically.
    pub fn set_profile(&mut self, counters: Arc<IoCounters>) {
        self.profile = Some(counters);
    }

    /// Attach an injected fault (test support): the write crossing
    /// `spec.after_records` fails with an I/O error if the spec is still
    /// armed.
    pub fn set_fault(&mut self, spec: FaultSpec) {
        self.fault = Some(spec);
    }

    /// Append one record.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (memory writers only fail through an
    /// injected [`FaultSpec`]).
    pub fn write(&mut self, rec: &Record) -> Result<(), AptError> {
        if let Some(fault) = &self.fault {
            fault.fire(self.records)?;
        }
        let payload = rec.encode();
        let len = (payload.len() as u32).to_le_bytes();
        match &mut self.sink {
            Sink::File(f) => {
                f.write_all(&len)?;
                f.write_all(&payload)?;
                f.write_all(&len)?;
            }
            Sink::Mem(m) => {
                let mut b = m.lock().expect("mem file poisoned");
                b.extend_from_slice(&len);
                b.extend_from_slice(&payload);
                b.extend_from_slice(&len);
            }
        }
        let framed = payload.len() as u64 + 8;
        self.bytes += framed;
        self.records += 1;
        if let Some(p) = &self.profile {
            p.add_record(framed);
        }
        Ok(())
    }

    /// Patch the header totals, flush, and report `(bytes, records)`
    /// written (framed record bytes, excluding the header).
    ///
    /// # Errors
    ///
    /// Propagates the final flush failure.
    pub fn finish(self) -> Result<(u64, u64), AptError> {
        let header = encode_header(self.records, self.bytes);
        match self.sink {
            Sink::File(f) => {
                let mut file = f
                    .into_inner()
                    .map_err(|e| AptError::Io(io::Error::other(e.to_string())))?;
                file.seek(SeekFrom::Start(0))?;
                file.write_all(&header)?;
                file.flush()?;
            }
            Sink::Mem(m) => {
                let mut b = m.lock().expect("mem file poisoned");
                b[..HEADER_LEN as usize].copy_from_slice(&header);
            }
        }
        Ok((self.bytes, self.records))
    }
}

/// Read direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadDir {
    /// First record first.
    Forward,
    /// Last record first — "the output file of a left-to-right pass …
    /// read backwards".
    Backward,
}

/// Sequential (possibly backwards) reader of an intermediate APT file
/// (disk- or RAM-backed).
#[derive(Debug)]
pub struct AptReader {
    src: Source,
    pos: u64,
    end: u64,
    dir: ReadDir,
    bytes: u64,
    records: u64,
    profile: Option<Arc<IoCounters>>,
    fault: Option<FaultSpec>,
}

#[derive(Debug)]
enum Source {
    File(File),
    Mem(MemFile),
}

impl Source {
    fn read_at(&mut self, pos: u64, out: &mut [u8]) -> Result<(), AptError> {
        match self {
            Source::File(f) => {
                f.seek(SeekFrom::Start(pos))?;
                f.read_exact(out)?;
                Ok(())
            }
            Source::Mem(m) => {
                let b = m.lock().expect("mem file poisoned");
                let start = pos as usize;
                let slice = b
                    .get(start..start + out.len())
                    .ok_or(AptError::Frame { at: pos })?;
                out.copy_from_slice(slice);
                Ok(())
            }
        }
    }
}

impl AptReader {
    /// Validate the header of a file `len` bytes long whose first
    /// `HEADER_LEN` bytes were read into `head`, returning the body end
    /// offset.
    fn check_header(head: &[u8], len: u64) -> Result<u64, AptError> {
        if head[0..4] != MAGIC {
            return Err(AptError::Header(HeaderError::BadMagic));
        }
        let version = u16::from_le_bytes(head[4..6].try_into().expect("sized"));
        if version != VERSION {
            return Err(AptError::Header(HeaderError::UnsupportedVersion {
                found: version,
            }));
        }
        let total_bytes = u64::from_le_bytes(head[16..24].try_into().expect("sized"));
        let actual = len - HEADER_LEN;
        if total_bytes != actual {
            return Err(AptError::Header(HeaderError::LengthMismatch {
                expected: total_bytes,
                actual,
            }));
        }
        // A framed record is at least 15 bytes (two 4-byte frame lengths
        // around a node payload of tag + production id + value count), so
        // the promised record count bounds the body size from below; a
        // non-empty body likewise needs at least one record.
        let total_records = u64::from_le_bytes(head[8..16].try_into().expect("sized"));
        let plausible = match total_records.checked_mul(MIN_FRAMED_RECORD) {
            Some(min) => min <= total_bytes && (total_records > 0 || total_bytes == 0),
            None => false,
        };
        if !plausible {
            return Err(AptError::Header(HeaderError::ImplausibleRecordCount {
                records: total_records,
                bytes: total_bytes,
            }));
        }
        Ok(len)
    }

    /// Open `path` for reading in `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; returns [`AptError::Header`] if the
    /// file is shorter than a header, carries the wrong magic or version,
    /// or its recorded body length disagrees with the file size (a file
    /// truncated mid-write — e.g. never [`finish`](AptWriter::finish)ed —
    /// is rejected here rather than read as empty).
    pub fn open(path: &Path, dir: ReadDir) -> Result<AptReader, AptError> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len < HEADER_LEN {
            return Err(AptError::Header(HeaderError::Truncated { len }));
        }
        let mut head = [0u8; HEADER_LEN as usize];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head)?;
        let end = Self::check_header(&head, len)?;
        Ok(AptReader {
            src: Source::File(file),
            pos: match dir {
                ReadDir::Forward => HEADER_LEN,
                ReadDir::Backward => end,
            },
            end,
            dir,
            bytes: 0,
            records: 0,
            profile: None,
            fault: None,
        })
    }

    /// Open a memory buffer for reading in `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`AptError::Header`] under the same conditions as
    /// [`open`](Self::open).
    pub fn open_mem(buf: MemFile, dir: ReadDir) -> Result<AptReader, AptError> {
        let end = {
            let b = buf.lock().expect("mem file poisoned");
            let len = b.len() as u64;
            if len < HEADER_LEN {
                return Err(AptError::Header(HeaderError::Truncated { len }));
            }
            Self::check_header(&b[..HEADER_LEN as usize], len)?
        };
        Ok(AptReader {
            src: Source::Mem(buf),
            pos: match dir {
                ReadDir::Forward => HEADER_LEN,
                ReadDir::Backward => end,
            },
            end,
            dir,
            bytes: 0,
            records: 0,
            profile: None,
            fault: None,
        })
    }

    /// Attach a profiling counter pair; every subsequent [`next`](Self::next)
    /// bumps it atomically.
    pub fn set_profile(&mut self, counters: Arc<IoCounters>) {
        self.profile = Some(counters);
    }

    /// Attach an injected fault (test support): the read crossing
    /// `spec.after_records` fails with an I/O error if the spec is still
    /// armed.
    pub fn set_fault(&mut self, spec: FaultSpec) {
        self.fault = Some(spec);
    }

    /// Read the next record, or `None` at the end (beginning, for
    /// backward readers).
    ///
    /// # Errors
    ///
    /// Returns [`AptError::Frame`] on corrupt framing and propagates I/O
    /// and decode failures.
    #[allow(clippy::should_implement_trait)] // fallible, not an Iterator
    pub fn next(&mut self) -> Result<Option<Record>, AptError> {
        if let Some(fault) = &self.fault {
            fault.fire(self.records)?;
        }
        match self.dir {
            ReadDir::Forward => {
                if self.pos >= self.end {
                    return Ok(None);
                }
                let mut len4 = [0u8; 4];
                self.src.read_at(self.pos, &mut len4)?;
                let len = u32::from_le_bytes(len4) as u64;
                if self.pos + 8 + len > self.end {
                    return Err(AptError::Frame { at: self.pos });
                }
                let mut payload = vec![0u8; len as usize];
                self.src.read_at(self.pos + 4, &mut payload)?;
                let mut trail = [0u8; 4];
                self.src.read_at(self.pos + 4 + len, &mut trail)?;
                if trail != len4 {
                    return Err(AptError::Frame { at: self.pos });
                }
                self.pos += 8 + len;
                self.advance(8 + len);
                Ok(Some(Record::decode(&payload)?))
            }
            ReadDir::Backward => {
                if self.pos == HEADER_LEN {
                    return Ok(None);
                }
                if self.pos < HEADER_LEN + 8 {
                    return Err(AptError::Frame { at: self.pos });
                }
                let mut len4 = [0u8; 4];
                self.src.read_at(self.pos - 4, &mut len4)?;
                let len = u32::from_le_bytes(len4) as u64;
                if self.pos < HEADER_LEN + 8 + len {
                    return Err(AptError::Frame { at: self.pos });
                }
                let mut lead = [0u8; 4];
                self.src.read_at(self.pos - 8 - len, &mut lead)?;
                if lead != len4 {
                    return Err(AptError::Frame { at: self.pos });
                }
                let mut payload = vec![0u8; len as usize];
                self.src.read_at(self.pos - 4 - len, &mut payload)?;
                self.pos -= 8 + len;
                self.advance(8 + len);
                Ok(Some(Record::decode(&payload)?))
            }
        }
    }

    fn advance(&mut self, framed: u64) {
        self.bytes += framed;
        self.records += 1;
        if let Some(p) = &self.profile {
            p.add_record(framed);
        }
    }

    /// Bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes
    }

    /// Records consumed so far.
    pub fn records_read(&self) -> u64 {
        self.records
    }
}

/// A self-cleaning directory for one evaluation's intermediate files.
#[derive(Debug)]
pub struct TempAptDir {
    dir: PathBuf,
}

impl TempAptDir {
    /// Create a fresh private directory under the system temp dir.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn new() -> Result<TempAptDir, AptError> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("linguist86-apt-{}-{}", std::process::id(), n));
        std::fs::create_dir_all(&dir)?;
        Ok(TempAptDir { dir })
    }

    /// Path of the file holding the boundary-`k` snapshot (boundary 0 is
    /// the parser-built initial file).
    pub fn boundary(&self, k: u16) -> PathBuf {
        self.dir.join(format!("boundary_{}.apt", k))
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }
}

impl Drop for TempAptDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u32) -> Record {
        Record {
            body: if i.is_multiple_of(2) {
                RecordBody::Sym(SymbolId(i))
            } else {
                RecordBody::Prod(ProdId(i))
            },
            values: vec![
                (AttrId(0), Value::Int(i as i64)),
                (AttrId(7), Value::str(&format!("v{}", i))),
            ],
        }
    }

    #[test]
    fn record_encoding_round_trips() {
        for i in 0..5 {
            let r = rec(i);
            assert_eq!(Record::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn forward_read_returns_written_order() {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(0);
        let mut w = AptWriter::create(&path).unwrap();
        for i in 0..10 {
            w.write(&rec(i)).unwrap();
        }
        let (bytes, records) = w.finish().unwrap();
        assert_eq!(records, 10);
        assert!(bytes > 0);

        let mut r = AptReader::open(&path, ReadDir::Forward).unwrap();
        for i in 0..10 {
            assert_eq!(r.next().unwrap().unwrap(), rec(i));
        }
        assert!(r.next().unwrap().is_none());
        assert_eq!(r.records_read(), 10);
        assert_eq!(r.bytes_read(), bytes);
    }

    #[test]
    fn backward_read_reverses_order() {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(1);
        let mut w = AptWriter::create(&path).unwrap();
        for i in 0..7 {
            w.write(&rec(i)).unwrap();
        }
        w.finish().unwrap();

        let mut r = AptReader::open(&path, ReadDir::Backward).unwrap();
        for i in (0..7).rev() {
            assert_eq!(r.next().unwrap().unwrap(), rec(i));
        }
        assert!(r.next().unwrap().is_none());
    }

    #[test]
    fn empty_file_reads_none_both_ways() {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(2);
        AptWriter::create(&path).unwrap().finish().unwrap();
        for d in [ReadDir::Forward, ReadDir::Backward] {
            let mut r = AptReader::open(&path, d).unwrap();
            assert!(r.next().unwrap().is_none());
        }
    }

    #[test]
    fn truncated_file_rejected_at_open() {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(3);
        let mut w = AptWriter::create(&path).unwrap();
        w.write(&rec(0)).unwrap();
        w.finish().unwrap();
        // Truncate one byte off the end: the header's recorded body
        // length no longer matches, so open() itself must reject it.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 1]).unwrap();
        for d in [ReadDir::Forward, ReadDir::Backward] {
            match AptReader::open(&path, d) {
                Err(AptError::Header(HeaderError::LengthMismatch { .. })) => {}
                other => panic!("truncated file not rejected: {:?}", other),
            }
        }
    }

    #[test]
    fn unfinished_file_rejected_at_open() {
        // A writer dropped without finish() leaves the placeholder header
        // (zero totals); the reader must not serve it as silently empty.
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(4);
        let mut w = AptWriter::create(&path).unwrap();
        w.write(&rec(1)).unwrap();
        drop(w);
        match AptReader::open(&path, ReadDir::Forward) {
            Err(AptError::Header(HeaderError::LengthMismatch { expected: 0, .. })) => {}
            other => panic!("unfinished file not rejected: {:?}", other),
        }
    }

    #[test]
    fn header_too_short_rejected_at_open() {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(5);
        std::fs::write(&path, b"APT").unwrap();
        match AptReader::open(&path, ReadDir::Forward) {
            Err(AptError::Header(HeaderError::Truncated { len: 3 })) => {}
            other => panic!("short file not rejected: {:?}", other),
        }
    }

    #[test]
    fn every_header_byte_flip_is_rejected_at_open() {
        // The corruption regression: flip each header byte of a valid
        // file in turn; open() must return a typed error every time
        // (reserved bytes 6..8 excepted — they are not validated), and
        // must never panic or serve an empty read.
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(6);
        let mut w = AptWriter::create(&path).unwrap();
        for i in 0..4 {
            w.write(&rec(i)).unwrap();
        }
        w.finish().unwrap();
        let pristine = std::fs::read(&path).unwrap();
        for at in (0..HEADER_LEN as usize).filter(|&b| !(6..8).contains(&b)) {
            let mut data = pristine.clone();
            data[at] ^= 0xFF;
            std::fs::write(&path, &data).unwrap();
            match AptReader::open(&path, ReadDir::Forward) {
                Err(AptError::Header(_)) => {}
                other => panic!("flip at byte {} not rejected: {:?}", at, other),
            }
        }
    }

    #[test]
    fn body_byte_flips_never_panic() {
        // Flips inside the record body surface as typed errors from
        // next() (or, for flips that alter framing, sometimes decode to
        // garbage values — but they must never panic).
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(7);
        let mut w = AptWriter::create(&path).unwrap();
        for i in 0..4 {
            w.write(&rec(i)).unwrap();
        }
        w.finish().unwrap();
        let pristine = std::fs::read(&path).unwrap();
        for at in HEADER_LEN as usize..pristine.len() {
            let mut data = pristine.clone();
            data[at] ^= 0xFF;
            std::fs::write(&path, &data).unwrap();
            for d in [ReadDir::Forward, ReadDir::Backward] {
                let mut r = AptReader::open(&path, d).unwrap();
                while let Ok(Some(_)) = r.next() {}
            }
        }
        // A flip in the first record's leading length frame specifically
        // must be a typed error, not a bogus record.
        let mut data = pristine.clone();
        data[HEADER_LEN as usize] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let mut r = AptReader::open(&path, ReadDir::Forward).unwrap();
        assert!(r.next().is_err());
    }

    #[test]
    fn injected_write_fault_fires_exactly_once() {
        let dir = TempAptDir::new().unwrap();
        let fault = FaultSpec::new(0, FaultTarget::Write, 2);
        let mut w = AptWriter::create(&dir.boundary(8)).unwrap();
        w.set_fault(fault.clone());
        w.write(&rec(0)).unwrap();
        w.write(&rec(1)).unwrap();
        match w.write(&rec(2)) {
            Err(AptError::Io(_)) => {}
            other => panic!("fault did not fire: {:?}", other),
        }
        assert!(!fault.is_armed());
        // Disarmed: the same spec never fires again.
        w.write(&rec(2)).unwrap();
        w.finish().unwrap();
    }

    #[test]
    fn profile_counters_match_internal_tallies() {
        use crate::metrics::IoCounters;
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(9);
        let wc = IoCounters::shared();
        let mut w = AptWriter::create(&path).unwrap();
        w.set_profile(wc.clone());
        for i in 0..6 {
            w.write(&rec(i)).unwrap();
        }
        let (bytes, records) = w.finish().unwrap();
        assert_eq!(wc.snapshot(), (records, bytes));

        let rc = IoCounters::shared();
        let mut r = AptReader::open(&path, ReadDir::Backward).unwrap();
        r.set_profile(rc.clone());
        while r.next().unwrap().is_some() {}
        assert_eq!(rc.snapshot(), (r.records_read(), r.bytes_read()));
        assert_eq!(rc.snapshot(), (records, bytes));
    }

    #[test]
    fn temp_dir_cleans_up() {
        let path;
        {
            let dir = TempAptDir::new().unwrap();
            path = dir.path().to_path_buf();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn value_of_finds_attrs() {
        let r = rec(4);
        assert_eq!(r.value_of(AttrId(0)), Some(&Value::Int(4)));
        assert!(r.value_of(AttrId(99)).is_none());
    }
}
