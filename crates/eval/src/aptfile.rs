//! The linearized APT intermediate files.
//!
//! "The evaluation strategy calls for storing a linearized version of the
//! APT in an intermediate file … Two intermediate files are used per pass;
//! APT nodes are read from one intermediate file and written to the other"
//! (§II). The key trick is directional: "if the output file of a
//! left-to-right pass is read backwards it can be the input file for a
//! right-to-left pass". To make a byte file readable in both directions,
//! every record is framed with its length on *both* sides:
//!
//! ```text
//! [len: u32][payload: len bytes][len: u32]
//! ```
//!
//! A forward reader consumes the leading length; a backward reader seeks
//! from the end and consumes the trailing one. Records carry either a
//! symbol node (leaf or interior) or a production node (the paper's limb
//! record, which also tells the visiting procedure *which* production
//! applies — "to synchronize the identification of productions with the
//! parser").

use crate::value::{DecodeError, Value};
use linguist_ag::ids::{AttrId, ProdId, SymbolId};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A memory-resident intermediate "file" — the paper's closing question
/// made concrete: "would some form of virtual memory system significantly
/// speed up the evaluators?" Backing the same record format with RAM
/// instead of disk is that hypothetical; the `ablation_virtual_memory`
/// bench measures the difference.
///
/// The buffer is `Arc<Mutex<…>>` rather than `Rc<RefCell<…>>` so
/// memory-backed evaluations are `Send` and can run on the batch
/// evaluator's worker threads. Each evaluation owns its own buffers
/// (per-job isolation), so the mutex is uncontended in practice.
pub type MemFile = Arc<Mutex<Vec<u8>>>;

/// What a record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordBody {
    /// A node labelled with a grammar symbol (terminal leaf or
    /// nonterminal interior node).
    Sym(SymbolId),
    /// A production/limb record: identifies the production applying at an
    /// interior node and carries limb-attribute instances.
    Prod(ProdId),
}

/// One record of an intermediate APT file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Node or production tag.
    pub body: RecordBody,
    /// Attribute instances travelling with the record, sorted by attribute
    /// id (self-describing layout).
    pub values: Vec<(AttrId, Value)>,
}

impl Record {
    /// Serialized payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self.body {
            RecordBody::Sym(s) => {
                out.push(0u8);
                out.extend_from_slice(&s.0.to_le_bytes());
            }
            RecordBody::Prod(p) => {
                out.push(1u8);
                out.extend_from_slice(&p.0.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for (a, v) in &self.values {
            out.extend_from_slice(&a.0.to_le_bytes());
            v.encode(&mut out);
        }
        out
    }

    /// Decode a payload produced by [`Record::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`AptError::Decode`] on malformed payloads.
    pub fn decode(buf: &[u8]) -> Result<Record, AptError> {
        let mut pos = 0usize;
        let err = |at| AptError::Decode(DecodeError { at });
        let tag = *buf.first().ok_or(err(0))?;
        pos += 1;
        let id_bytes: [u8; 4] = buf.get(pos..pos + 4).ok_or(err(pos))?.try_into().expect("sized");
        pos += 4;
        let id = u32::from_le_bytes(id_bytes);
        let body = match tag {
            0 => RecordBody::Sym(SymbolId(id)),
            1 => RecordBody::Prod(ProdId(id)),
            _ => return Err(err(0)),
        };
        let n_bytes: [u8; 2] = buf.get(pos..pos + 2).ok_or(err(pos))?.try_into().expect("sized");
        pos += 2;
        let n = u16::from_le_bytes(n_bytes) as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let a_bytes: [u8; 4] =
                buf.get(pos..pos + 4).ok_or(err(pos))?.try_into().expect("sized");
            pos += 4;
            let v = Value::decode(buf, &mut pos).map_err(AptError::Decode)?;
            values.push((AttrId(u32::from_le_bytes(a_bytes)), v));
        }
        if pos != buf.len() {
            return Err(err(pos));
        }
        Ok(Record { body, values })
    }

    /// Look up an attribute instance in the record.
    pub fn value_of(&self, a: AttrId) -> Option<&Value> {
        self.values
            .iter()
            .find(|(attr, _)| *attr == a)
            .map(|(_, v)| v)
    }

    /// Approximate on-disk size (payload + both length frames).
    pub fn byte_size(&self) -> usize {
        self.encode().len() + 8
    }
}

/// I/O or format failure on an APT file.
#[derive(Debug)]
pub enum AptError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Malformed record payload.
    Decode(DecodeError),
    /// A record frame is inconsistent (leading/trailing length mismatch or
    /// truncated file).
    Frame {
        /// Byte offset of the bad frame.
        at: u64,
    },
}

impl fmt::Display for AptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AptError::Io(e) => write!(f, "APT file I/O error: {}", e),
            AptError::Decode(e) => write!(f, "APT record: {}", e),
            AptError::Frame { at } => write!(f, "APT file frame corrupt at byte {}", at),
        }
    }
}

impl std::error::Error for AptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AptError::Io(e) => Some(e),
            AptError::Decode(e) => Some(e),
            AptError::Frame { .. } => None,
        }
    }
}

impl From<io::Error> for AptError {
    fn from(e: io::Error) -> AptError {
        AptError::Io(e)
    }
}

/// Sequential writer of an intermediate APT file (disk- or RAM-backed).
#[derive(Debug)]
pub struct AptWriter {
    sink: Sink,
    bytes: u64,
    records: u64,
}

#[derive(Debug)]
enum Sink {
    File(BufWriter<File>),
    Mem(MemFile),
}

impl AptWriter {
    /// Create (truncate) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path) -> Result<AptWriter, AptError> {
        Ok(AptWriter {
            sink: Sink::File(BufWriter::new(File::create(path)?)),
            bytes: 0,
            records: 0,
        })
    }

    /// Create a writer over a memory buffer (truncating it).
    pub fn create_mem(buf: MemFile) -> AptWriter {
        buf.lock().expect("mem file poisoned").clear();
        AptWriter {
            sink: Sink::Mem(buf),
            bytes: 0,
            records: 0,
        }
    }

    /// Append one record.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (memory writers are infallible).
    pub fn write(&mut self, rec: &Record) -> Result<(), AptError> {
        let payload = rec.encode();
        let len = (payload.len() as u32).to_le_bytes();
        match &mut self.sink {
            Sink::File(f) => {
                f.write_all(&len)?;
                f.write_all(&payload)?;
                f.write_all(&len)?;
            }
            Sink::Mem(m) => {
                let mut b = m.lock().expect("mem file poisoned");
                b.extend_from_slice(&len);
                b.extend_from_slice(&payload);
                b.extend_from_slice(&len);
            }
        }
        self.bytes += payload.len() as u64 + 8;
        self.records += 1;
        Ok(())
    }

    /// Flush and report `(bytes, records)` written.
    ///
    /// # Errors
    ///
    /// Propagates the final flush failure.
    pub fn finish(self) -> Result<(u64, u64), AptError> {
        if let Sink::File(mut f) = self.sink {
            f.flush()?;
        }
        Ok((self.bytes, self.records))
    }
}

/// Read direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadDir {
    /// First record first.
    Forward,
    /// Last record first — "the output file of a left-to-right pass …
    /// read backwards".
    Backward,
}

/// Sequential (possibly backwards) reader of an intermediate APT file
/// (disk- or RAM-backed).
#[derive(Debug)]
pub struct AptReader {
    src: Source,
    pos: u64,
    end: u64,
    dir: ReadDir,
    bytes: u64,
    records: u64,
}

#[derive(Debug)]
enum Source {
    File(File),
    Mem(MemFile),
}

impl Source {
    fn read_at(&mut self, pos: u64, out: &mut [u8]) -> Result<(), AptError> {
        match self {
            Source::File(f) => {
                f.seek(SeekFrom::Start(pos))?;
                f.read_exact(out)?;
                Ok(())
            }
            Source::Mem(m) => {
                let b = m.lock().expect("mem file poisoned");
                let start = pos as usize;
                let slice = b
                    .get(start..start + out.len())
                    .ok_or(AptError::Frame { at: pos })?;
                out.copy_from_slice(slice);
                Ok(())
            }
        }
    }
}

impl AptReader {
    /// Open `path` for reading in `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(path: &Path, dir: ReadDir) -> Result<AptReader, AptError> {
        let file = File::open(path)?;
        let end = file.metadata()?.len();
        Ok(AptReader {
            src: Source::File(file),
            pos: match dir {
                ReadDir::Forward => 0,
                ReadDir::Backward => end,
            },
            end,
            dir,
            bytes: 0,
            records: 0,
        })
    }

    /// Open a memory buffer for reading in `dir`.
    pub fn open_mem(buf: MemFile, dir: ReadDir) -> AptReader {
        let end = buf.lock().expect("mem file poisoned").len() as u64;
        AptReader {
            src: Source::Mem(buf),
            pos: match dir {
                ReadDir::Forward => 0,
                ReadDir::Backward => end,
            },
            end,
            dir,
            bytes: 0,
            records: 0,
        }
    }

    /// Read the next record, or `None` at the end (beginning, for
    /// backward readers).
    ///
    /// # Errors
    ///
    /// Returns [`AptError::Frame`] on corrupt framing and propagates I/O
    /// and decode failures.
    #[allow(clippy::should_implement_trait)] // fallible, not an Iterator
    pub fn next(&mut self) -> Result<Option<Record>, AptError> {
        match self.dir {
            ReadDir::Forward => {
                if self.pos >= self.end {
                    return Ok(None);
                }
                let mut len4 = [0u8; 4];
                self.src.read_at(self.pos, &mut len4)?;
                let len = u32::from_le_bytes(len4) as u64;
                if self.pos + 8 + len > self.end {
                    return Err(AptError::Frame { at: self.pos });
                }
                let mut payload = vec![0u8; len as usize];
                self.src.read_at(self.pos + 4, &mut payload)?;
                let mut trail = [0u8; 4];
                self.src.read_at(self.pos + 4 + len, &mut trail)?;
                if trail != len4 {
                    return Err(AptError::Frame { at: self.pos });
                }
                self.pos += 8 + len;
                self.bytes += 8 + len;
                self.records += 1;
                Ok(Some(Record::decode(&payload)?))
            }
            ReadDir::Backward => {
                if self.pos == 0 {
                    return Ok(None);
                }
                if self.pos < 8 {
                    return Err(AptError::Frame { at: self.pos });
                }
                let mut len4 = [0u8; 4];
                self.src.read_at(self.pos - 4, &mut len4)?;
                let len = u32::from_le_bytes(len4) as u64;
                if self.pos < 8 + len {
                    return Err(AptError::Frame { at: self.pos });
                }
                let mut lead = [0u8; 4];
                self.src.read_at(self.pos - 8 - len, &mut lead)?;
                if lead != len4 {
                    return Err(AptError::Frame { at: self.pos });
                }
                let mut payload = vec![0u8; len as usize];
                self.src.read_at(self.pos - 4 - len, &mut payload)?;
                self.pos -= 8 + len;
                self.bytes += 8 + len;
                self.records += 1;
                Ok(Some(Record::decode(&payload)?))
            }
        }
    }

    /// Bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes
    }

    /// Records consumed so far.
    pub fn records_read(&self) -> u64 {
        self.records
    }
}

/// A self-cleaning directory for one evaluation's intermediate files.
#[derive(Debug)]
pub struct TempAptDir {
    dir: PathBuf,
}

impl TempAptDir {
    /// Create a fresh private directory under the system temp dir.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn new() -> Result<TempAptDir, AptError> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "linguist86-apt-{}-{}",
            std::process::id(),
            n
        ));
        std::fs::create_dir_all(&dir)?;
        Ok(TempAptDir { dir })
    }

    /// Path of the file holding the boundary-`k` snapshot (boundary 0 is
    /// the parser-built initial file).
    pub fn boundary(&self, k: u16) -> PathBuf {
        self.dir.join(format!("boundary_{}.apt", k))
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }
}

impl Drop for TempAptDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u32) -> Record {
        Record {
            body: if i.is_multiple_of(2) {
                RecordBody::Sym(SymbolId(i))
            } else {
                RecordBody::Prod(ProdId(i))
            },
            values: vec![
                (AttrId(0), Value::Int(i as i64)),
                (AttrId(7), Value::str(&format!("v{}", i))),
            ],
        }
    }

    #[test]
    fn record_encoding_round_trips() {
        for i in 0..5 {
            let r = rec(i);
            assert_eq!(Record::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn forward_read_returns_written_order() {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(0);
        let mut w = AptWriter::create(&path).unwrap();
        for i in 0..10 {
            w.write(&rec(i)).unwrap();
        }
        let (bytes, records) = w.finish().unwrap();
        assert_eq!(records, 10);
        assert!(bytes > 0);

        let mut r = AptReader::open(&path, ReadDir::Forward).unwrap();
        for i in 0..10 {
            assert_eq!(r.next().unwrap().unwrap(), rec(i));
        }
        assert!(r.next().unwrap().is_none());
        assert_eq!(r.records_read(), 10);
        assert_eq!(r.bytes_read(), bytes);
    }

    #[test]
    fn backward_read_reverses_order() {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(1);
        let mut w = AptWriter::create(&path).unwrap();
        for i in 0..7 {
            w.write(&rec(i)).unwrap();
        }
        w.finish().unwrap();

        let mut r = AptReader::open(&path, ReadDir::Backward).unwrap();
        for i in (0..7).rev() {
            assert_eq!(r.next().unwrap().unwrap(), rec(i));
        }
        assert!(r.next().unwrap().is_none());
    }

    #[test]
    fn empty_file_reads_none_both_ways() {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(2);
        AptWriter::create(&path).unwrap().finish().unwrap();
        for d in [ReadDir::Forward, ReadDir::Backward] {
            let mut r = AptReader::open(&path, d).unwrap();
            assert!(r.next().unwrap().is_none());
        }
    }

    #[test]
    fn corrupt_frame_detected() {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(3);
        let mut w = AptWriter::create(&path).unwrap();
        w.write(&rec(0)).unwrap();
        w.finish().unwrap();
        // Truncate one byte off the end.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 1]).unwrap();
        let mut r = AptReader::open(&path, ReadDir::Forward).unwrap();
        assert!(r.next().is_err());
    }

    #[test]
    fn temp_dir_cleans_up() {
        let path;
        {
            let dir = TempAptDir::new().unwrap();
            path = dir.path().to_path_buf();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn value_of_finds_attrs() {
        let r = rec(4);
        assert_eq!(r.value_of(AttrId(0)), Some(&Value::Int(4)));
        assert!(r.value_of(AttrId(99)).is_none());
    }
}
