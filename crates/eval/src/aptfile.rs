//! The linearized APT intermediate files.
//!
//! "The evaluation strategy calls for storing a linearized version of the
//! APT in an intermediate file … Two intermediate files are used per pass;
//! APT nodes are read from one intermediate file and written to the other"
//! (§II). The key trick is directional: "if the output file of a
//! left-to-right pass is read backwards it can be the input file for a
//! right-to-left pass". To make a byte file readable in both directions,
//! every record is framed with its length on *both* sides; format v2 also
//! stamps each record with a CRC-32 of its payload:
//!
//! ```text
//! [len: u32][payload: len bytes][crc32: u32][len: u32]
//! ```
//!
//! A forward reader consumes the leading length; a backward reader seeks
//! from the end and consumes the trailing one. Records carry either a
//! symbol node (leaf or interior) or a production node (the paper's limb
//! record, which also tells the visiting procedure *which* production
//! applies — "to synchronize the identification of productions with the
//! parser").
//!
//! Because the APT lives on secondary storage between passes, each
//! boundary file is also a *checkpoint*: the per-record CRCs plus a
//! checksummed header mean corruption surfaces as a typed
//! [`AptError::Checksum`]/[`AptError::Frame`]/[`AptError::Header`] at the
//! offending record — never as silently wrong attribute values — and an
//! intact boundary file can seed a resumed evaluation (see
//! [`manifest`](crate::manifest) and
//! [`evaluate_resumable`](crate::machine::evaluate_resumable)).

use crate::crc;
use crate::metrics::IoCounters;
use crate::value::{DecodeError, Value};
use linguist_ag::ids::{AttrId, ProdId, SymbolId};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Magic bytes opening every intermediate APT file.
const MAGIC: [u8; 4] = *b"APT1";
/// Format version stamped after the magic (v2 added record and header
/// CRCs; v1 files are rejected with [`HeaderError::UnsupportedVersion`]).
const VERSION: u16 = 2;
/// Fixed header size: magic (4) + version (2) + reserved (2) +
/// total records (8) + total framed record bytes (8) + header CRC (4).
pub(crate) const HEADER_LEN: u64 = 28;
/// Bytes of the header covered by its CRC (everything before the CRC).
const HEADER_CRC_AT: usize = 24;
/// Frame overhead around a payload: lead length (4) + CRC (4) + trail
/// length (4).
const FRAME_OVERHEAD: u64 = 12;
/// Smallest possible framed record: the frame overhead around the
/// minimal payload (1-byte tag + 4-byte id + 2-byte value count).
const MIN_FRAMED_RECORD: u64 = FRAME_OVERHEAD + 7;

fn encode_header(records: u64, bytes: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[0..4].copy_from_slice(&MAGIC);
    h[4..6].copy_from_slice(&VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&records.to_le_bytes());
    h[16..24].copy_from_slice(&bytes.to_le_bytes());
    let crc = crc::crc32(&h[..HEADER_CRC_AT]);
    h[24..28].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Why an APT file header was rejected at open time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeaderError {
    /// The file is shorter than a header.
    Truncated {
        /// Actual file length.
        len: u64,
    },
    /// The magic bytes are wrong — not an APT file, or a corrupted one.
    BadMagic,
    /// The version field names a format this reader does not speak.
    UnsupportedVersion {
        /// The version found in the file.
        found: u16,
    },
    /// The header CRC does not match its fields — some header byte was
    /// flipped after the writer sealed it.
    Checksum {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC recomputed over the header fields.
        found: u32,
    },
    /// The header's recorded body length disagrees with the file size
    /// (truncated mid-write, or bytes flipped in the header totals).
    LengthMismatch {
        /// Body bytes the header promises.
        expected: u64,
        /// Body bytes actually present.
        actual: u64,
    },
    /// The header's record count cannot fit in the body it describes
    /// (every framed record occupies at least 19 bytes).
    ImplausibleRecordCount {
        /// Records the header promises.
        records: u64,
        /// Body bytes available to hold them.
        bytes: u64,
    },
}

impl fmt::Display for HeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderError::Truncated { len } => {
                write!(f, "file of {} bytes is shorter than the header", len)
            }
            HeaderError::BadMagic => write!(f, "bad magic (not an APT file)"),
            HeaderError::UnsupportedVersion { found } => {
                write!(f, "unsupported format version {}", found)
            }
            HeaderError::Checksum { expected, found } => write!(
                f,
                "header checksum mismatch (recorded {:08x}, computed {:08x})",
                expected, found
            ),
            HeaderError::LengthMismatch { expected, actual } => write!(
                f,
                "header promises {} body bytes but the file holds {}",
                expected, actual
            ),
            HeaderError::ImplausibleRecordCount { records, bytes } => write!(
                f,
                "header promises {} records but only {} body bytes hold them",
                records, bytes
            ),
        }
    }
}

/// A deliberately injected I/O failure, for fault testing.
///
/// A spec is armed with a number of shots (`fires`); each reader or
/// writer crossing `after_records` records on the targeted side consumes
/// one shot and fails, until the shots run out. The counter is an
/// `Arc<AtomicU32>` shared across every clone, so in a batch run the
/// faults are distributed over at most `fires` observations total.
///
/// A one-shot spec ([`FaultSpec::new`]) models a *permanent* fault for
/// the job that hits it; a multi-shot spec ([`FaultSpec::transient`])
/// models a *transient* fault that heals after `fires` failures — the
/// deterministic test fixture for
/// [`RetryPolicy`](crate::machine::RetryPolicy) recovery paths.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// The pass whose reader/writer carries the fault (0 targets the
    /// parser-built initial emission).
    pub pass: u16,
    /// Inject on the read or the write side.
    pub target: FaultTarget,
    /// Fire when this many records have already been transferred.
    pub after_records: u64,
    remaining: Arc<AtomicU32>,
}

/// Which side of a pass a [`FaultSpec`] poisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// Fail an [`AptReader::next`] call.
    Read,
    /// Fail an [`AptWriter::write`] call.
    Write,
}

impl FaultSpec {
    /// An armed one-shot fault on `target` of `pass`, firing after
    /// `after_records` successful records.
    pub fn new(pass: u16, target: FaultTarget, after_records: u64) -> FaultSpec {
        FaultSpec::transient(pass, target, after_records, 1)
    }

    /// A transient N-shot fault: fails the first `fires` qualifying
    /// operations, then heals. With `fires` smaller than a retry
    /// policy's attempt budget, the evaluation recovers deterministically.
    pub fn transient(pass: u16, target: FaultTarget, after_records: u64, fires: u32) -> FaultSpec {
        FaultSpec {
            pass,
            target,
            after_records,
            remaining: Arc::new(AtomicU32::new(fires)),
        }
    }

    /// True while the fault has shots left to fire.
    pub fn is_armed(&self) -> bool {
        self.remaining.load(Ordering::Relaxed) > 0
    }

    /// Shots not yet fired.
    pub fn shots_left(&self) -> u32 {
        self.remaining.load(Ordering::Relaxed)
    }

    fn fire(&self, records_so_far: u64) -> Result<(), AptError> {
        if records_so_far < self.after_records {
            return Ok(());
        }
        let took_shot = self
            .remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(1))
            .is_ok();
        if took_shot {
            return Err(AptError::Io(io::Error::other(format!(
                "injected fault after {} records",
                records_so_far
            ))));
        }
        Ok(())
    }
}

/// A memory-resident intermediate "file" — the paper's closing question
/// made concrete: "would some form of virtual memory system significantly
/// speed up the evaluators?" Backing the same record format with RAM
/// instead of disk is that hypothetical; the `ablation_virtual_memory`
/// bench measures the difference.
///
/// The buffer is `Arc<Mutex<…>>` rather than `Rc<RefCell<…>>` so
/// memory-backed evaluations are `Send` and can run on the batch
/// evaluator's worker threads.
///
/// This is the *legacy shared* form: even uncontended, every record read
/// and write pays a mutex acquisition (3–4 per record on the read side —
/// lead length, payload, CRC, trail length). The shared-nothing hot path
/// writes into an owned `Vec<u8>` ([`AptWriter::create_owned`]) and reads
/// a sealed immutable `Arc<Vec<u8>>` ([`AptReader::open_shared`]) with no
/// lock anywhere; `MemFile` survives only for the
/// [`Backing::SharedMemory`](crate::machine::Backing::SharedMemory)
/// ablation path, whose lock traffic is surfaced through the
/// [`EvalStats::lock_acquisitions`](crate::machine::EvalStats::lock_acquisitions)
/// counter so tests can pin the owned path at zero.
pub type MemFile = Arc<Mutex<Vec<u8>>>;

/// What a record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordBody {
    /// A node labelled with a grammar symbol (terminal leaf or
    /// nonterminal interior node).
    Sym(SymbolId),
    /// A production/limb record: identifies the production applying at an
    /// interior node and carries limb-attribute instances.
    Prod(ProdId),
}

/// One record of an intermediate APT file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Node or production tag.
    pub body: RecordBody,
    /// Attribute instances travelling with the record, sorted by attribute
    /// id (self-describing layout).
    pub values: Vec<(AttrId, Value)>,
}

impl Record {
    /// Serialized payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self.body {
            RecordBody::Sym(s) => {
                out.push(0u8);
                out.extend_from_slice(&s.0.to_le_bytes());
            }
            RecordBody::Prod(p) => {
                out.push(1u8);
                out.extend_from_slice(&p.0.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for (a, v) in &self.values {
            out.extend_from_slice(&a.0.to_le_bytes());
            v.encode(&mut out);
        }
        out
    }

    /// Decode a payload produced by [`Record::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`AptError::Decode`] on malformed payloads.
    pub fn decode(buf: &[u8]) -> Result<Record, AptError> {
        let mut pos = 0usize;
        let err = |at| AptError::Decode(DecodeError { at });
        let tag = *buf.first().ok_or(err(0))?;
        pos += 1;
        let id_bytes: [u8; 4] = buf
            .get(pos..pos + 4)
            .ok_or(err(pos))?
            .try_into()
            .expect("sized");
        pos += 4;
        let id = u32::from_le_bytes(id_bytes);
        let body = match tag {
            0 => RecordBody::Sym(SymbolId(id)),
            1 => RecordBody::Prod(ProdId(id)),
            _ => return Err(err(0)),
        };
        let n_bytes: [u8; 2] = buf
            .get(pos..pos + 2)
            .ok_or(err(pos))?
            .try_into()
            .expect("sized");
        pos += 2;
        let n = u16::from_le_bytes(n_bytes) as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let a_bytes: [u8; 4] = buf
                .get(pos..pos + 4)
                .ok_or(err(pos))?
                .try_into()
                .expect("sized");
            pos += 4;
            let v = Value::decode(buf, &mut pos).map_err(AptError::Decode)?;
            values.push((AttrId(u32::from_le_bytes(a_bytes)), v));
        }
        if pos != buf.len() {
            return Err(err(pos));
        }
        Ok(Record { body, values })
    }

    /// Look up an attribute instance in the record.
    pub fn value_of(&self, a: AttrId) -> Option<&Value> {
        self.values
            .iter()
            .find(|(attr, _)| *attr == a)
            .map(|(_, v)| v)
    }

    /// Approximate on-disk size (payload plus frame lengths and CRC).
    pub fn byte_size(&self) -> usize {
        self.encode().len() + FRAME_OVERHEAD as usize
    }
}

/// I/O or format failure on an APT file.
#[derive(Debug)]
pub enum AptError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Malformed record payload.
    Decode(DecodeError),
    /// A record frame is inconsistent (leading/trailing length mismatch or
    /// truncated file).
    Frame {
        /// Byte offset of the bad frame.
        at: u64,
    },
    /// A record's payload does not match its recorded CRC-32 — the bytes
    /// were corrupted after the writer framed them. Detected *before*
    /// decoding, so a flipped byte can never surface as a silently wrong
    /// attribute value.
    Checksum {
        /// Byte offset of the corrupt record's frame.
        at: u64,
        /// CRC recorded in the frame.
        expected: u32,
        /// CRC recomputed over the payload.
        found: u32,
    },
    /// The file header is missing, corrupt, or inconsistent with the file
    /// size — detected at [`AptReader::open`] time, before any record is
    /// served.
    Header(HeaderError),
    /// An error with the offending file (and, once the evaluation machine
    /// has attributed it, the pass) attached — so a batch failure report
    /// can say *which* boundary file failed, not just that something did.
    File {
        /// Path of the boundary file the error occurred on.
        path: PathBuf,
        /// Evaluation pass that was running, when known.
        pass: Option<u16>,
        /// The underlying failure.
        source: Box<AptError>,
    },
}

impl AptError {
    /// Attach a file path, unless one is already attached.
    pub fn in_file(self, path: &Path) -> AptError {
        match self {
            AptError::File { .. } => self,
            other => AptError::File {
                path: path.to_path_buf(),
                pass: None,
                source: Box::new(other),
            },
        }
    }

    /// Attach the running pass to an error that already carries a file
    /// (memory-backed errors, having no file, pass through unchanged).
    pub fn at_pass(self, pass: u16) -> AptError {
        match self {
            AptError::File {
                path,
                pass: None,
                source,
            } => AptError::File {
                path,
                pass: Some(pass),
                source,
            },
            other => other,
        }
    }

    /// The underlying error with any [`File`](AptError::File) context
    /// stripped — what [`FailureKind`](crate::batch::FailureKind)
    /// classification looks at.
    pub fn root(&self) -> &AptError {
        match self {
            AptError::File { source, .. } => source.root(),
            other => other,
        }
    }
}

impl fmt::Display for AptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AptError::Io(e) => write!(f, "APT file I/O error: {}", e),
            AptError::Decode(e) => write!(f, "APT record: {}", e),
            AptError::Frame { at } => write!(f, "APT file frame corrupt at byte {}", at),
            AptError::Checksum {
                at,
                expected,
                found,
            } => write!(
                f,
                "APT record checksum mismatch at byte {} (recorded {:08x}, computed {:08x})",
                at, expected, found
            ),
            AptError::Header(e) => write!(f, "APT file header: {}", e),
            AptError::File { path, pass, source } => match pass {
                Some(k) => write!(f, "pass {} on {}: {}", k, path.display(), source),
                None => write!(f, "{}: {}", path.display(), source),
            },
        }
    }
}

impl std::error::Error for AptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AptError::Io(e) => Some(e),
            AptError::Decode(e) => Some(e),
            AptError::File { source, .. } => Some(source),
            AptError::Frame { .. } | AptError::Checksum { .. } | AptError::Header(_) => None,
        }
    }
}

impl From<io::Error> for AptError {
    fn from(e: io::Error) -> AptError {
        AptError::Io(e)
    }
}

/// Totals of one finished APT file: what the manifest records per
/// completed pass boundary, and what resume-time validation recomputes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FileSummary {
    /// Records in the body.
    pub records: u64,
    /// Framed body bytes (excluding the header).
    pub bytes: u64,
    /// CRC-32 over every framed body byte, in order.
    pub crc: u32,
}

/// Sequential writer of an intermediate APT file (disk- or RAM-backed).
///
/// Every file opens with a fixed header whose totals are patched in by
/// [`AptWriter::finish`]; a file abandoned before `finish` (or truncated
/// afterwards) is rejected by [`AptReader::open`] with a typed
/// [`HeaderError`] instead of being served as silently empty.
#[derive(Debug)]
pub struct AptWriter {
    sink: Sink,
    path: Option<PathBuf>,
    bytes: u64,
    records: u64,
    crc: u32,
    sync: bool,
    profile: Option<Arc<IoCounters>>,
    fault: Option<FaultSpec>,
    lock_tally: Option<Arc<AtomicU64>>,
}

#[derive(Debug)]
enum Sink {
    File(BufWriter<File>),
    Mem(MemFile),
    /// Job-owned buffer: no `Arc`, no `Mutex` — the shared-nothing hot
    /// path. Sealed into an immutable `Arc<Vec<u8>>` by
    /// [`AptWriter::finish_owned`].
    Owned(Vec<u8>),
}

impl AptWriter {
    /// Create (truncate) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors, tagged with `path`.
    pub fn create(path: &Path) -> Result<AptWriter, AptError> {
        let inner = || -> Result<AptWriter, AptError> {
            let mut f = BufWriter::new(File::create(path)?);
            // Placeholder header; `finish` seeks back and patches the totals.
            f.write_all(&encode_header(0, 0))?;
            Ok(AptWriter {
                sink: Sink::File(f),
                path: Some(path.to_path_buf()),
                bytes: 0,
                records: 0,
                crc: 0,
                sync: false,
                profile: None,
                fault: None,
                lock_tally: None,
            })
        };
        inner().map_err(|e| e.in_file(path))
    }

    /// Create a writer over a shared memory buffer (truncating it).
    ///
    /// Legacy shared-store path: every write locks the buffer's mutex.
    /// Prefer [`create_owned`](Self::create_owned) for job-local work.
    pub fn create_mem(buf: MemFile) -> AptWriter {
        {
            let mut b = buf.lock().expect("mem file poisoned");
            b.clear();
            b.extend_from_slice(&encode_header(0, 0));
        }
        AptWriter {
            sink: Sink::Mem(buf),
            path: None,
            bytes: 0,
            records: 0,
            crc: 0,
            sync: false,
            profile: None,
            fault: None,
            lock_tally: None,
        }
    }

    /// Create a writer over a freshly owned memory buffer.
    ///
    /// This is the shared-nothing hot path: the buffer is plain
    /// `Vec<u8>` owned by the writer, so appends take no lock and bump no
    /// refcount. Retrieve the sealed buffer with
    /// [`finish_owned`](Self::finish_owned).
    pub fn create_owned() -> AptWriter {
        let mut b = Vec::new();
        b.extend_from_slice(&encode_header(0, 0));
        AptWriter {
            sink: Sink::Owned(b),
            path: None,
            bytes: 0,
            records: 0,
            crc: 0,
            sync: false,
            profile: None,
            fault: None,
            lock_tally: None,
        }
    }

    /// Attach a contention-visibility counter: every mutex acquisition on
    /// the shared-memory sink bumps it. File and owned sinks never touch
    /// it — which is exactly what the zero-lock hot-path tests assert.
    pub fn set_lock_tally(&mut self, tally: Arc<AtomicU64>) {
        self.lock_tally = Some(tally);
    }

    /// Attach a profiling counter pair; every subsequent [`write`](Self::write)
    /// bumps it atomically.
    pub fn set_profile(&mut self, counters: Arc<IoCounters>) {
        self.profile = Some(counters);
    }

    /// Attach an injected fault (test support): writes crossing
    /// `spec.after_records` fail with an I/O error while the spec has
    /// shots left.
    pub fn set_fault(&mut self, spec: FaultSpec) {
        self.fault = Some(spec);
    }

    /// Make [`finish`](Self::finish) fsync the file before returning —
    /// required before a checkpoint manifest may claim the boundary is
    /// durable. No effect on memory-backed writers.
    pub fn set_sync(&mut self, sync: bool) {
        self.sync = sync;
    }

    /// Append one record.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (memory writers only fail through an
    /// injected [`FaultSpec`]); disk errors carry the file path.
    pub fn write(&mut self, rec: &Record) -> Result<(), AptError> {
        match self.write_inner(rec) {
            Ok(()) => Ok(()),
            Err(e) => Err(match &self.path {
                Some(p) => e.in_file(p),
                None => e,
            }),
        }
    }

    fn write_inner(&mut self, rec: &Record) -> Result<(), AptError> {
        if let Some(fault) = &self.fault {
            fault.fire(self.records)?;
        }
        let payload = rec.encode();
        let len = (payload.len() as u32).to_le_bytes();
        let rec_crc = crc::crc32(&payload).to_le_bytes();
        match &mut self.sink {
            Sink::File(f) => {
                f.write_all(&len)?;
                f.write_all(&payload)?;
                f.write_all(&rec_crc)?;
                f.write_all(&len)?;
            }
            Sink::Mem(m) => {
                if let Some(t) = &self.lock_tally {
                    t.fetch_add(1, Ordering::Relaxed);
                }
                let mut b = m.lock().expect("mem file poisoned");
                b.extend_from_slice(&len);
                b.extend_from_slice(&payload);
                b.extend_from_slice(&rec_crc);
                b.extend_from_slice(&len);
            }
            Sink::Owned(b) => {
                b.extend_from_slice(&len);
                b.extend_from_slice(&payload);
                b.extend_from_slice(&rec_crc);
                b.extend_from_slice(&len);
            }
        }
        // Running whole-body CRC, framed bytes in file order.
        self.crc = crc::update(self.crc, &len);
        self.crc = crc::update(self.crc, &payload);
        self.crc = crc::update(self.crc, &rec_crc);
        self.crc = crc::update(self.crc, &len);
        let framed = payload.len() as u64 + FRAME_OVERHEAD;
        self.bytes += framed;
        self.records += 1;
        if let Some(p) = &self.profile {
            p.add_record(framed);
        }
        Ok(())
    }

    /// Patch the header totals, flush, and report `(bytes, records)`
    /// written (framed record bytes, excluding the header).
    ///
    /// # Errors
    ///
    /// Propagates the final flush failure.
    pub fn finish(self) -> Result<(u64, u64), AptError> {
        self.finish_summary().map(|s| (s.bytes, s.records))
    }

    /// Like [`finish`](Self::finish), but returns the full
    /// [`FileSummary`] including the whole-body CRC — what a checkpoint
    /// manifest records for the completed boundary.
    ///
    /// # Errors
    ///
    /// Propagates the final flush (and, with [`set_sync`](Self::set_sync),
    /// fsync) failure.
    pub fn finish_summary(self) -> Result<FileSummary, AptError> {
        let header = encode_header(self.records, self.bytes);
        let summary = FileSummary {
            records: self.records,
            bytes: self.bytes,
            crc: self.crc,
        };
        let path = self.path;
        let sync = self.sync;
        let lock_tally = self.lock_tally;
        let inner = || -> Result<(), AptError> {
            match self.sink {
                Sink::File(f) => {
                    let mut file = f
                        .into_inner()
                        .map_err(|e| AptError::Io(io::Error::other(e.to_string())))?;
                    file.seek(SeekFrom::Start(0))?;
                    file.write_all(&header)?;
                    file.flush()?;
                    if sync {
                        file.sync_all()?;
                    }
                }
                Sink::Mem(m) => {
                    if let Some(t) = &lock_tally {
                        t.fetch_add(1, Ordering::Relaxed);
                    }
                    let mut b = m.lock().expect("mem file poisoned");
                    b[..HEADER_LEN as usize].copy_from_slice(&header);
                }
                Sink::Owned(mut b) => {
                    b[..HEADER_LEN as usize].copy_from_slice(&header);
                }
            }
            Ok(())
        };
        match inner() {
            Ok(()) => Ok(summary),
            Err(e) => Err(match &path {
                Some(p) => e.in_file(p),
                None => e,
            }),
        }
    }

    /// Like [`finish_summary`](Self::finish_summary), but for a writer
    /// created with [`create_owned`](Self::create_owned): patches the
    /// header in place and hands the sealed buffer back so the caller can
    /// install it (typically as an immutable `Arc<Vec<u8>>`) into its
    /// job-owned store.
    ///
    /// # Errors
    ///
    /// Returns [`AptError::Io`] if the writer was not created with
    /// [`create_owned`](Self::create_owned).
    pub fn finish_owned(self) -> Result<(FileSummary, Vec<u8>), AptError> {
        let header = encode_header(self.records, self.bytes);
        let summary = FileSummary {
            records: self.records,
            bytes: self.bytes,
            crc: self.crc,
        };
        match self.sink {
            Sink::Owned(mut b) => {
                b[..HEADER_LEN as usize].copy_from_slice(&header);
                Ok((summary, b))
            }
            Sink::File(_) | Sink::Mem(_) => Err(AptError::Io(io::Error::other(
                "finish_owned on a writer without an owned sink",
            ))),
        }
    }
}

/// Read direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadDir {
    /// First record first.
    Forward,
    /// Last record first — "the output file of a left-to-right pass …
    /// read backwards".
    Backward,
}

/// Sequential (possibly backwards) reader of an intermediate APT file
/// (disk- or RAM-backed).
#[derive(Debug)]
pub struct AptReader {
    src: Source,
    path: Option<PathBuf>,
    pos: u64,
    end: u64,
    dir: ReadDir,
    bytes: u64,
    records: u64,
    total_records: u64,
    total_bytes: u64,
    profile: Option<Arc<IoCounters>>,
    fault: Option<FaultSpec>,
    lock_tally: Option<Arc<AtomicU64>>,
}

#[derive(Debug)]
enum Source {
    File(File),
    Mem(MemFile),
    /// A sealed boundary buffer shared immutably: reads are plain slice
    /// copies with no lock — the shared-nothing hot path. The `Arc` is
    /// cloned once per pass (when the store hands out the reader), never
    /// per record.
    Shared(Arc<Vec<u8>>),
}

impl Source {
    fn read_at(
        &mut self,
        pos: u64,
        out: &mut [u8],
        lock_tally: Option<&Arc<AtomicU64>>,
    ) -> Result<(), AptError> {
        match self {
            Source::File(f) => {
                f.seek(SeekFrom::Start(pos))?;
                f.read_exact(out)?;
                Ok(())
            }
            Source::Mem(m) => {
                if let Some(t) = lock_tally {
                    t.fetch_add(1, Ordering::Relaxed);
                }
                let b = m.lock().expect("mem file poisoned");
                let start = pos as usize;
                let slice = b
                    .get(start..start + out.len())
                    .ok_or(AptError::Frame { at: pos })?;
                out.copy_from_slice(slice);
                Ok(())
            }
            Source::Shared(b) => {
                let start = pos as usize;
                let slice = b
                    .get(start..start + out.len())
                    .ok_or(AptError::Frame { at: pos })?;
                out.copy_from_slice(slice);
                Ok(())
            }
        }
    }
}

/// Parse and validate a header read into `head` from a file `len` bytes
/// long, returning `(body end offset, total records, total bytes)`.
fn check_header(head: &[u8], len: u64) -> Result<(u64, u64, u64), AptError> {
    if head[0..4] != MAGIC {
        return Err(AptError::Header(HeaderError::BadMagic));
    }
    let version = u16::from_le_bytes(head[4..6].try_into().expect("sized"));
    if version != VERSION {
        return Err(AptError::Header(HeaderError::UnsupportedVersion {
            found: version,
        }));
    }
    let expected = u32::from_le_bytes(head[24..28].try_into().expect("sized"));
    let found = crc::crc32(&head[..HEADER_CRC_AT]);
    if expected != found {
        return Err(AptError::Header(HeaderError::Checksum { expected, found }));
    }
    let total_bytes = u64::from_le_bytes(head[16..24].try_into().expect("sized"));
    let actual = len - HEADER_LEN;
    if total_bytes != actual {
        return Err(AptError::Header(HeaderError::LengthMismatch {
            expected: total_bytes,
            actual,
        }));
    }
    // A framed record is at least 19 bytes (the frame overhead around a
    // node payload of tag + id + value count), so the promised record
    // count bounds the body size from below; a non-empty body likewise
    // needs at least one record.
    let total_records = u64::from_le_bytes(head[8..16].try_into().expect("sized"));
    let plausible = match total_records.checked_mul(MIN_FRAMED_RECORD) {
        Some(min) => min <= total_bytes && (total_records > 0 || total_bytes == 0),
        None => false,
    };
    if !plausible {
        return Err(AptError::Header(HeaderError::ImplausibleRecordCount {
            records: total_records,
            bytes: total_bytes,
        }));
    }
    Ok((len, total_records, total_bytes))
}

impl AptReader {
    /// Open `path` for reading in `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; returns [`AptError::Header`] if the
    /// file is shorter than a header, carries the wrong magic, version or
    /// header CRC, or its recorded body length disagrees with the file
    /// size (a file truncated mid-write — e.g. never
    /// [`finish`](AptWriter::finish)ed — is rejected here rather than
    /// read as empty). Every error carries `path`.
    pub fn open(path: &Path, dir: ReadDir) -> Result<AptReader, AptError> {
        let inner = || -> Result<AptReader, AptError> {
            let mut file = File::open(path)?;
            let len = file.metadata()?.len();
            if len < HEADER_LEN {
                return Err(AptError::Header(HeaderError::Truncated { len }));
            }
            let mut head = [0u8; HEADER_LEN as usize];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut head)?;
            let (end, total_records, total_bytes) = check_header(&head, len)?;
            Ok(AptReader {
                src: Source::File(file),
                path: Some(path.to_path_buf()),
                pos: match dir {
                    ReadDir::Forward => HEADER_LEN,
                    ReadDir::Backward => end,
                },
                end,
                dir,
                bytes: 0,
                records: 0,
                total_records,
                total_bytes,
                profile: None,
                fault: None,
                lock_tally: None,
            })
        };
        inner().map_err(|e| e.in_file(path))
    }

    /// Open a shared memory buffer for reading in `dir`.
    ///
    /// Legacy shared-store path: every record read locks the buffer's
    /// mutex several times. Prefer [`open_shared`](Self::open_shared) for
    /// sealed job-local boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`AptError::Header`] under the same conditions as
    /// [`open`](Self::open).
    pub fn open_mem(buf: MemFile, dir: ReadDir) -> Result<AptReader, AptError> {
        let (end, total_records, total_bytes) = {
            let b = buf.lock().expect("mem file poisoned");
            let len = b.len() as u64;
            if len < HEADER_LEN {
                return Err(AptError::Header(HeaderError::Truncated { len }));
            }
            check_header(&b[..HEADER_LEN as usize], len)?
        };
        Ok(AptReader {
            src: Source::Mem(buf),
            path: None,
            pos: match dir {
                ReadDir::Forward => HEADER_LEN,
                ReadDir::Backward => end,
            },
            end,
            dir,
            bytes: 0,
            records: 0,
            total_records,
            total_bytes,
            profile: None,
            fault: None,
            lock_tally: None,
        })
    }

    /// Open a sealed, immutably shared boundary buffer for reading in
    /// `dir` — the shared-nothing hot path. The contents are never
    /// mutated after [`AptWriter::finish_owned`] seals them, so reads are
    /// lock-free slice copies; the `Arc` clone happens once here, not per
    /// record.
    ///
    /// # Errors
    ///
    /// Returns [`AptError::Header`] under the same conditions as
    /// [`open`](Self::open).
    pub fn open_shared(buf: Arc<Vec<u8>>, dir: ReadDir) -> Result<AptReader, AptError> {
        let len = buf.len() as u64;
        if len < HEADER_LEN {
            return Err(AptError::Header(HeaderError::Truncated { len }));
        }
        let (end, total_records, total_bytes) = check_header(&buf[..HEADER_LEN as usize], len)?;
        Ok(AptReader {
            src: Source::Shared(buf),
            path: None,
            pos: match dir {
                ReadDir::Forward => HEADER_LEN,
                ReadDir::Backward => end,
            },
            end,
            dir,
            bytes: 0,
            records: 0,
            total_records,
            total_bytes,
            profile: None,
            fault: None,
            lock_tally: None,
        })
    }

    /// Attach a contention-visibility counter: every mutex acquisition on
    /// the shared-memory source bumps it (several per record). File and
    /// sealed-shared sources never touch it.
    pub fn set_lock_tally(&mut self, tally: Arc<AtomicU64>) {
        self.lock_tally = Some(tally);
    }

    /// Attach a profiling counter pair; every subsequent [`next`](Self::next)
    /// bumps it atomically.
    pub fn set_profile(&mut self, counters: Arc<IoCounters>) {
        self.profile = Some(counters);
    }

    /// Attach an injected fault (test support): reads crossing
    /// `spec.after_records` fail with an I/O error while the spec has
    /// shots left.
    pub fn set_fault(&mut self, spec: FaultSpec) {
        self.fault = Some(spec);
    }

    /// Read the next record, or `None` at the end (beginning, for
    /// backward readers).
    ///
    /// # Errors
    ///
    /// Returns [`AptError::Frame`] on corrupt framing,
    /// [`AptError::Checksum`] when a payload fails its CRC, and
    /// propagates I/O and decode failures. Disk-backed errors carry the
    /// file path.
    #[allow(clippy::should_implement_trait)] // fallible, not an Iterator
    pub fn next(&mut self) -> Result<Option<Record>, AptError> {
        match self.next_inner() {
            Ok(r) => Ok(r),
            Err(e) => Err(match &self.path {
                Some(p) => e.in_file(p),
                None => e,
            }),
        }
    }

    fn next_inner(&mut self) -> Result<Option<Record>, AptError> {
        if let Some(fault) = &self.fault {
            fault.fire(self.records)?;
        }
        match self.dir {
            ReadDir::Forward => {
                if self.pos >= self.end {
                    return Ok(None);
                }
                let mut len4 = [0u8; 4];
                self.src
                    .read_at(self.pos, &mut len4, self.lock_tally.as_ref())?;
                let len = u32::from_le_bytes(len4) as u64;
                if self.pos + FRAME_OVERHEAD + len > self.end {
                    return Err(AptError::Frame { at: self.pos });
                }
                let mut payload = vec![0u8; len as usize];
                self.src
                    .read_at(self.pos + 4, &mut payload, self.lock_tally.as_ref())?;
                let mut crc4 = [0u8; 4];
                self.src
                    .read_at(self.pos + 4 + len, &mut crc4, self.lock_tally.as_ref())?;
                let mut trail = [0u8; 4];
                self.src
                    .read_at(self.pos + 8 + len, &mut trail, self.lock_tally.as_ref())?;
                if trail != len4 {
                    return Err(AptError::Frame { at: self.pos });
                }
                self.check_crc(self.pos, &payload, crc4)?;
                self.pos += FRAME_OVERHEAD + len;
                self.advance(FRAME_OVERHEAD + len);
                Ok(Some(Record::decode(&payload)?))
            }
            ReadDir::Backward => {
                if self.pos == HEADER_LEN {
                    return Ok(None);
                }
                if self.pos < HEADER_LEN + FRAME_OVERHEAD {
                    return Err(AptError::Frame { at: self.pos });
                }
                let mut len4 = [0u8; 4];
                self.src
                    .read_at(self.pos - 4, &mut len4, self.lock_tally.as_ref())?;
                let len = u32::from_le_bytes(len4) as u64;
                if self.pos < HEADER_LEN + FRAME_OVERHEAD + len {
                    return Err(AptError::Frame { at: self.pos });
                }
                let start = self.pos - FRAME_OVERHEAD - len;
                let mut lead = [0u8; 4];
                self.src
                    .read_at(start, &mut lead, self.lock_tally.as_ref())?;
                if lead != len4 {
                    return Err(AptError::Frame { at: self.pos });
                }
                let mut payload = vec![0u8; len as usize];
                self.src
                    .read_at(start + 4, &mut payload, self.lock_tally.as_ref())?;
                let mut crc4 = [0u8; 4];
                self.src
                    .read_at(start + 4 + len, &mut crc4, self.lock_tally.as_ref())?;
                self.check_crc(start, &payload, crc4)?;
                self.pos = start;
                self.advance(FRAME_OVERHEAD + len);
                Ok(Some(Record::decode(&payload)?))
            }
        }
    }

    fn check_crc(&self, at: u64, payload: &[u8], stored: [u8; 4]) -> Result<(), AptError> {
        let expected = u32::from_le_bytes(stored);
        let found = crc::crc32(payload);
        if expected != found {
            return Err(AptError::Checksum {
                at,
                expected,
                found,
            });
        }
        Ok(())
    }

    fn advance(&mut self, framed: u64) {
        self.bytes += framed;
        self.records += 1;
        if let Some(p) = &self.profile {
            p.add_record(framed);
        }
    }

    /// Bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes
    }

    /// Records consumed so far.
    pub fn records_read(&self) -> u64 {
        self.records
    }

    /// Total records the (validated) header promises.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Total framed body bytes the (validated) header promises.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }
}

/// Validate a finished APT file end to end and return its
/// [`FileSummary`]: header checks as in [`AptReader::open`], then a
/// single sequential read of the body computing the whole-body CRC.
///
/// This is the resume-time integrity check: a boundary file whose
/// summary matches its manifest entry is bit-identical to what the
/// writer produced, so an evaluation may safely restart from it.
///
/// # Errors
///
/// Propagates filesystem errors and typed [`AptError::Header`] failures,
/// tagged with `path`.
pub fn file_summary(path: &Path) -> Result<FileSummary, AptError> {
    let inner = || -> Result<FileSummary, AptError> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len < HEADER_LEN {
            return Err(AptError::Header(HeaderError::Truncated { len }));
        }
        let mut head = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut head)?;
        let (_, records, bytes) = check_header(&head, len)?;
        let mut crc = 0u32;
        let mut buf = [0u8; 64 * 1024];
        loop {
            let n = file.read(&mut buf)?;
            if n == 0 {
                break;
            }
            crc = crc::update(crc, &buf[..n]);
        }
        Ok(FileSummary {
            records,
            bytes,
            crc,
        })
    };
    inner().map_err(|e| e.in_file(path))
}

/// Path of the boundary-`k` file inside `dir` — the shared layout of
/// [`TempAptDir`]s and persistent checkpoint directories, so a resumed
/// evaluation finds the files a killed one left behind.
pub fn boundary_path(dir: &Path, k: u16) -> PathBuf {
    dir.join(format!("boundary_{}.apt", k))
}

/// A self-cleaning directory for one evaluation's intermediate files.
#[derive(Debug)]
pub struct TempAptDir {
    dir: PathBuf,
}

/// Prefix of every [`TempAptDir`] under the system temp directory; the
/// process id follows, then a per-process counter.
const TEMP_DIR_PREFIX: &str = "linguist86-apt-";

/// Name of the liveness lock file inside every [`TempAptDir`]. It holds
/// the owning pid; its *mtime* is the owner's heartbeat.
const LOCK_FILE: &str = "LOCK";

impl TempAptDir {
    /// Create a fresh private directory under the system temp dir,
    /// guarded by a [`LOCK_FILE`] so a concurrent
    /// [`sweep_stale`](TempAptDir::sweep_stale) in another process never
    /// deletes it out from under an in-flight evaluation.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn new() -> Result<TempAptDir, AptError> {
        use std::sync::atomic::AtomicU64;
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("{}{}-{}", TEMP_DIR_PREFIX, std::process::id(), n));
        std::fs::create_dir_all(&dir)?;
        std::fs::write(dir.join(LOCK_FILE), format!("{}\n", std::process::id()))?;
        Ok(TempAptDir { dir })
    }

    /// Refresh the lock file's heartbeat. The evaluation machine calls
    /// this at every pass boundary, so a long-running evaluation keeps a
    /// fresh mtime and a sweeping daemon (whose `max_age` far exceeds
    /// any single pass) leaves the directory alone even on platforms
    /// where pid liveness cannot be checked. Best-effort: a failure to
    /// touch the lock never fails the evaluation.
    pub fn refresh_lock(&self) {
        let _ = std::fs::write(
            self.dir.join(LOCK_FILE),
            format!("{}\n", std::process::id()),
        );
    }

    /// Path of the file holding the boundary-`k` snapshot (boundary 0 is
    /// the parser-built initial file).
    pub fn boundary(&self, k: u16) -> PathBuf {
        boundary_path(&self.dir, k)
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Remove leaked temp directories of *dead* LINGUIST processes.
    ///
    /// `Drop` cleans up on orderly shutdown, but a process killed
    /// mid-evaluation leaks its directory. This sweeps the system temp
    /// dir for `linguist86-apt-<pid>-<n>` entries whose owning process
    /// is gone (or, where liveness cannot be checked, whose modification
    /// time is older than `max_age`), and returns how many were removed.
    /// Directories of the calling process are never touched, and neither
    /// is any directory with a *live* [`LOCK_FILE`] — one whose recorded
    /// pid is still running, or whose heartbeat mtime is younger than
    /// `max_age`. That lock guard is what lets a resident daemon sweep
    /// on its own schedule without deleting the scratch directory of a
    /// request that is still in flight (the dir-name pid check alone is
    /// defeated by pid recycling, and the mtime fallback alone would
    /// reap a slow evaluation's directory mid-pass).
    ///
    /// # Errors
    ///
    /// Propagates the temp-directory listing failure; per-entry removal
    /// failures (a concurrent sweep, say) are skipped, not fatal.
    pub fn sweep_stale(max_age: Duration) -> Result<usize, AptError> {
        let me = std::process::id();
        let mut swept = 0usize;
        for entry in std::fs::read_dir(std::env::temp_dir())? {
            let Ok(entry) = entry else { continue };
            let name = entry.file_name();
            let Some(rest) = name.to_str().and_then(|n| n.strip_prefix(TEMP_DIR_PREFIX)) else {
                continue;
            };
            let Some(pid) = rest.split('-').next().and_then(|p| p.parse::<u32>().ok()) else {
                continue;
            };
            if pid == me {
                continue;
            }
            let stale = if cfg!(target_os = "linux") {
                // Liveness is authoritative where /proc exists.
                !Path::new("/proc").join(pid.to_string()).exists()
            } else {
                entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok())
                    .is_some_and(|age| age >= max_age)
            };
            if stale
                && !lock_is_live(&entry.path(), max_age)
                && std::fs::remove_dir_all(entry.path()).is_ok()
            {
                swept += 1;
            }
        }
        Ok(swept)
    }
}

/// Whether `dir`'s [`LOCK_FILE`] proves an owner that may still be using
/// it: a heartbeat mtime younger than `max_age`, or (on Linux) a
/// recorded pid that is still running. A missing or unreadable lock is
/// not live — pre-lock-era directories stay sweepable.
fn lock_is_live(dir: &Path, max_age: Duration) -> bool {
    let lock = dir.join(LOCK_FILE);
    let Ok(meta) = std::fs::metadata(&lock) else {
        return false;
    };
    let fresh = meta
        .modified()
        .ok()
        .and_then(|t| t.elapsed().ok())
        // An unreadable mtime cannot prove staleness; err on the side
        // of keeping the directory.
        .is_none_or(|age| age < max_age);
    if fresh {
        return true;
    }
    if cfg!(target_os = "linux") {
        if let Some(pid) = std::fs::read_to_string(&lock)
            .ok()
            .and_then(|text| text.trim().parse::<u32>().ok())
        {
            return Path::new("/proc").join(pid.to_string()).exists();
        }
    }
    false
}

impl Drop for TempAptDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u32) -> Record {
        Record {
            body: if i.is_multiple_of(2) {
                RecordBody::Sym(SymbolId(i))
            } else {
                RecordBody::Prod(ProdId(i))
            },
            values: vec![
                (AttrId(0), Value::Int(i as i64)),
                (AttrId(7), Value::str(&format!("v{}", i))),
            ],
        }
    }

    #[test]
    fn record_encoding_round_trips() {
        for i in 0..5 {
            let r = rec(i);
            assert_eq!(Record::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn forward_read_returns_written_order() {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(0);
        let mut w = AptWriter::create(&path).unwrap();
        for i in 0..10 {
            w.write(&rec(i)).unwrap();
        }
        let (bytes, records) = w.finish().unwrap();
        assert_eq!(records, 10);
        assert!(bytes > 0);

        let mut r = AptReader::open(&path, ReadDir::Forward).unwrap();
        assert_eq!(r.total_records(), 10);
        assert_eq!(r.total_bytes(), bytes);
        for i in 0..10 {
            assert_eq!(r.next().unwrap().unwrap(), rec(i));
        }
        assert!(r.next().unwrap().is_none());
        assert_eq!(r.records_read(), 10);
        assert_eq!(r.bytes_read(), bytes);
    }

    #[test]
    fn backward_read_reverses_order() {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(1);
        let mut w = AptWriter::create(&path).unwrap();
        for i in 0..7 {
            w.write(&rec(i)).unwrap();
        }
        w.finish().unwrap();

        let mut r = AptReader::open(&path, ReadDir::Backward).unwrap();
        for i in (0..7).rev() {
            assert_eq!(r.next().unwrap().unwrap(), rec(i));
        }
        assert!(r.next().unwrap().is_none());
    }

    #[test]
    fn empty_file_reads_none_both_ways() {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(2);
        AptWriter::create(&path).unwrap().finish().unwrap();
        for d in [ReadDir::Forward, ReadDir::Backward] {
            let mut r = AptReader::open(&path, d).unwrap();
            assert!(r.next().unwrap().is_none());
        }
    }

    #[test]
    fn truncated_file_rejected_at_open() {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(3);
        let mut w = AptWriter::create(&path).unwrap();
        w.write(&rec(0)).unwrap();
        w.finish().unwrap();
        // Truncate one byte off the end: the header's recorded body
        // length no longer matches, so open() itself must reject it.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 1]).unwrap();
        for d in [ReadDir::Forward, ReadDir::Backward] {
            match AptReader::open(&path, d).map_err(|e| e.root().to_string()) {
                Err(msg) if msg.contains("body bytes") => {}
                other => panic!("truncated file not rejected: {:?}", other),
            }
        }
    }

    #[test]
    fn unfinished_file_rejected_at_open() {
        // A writer dropped without finish() leaves the placeholder header
        // (zero totals); the reader must not serve it as silently empty.
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(4);
        let mut w = AptWriter::create(&path).unwrap();
        w.write(&rec(1)).unwrap();
        drop(w);
        match AptReader::open(&path, ReadDir::Forward) {
            Err(e)
                if matches!(
                    e.root(),
                    AptError::Header(HeaderError::LengthMismatch { expected: 0, .. })
                ) => {}
            other => panic!("unfinished file not rejected: {:?}", other),
        }
    }

    #[test]
    fn header_too_short_rejected_at_open() {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(5);
        std::fs::write(&path, b"APT").unwrap();
        match AptReader::open(&path, ReadDir::Forward) {
            Err(e)
                if matches!(
                    e.root(),
                    AptError::Header(HeaderError::Truncated { len: 3 })
                ) => {}
            other => panic!("short file not rejected: {:?}", other),
        }
    }

    #[test]
    fn every_header_byte_flip_is_rejected_at_open() {
        // The corruption regression: flip each header byte of a valid
        // file in turn; open() must return a typed error every time —
        // with the header CRC, even the formerly unvalidated reserved
        // bytes are covered — and must never panic or serve an empty
        // read.
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(6);
        let mut w = AptWriter::create(&path).unwrap();
        for i in 0..4 {
            w.write(&rec(i)).unwrap();
        }
        w.finish().unwrap();
        let pristine = std::fs::read(&path).unwrap();
        for at in 0..HEADER_LEN as usize {
            let mut data = pristine.clone();
            data[at] ^= 0xFF;
            std::fs::write(&path, &data).unwrap();
            match AptReader::open(&path, ReadDir::Forward) {
                Err(e) if matches!(e.root(), AptError::Header(_)) => {}
                other => panic!("flip at byte {} not rejected: {:?}", at, other),
            }
        }
    }

    #[test]
    fn body_byte_flips_are_typed_errors_never_wrong_records() {
        // With per-record CRCs, *every* body flip must surface as a
        // typed Frame or Checksum error from next() — never decode to a
        // silently wrong record, and never panic. Records before the
        // corruption must still read back exactly.
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(7);
        let mut w = AptWriter::create(&path).unwrap();
        for i in 0..4 {
            w.write(&rec(i)).unwrap();
        }
        w.finish().unwrap();
        let pristine = std::fs::read(&path).unwrap();
        for at in HEADER_LEN as usize..pristine.len() {
            let mut data = pristine.clone();
            data[at] ^= 0xFF;
            std::fs::write(&path, &data).unwrap();
            for d in [ReadDir::Forward, ReadDir::Backward] {
                let mut r = AptReader::open(&path, d).unwrap();
                let mut seen = 0u32;
                let err = loop {
                    match r.next() {
                        Ok(Some(record)) => {
                            // Anything served intact must be a pristine
                            // record (prefix from the reading end).
                            let expect = match d {
                                ReadDir::Forward => seen,
                                ReadDir::Backward => 3 - seen,
                            };
                            assert_eq!(record, rec(expect), "flip at {} leaked garbage", at);
                            seen += 1;
                        }
                        Ok(None) => break None,
                        Err(e) => break Some(e),
                    }
                };
                let err = err.unwrap_or_else(|| {
                    panic!("flip at byte {} read clean in {:?}", at, d);
                });
                assert!(
                    matches!(
                        err.root(),
                        AptError::Frame { .. } | AptError::Checksum { .. }
                    ),
                    "flip at {} gave untyped {:?}",
                    at,
                    err
                );
            }
        }
    }

    #[test]
    fn payload_flip_is_a_checksum_error_with_offsets() {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(8);
        let mut w = AptWriter::create(&path).unwrap();
        w.write(&rec(0)).unwrap();
        w.finish().unwrap();
        let mut data = std::fs::read(&path).unwrap();
        // First payload byte lives right after the header + lead length.
        let at = HEADER_LEN as usize + 4;
        data[at] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        let mut r = AptReader::open(&path, ReadDir::Forward).unwrap();
        match r.next() {
            Err(e) => match e.root() {
                AptError::Checksum {
                    at,
                    expected,
                    found,
                } => {
                    assert_eq!(*at, HEADER_LEN);
                    assert_ne!(expected, found);
                }
                other => panic!("expected Checksum, got {:?}", other),
            },
            other => panic!("corrupt payload served: {:?}", other),
        }
    }

    #[test]
    fn disk_errors_carry_the_file_path() {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(9);
        std::fs::write(&path, b"not an apt file at all, but long enough....").unwrap();
        let err = AptReader::open(&path, ReadDir::Forward).unwrap_err();
        assert!(
            err.to_string().contains("boundary_9.apt"),
            "path missing from: {}",
            err
        );
        assert!(matches!(
            err.root(),
            AptError::Header(HeaderError::BadMagic)
        ));
    }

    #[test]
    fn injected_write_fault_fires_exactly_once() {
        let dir = TempAptDir::new().unwrap();
        let fault = FaultSpec::new(0, FaultTarget::Write, 2);
        let mut w = AptWriter::create(&dir.boundary(10)).unwrap();
        w.set_fault(fault.clone());
        w.write(&rec(0)).unwrap();
        w.write(&rec(1)).unwrap();
        match w.write(&rec(2)) {
            Err(e) if matches!(e.root(), AptError::Io(_)) => {}
            other => panic!("fault did not fire: {:?}", other),
        }
        assert!(!fault.is_armed());
        // Disarmed: the same spec never fires again.
        w.write(&rec(2)).unwrap();
        w.finish().unwrap();
    }

    #[test]
    fn transient_fault_fires_n_times_then_heals() {
        let dir = TempAptDir::new().unwrap();
        let fault = FaultSpec::transient(0, FaultTarget::Write, 1, 2);
        let mut w = AptWriter::create(&dir.boundary(11)).unwrap();
        w.set_fault(fault.clone());
        w.write(&rec(0)).unwrap();
        assert!(w.write(&rec(1)).is_err(), "first shot");
        assert_eq!(fault.shots_left(), 1);
        assert!(w.write(&rec(1)).is_err(), "second shot");
        assert!(!fault.is_armed(), "out of shots");
        w.write(&rec(1)).unwrap();
        w.finish().unwrap();
    }

    #[test]
    fn finish_summary_matches_file_summary() {
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(12);
        let mut w = AptWriter::create(&path).unwrap();
        w.set_sync(true);
        for i in 0..9 {
            w.write(&rec(i)).unwrap();
        }
        let written = w.finish_summary().unwrap();
        assert_eq!(written.records, 9);
        let validated = file_summary(&path).unwrap();
        assert_eq!(written, validated, "writer CRC must equal re-read CRC");
        // Any body flip must break the whole-file CRC.
        let mut data = std::fs::read(&path).unwrap();
        let at = data.len() - 1;
        data[at] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let corrupt = file_summary(&path).unwrap();
        assert_ne!(corrupt.crc, written.crc);
    }

    #[test]
    fn profile_counters_match_internal_tallies() {
        use crate::metrics::IoCounters;
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(13);
        let wc = IoCounters::shared();
        let mut w = AptWriter::create(&path).unwrap();
        w.set_profile(wc.clone());
        for i in 0..6 {
            w.write(&rec(i)).unwrap();
        }
        let (bytes, records) = w.finish().unwrap();
        assert_eq!(wc.snapshot(), (records, bytes));

        let rc = IoCounters::shared();
        let mut r = AptReader::open(&path, ReadDir::Backward).unwrap();
        r.set_profile(rc.clone());
        while r.next().unwrap().is_some() {}
        assert_eq!(rc.snapshot(), (r.records_read(), r.bytes_read()));
        assert_eq!(rc.snapshot(), (records, bytes));
    }

    #[test]
    fn temp_dir_cleans_up() {
        let path;
        {
            let dir = TempAptDir::new().unwrap();
            path = dir.path().to_path_buf();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn sweep_stale_removes_dead_process_dirs_only() {
        // A directory stamped with a pid that cannot be alive (u32::MAX
        // is far above any real pid ceiling) must be swept; the calling
        // process's own directories must survive.
        let dead = std::env::temp_dir().join(format!("{}{}-0", TEMP_DIR_PREFIX, u32::MAX));
        std::fs::create_dir_all(&dead).unwrap();
        std::fs::write(dead.join("boundary_0.apt"), b"leak").unwrap();
        let live = TempAptDir::new().unwrap();

        // A second dead-pid directory, this one carrying a fresh LOCK
        // heartbeat — the situation after pid recycling, or a request in
        // flight on a host where liveness cannot be checked. A sweeping
        // daemon must leave it alone; once the lock goes stale
        // (simulated by removing it), the sweep may reclaim it.
        let guarded = std::env::temp_dir().join(format!("{}{}-1", TEMP_DIR_PREFIX, u32::MAX));
        std::fs::create_dir_all(&guarded).unwrap();
        std::fs::write(guarded.join("boundary_0.apt"), b"in flight").unwrap();
        std::fs::write(guarded.join(LOCK_FILE), format!("{}\n", u32::MAX)).unwrap();

        let swept = TempAptDir::sweep_stale(Duration::from_secs(3600)).unwrap();
        assert!(swept >= 1, "dead dir not counted");
        assert!(!dead.exists(), "dead dir survived the sweep");
        assert!(live.path().exists(), "live dir was swept");
        assert!(guarded.exists(), "sweep deleted a dir with a live lock");

        std::fs::remove_file(guarded.join(LOCK_FILE)).unwrap();
        TempAptDir::sweep_stale(Duration::from_secs(3600)).unwrap();
        assert!(!guarded.exists(), "unlocked dead dir survived the sweep");
    }

    #[test]
    fn value_of_finds_attrs() {
        let r = rec(4);
        assert_eq!(r.value_of(AttrId(0)), Some(&Value::Int(4)));
        assert!(r.value_of(AttrId(99)).is_none());
    }
}
