//! File-resident alternating-pass attribute evaluation.
//!
//! This crate is the run-time half of the LINGUIST-86 reproduction: the
//! evaluation paradigm of §II executed over the analysis products of
//! `linguist-ag`. The Attributed Parse Tree lives in sequential
//! intermediate files ([`aptfile`]); each pass streams it from one file to
//! the other while a recursive set of production-procedure frames (the
//! [`machine`]) keeps only the current spine in memory — which is how the
//! original ran >42 KB APTs in a 48 KB dynamic-data window.
//!
//! * [`value`] — run-time attribute values and their binary encoding.
//! * [`funcs`] — the external-function library (`UnionSetof`, `IsIn`,
//!   `ConsPF`, …) plus user registration.
//! * [`aptfile`] — bidirectionally readable record files: the output of a
//!   left-to-right pass read backwards is the input of a right-to-left
//!   pass.
//! * [`tree`] — parse trees and both §II strategies for building the
//!   initial file (bottom-up/shift-reduce and prefix emission).
//! * [`machine`] — the interpreter, including the static-subsumption
//!   global-variable protocol with online verification.
//! * [`batch`] — parallel evaluation of many independent trees on a
//!   fixed pool of worker threads, with aggregate throughput stats.
//!
//! # Example
//!
//! ```
//! use linguist_ag::analysis::{Analysis, Config};
//! use linguist_ag::grammar::AgBuilder;
//! use linguist_ag::expr::{BinOp, Expr};
//! use linguist_ag::ids::{AttrOcc, ProdId};
//! use linguist_eval::funcs::Funcs;
//! use linguist_eval::machine::{evaluate, EvalOptions};
//! use linguist_eval::tree::PTree;
//! use linguist_eval::value::Value;
//!
//! // S -> S x | x, S.V = sum of the leaves' OBJ values.
//! let mut b = AgBuilder::new();
//! let s = b.nonterminal("S");
//! let v = b.synthesized(s, "V", "int");
//! let x = b.terminal("x");
//! let obj = b.intrinsic(x, "OBJ", "int");
//! let p0 = b.production(s, vec![s, x], None);
//! b.rule(p0, vec![AttrOcc::lhs(v)], Expr::binop(
//!     BinOp::Add,
//!     Expr::Occ(AttrOcc::rhs(0, v)),
//!     Expr::Occ(AttrOcc::rhs(1, obj)),
//! ));
//! let p1 = b.production(s, vec![x], None);
//! b.rule(p1, vec![AttrOcc::lhs(v)], Expr::Occ(AttrOcc::rhs(0, obj)));
//! b.start(s);
//! let analysis = Analysis::run(b.build()?, &Config::default())?;
//!
//! let leaf = |n| PTree::leaf(x, vec![(obj, Value::Int(n))]);
//! let tree = PTree::node(ProdId(0), vec![
//!     PTree::node(ProdId(1), vec![leaf(1)]),
//!     leaf(2),
//! ]);
//! let result = evaluate(&analysis, &Funcs::standard(), &tree, &EvalOptions::default())?;
//! assert_eq!(result.output(&analysis, "V"), Some(&Value::Int(3)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod aptfile;
pub mod batch;
pub mod crc;
pub mod funcs;
pub mod machine;
pub mod manifest;
pub mod metrics;
pub mod tree;
pub mod value;

pub use aptfile::{
    file_summary, AptError, AptReader, AptWriter, FaultSpec, FaultTarget, FileSummary, HeaderError,
    ReadDir, Record, RecordBody, TempAptDir,
};
pub use batch::{BatchEvaluator, BatchOutcome, BatchStats, EvalBackend, FailureKind, JobFailure};
pub use funcs::{FuncError, Funcs};
pub use machine::{
    evaluate, evaluate_resumable, Backing, EvalError, EvalOptions, EvalStats, Evaluation,
    PassStats, RetryPolicy, Strategy,
};
pub use manifest::{Manifest, ManifestError, PassEntry};
pub use metrics::{EvalMetrics, IoCounters, PassIo, PassProbe};
pub use tree::{PTree, TreeError};
pub use value::Value;
