//! Compilable-Rust evaluator generation.
//!
//! Where [`crate::emit`] renders the paper's *code-size* tables (Pascal-ish
//! text that is measured, not run), this module emits a **complete,
//! self-contained Rust program** for one analyzed grammar: the per-pass
//! production-procedures compiled from the same [`ProcPlan`]s the
//! interpreter executes, a baked-in copy of the [`rt`](crate::rt) runtime
//! (APT framing, values, the standard function library), and a `main` that
//! speaks the APT subprocess protocol (boundary-0 file on stdin, encoded
//! root outputs on stdout).
//!
//! The generated source has no dependencies, so it can be built three
//! ways: checked in as an ordinary workspace member (the engine's AOT
//! path), compiled on demand with a bare `rustc` invocation (the JIT
//! path), or written to disk as a standalone crate (`linguist codegen`).
//!
//! Byte-compatibility with the interpreter is the contract: for every
//! valid input the compiled evaluator must produce exactly the bytes of
//! `differential::encoded_outputs` on the interpreter's result. The
//! generation therefore mirrors `eval::machine` step for step — slot
//! frames instead of hash maps, `let`-bound locals instead of the locals
//! map, but the same visit order, the same record filters (alive-across ∩
//! present, sorted by attribute id), and the same operator semantics.

use linguist_ag::analysis::Analysis;
use linguist_ag::expr::{BinOp, Expr};
use linguist_ag::grammar::{AttrClass, Grammar};
use linguist_ag::ids::{AttrId, AttrOcc, OccPos, ProdId, SymbolId};
use linguist_ag::passes::Direction;
use linguist_ag::plan::Step;
use std::fmt::Write as _;

/// The runtime prelude embedded verbatim in every generated evaluator
/// (same text that `crate::rt` compiles as part of this crate, so its
/// semantics are unit-testable without invoking `rustc`).
pub const RT_SOURCE: &str = include_str!("rt.rs");

/// FNV-1a 64-bit content hash, rendered as 16 hex digits — the key the
/// engine uses to match grammars to compiled artifacts (same function,
/// same rendering as the serve tier's grammar handles:
/// `linguist_support::fnv`).
pub fn content_hash(bytes: &[u8]) -> String {
    linguist_support::fnv::hex16(linguist_support::fnv::hash(bytes))
}

/// Files of a generated evaluator crate: `(relative path, contents)`.
///
/// With `standalone_bin` the crate is written for out-of-tree use: a
/// `[workspace]` table detaches it from any enclosing workspace and the
/// source becomes `src/main.rs` (buildable with a plain `cargo build`).
/// Without it the layout is a dependency-free library suitable for
/// checking in as a workspace member (the AOT path).
pub fn crate_files(
    analysis: &Analysis,
    crate_name: &str,
    standalone_bin: bool,
) -> Vec<(String, String)> {
    let source = rust_source(analysis);
    let mut manifest = String::new();
    let _ = writeln!(manifest, "[package]");
    let _ = writeln!(manifest, "name = \"{}\"", crate_name);
    let _ = writeln!(manifest, "version = \"0.1.0\"");
    let _ = writeln!(manifest, "edition = \"2021\"");
    if standalone_bin {
        manifest.push('\n');
        let _ = writeln!(manifest, "[workspace]");
    }
    let src_path = if standalone_bin {
        "src/main.rs"
    } else {
        "src/lib.rs"
    };
    vec![
        ("Cargo.toml".to_string(), manifest),
        (src_path.to_string(), source),
    ]
}

/// Generate the complete evaluator source for an analyzed grammar.
///
/// The output is deterministic: same analysis, same bytes. The engine
/// relies on that to content-address compiled artifacts.
pub fn rust_source(analysis: &Analysis) -> String {
    Gen::new(analysis).render()
}

/// Dense slot index of every attribute within its owner symbol.
fn attr_slots(g: &Grammar) -> Vec<usize> {
    let mut slots = vec![0usize; g.attrs().len()];
    for sym in g.symbols() {
        for (i, &a) in sym.attrs.iter().enumerate() {
            slots[a.0 as usize] = i;
        }
    }
    slots
}

struct Gen<'a> {
    analysis: &'a Analysis,
    slots: Vec<usize>,
    out: String,
}

impl<'a> Gen<'a> {
    fn new(analysis: &'a Analysis) -> Gen<'a> {
        Gen {
            analysis,
            slots: attr_slots(&analysis.grammar),
            out: String::new(),
        }
    }

    fn g(&self) -> &'a Grammar {
        &self.analysis.grammar
    }

    fn num_passes(&self) -> u16 {
        self.analysis.passes.num_passes() as u16
    }

    fn prefix(&self) -> bool {
        self.num_passes() > 0 && self.analysis.passes.direction(1) == Direction::LeftToRight
    }

    fn nslots(&self, s: SymbolId) -> usize {
        self.g().symbol(s).attrs.len()
    }

    fn slot(&self, a: AttrId) -> usize {
        self.slots[a.0 as usize]
    }

    /// `(attr, slot)` pairs of `sym`'s attributes alive across boundary
    /// `k`, sorted by attribute id — the static form of the
    /// declaration-order-then-sort filter in `NodeState::to_record`.
    fn alive(&self, sym: SymbolId, k: u16) -> Vec<(u32, usize)> {
        let mut rows: Vec<(u32, usize)> = self
            .g()
            .symbol(sym)
            .attrs
            .iter()
            .filter(|&&a| self.analysis.lifetimes.alive_across(a, k))
            .map(|&a| (a.0, self.slot(a)))
            .collect();
        rows.sort_by_key(|&(a, _)| a);
        rows
    }

    fn ln(&mut self, indent: usize, line: &str) {
        for _ in 0..indent {
            self.out.push_str("    ");
        }
        self.out.push_str(line);
        self.out.push('\n');
    }

    fn render(mut self) -> String {
        let g = self.g();
        let n = self.num_passes();
        self.ln(
            0,
            "// Generated by linguist-codegen (rustgen). DO NOT EDIT.",
        );
        self.ln(
            0,
            &format!(
                "// start symbol: {}; passes: {}; first direction: {}",
                g.resolve(g.symbol(g.start()).name),
                n,
                if self.prefix() {
                    "left-to-right (prefix boundary-0)"
                } else {
                    "right-to-left (postfix boundary-0)"
                }
            ),
        );
        self.ln(
            0,
            "// The engine matches this source to a grammar by FNV-1a content hash;",
        );
        self.ln(
            0,
            "// editing it by hand orphans the artifact and forces interpreter fallback.",
        );
        self.ln(0, "#![allow(warnings, clippy::all)]");
        self.ln(0, "");
        self.ln(0, "pub mod rt {");
        self.out.push_str(RT_SOURCE);
        self.ln(0, "}");
        self.ln(0, "");
        self.emit_consts();
        for k in 1..=n {
            self.emit_visit(k);
            self.emit_run_pass(k);
        }
        self.emit_evaluate();
        self.emit_main();
        self.out
    }

    fn emit_consts(&mut self) {
        let g = self.g();
        let n = self.num_passes();
        self.ln(0, &format!("pub const NUM_PASSES: u16 = {};", n));
        self.ln(
            0,
            &format!("pub const PREFIX_STRATEGY: bool = {};", self.prefix()),
        );
        self.ln(
            0,
            &format!("pub const START_SYMBOL: u32 = {};", g.start().0),
        );
        let outputs = self.outputs();
        self.ln(
            0,
            &format!("pub const OUTPUT_COUNT: usize = {};", outputs.len()),
        );
        self.ln(0, "");
        // Attribute → slot within its owner symbol.
        let rows: Vec<String> = self.slots.iter().map(|s| s.to_string()).collect();
        self.ln(
            0,
            &format!("static ATTR_SLOT: &[usize] = &[{}];", rows.join(", ")),
        );
        self.ln(0, "");
        // Alive-across tables per (symbol, boundary).
        for k in 1..=n {
            for (si, sym) in g.symbols().iter().enumerate() {
                let rows = self.alive(SymbolId(si as u32), k);
                let body: Vec<String> = rows
                    .iter()
                    .map(|&(a, s)| format!("({}u32, {}usize)", a, s))
                    .collect();
                self.ln(
                    0,
                    &format!(
                        "static ALIVE_S{}_P{}: &[(u32, usize)] = &[{}]; // {}",
                        si,
                        k,
                        body.join(", "),
                        g.resolve(sym.name)
                    ),
                );
            }
        }
        self.ln(0, "");
    }

    /// Root synthesized outputs in declaration order: `(attr, slot, name)`.
    fn outputs(&self) -> Vec<(u32, usize, String)> {
        let g = self.g();
        g.symbol(g.start())
            .attrs
            .iter()
            .filter(|&&a| g.attr(a).class == AttrClass::Synthesized)
            .map(|&a| (a.0, self.slot(a), g.resolve(g.attr(a).name).to_string()))
            .collect()
    }

    /// The per-pass visitor is a thin dispatcher; each production's body
    /// lives in its own function so stack frames on the recursion path
    /// stay proportional to one production, not the whole grammar.
    fn emit_visit(&mut self, k: u16) {
        let g = self.g();
        self.ln(0, &format!(
            "fn visit_p{}(sym: u32, state: &mut Vec<Option<rt::Value>>, r: &mut rt::Reader<'_>, w: &mut rt::Writer) -> Result<(), String> {{",
            k
        ));
        self.ln(1, "let prec = match r.next()? {");
        self.ln(2, "Some(b) => rt::Record::decode(b)?,");
        self.ln(
            2,
            "None => return Err(\"APT stream corrupt: APT file ended inside a visit\".to_string()),",
        );
        self.ln(1, "};");
        self.ln(1, "if !prec.is_prod {");
        self.ln(
            2,
            "return Err(format!(\"APT stream corrupt: expected a production record, found symbol {}\", prec.id));",
        );
        self.ln(1, "}");
        self.ln(1, "match prec.id {");
        for pi in 0..g.productions().len() {
            self.ln(
                2,
                &format!("{}u32 => prod_p{}_{}(sym, prec, state, r, w),", pi, k, pi),
            );
        }
        self.ln(
            2,
            "p => Err(format!(\"APT stream corrupt: production {} does not exist\", p)),",
        );
        self.ln(1, "}");
        self.ln(0, "}");
        self.ln(0, "");
        for pi in 0..g.productions().len() {
            self.emit_prod_fn(k, ProdId(pi as u32));
        }
    }

    fn emit_prod_fn(&mut self, k: u16, p: ProdId) {
        let g = self.g();
        let prod = g.production(p);
        let lhs = prod.lhs;
        let rhs = prod.rhs.clone();
        let limb = prod.limb;
        let steps = self.analysis.plans.plan(k, p).steps.clone();
        self.ln(
            0,
            &format!(
                "// {} ::= {}",
                g.resolve(g.symbol(lhs).name),
                rhs.iter()
                    .map(|&s| g.resolve(g.symbol(s).name).to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            ),
        );
        self.ln(0, &format!(
            "fn prod_p{}_{}(sym: u32, prec: rt::Record, state: &mut Vec<Option<rt::Value>>, r: &mut rt::Reader<'_>, w: &mut rt::Writer) -> Result<(), String> {{",
            k, p.0
        ));
        self.ln(1, &format!("if sym != {}u32 {{", lhs.0));
        self.ln(
            2,
            &format!(
                "return Err(format!(\"APT stream corrupt: production {} does not derive symbol {{}}\", sym));",
                p.0
            ),
        );
        self.ln(1, "}");
        if let Some(ls) = limb {
            self.ln(
                1,
                &format!(
                    "let mut limb: Vec<Option<rt::Value>> = vec![None; {}];",
                    self.nslots(ls)
                ),
            );
            self.ln(1, "rt::fill_slots(&mut limb, prec.values, ATTR_SLOT);");
        } else {
            self.ln(1, "let _ = prec.values;");
        }
        for i in 0..rhs.len() {
            self.ln(
                1,
                &format!("let mut c{}: Option<Vec<Option<rt::Value>>> = None;", i),
            );
        }
        let mut frame = Frame {
            pass: k,
            locals: Vec::new(),
            tmp: 0,
            body: String::new(),
            indent: 1,
        };
        for step in &steps {
            match *step {
                Step::Get(i) => self.emit_get(&mut frame, p, &rhs, i, k),
                Step::Eval(rid) => self.emit_eval(&mut frame, rid),
                Step::Visit(i) => self.emit_child_io(&mut frame, &rhs, i, k, true),
                Step::Put(i) => self.emit_child_io(&mut frame, &rhs, i, k, false),
            }
        }
        // End zone: move locals into the lhs/limb frames (rhs locals die).
        let locals = frame.locals.clone();
        for (occ, var) in &locals {
            match occ.pos {
                OccPos::Lhs => {
                    let line = format!("state[{}] = Some({}.clone());", self.slot(occ.attr), var);
                    frame.line(&line);
                }
                OccPos::Limb => {
                    let line = format!("limb[{}] = Some({}.clone());", self.slot(occ.attr), var);
                    frame.line(&line);
                }
                OccPos::Rhs(_) => {}
            }
        }
        // Production record for the next pass: limb values alive across k.
        let values = match limb {
            Some(ls) => format!("rt::collect_alive(&limb, ALIVE_S{}_P{})", ls.0, k),
            None => "Vec::new()".to_string(),
        };
        frame.line(&format!(
            "w.write(&rt::Record {{ is_prod: true, id: {}u32, values: {} }}.encode());",
            p.0, values
        ));
        frame.line("Ok(())");
        self.out.push_str(&frame.body);
        self.ln(0, "}");
        self.ln(0, "");
    }

    fn emit_get(&mut self, frame: &mut Frame, p: ProdId, rhs: &[SymbolId], i: u16, k: u16) {
        let child = rhs[i as usize];
        // Elided terminal: no record exists at boundary k-1 — the
        // generated reader materializes the empty frame directly,
        // mirroring the interpreter.
        if self.analysis.lifetimes.elides(self.g(), child, k - 1) {
            frame.line(&format!(
                "c{} = Some(vec![None; {}]);",
                i,
                self.nslots(child)
            ));
            return;
        }
        frame.line("let crec = match r.next()? {");
        frame.indent += 1;
        frame.line("Some(b) => rt::Record::decode(b)?,");
        frame.line(
            "None => return Err(\"APT stream corrupt: APT file ended before child record\".to_string()),",
        );
        frame.indent -= 1;
        frame.line("};");
        frame.line(&format!("if crec.is_prod || crec.id != {}u32 {{", child.0));
        frame.indent += 1;
        frame.line(&format!(
            "return Err(format!(\"APT stream corrupt: child {} of production {}: expected symbol {}, found record {{}}\", crec.id));",
            i, p.0, child.0
        ));
        frame.indent -= 1;
        frame.line("}");
        frame.line(&format!(
            "let mut cs: Vec<Option<rt::Value>> = vec![None; {}];",
            self.nslots(child)
        ));
        frame.line("rt::fill_slots(&mut cs, crec.values, ATTR_SLOT);");
        frame.line(&format!("c{} = Some(cs);", i));
    }

    /// `Visit(i)` (recurse) or `Put(i)` (write the child record): both
    /// first merge the locals defined so far for `rhs[i]` into the child
    /// frame, exactly like the interpreter's pre-visit/pre-put merge.
    fn emit_child_io(&mut self, frame: &mut Frame, rhs: &[SymbolId], i: u16, k: u16, visit: bool) {
        let child = rhs[i as usize];
        frame.line("{");
        frame.indent += 1;
        if visit {
            frame.line(&format!("let mut cs = match c{}.take() {{", i));
        } else {
            frame.line(&format!("let cs = match c{}.as_mut() {{", i));
        }
        frame.indent += 1;
        frame.line("Some(cs) => cs,");
        frame.line(&format!(
            "None => return Err(\"missing attribute instance: child {} state\".to_string()),",
            i
        ));
        frame.indent -= 1;
        frame.line("};");
        let merges: Vec<(usize, String)> = frame
            .locals
            .iter()
            .filter(|(occ, _)| occ.pos == OccPos::Rhs(i))
            .map(|(occ, var)| (self.slot(occ.attr), var.clone()))
            .collect();
        for (slot, var) in merges {
            frame.line(&format!("cs[{}] = Some({}.clone());", slot, var));
        }
        if visit {
            frame.line(&format!("visit_p{}({}u32, &mut cs, r, w)?;", k, child.0));
            frame.line(&format!("c{} = Some(cs);", i));
        } else if self.analysis.lifetimes.elides(self.g(), child, k) {
            // Elided at boundary k: pass k+1 will not look for this
            // record, so don't write it.
            frame.line("let _ = cs;");
        } else {
            frame.line(&format!(
                "w.write(&rt::Record {{ is_prod: false, id: {}u32, values: rt::collect_alive(cs, ALIVE_S{}_P{}) }}.encode());",
                child.0, child.0, k
            ));
        }
        frame.indent -= 1;
        frame.line("}");
    }

    fn emit_eval(&mut self, frame: &mut Frame, rid: linguist_ag::ids::RuleId) {
        let rule = self.g().rule(rid).clone();
        let width = rule.targets.len();
        let multi_if = width > 1 && matches!(rule.expr, Expr::If { .. });
        if multi_if {
            if let Expr::If {
                branches,
                otherwise,
            } = &rule.expr
            {
                let tuple = frame.fresh_tuple(width);
                let label = frame.fresh_label();
                frame.line(&format!("let ({}) = {}: {{", tuple.join(", "), label));
                frame.indent += 1;
                for (cond, arm) in branches {
                    let c = self.compile_expr(frame, cond);
                    frame.line(&format!("match {} {{", c));
                    frame.indent += 1;
                    frame.line("rt::Value::Bool(true) => {");
                    frame.indent += 1;
                    if arm.len() != width {
                        frame.line(
                            "return Err(\"APT stream corrupt: arm width does not match target count\".to_string());",
                        );
                    } else {
                        let mut vals = Vec::new();
                        for e in arm {
                            vals.push(self.compile_expr(frame, e));
                        }
                        frame.line(&format!("break {} ({});", label, vals.join(", ")));
                    }
                    frame.indent -= 1;
                    frame.line("}");
                    frame.line("rt::Value::Bool(false) => {}");
                    frame.line(
                        "v => return Err(format!(\"if expects bool, got {}\", v.type_name())),",
                    );
                    frame.indent -= 1;
                    frame.line("}");
                }
                if otherwise.len() != width {
                    frame.line(
                        "return Err(\"APT stream corrupt: arm width does not match target count\".to_string());",
                    );
                    frame.line("#[allow(unreachable_code)]");
                    let unit = (0..width)
                        .map(|_| "rt::Value::Bool(false)".to_string())
                        .collect::<Vec<_>>();
                    frame.line(&format!("({})", unit.join(", ")));
                } else {
                    let mut vals = Vec::new();
                    for e in otherwise {
                        vals.push(self.compile_expr(frame, e));
                    }
                    frame.line(&format!("({})", vals.join(", ")));
                }
                frame.indent -= 1;
                frame.line("};");
                for (j, occ) in rule.targets.iter().enumerate() {
                    let var = local_var(occ);
                    frame.line(&format!("let {} = {};", var, tuple[j]));
                    frame.locals.push((*occ, var));
                }
            }
        } else {
            let v = self.compile_expr(frame, &rule.expr);
            if width == 1 {
                let occ = rule.targets[0];
                let var = local_var(&occ);
                frame.line(&format!("let {} = {};", var, v));
                frame.locals.push((occ, var));
            } else {
                // `vec![v; width]`: every target gets an equal clone.
                let t = frame.fresh();
                frame.line(&format!("let {} = {};", t, v));
                for occ in &rule.targets {
                    let var = local_var(occ);
                    frame.line(&format!("let {} = {}.clone();", var, t));
                    frame.locals.push((*occ, var));
                }
            }
        }
    }

    /// Compile one expression; returns a Rust expression string that must
    /// be consumed exactly once. Emits any needed statements first, in the
    /// interpreter's evaluation order.
    fn compile_expr(&mut self, frame: &mut Frame, e: &Expr) -> String {
        match e {
            Expr::Occ(occ) => self.resolve_occ(frame, occ),
            Expr::Int(i) => format!("rt::Value::Int({}i64)", i),
            Expr::Bool(b) => format!("rt::Value::Bool({})", b),
            Expr::Str(s) => format!("rt::Value::str({:?})", s),
            Expr::Const(n) => format!("rt::Value::Sym({}u32)", n.index()),
            Expr::Call { func, args } => {
                let name = self.g().resolve(*func).to_ascii_lowercase();
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.compile_expr(frame, a));
                }
                let t = frame.fresh();
                frame.line(&format!(
                    "let {} = rt::call_func({:?}, &[{}])?;",
                    t,
                    name,
                    vals.join(", ")
                ));
                t
            }
            Expr::Binop { op, lhs, rhs } => {
                let a = self.compile_expr(frame, lhs);
                let b = self.compile_expr(frame, rhs);
                let f = match op {
                    BinOp::Add => "bin_add",
                    BinOp::Sub => "bin_sub",
                    BinOp::And => "bin_and",
                    BinOp::Or => "bin_or",
                    BinOp::Eq => "bin_eq",
                    BinOp::Ne => "bin_ne",
                    BinOp::Gt => "bin_gt",
                    BinOp::Lt => "bin_lt",
                };
                let t = frame.fresh();
                frame.line(&format!("let {} = rt::{}({}, {})?;", t, f, a, b));
                t
            }
            Expr::If {
                branches,
                otherwise,
            } => {
                // Single-value position: the selected arm must be one
                // expression (the interpreter's `eval_expr` errors
                // otherwise, after arm selection).
                let t = frame.fresh();
                let label = frame.fresh_label();
                frame.line(&format!("let {} = {}: {{", t, label));
                frame.indent += 1;
                for (cond, arm) in branches {
                    let c = self.compile_expr(frame, cond);
                    frame.line(&format!("match {} {{", c));
                    frame.indent += 1;
                    frame.line("rt::Value::Bool(true) => {");
                    frame.indent += 1;
                    if arm.len() == 1 {
                        let v = self.compile_expr(frame, &arm[0]);
                        frame.line(&format!("break {} {};", label, v));
                    } else {
                        frame.line(
                            "return Err(\"APT stream corrupt: multi-expression arm outside a multi-target rule\".to_string());",
                        );
                    }
                    frame.indent -= 1;
                    frame.line("}");
                    frame.line("rt::Value::Bool(false) => {}");
                    frame.line(
                        "v => return Err(format!(\"if expects bool, got {}\", v.type_name())),",
                    );
                    frame.indent -= 1;
                    frame.line("}");
                }
                if otherwise.len() == 1 {
                    let v = self.compile_expr(frame, &otherwise[0]);
                    frame.line(&v);
                } else {
                    frame.line(
                        "return Err(\"APT stream corrupt: multi-expression arm outside a multi-target rule\".to_string());",
                    );
                }
                frame.indent -= 1;
                frame.line("};");
                t
            }
        }
    }

    /// Resolve an occurrence: locals first (most recent definition), then
    /// the slot frames — the interpreter's `resolve` order.
    fn resolve_occ(&mut self, frame: &mut Frame, occ: &AttrOcc) -> String {
        if let Some((_, var)) = frame.locals.iter().rev().find(|(o, _)| o == occ) {
            return format!("{}.clone()", var.clone());
        }
        let g = self.g();
        let name = g.resolve(g.attr(occ.attr).name).to_string();
        let missing = format!(
            "missing attribute instance: {} at {} (pass {})",
            name, occ.pos, frame.pass
        );
        let slot = self.slot(occ.attr);
        let t = frame.fresh();
        let source = match occ.pos {
            OccPos::Lhs => format!("state[{}].as_ref()", slot),
            OccPos::Rhs(i) => format!("c{}.as_ref().and_then(|cs| cs[{}].as_ref())", i, slot),
            OccPos::Limb => format!("limb[{}].as_ref()", slot),
        };
        frame.line(&format!("let {} = match {} {{", t, source));
        frame.indent += 1;
        frame.line("Some(v) => v.clone(),");
        frame.line(&format!("None => return Err({:?}.to_string()),", missing));
        frame.indent -= 1;
        frame.line("};");
        t
    }

    fn emit_run_pass(&mut self, k: u16) {
        let g = self.g();
        let start = g.start();
        let forward = k == 1 && self.prefix();
        self.ln(
            0,
            &format!(
            "fn run_pass_{}(input: &[u8]) -> Result<(Vec<u8>, Vec<Option<rt::Value>>), String> {{",
            k
        ),
        );
        self.ln(
            1,
            &format!("let mut r = rt::Reader::open(input, {})?;", forward),
        );
        self.ln(1, "let mut w = rt::Writer::new();");
        self.ln(1, "let rec = match r.next()? {");
        self.ln(2, "Some(b) => rt::Record::decode(b)?,");
        self.ln(
            2,
            "None => return Err(\"APT stream corrupt: empty APT file\".to_string()),",
        );
        self.ln(1, "};");
        self.ln(1, "if rec.is_prod {");
        self.ln(
            2,
            "return Err(format!(\"APT stream corrupt: expected a symbol record, found production {}\", rec.id));",
        );
        self.ln(1, "}");
        self.ln(1, &format!("if rec.id != {}u32 {{", start.0));
        self.ln(
            2,
            &format!(
                "return Err(format!(\"APT stream corrupt: root record is {{}}, expected start symbol {}\", rec.id));",
                start.0
            ),
        );
        self.ln(1, "}");
        self.ln(
            1,
            &format!(
                "let mut state: Vec<Option<rt::Value>> = vec![None; {}];",
                self.nslots(start)
            ),
        );
        self.ln(1, "rt::fill_slots(&mut state, rec.values, ATTR_SLOT);");
        self.ln(
            1,
            &format!("visit_p{}({}u32, &mut state, &mut r, &mut w)?;", k, start.0),
        );
        self.ln(1, &format!(
            "w.write(&rt::Record {{ is_prod: false, id: {}u32, values: rt::collect_alive(&state, ALIVE_S{}_P{}) }}.encode());",
            start.0, start.0, k
        ));
        self.ln(1, "Ok((w.finish(), state))");
        self.ln(0, "}");
        self.ln(0, "");
    }

    fn emit_evaluate(&mut self) {
        let n = self.num_passes();
        self.ln(
            0,
            "/// Run every pass over a boundary-0 APT file; returns the root's",
        );
        self.ln(
            0,
            "/// synthesized outputs encoded as `[attr u32 LE][value]...` in",
        );
        self.ln(0, "/// declaration order.");
        self.ln(
            0,
            "pub fn evaluate_apt(input: &[u8]) -> Result<Vec<u8>, String> {",
        );
        if n == 0 {
            self.ln(1, "let _ = input;");
            self.ln(
                1,
                "Err(\"APT stream corrupt: grammar evaluates in zero passes; nothing to do\".to_string())",
            );
            self.ln(0, "}");
            self.ln(0, "");
            return;
        }
        self.ln(1, "rt::check_header(input)?;");
        self.ln(1, "let (buf1, root1) = run_pass_1(input)?;");
        for k in 2..=n {
            self.ln(
                1,
                &format!(
                    "let (buf{}, root{}) = run_pass_{}(&buf{})?;",
                    k,
                    k,
                    k,
                    k - 1
                ),
            );
        }
        self.ln(1, &format!("let _ = buf{};", n));
        for k in 1..n {
            self.ln(1, &format!("let _ = root{};", k));
        }
        self.ln(1, &format!("let root = root{};", n));
        self.ln(1, "let mut out = Vec::new();");
        for (attr, slot, name) in self.outputs() {
            self.ln(1, &format!("match &root[{}] {{", slot));
            self.ln(
                2,
                &format!(
                "Some(v) => {{ out.extend_from_slice(&{}u32.to_le_bytes()); v.encode(&mut out); }}",
                attr
            ),
            );
            self.ln(
                2,
                &format!(
                    "None => return Err({:?}.to_string()),",
                    format!("missing attribute instance: root output {}", name)
                ),
            );
            self.ln(1, "}");
        }
        self.ln(1, "Ok(out)");
        self.ln(0, "}");
        self.ln(0, "");
    }

    fn emit_main(&mut self) {
        self.ln(
            0,
            "/// Subprocess protocol: boundary-0 APT on stdin, encoded outputs on",
        );
        self.ln(
            0,
            "/// stdout; any evaluation error goes to stderr with exit code 1.",
        );
        self.ln(0, "#[allow(dead_code)]");
        self.ln(0, "fn main() {");
        self.ln(1, "use std::io::Read as _;");
        self.ln(1, "use std::io::Write as _;");
        self.ln(1, "let mut input = Vec::new();");
        self.ln(1, "if std::io::stdin().read_to_end(&mut input).is_err() {");
        self.ln(2, "eprintln!(\"evaluator error: failed to read stdin\");");
        self.ln(2, "std::process::exit(2);");
        self.ln(1, "}");
        self.ln(1, "match evaluate_apt(&input) {");
        self.ln(2, "Ok(out) => {");
        self.ln(3, "if std::io::stdout().write_all(&out).is_err() {");
        self.ln(4, "std::process::exit(2);");
        self.ln(3, "}");
        self.ln(2, "}");
        self.ln(2, "Err(e) => {");
        self.ln(3, "eprintln!(\"evaluator error: {}\", e);");
        self.ln(3, "std::process::exit(1);");
        self.ln(2, "}");
        self.ln(1, "}");
        self.ln(0, "}");
    }
}

/// Stable local-variable name for a defined occurrence.
fn local_var(occ: &AttrOcc) -> String {
    match occ.pos {
        OccPos::Lhs => format!("l_h_{}", occ.attr.0),
        OccPos::Rhs(i) => format!("l_r{}_{}", i, occ.attr.0),
        OccPos::Limb => format!("l_m_{}", occ.attr.0),
    }
}

/// Statement buffer for one production arm.
struct Frame {
    pass: u16,
    /// Locals in definition order (resolution searches newest-first).
    locals: Vec<(AttrOcc, String)>,
    tmp: u32,
    body: String,
    indent: usize,
}

impl Frame {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.body.push_str("    ");
        }
        self.body.push_str(s);
        self.body.push('\n');
    }

    fn fresh(&mut self) -> String {
        self.tmp += 1;
        format!("t{}", self.tmp)
    }

    fn fresh_label(&mut self) -> String {
        self.tmp += 1;
        format!("'b{}", self.tmp)
    }

    fn fresh_tuple(&mut self, width: usize) -> Vec<String> {
        (0..width).map(|_| self.fresh()).collect()
    }
}
