//! Name mangling for generated evaluators.
//!
//! The paper's generated code names occurrences `FUNCTIONLIST0` (the LHS)
//! and `FUNCTIONLIST1` (a RHS occurrence of the same symbol), leaves
//! singly-occurring symbols unsuffixed (`FUNCTION`, `COMMA`), names
//! production-procedures after the limb (`FUNCTIONLISTLIMBPP2` for pass
//! 2), and decorates generated types with the `_PQZ_` infix. This module
//! reproduces those conventions.

use linguist_ag::grammar::Grammar;
use linguist_ag::ids::{OccPos, ProdId, SymbolId};

/// Uppercased symbol name (the paper's generated code is shouty Pascal).
pub fn sym_upper(g: &Grammar, s: SymbolId) -> String {
    g.symbol_name(s)
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_uppercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// The local-variable name of an occurrence position within a production.
///
/// Symbols occurring more than once (counting the LHS) get `0`, `1`, …
/// suffixes in LHS-then-left-to-right order, matching `FUNCTIONLIST0` /
/// `FUNCTIONLIST1` in the paper's figure.
pub fn occ_var(g: &Grammar, prod: ProdId, pos: OccPos) -> String {
    let p = g.production(prod);
    match pos {
        OccPos::Limb => {
            let l = p.limb.expect("occ_var(Limb) requires a limb");
            sym_upper(g, l)
        }
        OccPos::Lhs | OccPos::Rhs(_) => {
            let sym = match pos {
                OccPos::Lhs => p.lhs,
                OccPos::Rhs(i) => p.rhs[i as usize],
                OccPos::Limb => unreachable!(),
            };
            let mut count = usize::from(p.lhs == sym);
            count += p.rhs.iter().filter(|&&r| r == sym).count();
            let base = sym_upper(g, sym);
            if count <= 1 {
                return base;
            }
            // Ordinal of this occurrence among same-symbol positions.
            let ordinal = match pos {
                OccPos::Lhs => 0,
                OccPos::Rhs(i) => {
                    let mut n = usize::from(p.lhs == sym);
                    n += p.rhs[..i as usize].iter().filter(|&&r| r == sym).count();
                    n
                }
                OccPos::Limb => unreachable!(),
            };
            format!("{}{}", base, ordinal)
        }
    }
}

/// Production-procedure name for one pass: `<LIMB>PP<k>`, falling back to
/// `PROD<i>PP<k>` for limb-less productions.
pub fn proc_name(g: &Grammar, prod: ProdId, pass: u16) -> String {
    match g.production(prod).limb {
        Some(l) => format!("{}PP{}", sym_upper(g, l), pass),
        None => format!("PROD{}PP{}", prod.0, pass),
    }
}

/// Per-symbol dispatcher procedure name: `<SYM>PP<k>`.
pub fn dispatcher_name(g: &Grammar, sym: SymbolId, pass: u16) -> String {
    format!("{}PP{}", sym_upper(g, sym), pass)
}

/// The `_PQZ_type` record type of a symbol.
pub fn node_type(g: &Grammar, sym: SymbolId) -> String {
    format!("{}_PQZ_type", sym_upper(g, sym))
}

/// Global variable of a subsumption group.
pub fn global_var(name: &str) -> String {
    format!("G_{}", name.to_ascii_uppercase())
}

/// Save-temporary of a group (the paper's `PRE_QZP`).
pub fn save_var(name: &str) -> String {
    format!("{}_QZP", name.to_ascii_uppercase())
}

/// New-value temporary of a group at one child (the paper's `PRE2_ZQP`).
pub fn new_var(name: &str, child: u16) -> String {
    format!("{}{}_ZQP", name.to_ascii_uppercase(), child)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linguist_ag::grammar::AgBuilder;
    use linguist_ag::ids::AttrOcc;

    fn fixture() -> (Grammar, ProdId) {
        let mut b = AgBuilder::new();
        let fl = b.nonterminal("function_list");
        let flv = b.synthesized(fl, "FUNCTS", "set");
        let f = b.nonterminal("function");
        let fv = b.synthesized(f, "OBJ", "name");
        let comma = b.terminal("comma");
        let limb = b.limb("FunctionListLimb");
        // function_list0 = function comma function_list1
        let p = b.production(fl, vec![f, comma, fl], Some(limb));
        b.rule(
            p,
            vec![AttrOcc::lhs(flv)],
            linguist_ag::expr::Expr::Occ(AttrOcc::rhs(2, flv)),
        );
        let pf = b.production(f, vec![], None);
        b.rule(pf, vec![AttrOcc::lhs(fv)], linguist_ag::expr::Expr::Int(0));
        b.start(fl);
        (b.build().unwrap(), p)
    }

    #[test]
    fn repeated_symbols_get_ordinals() {
        let (g, p) = fixture();
        assert_eq!(occ_var(&g, p, OccPos::Lhs), "FUNCTION_LIST0");
        assert_eq!(occ_var(&g, p, OccPos::Rhs(2)), "FUNCTION_LIST1");
        assert_eq!(occ_var(&g, p, OccPos::Rhs(0)), "FUNCTION");
        assert_eq!(occ_var(&g, p, OccPos::Rhs(1)), "COMMA");
        assert_eq!(occ_var(&g, p, OccPos::Limb), "FUNCTIONLISTLIMB");
    }

    #[test]
    fn procedure_names_follow_the_limb() {
        let (g, p) = fixture();
        assert_eq!(proc_name(&g, p, 2), "FUNCTIONLISTLIMBPP2");
        assert_eq!(proc_name(&g, ProdId(1), 2), "PROD1PP2");
    }

    #[test]
    fn auxiliary_names() {
        let (g, _) = fixture();
        let fl = g.symbol_by_name("function_list").unwrap();
        assert_eq!(dispatcher_name(&g, fl, 3), "FUNCTION_LISTPP3");
        assert_eq!(node_type(&g, fl), "FUNCTION_LIST_PQZ_type");
        assert_eq!(global_var("pre"), "G_PRE");
        assert_eq!(save_var("pre"), "PRE_QZP");
        assert_eq!(new_var("pre", 2), "PRE2_ZQP");
    }
}
