//! Evaluator source-code generation.
//!
//! "From an input attribute grammar [LINGUIST-86] generates a set of
//! high-level language source modules that form an alternating-pass
//! attribute evaluator." This crate is that generator: it renders, per
//! pass, the production-procedures (and per-symbol dispatchers) in a
//! Pascal-like surface matching the paper's p.165 figure, or a Rust-like
//! one, and accounts for every byte as *husk* (the traversal skeleton —
//! "the production-procedure declarations, calls to GetNode and PutNode,
//! and recursive calls to production-procedures") or *semantic-function
//! code*. Those two numbers regenerate the §V pass-size table (E9) and
//! the §III subsumption measurements (E8).
//!
//! # Example
//!
//! ```
//! use linguist_ag::analysis::{Analysis, Config};
//! use linguist_ag::grammar::AgBuilder;
//! use linguist_ag::expr::Expr;
//! use linguist_ag::ids::AttrOcc;
//! use linguist_codegen::{generate, Target};
//!
//! let mut b = AgBuilder::new();
//! let s = b.nonterminal("S");
//! let v = b.synthesized(s, "V", "int");
//! let x = b.terminal("x");
//! let obj = b.intrinsic(x, "OBJ", "int");
//! let p = b.production(s, vec![x], None);
//! b.rule(p, vec![AttrOcc::lhs(v)], Expr::Occ(AttrOcc::rhs(0, obj)));
//! b.start(s);
//! let analysis = Analysis::run(b.build()?, &Config::default())?;
//!
//! let evaluator = generate(&analysis, Target::Pascal);
//! assert_eq!(evaluator.passes.len(), 1);
//! assert!(evaluator.passes[0].source.contains("procedure"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod emit;
pub mod names;
pub mod rt;
pub mod rustgen;

pub use emit::{emit_dispatcher, emit_procedure, LineKind, ProcSource, Target};

use linguist_ag::analysis::Analysis;
use linguist_ag::grammar::SymbolKind;
use linguist_ag::ids::{ProdId, SymbolId};

/// One pass's generated module with its size accounting.
#[derive(Clone, Debug)]
pub struct GeneratedPass {
    /// The pass number (1-based).
    pub pass: u16,
    /// Concatenated source of dispatchers and production-procedures.
    pub source: String,
    /// Bytes of traversal skeleton ("overhead").
    pub husk_bytes: usize,
    /// Bytes of semantic-function code (including save/restore).
    pub semantic_bytes: usize,
    /// The save/set/restore share of `semantic_bytes`.
    pub save_restore_bytes: usize,
    /// Copy-rules emitted as comments (eliminated by subsumption).
    pub subsumed_rules: usize,
}

impl GeneratedPass {
    /// Total module size, the paper's per-pass byte count.
    pub fn total_bytes(&self) -> usize {
        self.husk_bytes + self.semantic_bytes
    }
}

/// The complete generated evaluator.
#[derive(Clone, Debug)]
pub struct GeneratedEvaluator {
    /// One module per pass.
    pub passes: Vec<GeneratedPass>,
    /// Global-variable declarations for statically allocated attributes.
    pub globals_decl: String,
    /// Output flavour.
    pub target: Target,
}

impl GeneratedEvaluator {
    /// The husk size (§V: "for a given grammar the size of the husk is the
    /// same for every pass").
    pub fn husk_bytes(&self) -> usize {
        self.passes.first().map(|p| p.husk_bytes).unwrap_or(0)
    }

    /// Total semantic-function bytes across all passes.
    pub fn semantic_bytes(&self) -> usize {
        self.passes.iter().map(|p| p.semantic_bytes).sum()
    }

    /// Total subsumed copy-rule sites across all passes.
    pub fn subsumed_rules(&self) -> usize {
        self.passes.iter().map(|p| p.subsumed_rules).sum()
    }

    /// Full source: globals then every pass module.
    pub fn full_source(&self) -> String {
        let mut out = self.globals_decl.clone();
        for p in &self.passes {
            out.push('\n');
            out.push_str(&p.source);
        }
        out
    }
}

/// Generate the module for a single pass — the unit the paper's seventh
/// overlay produces on each rerun.
pub fn generate_pass(analysis: &Analysis, k: u16, target: Target) -> GeneratedPass {
    let g = &analysis.grammar;
    let mut source = String::new();
    let mut husk = 0;
    let mut semantic = 0;
    let mut save_restore = 0;
    let mut subsumed = 0;
    // Dispatchers for every nonterminal.
    for (si, sym) in g.symbols().iter().enumerate() {
        if sym.kind != SymbolKind::Nonterminal {
            continue;
        }
        let d = emit_dispatcher(analysis, SymbolId(si as u32), k, target);
        source.push_str(&d.source);
        source.push('\n');
        husk += d.husk_bytes;
    }
    // Production-procedures.
    for (pi, _) in g.productions().iter().enumerate() {
        let p = emit_procedure(analysis, ProdId(pi as u32), k, target);
        source.push_str(&p.source);
        source.push('\n');
        husk += p.husk_bytes;
        semantic += p.semantic_bytes;
        save_restore += p.save_restore_bytes;
        subsumed += p.subsumed_rules;
    }
    GeneratedPass {
        pass: k,
        source,
        husk_bytes: husk,
        semantic_bytes: semantic,
        save_restore_bytes: save_restore,
        subsumed_rules: subsumed,
    }
}

/// Render the global-variable declarations for the statically allocated
/// attribute groups.
pub fn generate_globals(analysis: &Analysis, target: Target) -> String {
    globals_decl_for(analysis, target)
}

/// Generate the whole evaluator for an analyzed grammar.
pub fn generate(analysis: &Analysis, target: Target) -> GeneratedEvaluator {
    let mut passes = Vec::new();
    for k in 1..=analysis.passes.num_passes() as u16 {
        passes.push(generate_pass(analysis, k, target));
    }
    GeneratedEvaluator {
        passes,
        globals_decl: globals_decl_for(analysis, target),
        target,
    }
}

fn globals_decl_for(analysis: &Analysis, target: Target) -> String {
    let g = &analysis.grammar;
    // Global declarations: one variable (plus its save temp) per group
    // that holds at least one static attribute.
    let sub = &analysis.subsumption;
    let mut seen = std::collections::BTreeSet::new();
    let mut globals_decl = String::new();
    for (ai, _) in g.attrs().iter().enumerate() {
        let a = linguist_ag::ids::AttrId(ai as u32);
        if sub.is_static(a) {
            let gr = sub.group_of(a);
            if seen.insert(gr) {
                let name = names::global_var(sub.group_name(gr));
                match target {
                    Target::Pascal => {
                        globals_decl.push_str(&format!("VAR {} : attrib_type;\n", name))
                    }
                    Target::Rust => globals_decl
                        .push_str(&format!("static mut {}: Value = Value::UNSET;\n", name)),
                }
            }
        }
    }
    globals_decl
}

#[cfg(test)]
mod tests {
    use super::*;
    use linguist_ag::analysis::Config;
    use linguist_ag::expr::{BinOp, Expr};
    use linguist_ag::grammar::AgBuilder;
    use linguist_ag::ids::AttrOcc;
    use linguist_ag::passes::{Direction, PassConfig};
    use linguist_ag::subsumption::SubsumptionCosts;

    fn lr(costs: SubsumptionCosts) -> Config {
        Config {
            pass: PassConfig {
                first_direction: Direction::LeftToRight,
                max_passes: 8,
            },
            costs,
            ..Config::default()
        }
    }

    /// ENV copy-chain with limbs — exercises every emission path.
    fn analysis() -> Analysis {
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "OUT", "int");
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "OUT", "int");
        let se = b.inherited(s, "ENV", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let limb = b.limb("ListProd");
        let p0 = b.production(root, vec![s], None);
        b.rule(p0, vec![AttrOcc::rhs(0, se)], Expr::Int(1));
        b.rule(p0, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(0, sv)));
        let _p1 = b.production(s, vec![s, x], Some(limb)); // implicit copies
        let p2 = b.production(s, vec![x], None);
        b.rule(
            p2,
            vec![AttrOcc::lhs(sv)],
            Expr::binop(
                BinOp::Add,
                Expr::Occ(AttrOcc::lhs(se)),
                Expr::Occ(AttrOcc::rhs(0, obj)),
            ),
        );
        b.start(root);
        let g = b.build().unwrap();
        Analysis::run(
            g,
            &lr(SubsumptionCosts {
                copy: 50,
                save_restore: 10,
            }),
        )
        .unwrap()
    }

    #[test]
    fn husk_is_identical_across_passes() {
        // Build a two-pass grammar to compare husk sizes.
        let mut b = AgBuilder::new();
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "V", "int");
        let a = b.nonterminal("A");
        let ai = b.inherited(a, "I", "int");
        let av = b.synthesized(a, "V", "int");
        let bb = b.nonterminal("B");
        let bv = b.synthesized(bb, "V", "int");
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p0 = b.production(s, vec![a, bb], None);
        b.rule(
            p0,
            vec![AttrOcc::rhs(0, ai)],
            Expr::Occ(AttrOcc::rhs(1, bv)),
        );
        b.rule(p0, vec![AttrOcc::lhs(sv)], Expr::Occ(AttrOcc::rhs(0, av)));
        let p1 = b.production(a, vec![x], None);
        b.rule(p1, vec![AttrOcc::lhs(av)], Expr::Occ(AttrOcc::lhs(ai)));
        let p2 = b.production(bb, vec![x], None);
        b.rule(p2, vec![AttrOcc::lhs(bv)], Expr::Occ(AttrOcc::rhs(0, obj)));
        b.start(s);
        let analysis = Analysis::run(b.build().unwrap(), &lr(SubsumptionCosts::default())).unwrap();
        let gen = generate(&analysis, Target::Pascal);
        assert_eq!(gen.passes.len(), 2);
        assert_eq!(
            gen.passes[0].husk_bytes, gen.passes[1].husk_bytes,
            "the husk is the same for every pass (§V)"
        );
        // The two passes carry different semantic loads.
        assert_ne!(gen.passes[0].semantic_bytes, gen.passes[1].semantic_bytes);
    }

    #[test]
    fn procedure_shape_matches_paper_figure() {
        let a = analysis();
        let g = &a.grammar;
        let p1 = ProdId(1); // S -> S x with limb
        let src = emit_procedure(&a, p1, 1, Target::Pascal).source;
        let _ = g;
        // Limb read first, put last.
        let get_limb = src.find("GetNodeLISTPROD").expect("limb get");
        let put_limb = src.find("PutNodeLISTPROD").expect("limb put");
        assert!(get_limb < put_limb);
        // Children appear between.
        let get_child = src.find("GetNodeS1").expect("child get");
        assert!(get_limb < get_child && get_child < put_limb, "{}", src);
        // The dispatcher call for the nested S.
        assert!(src.contains("SPP1(S1);"), "{}", src);
    }

    #[test]
    fn subsumed_copies_are_commented_out() {
        let a = analysis();
        let gen = generate(&a, Target::Pascal);
        assert!(gen.subsumed_rules() > 0);
        let src = gen.full_source();
        // A commented copy of the ENV chain.
        assert!(
            src.contains("{ S1.ENV := S0.ENV }")
                || src.contains("{ S.ENV := S0.ENV }")
                || src.contains("ENV }"),
            "expected a commented-out ENV copy in:\n{}",
            src
        );
    }

    /// A copy-heavy grammar: many list-like productions, each propagating
    /// ENVIRONMENT down and RESULT up purely by (implicit) copy-rules —
    /// the shape where the paper's LINGUIST-86 grammar gets its ~20 %
    /// semantic-code elimination.
    fn copy_heavy_grammar() -> linguist_ag::grammar::Grammar {
        let mut b = AgBuilder::new();
        let root = b.nonterminal("root");
        let rv = b.synthesized(root, "RESULT", "int");
        let s = b.nonterminal("S");
        let sv = b.synthesized(s, "RESULT", "int");
        let se = b.inherited(s, "ENVIRONMENT", "int");
        let p0 = b.production(root, vec![s], None);
        b.rule(p0, vec![AttrOcc::rhs(0, se)], Expr::Int(1));
        b.rule(p0, vec![AttrOcc::lhs(rv)], Expr::Occ(AttrOcc::rhs(0, sv)));
        // Six recursive productions, all pure copy flow (implicit).
        for i in 0..6 {
            let t = b.terminal(&format!("t{}", i));
            b.production(s, vec![s, t], None);
        }
        // Leaf: a real computation.
        let x = b.terminal("x");
        let obj = b.intrinsic(x, "OBJ", "int");
        let p_leaf = b.production(s, vec![x], None);
        b.rule(
            p_leaf,
            vec![AttrOcc::lhs(sv)],
            Expr::binop(
                BinOp::Add,
                Expr::Occ(AttrOcc::lhs(se)),
                Expr::Occ(AttrOcc::rhs(0, obj)),
            ),
        );
        b.start(root);
        b.build().unwrap()
    }

    #[test]
    fn subsumption_shrinks_semantic_code() {
        let with = Analysis::run(
            copy_heavy_grammar(),
            &lr(SubsumptionCosts {
                copy: 30,
                save_restore: 30,
            }),
        )
        .unwrap();
        let gen_with = generate(&with, Target::Pascal);

        let without = Analysis::run(
            copy_heavy_grammar(),
            &Config {
                disable_subsumption: true,
                pass: PassConfig {
                    first_direction: Direction::LeftToRight,
                    max_passes: 8,
                },
                ..Config::default()
            },
        )
        .unwrap();
        let gen_without = generate(&without, Target::Pascal);

        assert!(
            gen_with.subsumed_rules() >= 12,
            "12 implicit copies subsume"
        );
        assert!(
            gen_with.semantic_bytes() < gen_without.semantic_bytes(),
            "with: {} without: {}",
            gen_with.semantic_bytes(),
            gen_without.semantic_bytes()
        );
        // Husk unaffected by the optimization.
        assert_eq!(gen_with.husk_bytes(), gen_without.husk_bytes());
        // The paper's observation: the eliminated fraction is meaningful
        // but bounded (each copy-rule generates very little code).
        let eliminated = gen_without.semantic_bytes() - gen_with.semantic_bytes();
        let frac = eliminated as f64 / gen_without.semantic_bytes() as f64;
        assert!(frac > 0.10 && frac < 0.95, "eliminated fraction {}", frac);
    }

    #[test]
    fn globals_declared_for_static_groups() {
        let a = analysis();
        let gen = generate(&a, Target::Pascal);
        assert!(gen.globals_decl.contains("G_ENV"), "{}", gen.globals_decl);
    }

    #[test]
    fn rust_target_renders() {
        let a = analysis();
        let gen = generate(&a, Target::Rust);
        let src = gen.full_source();
        assert!(src.contains("fn "), "{}", src);
        assert!(src.contains("ctx.get_node()"), "{}", src);
        assert!(gen.passes[0].husk_bytes > 0);
    }

    #[test]
    fn dispatchers_cover_all_productions_of_symbol() {
        let a = analysis();
        let g = &a.grammar;
        let s = g.symbol_by_name("S").unwrap();
        let d = emit_dispatcher(&a, s, 1, Target::Pascal);
        // S has two productions (indexes 1 and 2).
        assert!(d.source.contains("1: "), "{}", d.source);
        assert!(d.source.contains("2: "), "{}", d.source);
    }
}
